"""Latency-SLO serving: the anytime meta-solver and its learned cost model.

The serving question is "best certified answer within X ms", not "run
all arms to completion".  This package answers it with three layers:

- :class:`~repro.slo.stats.ArmStatsStore` — per-arm runtime/utility
  observations keyed by instance fingerprint features (|Q|, |P|,
  plan-length histogram, shard count) and engine, in a versioned JSON
  store next to ``.repro-cache/``; callers use ``predict_runtime()``,
  never the schema.
- :mod:`~repro.slo.cost_model` — a deterministic ridge fit on
  log-runtime (pure Python, monotone in size features, never negative),
  refit lazily as observations grow, degrading through geometric means
  to registry tier priors.
- :class:`~repro.slo.meta.AnytimeMetaSolver` — races cheap arms first
  through the task pool, escalates while predicted time remains, and
  always holds a certified incumbent it can return on timeout.

Time is injected via the :class:`~repro.parallel.clock.Clock` protocol;
a :class:`~repro.parallel.clock.VirtualClock` makes every scheduling
decision deterministic.  ``python -m repro.slo --deadline-ms 50`` runs
the solver from the command line.
"""

from repro.parallel.clock import SYSTEM_CLOCK, Clock, SystemClock, VirtualClock
from repro.slo.cost_model import (
    MIN_FIT_OBSERVATIONS,
    CostModel,
    fit_cost_model,
)
from repro.slo.features import (
    FEATURE_NAMES,
    features_as_dict,
    features_from_counts,
    instance_features,
)
from repro.slo.figure import figslo
from repro.slo.meta import DEFAULT_ARMS, AnytimeMetaSolver, SloConfig, solve_slo
from repro.slo.stats import (
    STATS_VERSION,
    ArmStatsStore,
    default_stats_store,
)

__all__ = [
    "Clock",
    "SystemClock",
    "VirtualClock",
    "SYSTEM_CLOCK",
    "CostModel",
    "fit_cost_model",
    "MIN_FIT_OBSERVATIONS",
    "FEATURE_NAMES",
    "features_as_dict",
    "features_from_counts",
    "instance_features",
    "figslo",
    "AnytimeMetaSolver",
    "SloConfig",
    "solve_slo",
    "DEFAULT_ARMS",
    "ArmStatsStore",
    "STATS_VERSION",
    "default_stats_store",
]
