"""The anytime latency-SLO meta-solver.

``AnytimeMetaSolver.solve(workload, budget, deadline_ms)`` answers the
serving question — *best certified answer within X ms* — instead of the
sweep question the rest of the repo optimizes (*run all arms to
completion*).  The policy:

1. **Predict.**  Every candidate arm gets a runtime prediction from the
   :class:`~repro.slo.stats.ArmStatsStore` (fitted cost model →
   geometric mean → registry tier prior, in degradation order).
2. **Race cheap arms first.**  Arms are scheduled in ascending predicted
   runtime (ties: registry tier rank, then name — total and
   deterministic), executed through :func:`repro.parallel.pool.run_tasks`
   in waves of up to ``jobs`` tasks.
3. **Escalate while predicted time remains.**  Before admitting an arm,
   the solver checks that the wave's predicted seconds fit the remaining
   deadline; the clock is consulted between waves, so a mispredicted arm
   shrinks the budget of everything behind it.  The cheapest arm always
   runs — even at ``deadline_ms=0`` — because an SLO endpoint must
   return a real answer, not an apology.
4. **Always hold a certified incumbent.**  The incumbent starts as the
   certified empty solution and is re-certified
   (:func:`repro.verify.verify_solution`) on every improvement, so a
   timeout at *any* point returns a verifier-accepted answer.  Later
   incumbents never regress (checked by
   :func:`repro.verify.anytime.check_incumbent_trace`).

Every timing decision goes through the injected
:class:`~repro.parallel.clock.Clock`; under a
:class:`~repro.parallel.clock.VirtualClock` the full schedule and the
incumbent are bit-identical across runs and engines, which is what makes
the test wall in ``tests/test_slo.py`` possible.  Telemetry — arms tried
and skipped, predicted vs actual per arm, deadline slack or overrun —
lands in ``solution.meta["slo"]``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.bitset import active_engine
from repro.core.errors import InvalidInstanceError
from repro.core.model import BCCInstance, ClassifierWorkload
from repro.core.solution import Solution, evaluate
from repro.parallel.clock import SYSTEM_CLOCK, Clock
from repro.parallel.fingerprint import instance_fingerprint
from repro.parallel.pool import ParallelConfig, SolveTask, resolve_jobs, run_tasks
from repro.parallel.registry import TIER_RANK, solver_tier
from repro.parallel.seeding import seed_for
from repro.slo.features import instance_features
from repro.slo.stats import ArmStatsStore
from repro.verify.certificate import verify_solution

#: The default BCC portfolio, cheap to expensive.  ``bcc-exact`` is
#: deliberately absent: its runtime is exponential in the worst case and
#: a cold store has no way to know which case it is looking at.
DEFAULT_ARMS: Tuple[str, ...] = (
    "rand-bcc",
    "ig1-bcc",
    "ig2-bcc",
    "abcc-sharded",
    "abcc",
    "abcc-pruned",
    "abcc-unpruned",
)

#: Slack for deadline comparisons (float accumulation, not policy).
_TOL = 1e-12


@dataclass(frozen=True)
class SloConfig:
    """Policy knobs for one meta-solver.

    Attributes:
        arms: candidate registry arms (every one must accept a
            :class:`BCCInstance`).
        stats: the observation store; None builds a fresh in-memory one
            (no disk reads — hermetic by default; serving processes pass
            :func:`~repro.slo.stats.default_stats_store`).
        clock: injected time; None uses the system clock.
        jobs: wave width through the task pool (None → ``REPRO_JOBS``);
            a virtual clock forces 1.
        record: write runtime observations back to the store (and
            persist path-backed stores at the end of each solve).
        safety: multiplier on predictions during admission — ``1.25``
            means "only admit an arm if 1.25x its predicted runtime
            still fits", trading throughput for fewer overruns.
    """

    arms: Tuple[str, ...] = DEFAULT_ARMS
    stats: Optional[ArmStatsStore] = None
    clock: Optional[Clock] = None
    jobs: Optional[int] = None
    record: bool = True
    safety: float = 1.0

    def __post_init__(self) -> None:
        if not self.arms:
            raise ValueError("the arm portfolio must not be empty")
        if self.safety <= 0:
            raise ValueError(f"safety must be positive, got {self.safety}")


class AnytimeMetaSolver:
    """Deadline-driven arm scheduler holding a certified incumbent.

    After :meth:`solve`, :attr:`last_trace` holds every certified
    incumbent in improvement order (starting with the empty solution) —
    the input to the incumbent-dominance verifier.
    """

    def __init__(self, config: Optional[SloConfig] = None) -> None:
        self.config = config or SloConfig()
        self.stats = (
            self.config.stats
            if self.config.stats is not None
            else ArmStatsStore(path=None)
        )
        self.clock = self.config.clock or SYSTEM_CLOCK
        self.last_trace: List[Solution] = []

    # ------------------------------------------------------------------
    def _as_instance(
        self, workload: ClassifierWorkload, budget: Optional[float]
    ) -> BCCInstance:
        if budget is None:
            if isinstance(workload, BCCInstance) and workload.budget is not None:
                return workload
            raise InvalidInstanceError(
                "solve() needs a budget unless the workload is a budgeted BCCInstance"
            )
        if isinstance(workload, BCCInstance):
            return workload.with_budget(budget)
        return BCCInstance(
            workload.queries,
            workload._utilities,
            workload._costs,
            budget=budget,
            default_utility=workload.default_utility,
            default_cost=workload.default_cost,
        )

    def _certified(self, instance: BCCInstance, solution: Solution) -> Solution:
        certificate = verify_solution(instance, solution, budget=instance.budget)
        if isinstance(solution.meta, dict):
            solution.meta["certificate"] = certificate
        return solution

    # ------------------------------------------------------------------
    def solve(
        self,
        workload: ClassifierWorkload,
        budget: Optional[float] = None,
        deadline_ms: Optional[float] = None,
    ) -> Solution:
        """Best certified solution reachable within ``deadline_ms``.

        ``deadline_ms=None`` means unbounded: the whole portfolio runs
        and the answer matches the full-portfolio best.  ``budget``
        overrides (or supplies) the instance budget.
        """
        if deadline_ms is not None and (deadline_ms < 0 or math.isnan(deadline_ms)):
            raise ValueError(f"deadline_ms must be >= 0, got {deadline_ms}")
        instance = self._as_instance(workload, budget)
        deadline_s = math.inf if deadline_ms is None else deadline_ms / 1000.0
        clock = self.clock
        engine = active_engine()
        features = instance_features(instance)
        fingerprint = instance_fingerprint(instance)
        jobs = 1 if clock.virtual else resolve_jobs(self.config.jobs)

        order = sorted(
            (
                (
                    self.stats.predict_runtime(arm, features, engine),
                    TIER_RANK[solver_tier(arm)],
                    arm,
                )
                for arm in self.config.arms
            ),
        )

        start = clock.now()
        incumbent = self._certified(
            instance, evaluate(instance, [], meta={"algorithm": "slo-empty"})
        )
        trace = [incumbent]
        tried: List[dict] = []
        index = 0
        first = True
        while index < len(order):
            remaining = deadline_s - (clock.now() - start)
            wave: List[Tuple[float, str]] = []
            wave_pred = 0.0
            while index < len(order) and len(wave) < jobs:
                predicted, _, arm = order[index]
                charge = predicted * self.config.safety
                if not first and wave_pred + charge > remaining + _TOL:
                    break
                wave.append((predicted, arm))
                wave_pred += charge
                index += 1
                first = False
            if not wave:
                break

            timeout = None if math.isinf(remaining) else max(remaining, 0.0)
            tasks = [
                SolveTask(
                    key=arm,
                    solver=arm,
                    instance=instance,
                    seed=seed_for("slo", arm, fingerprint),
                    timeout_s=timeout,
                )
                for _, arm in wave
            ]
            results = run_tasks(
                tasks, ParallelConfig(jobs=jobs, clock=clock)
            )
            for (predicted, arm), result in zip(wave, results):
                candidate = result.solution
                if self.config.record:
                    self.stats.record(
                        arm, engine, features, result.seconds, candidate.utility
                    )
                improved = (candidate.utility, -candidate.cost) > (
                    incumbent.utility,
                    -incumbent.cost,
                )
                if improved:
                    incumbent = self._certified(instance, candidate)
                    trace.append(incumbent)
                tried.append(
                    {
                        "arm": arm,
                        "predicted_ms": predicted * 1000.0,
                        "actual_ms": result.seconds * 1000.0,
                        "utility": candidate.utility,
                        "cost": candidate.cost,
                        "improved": improved,
                        "timed_out": result.timed_out,
                    }
                )

        skipped = [
            {"arm": arm, "predicted_ms": predicted * 1000.0}
            for predicted, _, arm in order[index:]
        ]
        elapsed = clock.now() - start
        telemetry = {
            "deadline_ms": deadline_ms,
            "elapsed_ms": elapsed * 1000.0,
            "slack_ms": None
            if deadline_ms is None
            else (deadline_s - elapsed) * 1000.0,
            "overrun_ms": 0.0
            if math.isinf(deadline_s)
            else max(0.0, (elapsed - deadline_s) * 1000.0),
            "engine": engine,
            "schedule": [entry["arm"] for entry in tried],
            "arms_tried": tried,
            "arms_skipped": skipped,
            "incumbent_updates": len(trace) - 1,
            "observations": self.stats.total_observations(),
        }
        if self.config.record:
            self.stats.save()

        final = Solution(
            classifiers=incumbent.classifiers,
            cost=incumbent.cost,
            utility=incumbent.utility,
            covered=incumbent.covered,
            meta={**dict(incumbent.meta), "slo": telemetry},
        )
        final = self._certified(instance, final)
        self.last_trace = trace[:-1] + [final] if trace else [final]
        return final


def solve_slo(
    workload: ClassifierWorkload,
    budget: Optional[float] = None,
    deadline_ms: Optional[float] = None,
    config: Optional[SloConfig] = None,
) -> Solution:
    """Functional one-shot wrapper around :class:`AnytimeMetaSolver`."""
    return AnytimeMetaSolver(config).solve(workload, budget, deadline_ms)
