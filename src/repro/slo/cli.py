"""``python -m repro.slo`` — the anytime meta-solver as a command.

Builds a fragmented benchmark workload, runs
:class:`~repro.slo.meta.AnytimeMetaSolver` against the requested
deadline, re-verifies the incumbent trace, and prints the certified
answer plus its scheduling telemetry.  ``--virtual`` swaps in a
:class:`~repro.parallel.clock.VirtualClock` that charges each arm its
registry tier prior, making the whole run deterministic — the same mode
the test wall and the ``figslo`` figure use.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.core.errors import CertificateError
from repro.datasets import generate_fragmented
from repro.parallel.clock import VirtualClock
from repro.slo.meta import AnytimeMetaSolver, SloConfig
from repro.slo.stats import ArmStatsStore, default_stats_store
from repro.verify.anytime import check_incumbent_trace


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.slo",
        description="Anytime latency-SLO meta-solve of a fragmented workload.",
    )
    parser.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="latency SLO in milliseconds (default: unbounded)",
    )
    parser.add_argument(
        "--components", type=int, default=8, help="workload components (default 8)"
    )
    parser.add_argument(
        "--queries", type=int, default=6, help="queries per component (default 6)"
    )
    parser.add_argument(
        "--budget",
        type=float,
        default=None,
        help="instance budget (default 150 * components)",
    )
    parser.add_argument("--seed", type=int, default=0, help="dataset seed (default 0)")
    parser.add_argument(
        "--virtual",
        action="store_true",
        help="simulate time on a virtual clock (deterministic schedule)",
    )
    parser.add_argument(
        "--stats",
        metavar="PATH",
        default=None,
        help="arm-stats store path (default: REPRO_ARM_STATS or "
        ".repro-arm-stats.json; ignored under --virtual)",
    )
    parser.add_argument(
        "--no-record",
        action="store_true",
        help="do not write runtime observations back to the store",
    )
    parser.add_argument(
        "--seed-stats",
        metavar="BENCH_JSON",
        default=None,
        help="seed the arm-stats store from a benchmark file's "
        "arm_observations (e.g. benchmarks/BENCH_hotpath.json) before "
        "solving, so the schedule reflects freshly measured runtimes",
    )
    parser.add_argument(
        "--json", metavar="PATH", help="also write the telemetry as JSON"
    )
    args = parser.parse_args(argv)

    budget = 150.0 * args.components if args.budget is None else args.budget
    workload = generate_fragmented(
        n_components=args.components,
        queries_per_component=args.queries,
        budget=budget,
        seed=args.seed,
    )

    if args.virtual:
        # Simulated serving: each arm costs its tier prior, nothing is
        # recorded — the same hermetic setup the test wall relies on.
        stats = ArmStatsStore(path=None)
        clock = VirtualClock(
            task_seconds=lambda task, s=stats: s.predict_runtime(
                task.solver, (0.0,) * 7, "virtual"
            )
        )
        config = SloConfig(stats=stats, clock=clock, record=False)
    else:
        stats = default_stats_store(Path(args.stats) if args.stats else None)
        config = SloConfig(stats=stats, record=not args.no_record)

    if args.seed_stats:
        from repro.slo.stats import seed_store_from_bench

        try:
            seeded = seed_store_from_bench(stats, Path(args.seed_stats))
        except ValueError as exc:
            print(f"--seed-stats failed: {exc}", file=sys.stderr)
            return 2
        stats.save()
        print(f"seeded {seeded} observation(s) from {args.seed_stats}")

    solver = AnytimeMetaSolver(config)
    solution = solver.solve(workload, deadline_ms=args.deadline_ms)
    try:
        check_incumbent_trace(solver._as_instance(workload, None), solver.last_trace)
    except CertificateError as exc:
        print(f"INCUMBENT TRACE FAILED: {exc}", file=sys.stderr)
        return 2

    slo = solution.meta["slo"]
    deadline = "inf" if args.deadline_ms is None else f"{args.deadline_ms:g}ms"
    print(
        f"incumbent: utility={solution.utility:.4f} cost={solution.cost:.4f} "
        f"classifiers={len(solution.classifiers)} (certified, deadline {deadline})"
    )
    print(
        f"schedule:  tried={len(slo['arms_tried'])} "
        f"skipped={len(slo['arms_skipped'])} "
        f"updates={slo['incumbent_updates']} engine={slo['engine']}"
    )
    print(
        f"timing:    elapsed={slo['elapsed_ms']:.3f}ms "
        f"overrun={slo['overrun_ms']:.3f}ms "
        f"trace={len(solver.last_trace)} certified incumbent(s)"
    )
    for entry in slo["arms_tried"]:
        marker = "*" if entry["improved"] else " "
        flag = " TIMEOUT" if entry["timed_out"] else ""
        print(
            f"  {marker} {entry['arm']:<16} predicted={entry['predicted_ms']:8.3f}ms "
            f"actual={entry['actual_ms']:8.3f}ms utility={entry['utility']:.4f}{flag}"
        )
    for entry in slo["arms_skipped"]:
        print(
            f"    {entry['arm']:<16} predicted={entry['predicted_ms']:8.3f}ms skipped"
        )

    if args.json:
        payload = {
            "utility": solution.utility,
            "cost": solution.cost,
            "classifiers": sorted(solution.classifiers),
            "slo": slo,
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True, default=str)
            handle.write("\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
