"""Module entry point for ``python -m repro.slo``."""

import sys

from repro.slo.cli import main

sys.exit(main())
