"""A cheap, deterministic runtime model: ridge regression on log-runtime.

The model behind :meth:`~repro.slo.stats.ArmStatsStore.predict_runtime`.
Design constraints, in order:

1. **Deterministic.**  Same observations in, same coefficients out — the
   fit is a closed-form ridge solve (normal equations + Gaussian
   elimination with partial pivoting) in pure Python, no RNG, no
   iteration-order dependence, no numpy requirement (serial-fallback
   safe: the model works in a container with nothing but the stdlib).
2. **Never negative.**  The target is ``log`` runtime, the prediction is
   ``exp`` of the fit — positive by construction.
3. **Monotone in size features.**  After the ridge solve, negative
   weights are clamped to zero and the intercept is re-centred on the
   residual mean.  Features are ``log1p`` of counts
   (:mod:`repro.slo.features`), so predictions never decrease when an
   instance grows.  Clamping costs a little fit quality on weird data
   and buys a hard invariant the scheduler can rely on.

Degradation ladder (cheapest data requirement last):

- ``>= MIN_FIT_OBSERVATIONS`` points: the ridge fit;
- ``>= 1`` point: the geometric mean of observed runtimes;
- no data: the caller's fallback (the registry tier prior).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.slo.features import FEATURE_NAMES, FeatureVector

#: Below this many observations a per-arm geometric mean beats a fit.
MIN_FIT_OBSERVATIONS = 8

#: Ridge penalty — small, just enough to keep the normal equations
#: well-conditioned on nearly-collinear size features.
RIDGE_LAMBDA = 1e-3

#: Floor for observed runtimes before taking logs (cache hits and
#: virtual-clock runs can legitimately record ~0 seconds).
MIN_SECONDS = 1e-7


def _solve_linear(matrix: List[List[float]], rhs: List[float]) -> List[float]:
    """Gaussian elimination with partial pivoting (deterministic, tiny d)."""
    n = len(rhs)
    a = [row[:] + [rhs[i]] for i, row in enumerate(matrix)]
    for col in range(n):
        pivot = max(range(col, n), key=lambda r: abs(a[r][col]))
        if abs(a[pivot][col]) < 1e-30:
            raise ArithmeticError("singular normal-equations matrix")
        a[col], a[pivot] = a[pivot], a[col]
        inv = 1.0 / a[col][col]
        for r in range(col + 1, n):
            factor = a[r][col] * inv
            if factor == 0.0:
                continue
            for c in range(col, n + 1):
                a[r][c] -= factor * a[col][c]
    x = [0.0] * n
    for row in range(n - 1, -1, -1):
        acc = a[row][n] - sum(a[row][c] * x[c] for c in range(row + 1, n))
        x[row] = acc / a[row][row]
    return x


def _log_seconds(seconds: float) -> float:
    return math.log(max(float(seconds), MIN_SECONDS))


@dataclass(frozen=True)
class CostModel:
    """A fitted predictor: ``exp(intercept + weights · features)``.

    ``weights`` are all ``>= 0`` (monotonicity clamp); ``observations``
    records how many points the fit consumed, which the store uses to
    decide when a refit is due.
    """

    intercept: float
    weights: Tuple[float, ...]
    observations: int

    def predict_seconds(self, features: FeatureVector) -> float:
        if len(features) != len(self.weights):
            raise ValueError(
                f"expected {len(self.weights)} features, got {len(features)}"
            )
        exponent = self.intercept + sum(
            w * f for w, f in zip(self.weights, features)
        )
        # Cap the exponent: a degenerate fit must yield a huge-but-finite
        # prediction (the scheduler treats it as "never fits"), not inf.
        return math.exp(min(exponent, 60.0))


def fit_cost_model(
    samples: Sequence[Tuple[FeatureVector, float]],
) -> Optional[CostModel]:
    """Fit the runtime model on ``(features, seconds)`` observations.

    Returns None on an empty sample (caller falls back to its prior).
    Below :data:`MIN_FIT_OBSERVATIONS` points the model is the geometric
    mean of the observed runtimes (all weights zero — trivially monotone).
    """
    if not samples:
        return None
    logs = [_log_seconds(seconds) for _, seconds in samples]
    n = len(samples)
    d = len(FEATURE_NAMES)
    if n < MIN_FIT_OBSERVATIONS:
        return CostModel(
            intercept=sum(logs) / n, weights=(0.0,) * d, observations=n
        )

    # Ridge normal equations over [1, features]; the intercept column is
    # not penalized.
    dim = d + 1
    xtx = [[0.0] * dim for _ in range(dim)]
    xty = [0.0] * dim
    for (features, _), y in zip(samples, logs):
        row = (1.0,) + tuple(float(f) for f in features)
        if len(row) != dim:
            raise ValueError(
                f"expected {d} features, got {len(row) - 1}"
            )
        for i in range(dim):
            xty[i] += row[i] * y
            for j in range(dim):
                xtx[i][j] += row[i] * row[j]
    for i in range(1, dim):
        xtx[i][i] += RIDGE_LAMBDA * n
    try:
        coeffs = _solve_linear(xtx, xty)
    except ArithmeticError:
        return CostModel(
            intercept=sum(logs) / n, weights=(0.0,) * d, observations=n
        )

    # Monotonicity clamp: zero out negative weights, then re-centre the
    # intercept so the clamped model stays unbiased on the sample.
    weights = tuple(max(0.0, w) for w in coeffs[1:])
    mean_feature = [
        sum(sample[0][i] for sample in samples) / n for i in range(d)
    ]
    intercept = sum(logs) / n - sum(
        w * f for w, f in zip(weights, mean_feature)
    )
    return CostModel(intercept=intercept, weights=weights, observations=n)
