"""The arm-stats store: per-arm runtime/utility observations, versioned.

One JSON file — by default ``.repro-arm-stats.json``, next to the
``.repro-cache/`` result cache (override with ``REPRO_ARM_STATS``; pass
``path=None`` for a purely in-memory store) — holding every recorded
``(arm, engine) → [(features, seconds, utility), ...]`` observation.

Callers go through the interface, never the schema: ``record()`` to add
an observation, ``predict_runtime()`` for a runtime estimate,
``observation_count()`` for telemetry.  The file layout is private and
guarded by :data:`STATS_VERSION` — a version bump, a corrupt file or a
missing file all degrade identically to an *empty* store (predictions
fall back to the registry tier priors) instead of raising, because a
serving system must keep answering when its statistics are gone.  The
interflux budget-control review (SNIPPETS.md snippet 1) is the cautionary
tale here: its cost estimator coupled callers to a stats schema with no
version check, so schema drift broke them silently.

Prediction ladder (see :mod:`repro.slo.cost_model`):

1. enough observations for the arm+engine → the fitted cost model;
2. a few observations → geometric mean of observed runtimes;
3. none → the arm's registry cost-tier prior.

Models are refit *lazily*: a fitted model is reused until the
observation count for its key has grown past
:data:`REFIT_GROWTH_FACTOR`, so recording stays O(1) and prediction
amortizes the fit.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.parallel.registry import TIER_PRIOR_SECONDS, solver_tier
from repro.slo.cost_model import CostModel, fit_cost_model
from repro.slo.features import FEATURE_NAMES, FeatureVector

#: Bump when the on-disk layout changes; stale files load as empty.
STATS_VERSION = 1

DEFAULT_STATS_FILE = ".repro-arm-stats.json"

#: Per-(arm, engine) observation cap: oldest entries roll off so the
#: store — and every fit — stays bounded no matter how long it serves.
MAX_OBSERVATIONS_PER_KEY = 256

#: Refit once observations grow by this factor since the last fit.
REFIT_GROWTH_FACTOR = 1.25

_Key = Tuple[str, str]  # (arm, engine)


@dataclass
class StoreStats:
    """Telemetry counters for one store handle."""

    recorded: int = 0
    fits: int = 0
    discarded_files: int = 0


@dataclass
class ArmStatsStore:
    """Versioned observation store with a :meth:`predict_runtime` interface.

    Attributes:
        path: backing JSON file, or None for an in-memory store (tests,
            figures — anything that must not see another run's history).
        stats: counters for this handle (not persisted).
    """

    path: Optional[Path] = field(default_factory=lambda: Path(DEFAULT_STATS_FILE))
    stats: StoreStats = field(default_factory=StoreStats)

    def __post_init__(self) -> None:
        self.path = Path(self.path) if self.path is not None else None
        self._observations: Dict[_Key, List[Tuple[FeatureVector, float, float]]] = {}
        self._models: Dict[_Key, CostModel] = {}
        self._dirty = False
        if self.path is not None:
            self._load()

    # ------------------------------------------------------------------
    # persistence (private schema)
    # ------------------------------------------------------------------
    def _load(self) -> None:
        try:
            payload = json.loads(self.path.read_text())
        except OSError:
            return  # no file yet: empty store
        except ValueError:
            self.stats.discarded_files += 1
            return  # corrupt: degrade to empty, never raise
        if not isinstance(payload, dict) or payload.get("version") != STATS_VERSION:
            self.stats.discarded_files += 1
            return  # version bump: old observations are not trusted
        try:
            for arm, engines in payload["observations"].items():
                for engine, rows in engines.items():
                    parsed = []
                    for row in rows[-MAX_OBSERVATIONS_PER_KEY:]:
                        features = tuple(float(f) for f in row[0])
                        if len(features) != len(FEATURE_NAMES):
                            raise ValueError("feature arity mismatch")
                        parsed.append((features, float(row[1]), float(row[2])))
                    self._observations[(str(arm), str(engine))] = parsed
        except (KeyError, TypeError, ValueError, IndexError, AttributeError):
            self._observations.clear()
            self.stats.discarded_files += 1

    def save(self) -> None:
        """Persist to :attr:`path` atomically (no-op for in-memory stores)."""
        if self.path is None or not self._dirty:
            return
        observations: Dict[str, Dict[str, list]] = {}
        for (arm, engine), rows in sorted(self._observations.items()):
            observations.setdefault(arm, {})[engine] = [
                [list(features), seconds, utility]
                for features, seconds, utility in rows
            ]
        payload = {"version": STATS_VERSION, "observations": observations}
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True))
        os.replace(tmp, self.path)
        self._dirty = False

    # ------------------------------------------------------------------
    # the caller-facing interface
    # ------------------------------------------------------------------
    def record(
        self,
        arm: str,
        engine: str,
        features: FeatureVector,
        seconds: float,
        utility: float,
    ) -> None:
        """Record one observed solve (runtime + achieved utility)."""
        if len(features) != len(FEATURE_NAMES):
            raise ValueError(
                f"expected {len(FEATURE_NAMES)} features, got {len(features)}"
            )
        if seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {seconds}")
        rows = self._observations.setdefault((arm, engine), [])
        rows.append((tuple(float(f) for f in features), float(seconds), float(utility)))
        if len(rows) > MAX_OBSERVATIONS_PER_KEY:
            del rows[: len(rows) - MAX_OBSERVATIONS_PER_KEY]
        self.stats.recorded += 1
        self._dirty = True

    def observation_count(self, arm: str, engine: str) -> int:
        return len(self._observations.get((arm, engine), ()))

    def total_observations(self) -> int:
        return sum(len(rows) for rows in self._observations.values())

    def _model_for(self, key: _Key) -> Optional[CostModel]:
        rows = self._observations.get(key)
        if not rows:
            return None
        model = self._models.get(key)
        if model is not None and len(rows) < model.observations * REFIT_GROWTH_FACTOR:
            return model
        model = fit_cost_model([(features, seconds) for features, seconds, _ in rows])
        assert model is not None  # rows is non-empty
        self._models[key] = model
        self.stats.fits += 1
        return model

    def predict_runtime(
        self, arm: str, features: FeatureVector, engine: str
    ) -> float:
        """Predicted wall seconds for ``arm`` on an instance with ``features``.

        Always finite and positive; never raises for unknown arms that
        are registered solvers (their tier prior answers).
        """
        model = self._model_for((arm, engine))
        if model is not None:
            return model.predict_seconds(features)
        return TIER_PRIOR_SECONDS[solver_tier(arm)]


def seed_store_from_bench(store: ArmStatsStore, bench_path: Path) -> int:
    """Seed ``store`` from a benchmark file's ``arm_observations`` rows.

    The hotpath benchmark (``benchmarks/bench_hotpath.py`` →
    ``BENCH_hotpath.json``) records every timed end-to-end solve as an
    ``{"arm", "engine", "features", "seconds", "utility"}`` row; replaying
    those into the store makes :class:`~repro.slo.meta.AnytimeMetaSolver`
    schedules reflect *post-optimization* runtimes instead of stale priors
    the moment a kernel change lands.  Returns the number of observations
    recorded.  Raises :class:`ValueError` for a missing/malformed file —
    unlike background store loads, seeding is an explicit operator action
    and silent degradation would hide a bad path.
    """
    bench_path = Path(bench_path)
    try:
        payload = json.loads(bench_path.read_text())
    except OSError as exc:
        raise ValueError(f"cannot read benchmark file {bench_path}: {exc}") from exc
    except ValueError as exc:
        raise ValueError(f"benchmark file {bench_path} is not JSON: {exc}") from exc
    rows = payload.get("arm_observations") if isinstance(payload, dict) else None
    if not isinstance(rows, list):
        raise ValueError(
            f"benchmark file {bench_path} has no 'arm_observations' list; "
            "re-run benchmarks/bench_hotpath.py to produce one"
        )
    seeded = 0
    for row in rows:
        try:
            store.record(
                str(row["arm"]),
                str(row["engine"]),
                tuple(float(f) for f in row["features"]),
                float(row["seconds"]),
                float(row["utility"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(
                f"malformed arm_observations row in {bench_path}: {row!r} ({exc})"
            ) from exc
        seeded += 1
    return seeded


def default_stats_store(path: Optional[str] = None) -> ArmStatsStore:
    """The environment-configured store (``REPRO_ARM_STATS`` overrides).

    Lives next to ``.repro-cache/`` by default so one serving directory
    carries both its result cache and its runtime statistics.
    """
    root = path or os.environ.get("REPRO_ARM_STATS", DEFAULT_STATS_FILE)
    return ArmStatsStore(path=Path(root))
