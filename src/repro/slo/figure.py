"""The ``figslo`` figure: incumbent quality vs deadline.

Sweeps the meta-solver over a deadline grid on a fragmented corpus
workload and plots the certified incumbent's utility at each point,
against the full-portfolio best as the horizontal reference.  The run is
fully deterministic: a :class:`~repro.parallel.clock.VirtualClock`
simulates each arm's runtime as its own predicted cost (the registry
tier priors of a fresh in-memory store), so the schedule — and hence
every row — is a pure function of scale and seed, independent of
machine speed or ``jobs``.  That is what lets the serial-vs-parallel
equality harness in ``tests/test_parallel.py`` compare the figure's
values bit for bit.
"""

from __future__ import annotations

from typing import Optional

from repro.datasets import generate_fragmented
from repro.experiments.runner import FigureResult
from repro.experiments.scales import SMALL, Scale
from repro.parallel.clock import VirtualClock
from repro.parallel.pool import ParallelConfig
from repro.slo.meta import AnytimeMetaSolver, SloConfig
from repro.slo.stats import ArmStatsStore

#: Simulated-time deadline grid (ms).  None = unbounded reference point.
DEADLINES_MS = (0.0, 5.0, 20.0, 60.0, 200.0, None)


def figslo(
    scale: Scale = SMALL, seed: int = 0, parallel: Optional[ParallelConfig] = None
) -> FigureResult:
    """Certified incumbent utility as a function of the deadline."""
    components = {"micro": 4, "tiny": 8, "small": 12}.get(scale.name, 20)
    base = generate_fragmented(
        n_components=components,
        queries_per_component=6,
        budget=150.0 * components,
        seed=seed,
    )
    result = FigureResult(
        figure="figslo",
        title="Anytime SLO meta-solver: incumbent utility vs deadline",
        x_label="deadline (simulated ms)",
        value_label="certified incumbent utility",
    )
    result.notes.append(
        f"workload: {components} components x 6 queries, virtual clock"
    )
    for deadline_ms in DEADLINES_MS:
        stats = ArmStatsStore(path=None)
        clock = VirtualClock(
            task_seconds=lambda task, s=stats: s.predict_runtime(
                task.solver, (0.0,) * 7, "virtual"
            )
        )
        solver = AnytimeMetaSolver(
            SloConfig(stats=stats, clock=clock, record=False)
        )
        solution = solver.solve(base, deadline_ms=deadline_ms)
        slo = solution.meta["slo"]
        x = "inf" if deadline_ms is None else deadline_ms
        result.add(
            x,
            "anytime incumbent",
            solution.utility,
            solution.meta["slo"]["elapsed_ms"] / 1000.0,
            arms_tried=len(slo["arms_tried"]),
            arms_skipped=len(slo["arms_skipped"]),
            solution=solution,
        )
    return result
