"""Instance fingerprint features for the arm cost model.

A runtime prediction is only transferable between instances if the
instances are described the same way, so this module is the single
definition of the feature vector: a fixed-order tuple of non-negative
floats derived from the workload's *size* — query count, property-universe
size, plan-length histogram, shard count.  Two deliberate properties:

- **Monotone in size.**  Every feature is a ``log1p`` of a count, so
  growing the instance never shrinks any feature.  The cost model clamps
  its weights to be non-negative, and the composition guarantees the
  predicted runtime is monotone in instance size — a bigger workload is
  never predicted to finish faster (see ``tests/test_slo.py``).
- **Engine-free.**  The engine is a *store key*, not a feature: the same
  instance compiles to very different kernels under ``sets``/``bits``/
  ``matrix``, so observations are recorded per engine and a prediction
  only ever mixes observations from one engine.
"""

from __future__ import annotations

import math
from typing import Dict, Tuple

from repro.core.model import ClassifierWorkload

#: Fixed feature order — the store serializes vectors positionally.
FEATURE_NAMES: Tuple[str, ...] = (
    "log_queries",
    "log_properties",
    "log_len1",
    "log_len2",
    "log_len3",
    "log_len4p",
    "log_shards",
)

FeatureVector = Tuple[float, ...]


def features_from_counts(
    n_queries: int,
    n_properties: int,
    len1: int,
    len2: int,
    len3: int,
    len4p: int,
    n_shards: int,
) -> FeatureVector:
    """The feature vector for explicit size counts (all must be >= 0).

    Shared by :func:`instance_features` and the hypothesis strategies, so
    fuzzed vectors are exactly the vectors real workloads produce.
    """
    counts = (n_queries, n_properties, len1, len2, len3, len4p, n_shards)
    for name, count in zip(FEATURE_NAMES, counts):
        if count < 0:
            raise ValueError(f"{name} count must be >= 0, got {count}")
    return tuple(math.log1p(float(count)) for count in counts)


def instance_features(workload: ClassifierWorkload) -> FeatureVector:
    """The fingerprint feature vector of ``workload``.

    ``|Q|``, ``|P|``, the plan-length histogram bucketed at 1/2/3/4+, and
    the number of independent shards of the decomposition partition —
    the shard count is what separates "one huge coupled component" from
    "many small independent ones" at equal ``|Q|``, and those solve at
    very different speeds through the sharded arms.
    """
    from repro.decompose.partition import partition_workload

    buckets = [0, 0, 0, 0]
    for query in workload.queries:
        buckets[min(len(query), 4) - 1] += 1
    return features_from_counts(
        workload.num_queries,
        len(workload.properties),
        buckets[0],
        buckets[1],
        buckets[2],
        buckets[3],
        len(partition_workload(workload).shards),
    )


def features_as_dict(vector: FeatureVector) -> Dict[str, float]:
    """Name→value view of a feature vector (telemetry and debugging)."""
    if len(vector) != len(FEATURE_NAMES):
        raise ValueError(
            f"expected {len(FEATURE_NAMES)} features, got {len(vector)}"
        )
    return dict(zip(FEATURE_NAMES, vector))
