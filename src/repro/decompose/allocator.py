"""Budget allocation across shards: candidate grids and exact recombination.

Each shard is solved over a grid of candidate budgets; the resulting
(cost, utility) profile points — actual spends, not grid points — feed a
multiple-choice knapsack that picks one point per shard maximizing total
utility within the global budget.  The recombination is *provably optimal
relative to the per-shard solutions it is given*: the grouped DP
(:func:`repro.knapsack.solvers.solve_knapsack_grouped`) is exact for
(near-)integral costs, and the pareto-merge fallback is exact for
arbitrary float costs up to the documented frontier cap.

Grid construction ("every reachable shard cost point, capped"): the
reachable spends of a shard are the subset sums of its finite classifier
costs, truncated at ``min(B, shard total)``.  Enumeration stops at
``max_sums`` distinct sums (dense-cost regime), falling back to an even
fractional grid; either way the grid is downsampled to ``max_points``
budgets keeping the 0 and top points, so per-shard work is bounded no
matter how rich the cost structure is.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.knapsack.items import KnapsackItem
from repro.knapsack.solvers import solve_knapsack_grouped

_TOL = 1e-9

#: Stop enumerating subset sums past this many distinct points.
MAX_SUBSET_SUMS = 4096
#: Frontier cap of the pareto-merge fallback; beyond it, costs are
#: bucketed (keep the best utility per bucket), trading exactness for a
#: bounded merge — reached only on pathological float-cost workloads.
MAX_FRONTIER = 100_000


@dataclass(frozen=True)
class ProfilePoint:
    """One solved shard budget point: actual spend, achieved utility."""

    cost: float
    utility: float
    key: str  #: task key of the producing solve (recovers the solution)


def budget_grid(
    costs: Sequence[float], budget: float, max_points: int = 12
) -> List[float]:
    """Candidate budgets for one shard: reachable cost points, capped.

    ``costs`` are the shard's finite classifier costs.  Returns a sorted,
    deduplicated grid that always contains ``0`` and the top point
    ``min(budget, sum(costs))`` and has at most ``max_points`` entries
    (evenly downsampled by rank when the reachable set is larger).
    """
    if max_points < 2:
        raise ValueError(f"max_points must be >= 2, got {max_points}")
    top = min(budget, sum(costs))
    if top <= _TOL:
        return [0.0]
    sums = {0.0}
    truncated = False
    for cost in sorted(costs):
        if cost <= 0:
            continue
        additions = {
            round(total + cost, 9)
            for total in sums
            if total + cost <= top + _TOL
        }
        sums |= additions
        if len(sums) > MAX_SUBSET_SUMS:
            truncated = True
            break
    if truncated:
        points = sorted({round(top * k / max_points, 9) for k in range(max_points + 1)})
    else:
        points = sorted(sums)
    if points[-1] < top - _TOL:
        points.append(top)
    if len(points) > max_points:
        # Even downsample by rank, pinning the first (0) and last (top).
        last = len(points) - 1
        indexes = sorted({round(last * k / (max_points - 1)) for k in range(max_points)})
        points = [points[i] for i in indexes]
    return points


def pareto_profile(points: Sequence[ProfilePoint]) -> List[ProfilePoint]:
    """Dominance-pruned profile: ascending cost, strictly ascending utility.

    Among equal-cost points the best utility survives; a point must
    strictly improve on every cheaper point's utility to stay.  Ties are
    broken by task key so the profile is deterministic.
    """
    frontier: List[ProfilePoint] = []
    best = -1.0
    for point in sorted(points, key=lambda p: (p.cost, -p.utility, p.key)):
        if point.utility > best + _TOL:
            frontier.append(point)
            best = point.utility
    return frontier


def _bucketed(
    frontier: List[Tuple[float, float, tuple]], budget: float, cap: int
) -> List[Tuple[float, float, tuple]]:
    """Keep the best-utility entry per cost bucket (lossy merge bound)."""
    width = max(budget, _TOL) / cap
    best: dict = {}
    for entry in frontier:
        bucket = int(entry[0] / width)
        kept = best.get(bucket)
        if kept is None or entry[1] > kept[1]:
            best[bucket] = entry
    return sorted(best.values(), key=lambda e: e[0])


def _pareto_allocate(
    profiles: Sequence[Sequence[ProfilePoint]], budget: float
) -> Tuple[float, List[Optional[ProfilePoint]]]:
    """Exact float-cost recombination by pareto-frontier merging.

    The frontier after shard ``i`` holds every non-dominated
    (cost, utility, choices) reachable from the first ``i`` profiles
    within ``budget``; merging is exact unless the frontier exceeds
    :data:`MAX_FRONTIER`, where cost bucketing bounds it (documented
    approximation, only reachable with dense irrational cost mixes).
    """
    frontier: List[Tuple[float, float, tuple]] = [(0.0, 0.0, ())]
    for points in profiles:
        candidates: List[Tuple[float, float, tuple]] = []
        for cost, utility, choices in frontier:
            candidates.append((cost, utility, choices + (None,)))
            for point in points:
                total = cost + point.cost
                if total <= budget + _TOL:
                    candidates.append((total, utility + point.utility, choices + (point,)))
        candidates.sort(key=lambda e: (e[0], -e[1]))
        merged: List[Tuple[float, float, tuple]] = []
        best = -1.0
        for entry in candidates:
            if entry[1] > best + _TOL:
                merged.append(entry)
                best = entry[1]
        if len(merged) > MAX_FRONTIER:
            merged = _bucketed(merged, budget, MAX_FRONTIER)
        frontier = merged
    _, utility, choices = max(frontier, key=lambda e: (e[1], -e[0]))
    return utility, list(choices)


def allocate(
    profiles: Sequence[Sequence[ProfilePoint]], budget: float
) -> Tuple[float, List[Optional[ProfilePoint]], str]:
    """Pick one profile point per shard maximizing utility within ``budget``.

    Tries the exact grouped knapsack DP first (integral costs — every
    corpus and dataset in this repo); falls back to the exact pareto
    merge for float costs.  Returns ``(utility, chosen point or None per
    shard, path)`` where ``path`` names the recombination that ran.
    """
    pruned = [pareto_profile(points) for points in profiles]
    groups = [
        [
            KnapsackItem(key=(shard, index), weight=point.cost, value=point.utility)
            for index, point in enumerate(points)
        ]
        for shard, points in enumerate(pruned)
    ]
    try:
        value, chosen_items = solve_knapsack_grouped(groups, budget)
    except ValueError:
        utility, chosen = _pareto_allocate(pruned, budget)
        return utility, chosen, "pareto-merge"
    chosen: List[Optional[ProfilePoint]] = []
    for shard, item in enumerate(chosen_items):
        if item is None:
            chosen.append(None)
        else:
            chosen.append(pruned[shard][item.key[1]])
    return float(value), chosen, "grouped-dp"
