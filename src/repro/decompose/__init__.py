"""Workload decomposition: shard BCC instances, solve shards in parallel.

A BCC instance decomposes exactly along connected components of the
"shares a usable classifier" relation on ``Q``: a classifier ``c`` only
helps cover queries ``q ⊇ c``, so components never interact except
through the shared budget.  This package computes that partition
(:func:`partition_workload`), solves each shard over a capped grid of
candidate budgets through the parallel task layer, and recombines the
per-shard profiles with an exact multiple-choice knapsack
(:mod:`repro.decompose.allocator`) — see
:func:`solve_bcc_sharded` and the "Workload decomposition & sharded
solving" section of ``docs/ALGORITHMS.md``.
"""

from repro.decompose.allocator import (
    ProfilePoint,
    allocate,
    budget_grid,
    pareto_profile,
)
from repro.decompose.partition import WorkloadPartition, partition_workload
from repro.decompose.solver import ShardedConfig, solve_bcc_sharded

__all__ = [
    "WorkloadPartition",
    "partition_workload",
    "ProfilePoint",
    "budget_grid",
    "pareto_profile",
    "allocate",
    "ShardedConfig",
    "solve_bcc_sharded",
]
