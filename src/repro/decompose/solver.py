"""``solve_bcc_sharded`` — decompose, solve shards in parallel, recombine.

The pipeline:

1. :func:`~repro.decompose.partition.partition_workload` shards the
   instance along the shared-usable-classifier relation (a single shard
   degrades to the monolithic solver with only the partition's linear
   scan as overhead);
2. every shard is solved over its candidate budget grid through
   :func:`repro.parallel.pool.run_tasks` — one
   :class:`~repro.parallel.pool.SolveTask` per (shard, budget point) with
   a :func:`~repro.parallel.seeding.seed_for`-derived seed and, when a
   cache is attached, a per-shard fingerprint cache entry (shards of
   recurring workloads hit across *different* global budgets, since the
   shard instance, not the parent, is the cache key);
3. the allocator picks one solved point per shard — exactly optimal
   relative to the per-shard solutions — and the union selection is
   re-scored from first principles by :func:`~repro.core.solution.evaluate`.

Exactness conditions: when the global budget is non-binding (it covers
every shard's total finite classifier cost) each shard is solved once at
its own saturation budget and the recombination is tension-free, so the
result equals the monolithic solve's utility; under a binding budget the
result is optimal over the grid of per-shard solutions (and ≥ any single
allocation the grid contains).  Cross-shard totals are checked after
re-scoring and a :class:`~repro.core.errors.DecompositionError` is raised
on any disagreement — shards leaking utility or cost into each other
cannot go unnoticed.
"""

from __future__ import annotations

import math
import os
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Set

from repro.core.errors import DecompositionError
from repro.core.model import BCCInstance, Classifier
from repro.core.solution import Solution, evaluate
from repro.decompose.allocator import ProfilePoint, allocate, budget_grid
from repro.decompose.partition import WorkloadPartition, partition_workload
from repro.parallel.cache import ResultCache
from repro.parallel.pool import ParallelConfig, SolveTask, TaskResult, resolve_jobs, run_tasks
from repro.parallel.seeding import seed_for

_TOL = 1e-9

#: Below this many queries a shard solve is cheaper than shipping it to a
#: worker process, so batches made only of such shards run in-process.
TINY_SHARD_QUERIES = 16


def effective_jobs(jobs: Optional[int], tasks: Sequence[SolveTask]) -> int:
    """Worker count actually worth using for this batch.

    ``resolve_jobs`` answers what the caller *allows*; this clamps it by
    what the machine and the batch can *use*: never more workers than
    CPUs or tasks, and serial when every task is tiny (fork + pickle
    overhead dwarfs a sub-millisecond shard solve — the cold fan-out
    regression of BENCH_decompose on single-CPU hosts).
    """
    allowed = resolve_jobs(jobs)
    allowed = min(allowed, os.cpu_count() or 1, max(1, len(tasks)))
    if allowed > 1 and all(
        task.instance.num_queries < TINY_SHARD_QUERIES for task in tasks
    ):
        return 1
    return allowed


@dataclass
class ShardedConfig:
    """Tuning knobs for :func:`solve_bcc_sharded`.

    Attributes:
        inner_solver: registry name of the per-shard solver (any entry of
            :mod:`repro.parallel.registry`; defaults to ``A^BCC``).
        max_grid_points: per-shard budget-grid cap under a binding budget
            (see :func:`~repro.decompose.allocator.budget_grid`).
        jobs: worker processes for the shard fan-out; ``None`` defers to
            ``REPRO_JOBS``.  Keep at 1 when the caller itself runs inside
            a process pool.
        cache: optional :class:`~repro.parallel.cache.ResultCache`; shard
            solves are cached under per-shard instance fingerprints.
    """

    inner_solver: str = "abcc"
    max_grid_points: int = 12
    jobs: Optional[int] = None
    cache: Optional[ResultCache] = field(default=None, repr=False)


def _shard_finite_total(shard: BCCInstance) -> float:
    """Sum of the shard's finite relevant-classifier costs (its saturation
    budget: no shard solution can usefully spend more)."""
    return float(
        sum(
            cost
            for cost in (shard.cost(c) for c in shard.relevant_classifiers())
            if not math.isinf(cost)
        )
    )


def solve_bcc_sharded(
    instance: BCCInstance,
    config: Optional[ShardedConfig] = None,
    certify: bool = False,
    seed: Optional[int] = None,
) -> Solution:
    """Solve ``instance`` by decomposition into independent shards.

    Drop-in alternative to :func:`~repro.algorithms.bcc.solve_bcc`: same
    signature shape, same certification contract (with ``certify`` the
    per-shard certificates are composed into one instance-level
    certificate, verified against the undecomposed instance, and recorded
    in ``solution.meta["certificate"]``).  ``seed`` feeds the per-shard
    derived seeds of randomized inner solvers; deterministic inner
    solvers ignore it.
    """
    config = config or ShardedConfig()
    started = time.perf_counter()

    partition = partition_workload(instance)
    if partition.num_shards == 1:
        return _monolithic_fallback(instance, partition, config, certify, seed, started)

    shards = [
        partition.shard_instance(index, 0.0) for index in range(partition.num_shards)
    ]
    totals = [_shard_finite_total(shard) for shard in shards]

    budget = instance.budget
    if sum(totals) <= budget + _TOL:
        # Non-binding budget: each shard saturates independently, the
        # recombination is tension-free, and the union is exact relative
        # to the inner solver (equal to the monolithic solve's utility).
        # Shards are solved at the *global* budget, not their saturation
        # total: a shard cannot usefully spend past its total either way,
        # but the surplus slack keeps the inner solver on the same cheap
        # large-budget paths the monolithic solve takes (solving at the
        # exact saturation point forced the hard mid-k HkS regime on
        # every shard — the cold fan-out regression of BENCH_decompose).
        grids = [
            [budget if math.isfinite(budget) else total] for total in totals
        ]
        path_hint = "non-binding"
    else:
        grids = [
            budget_grid(
                _finite_costs(shard), budget, max_points=config.max_grid_points
            )
            for shard in shards
        ]
        path_hint = None

    tasks: List[SolveTask] = []
    for index, (shard, grid) in enumerate(zip(shards, grids)):
        for point in grid:
            tasks.append(
                SolveTask(
                    key=f"s{index}/b={point!r}",
                    solver=config.inner_solver,
                    instance=shard.with_budget(point),
                    seed=seed_for("sharded", config.inner_solver, seed, index, float(point)),
                    certify=certify,
                )
            )
    jobs = effective_jobs(config.jobs, tasks)
    results = run_tasks(
        tasks, ParallelConfig(jobs=jobs, cache=config.cache)
    )
    by_key: Dict[str, TaskResult] = {result.key: result for result in results}

    profiles: List[List[ProfilePoint]] = []
    for index, grid in enumerate(grids):
        profiles.append(
            [
                ProfilePoint(
                    cost=by_key[f"s{index}/b={point!r}"].solution.cost,
                    utility=by_key[f"s{index}/b={point!r}"].solution.utility,
                    key=f"s{index}/b={point!r}",
                )
                for point in grid
            ]
        )

    if path_hint is None:
        allocated_utility, chosen, path = allocate(profiles, budget)
    else:
        # Non-binding: the allocation is trivially "every shard's single
        # saturation point" — the grouped-knapsack DP would grind through
        # the full budget for the same answer.
        chosen = [points[0] if points else None for points in profiles]
        allocated_utility = sum(
            point.utility for point in chosen if point is not None
        )
        path = path_hint

    selection: Set[Classifier] = set()
    shard_spends: List[float] = []
    chosen_solutions: List[Optional[Solution]] = []
    for point in chosen:
        if point is None:
            shard_spends.append(0.0)
            chosen_solutions.append(None)
            continue
        solution = by_key[point.key].solution
        selection.update(solution.classifiers)
        shard_spends.append(solution.cost)
        chosen_solutions.append(solution)

    solution = evaluate(
        instance,
        selection,
        meta={
            "algorithm": "A^BCC[sharded]",
            "inner_solver": config.inner_solver,
            "decompose": {
                "shards": partition.num_shards,
                "jobs": jobs,
                "path": path,
                "grid_sizes": [len(grid) for grid in grids],
                "shard_budgets": [
                    None if point is None else point.cost for point in chosen
                ],
                "dead_properties": len(partition.dead_properties),
                "cache_hits": sum(1 for result in results if result.cached),
                "tasks": len(tasks),
            },
            "runtime_sec": time.perf_counter() - started,
        },
    )
    _check_composition(solution, allocated_utility, shard_spends, chosen)

    if certify:
        _certify_composed(instance, solution, chosen_solutions)
    return solution


def _finite_costs(shard: BCCInstance) -> List[float]:
    return [
        cost
        for cost in (shard.cost(c) for c in shard.relevant_classifiers())
        if not math.isinf(cost)
    ]


def _monolithic_fallback(
    instance: BCCInstance,
    partition: WorkloadPartition,
    config: ShardedConfig,
    certify: bool,
    seed: Optional[int],
    started: float,
) -> Solution:
    """Single shard: run the inner solver on the whole instance directly."""
    from repro.parallel.registry import get_solver

    inner = get_solver(config.inner_solver)
    solution = inner(instance, seed, certify)
    meta = dict(solution.meta)
    meta["decompose"] = {
        "shards": 1,
        "path": "monolithic-fallback",
        "dead_properties": len(partition.dead_properties),
    }
    meta["runtime_sec"] = time.perf_counter() - started
    return replace(solution, meta=meta)


def _check_composition(
    solution: Solution,
    allocated_utility: float,
    shard_spends: List[float],
    chosen: List[Optional[ProfilePoint]],
) -> None:
    """First-principles totals must equal the recombined shard totals."""
    expected_utility = sum(point.utility for point in chosen if point is not None)
    expected_cost = sum(shard_spends)
    scale = max(1.0, abs(expected_utility), abs(solution.utility))
    if abs(solution.utility - expected_utility) > _TOL * scale:
        raise DecompositionError(
            f"recombined shard utility {expected_utility} disagrees with the "
            f"first-principles evaluation {solution.utility} — shards interact"
        )
    scale = max(1.0, abs(expected_cost), abs(solution.cost))
    if abs(solution.cost - expected_cost) > _TOL * scale:
        raise DecompositionError(
            f"recombined shard cost {expected_cost} disagrees with the "
            f"first-principles evaluation {solution.cost} — shards overlap"
        )
    scale = max(1.0, abs(allocated_utility))
    if abs(allocated_utility - expected_utility) > _TOL * scale:
        raise DecompositionError(
            f"allocator value {allocated_utility} disagrees with the chosen "
            f"profile points' utility {expected_utility}"
        )


def _certify_composed(
    instance: BCCInstance,
    solution: Solution,
    chosen_solutions: List[Optional[Solution]],
) -> None:
    """Compose shard certificates and verify against the whole instance."""
    from repro.verify.certificate import compose_certificates, verify_solution

    shard_certificates = [
        shard_solution.meta["certificate"]
        for shard_solution in chosen_solutions
        if shard_solution is not None and "certificate" in shard_solution.meta
    ]
    composed = compose_certificates(instance, shard_certificates)
    verify_solution(
        instance, solution, certificate=composed, budget=instance.budget
    )
    if isinstance(solution.meta, dict):
        solution.meta["certificate"] = composed
