"""Connected components of ``Q`` under shared-usable-classifier overlap.

A classifier ``c`` can only help cover queries ``q ⊇ c``, so two queries
interact iff some *usable* (finite-cost) classifier is a subset of both —
i.e. iff some non-empty subset of their intersection has finite cost.
Components of that relation never interact except through the shared
budget (PAPER.md §2–3), which is exactly what the sharded solver
exploits.

The partition computed here unions queries per shared property, walking
the workload's property→query inverted index (the ``CompiledWorkload``
``bit_queries`` table under the ``bits`` engine, a locally built name
index under ``sets`` — identical output either way).  A property is
skipped when *no* finite-cost relevant classifier tests it: such a
property can never appear in a selected classifier, hence never couples
two queries.  Property-sharing is otherwise a conservative superset of
the classifier relation (the shared singleton may itself be priced
infinite while a larger shared subset is finite, and over-merging is
always exact — it only forfeits parallelism, never correctness).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.core.bitset import MASK_ENGINES, active_engine
from repro.core.model import BCCInstance, ClassifierWorkload, Query


class _UnionFind:
    """Path-halving union-find over ``range(n)``."""

    __slots__ = ("parent",)

    def __init__(self, n: int) -> None:
        self.parent = list(range(n))

    def find(self, x: int) -> int:
        parent = self.parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            # Anchor to the smaller root so roots stay workload-ordered.
            if rb < ra:
                ra, rb = rb, ra
            self.parent[rb] = ra


def _property_usable(workload: ClassifierWorkload, prop: str) -> bool:
    """Whether any finite-cost relevant classifier tests ``prop``.

    Fast path: the singleton ``{prop}`` (relevant whenever the property
    occurs in a query) at finite cost.  Only when the singleton is
    explicitly priced infinite does the property→classifier index get
    consulted.
    """
    if not math.isinf(workload.cost(frozenset({prop}))):
        return True
    return any(
        not math.isinf(workload.cost(classifier))
        for classifier in workload.classifiers_containing_property(prop)
    )


@dataclass(frozen=True)
class WorkloadPartition:
    """The decomposition of a workload into independent shards.

    Attributes:
        workload: the partitioned workload.
        shards: per-shard query tuples; shards are ordered by their first
            query's workload position and queries within a shard keep
            workload order, so the partition is deterministic and
            engine-identical.
        query_to_shard: query → shard index.
        dead_properties: shared properties (appearing in two or more
            queries) that no finite-cost classifier tests — they never
            couple queries, so their overlap was ignored.  Properties
            appearing in a single query are never probed.
    """

    workload: ClassifierWorkload
    shards: Tuple[Tuple[Query, ...], ...]
    query_to_shard: Mapping[Query, int]
    dead_properties: Tuple[str, ...]

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def shard_workload(self, index: int) -> ClassifierWorkload:
        """The shard's sub-workload view (same class; budget preserved
        for :class:`~repro.core.model.BCCInstance` workloads)."""
        return self.workload.restrict(self.shards[index])

    def shard_instance(self, index: int, budget: float) -> BCCInstance:
        """The shard as a :class:`BCCInstance` at ``budget``."""
        view = self.shard_workload(index)
        if isinstance(view, BCCInstance):
            return view.with_budget(budget)
        return BCCInstance(
            view.queries,
            view._utilities,
            view._costs,
            budget=budget,
            default_utility=view.default_utility,
            default_cost=view.default_cost,
        )


def _property_rows(workload: ClassifierWorkload) -> List[Tuple[str, Sequence[int]]]:
    """(property, ascending query indexes) rows of the inverted index.

    Under ``bits`` this is the compiled workload's ``bit_queries`` table;
    under ``sets`` a locally built name index over the same workload
    order.  Rows are emitted in sorted property-name order either way
    (the bit layout *is* sorted name order), so union order — and hence
    the whole partition — is engine-identical.
    """
    if active_engine() in MASK_ENGINES:
        compiled = workload.compiled()
        names = compiled.space.names
        return [(names[bit], row) for bit, row in enumerate(compiled.bit_queries)]
    index: Dict[str, List[int]] = {}
    for position, query in enumerate(workload.queries):
        for prop in query:
            index.setdefault(prop, []).append(position)
    return [(prop, index[prop]) for prop in sorted(index)]


def partition_workload(workload: ClassifierWorkload) -> WorkloadPartition:
    """Partition ``workload.queries`` into independent shards.

    Linear in the total query size plus one usability probe per shared
    property; the probe touches the property→classifier index only for
    properties whose singleton is explicitly priced infinite.
    """
    queries = workload.queries
    uf = _UnionFind(len(queries))
    dead: List[str] = []
    for prop, row in _property_rows(workload):
        if len(row) < 2:
            continue
        if not _property_usable(workload, prop):
            dead.append(prop)
            continue
        first = row[0]
        for other in row[1:]:
            uf.union(first, other)

    members: Dict[int, List[int]] = {}
    order: List[int] = []
    for position in range(len(queries)):
        root = uf.find(position)
        if root not in members:
            members[root] = []
            order.append(root)
        members[root].append(position)

    shards = tuple(
        tuple(queries[position] for position in members[root]) for root in order
    )
    query_to_shard = {
        query: index for index, shard in enumerate(shards) for query in shard
    }
    return WorkloadPartition(
        workload=workload,
        shards=shards,
        query_to_shard=query_to_shard,
        dead_properties=tuple(sorted(dead)),
    )
