"""The named-solver registry the task layer executes against.

Tasks name solvers by string so they pickle cheaply across process
boundaries and fingerprint stably into cache keys.  Every entry is a
module-level callable with the uniform signature
``solver(instance, seed, certify) -> Solution``; deterministic solvers
ignore ``seed``, randomized ones must be pure functions of it (no shared
RNG — that is what keeps out-of-order parallel execution bit-identical
to the serial sweep).

Figure code refers to these names; registering a new solver makes it
available to every figure, to the corpus stress runner, and to the cache
without further plumbing.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.core.model import ClassifierWorkload
from repro.core.solution import Solution

SolverFn = Callable[[ClassifierWorkload, Optional[int], bool], Solution]

_SOLVERS: Dict[str, SolverFn] = {}
_TIERS: Dict[str, str] = {}

#: Coarse cost tiers, cheapest first.  A tier is a *prior*, not a
#: measurement: the SLO stats store falls back to the tier's prior
#: runtime (seconds) for arms it has never observed, and the meta-solver
#: breaks prediction ties by tier rank.  Observed runtimes always win.
COST_TIERS = ("cheap", "medium", "expensive")
TIER_RANK = {tier: rank for rank, tier in enumerate(COST_TIERS)}
TIER_PRIOR_SECONDS = {"cheap": 0.005, "medium": 0.05, "expensive": 0.5}


def register_solver(name: str, tier: str = "medium") -> Callable[[SolverFn], SolverFn]:
    """Register ``fn`` under ``name`` (also its cache-key identity).

    ``tier`` tags the arm's coarse expected cost (see :data:`COST_TIERS`)
    for budget-aware schedulers; it never affects what the solver does.
    """
    if tier not in TIER_RANK:
        raise ValueError(f"tier must be one of {COST_TIERS}, got {tier!r}")

    def decorator(fn: SolverFn) -> SolverFn:
        if name in _SOLVERS:
            raise ValueError(f"solver {name!r} already registered")
        _SOLVERS[name] = fn
        _TIERS[name] = tier
        return fn

    return decorator


def get_solver(name: str) -> SolverFn:
    if name not in _SOLVERS:
        raise KeyError(f"unknown solver {name!r}; known: {sorted(_SOLVERS)}")
    return _SOLVERS[name]


def solver_tier(name: str) -> str:
    """The registered cost tier of ``name`` (raises on unknown solvers)."""
    if name not in _TIERS:
        raise KeyError(f"unknown solver {name!r}; known: {sorted(_SOLVERS)}")
    return _TIERS[name]


def solver_names() -> list:
    return sorted(_SOLVERS)


# ----------------------------------------------------------------------
# default entries: the paper's algorithms and baselines
# ----------------------------------------------------------------------

@register_solver("abcc", tier="medium")
def _abcc(instance, seed=None, certify=False):
    from repro.algorithms import solve_bcc

    return solve_bcc(instance, certify=certify)


@register_solver("abcc-pruned", tier="medium")
def _abcc_pruned(instance, seed=None, certify=False):
    from repro.algorithms import AbccConfig, solve_bcc
    from repro.algorithms.pruning import PruningConfig

    return solve_bcc(instance, AbccConfig(pruning=PruningConfig.paper()), certify=certify)


@register_solver("abcc-unpruned", tier="expensive")
def _abcc_unpruned(instance, seed=None, certify=False):
    from repro.algorithms import AbccConfig, solve_bcc

    return solve_bcc(instance, AbccConfig(pruning=None), certify=certify)


@register_solver("bcc-exact", tier="expensive")
def _bcc_exact(instance, seed=None, certify=False):
    from repro.algorithms import solve_bcc_exact

    return solve_bcc_exact(instance, certify=certify)


@register_solver("rand-bcc", tier="cheap")
def _rand_bcc(instance, seed=None, certify=False):
    from repro.baselines import rand_bcc

    return rand_bcc(instance, seed=0 if seed is None else seed, certify=certify)


@register_solver("ig1-bcc", tier="cheap")
def _ig1_bcc(instance, seed=None, certify=False):
    from repro.baselines import ig1_bcc

    return ig1_bcc(instance, certify=certify)


@register_solver("ig2-bcc", tier="medium")
def _ig2_bcc(instance, seed=None, certify=False):
    from repro.baselines import ig2_bcc

    return ig2_bcc(instance, certify=certify)


@register_solver("abcc-sharded", tier="medium")
def _abcc_sharded(instance, seed=None, certify=False):
    # jobs=1: registry solvers already run inside pool workers, so the
    # shard fan-out must not open a nested process pool.
    from repro.decompose import ShardedConfig, solve_bcc_sharded

    return solve_bcc_sharded(
        instance, ShardedConfig(jobs=1), certify=certify, seed=seed
    )


@register_solver("agmc3", tier="medium")
def _agmc3(instance, seed=None, certify=False):
    from repro.algorithms import solve_gmc3

    return solve_gmc3(instance, certify=certify)


@register_solver("rand-gmc3", tier="cheap")
def _rand_gmc3(instance, seed=None, certify=False):
    from repro.baselines import rand_gmc3

    return rand_gmc3(instance, seed=0 if seed is None else seed, certify=certify)


@register_solver("ig1-gmc3", tier="cheap")
def _ig1_gmc3(instance, seed=None, certify=False):
    from repro.baselines import ig1_gmc3

    return ig1_gmc3(instance, certify=certify)


@register_solver("ig2-gmc3", tier="medium")
def _ig2_gmc3(instance, seed=None, certify=False):
    from repro.baselines import ig2_gmc3

    return ig2_gmc3(instance, certify=certify)


@register_solver("aecc", tier="medium")
def _aecc(instance, seed=None, certify=False):
    from repro.algorithms import solve_ecc

    return solve_ecc(instance, certify=certify)


@register_solver("rand-ecc", tier="cheap")
def _rand_ecc(instance, seed=None, certify=False):
    from repro.baselines import rand_ecc

    return rand_ecc(instance, seed=0 if seed is None else seed, certify=certify)


@register_solver("ig1-ecc", tier="cheap")
def _ig1_ecc(instance, seed=None, certify=False):
    from repro.baselines import ig1_ecc

    return ig1_ecc(instance, certify=certify)


@register_solver("ig2-ecc", tier="medium")
def _ig2_ecc(instance, seed=None, certify=False):
    from repro.baselines import ig2_ecc

    return ig2_ecc(instance, certify=certify)
