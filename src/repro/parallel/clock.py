"""Injected time: the ``Clock`` protocol, system and virtual clocks.

Every timing decision in the execution layer — per-task elapsed seconds
in :func:`repro.parallel.pool.run_tasks`, the deadline arithmetic of the
anytime meta-solver in :mod:`repro.slo` — goes through a :class:`Clock`
instead of calling ``time.perf_counter`` inline.  Production code runs on
the shared :data:`SYSTEM_CLOCK`; tests install a :class:`VirtualClock`
whose time advances only when told to, which makes every scheduling
decision (and therefore every test of one) deterministic: the same
observations and the same deadline produce the same arm schedule on
every run, every platform, every engine.

A virtual clock simulates task runtimes through its ``task_seconds``
hook: executing a task advances virtual time by the hook's answer
instead of by wall time.  Virtual time is serial by construction — a
pool given a virtual clock must not fan out (out-of-order completion has
no meaning when time is a single shared counter), so
:func:`~repro.parallel.pool.run_tasks` forces ``jobs=1`` under one.
"""

from __future__ import annotations

import time
from typing import Callable, Optional, Tuple, TypeVar

R = TypeVar("R")


class Clock:
    """The injected-time interface (base class doubles as the protocol).

    Attributes:
        virtual: True when time is simulated; schedulers must not assume
            wall time passes while they compute, and pools must stay
            serial.
    """

    virtual: bool = False

    def now(self) -> float:
        """Current time in seconds (monotonic; origin is unspecified)."""
        raise NotImplementedError

    def run_task(self, task: object, fn: Callable[[], R]) -> Tuple[R, float]:
        """Execute ``fn`` on behalf of ``task`` and return ``(result, seconds)``.

        The single timing primitive of the task layer: real clocks
        measure wall seconds around the call, virtual clocks charge the
        simulated duration of ``task`` instead.
        """
        raise NotImplementedError


class SystemClock(Clock):
    """Wall time via ``time.perf_counter`` (the production clock)."""

    def now(self) -> float:
        return time.perf_counter()

    def run_task(self, task: object, fn: Callable[[], R]) -> Tuple[R, float]:
        start = time.perf_counter()
        result = fn()
        return result, time.perf_counter() - start


class VirtualClock(Clock):
    """Deterministic simulated time for scheduling tests.

    Time starts at ``start`` and advances only through :meth:`advance`
    or :meth:`run_task`.  ``task_seconds`` maps a task to its simulated
    duration (default: every task is instantaneous); whatever the hook
    returns is both charged to the clock and reported as the task's
    elapsed seconds, so downstream telemetry sees a coherent timeline.
    """

    virtual = True

    def __init__(
        self,
        start: float = 0.0,
        task_seconds: Optional[Callable[[object], float]] = None,
    ) -> None:
        self._now = float(start)
        self._task_seconds = task_seconds

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        """Move time forward by ``seconds`` (must be non-negative)."""
        if seconds < 0:
            raise ValueError(f"cannot advance time backwards ({seconds})")
        self._now += float(seconds)

    def run_task(self, task: object, fn: Callable[[], R]) -> Tuple[R, float]:
        result = fn()
        seconds = 0.0
        if self._task_seconds is not None:
            seconds = float(self._task_seconds(task))
            if seconds < 0:
                raise ValueError(f"task_seconds returned {seconds} (< 0)")
        self._now += seconds
        return result, seconds


#: The shared production clock (stateless, safe to share everywhere).
SYSTEM_CLOCK = SystemClock()
