"""Parallel experiment execution with deterministic result caching.

The evaluation section of the paper is embarrassingly parallel — budget
points, randomized trials and portfolio arms are independent solves.
This package turns each into a :class:`~repro.parallel.pool.SolveTask`
and executes batches through a process pool (``--jobs``/``REPRO_JOBS``,
serial fallback at ``jobs=1``) with three guarantees:

1. **Bit-identical results.**  Seeds are derived per task
   (:func:`~repro.parallel.seeding.seed_for`), never drawn from shared
   RNG state, and results are reduced in task order — so ``jobs=N``
   reproduces ``jobs=1`` exactly, floats included.  The ``repro.verify``
   certificate harness referees this in ``tests/test_parallel.py``.
2. **Deterministic caching.**  Instances fingerprint canonically
   (:func:`~repro.parallel.fingerprint.instance_fingerprint`); solved
   tasks land as JSON under ``.repro-cache/`` (LRU-bounded), and warm
   sweeps replay rows byte for byte, timings included.
3. **Zero-friction fallback.**  ``jobs=1`` with no cache touches neither
   the pool nor the disk; debugging and coverage see plain function calls.
"""

from repro.parallel.cache import (
    CacheStats,
    ResultCache,
    default_cache,
    solution_from_payload,
    solution_to_payload,
)
from repro.parallel.clock import SYSTEM_CLOCK, Clock, SystemClock, VirtualClock
from repro.parallel.corpus import CORPUS_SOLVERS, corpus_figure, corpus_tasks
from repro.parallel.fingerprint import instance_fingerprint, task_fingerprint
from repro.parallel.pool import (
    SERIAL,
    BatchResults,
    ParallelConfig,
    SolveTask,
    TaskBatch,
    TaskResult,
    pmap,
    resolve_jobs,
    run_tasks,
)
from repro.parallel.registry import get_solver, register_solver, solver_names
from repro.parallel.seeding import derive_rng, seed_for, spawn_keys

__all__ = [
    "Clock",
    "SystemClock",
    "VirtualClock",
    "SYSTEM_CLOCK",
    "CacheStats",
    "ResultCache",
    "default_cache",
    "solution_from_payload",
    "solution_to_payload",
    "CORPUS_SOLVERS",
    "corpus_figure",
    "corpus_tasks",
    "instance_fingerprint",
    "task_fingerprint",
    "SERIAL",
    "BatchResults",
    "ParallelConfig",
    "SolveTask",
    "TaskBatch",
    "TaskResult",
    "pmap",
    "resolve_jobs",
    "run_tasks",
    "get_solver",
    "register_solver",
    "solver_names",
    "derive_rng",
    "seed_for",
    "spawn_keys",
]
