"""Parallel sweep of the ``repro.verify`` corpus — the stress workload.

Runs every shape of the seeded verification corpus through the task
layer: one task per (case, solver arm), randomized arms with per-task
derived seeds.  The result is a :class:`FigureResult` whose rows are a
deterministic function of the corpus alone, which makes this the
reference workload for seed-stability testing: any scheduling, seeding or
cache bug shows up as a digest change between repeated runs.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.runner import FigureResult
from repro.parallel.pool import ParallelConfig, SolveTask, run_tasks
from repro.parallel.seeding import seed_for

#: Solver arms swept per corpus case (deterministic + one randomized).
CORPUS_SOLVERS: Sequence[str] = ("abcc", "ig1-bcc", "ig2-bcc", "rand-bcc")


def corpus_tasks(
    seeds: Sequence[int] = range(2), solvers: Sequence[str] = CORPUS_SOLVERS
) -> list:
    """One :class:`SolveTask` per (corpus case, solver arm)."""
    from repro.verify.corpus import corpus_cases

    tasks = []
    for case in corpus_cases(seeds=seeds):
        for solver in solvers:
            seed = None
            if solver.startswith("rand"):
                seed = seed_for("corpus", case.name, solver)
            tasks.append(
                SolveTask(
                    key=f"{case.name}/{solver}",
                    solver=solver,
                    instance=case.instance,
                    seed=seed,
                )
            )
    return tasks


def corpus_figure(
    parallel: Optional[ParallelConfig] = None,
    seeds: Sequence[int] = range(2),
    solvers: Sequence[str] = CORPUS_SOLVERS,
) -> FigureResult:
    """Sweep the corpus and tabulate utility per (case, arm).

    Rows appear in corpus × arm order with the solved utility as the
    value; ``extra`` records cost and the sorted classifier selection, so
    the figure's canonical digest pins the full answer, not a summary.
    """
    tasks = corpus_tasks(seeds=seeds, solvers=solvers)
    results = run_tasks(tasks, parallel)
    figure = FigureResult(
        figure="corpus",
        title="verification corpus sweep",
        x_label="corpus case",
        value_label="total covered utility",
    )
    for task, result in zip(tasks, results):
        case_name, solver = task.key.rsplit("/", 1)
        figure.add(
            case_name,
            solver,
            result.solution.utility,
            result.seconds,
            cost=result.solution.cost,
            classifiers=sorted(sorted(str(p) for p in c) for c in result.solution.classifiers),
        )
    return figure
