"""Process-pool task execution with a serial fallback and result caching.

The unit of work is a :class:`SolveTask`: one named solver applied to one
instance with one derived seed.  :func:`run_tasks` executes a batch —
serially when ``jobs == 1`` (debugging and coverage stay trivial), via
``ProcessPoolExecutor`` otherwise — and returns results *in task order*
regardless of completion order.  Determinism contract:

- tasks share no state: randomized solvers are pure functions of their
  ``seed`` field (derive seeds with :func:`repro.parallel.seeding.seed_for`);
- results are collected positionally, so reductions downstream (means,
  best-of) accumulate in the same order on every path;
- hence ``jobs=N`` is bit-identical to ``jobs=1`` for every batch.

With a :class:`~repro.parallel.cache.ResultCache` attached, each task's
fingerprint (instance ⊕ solver ⊕ seed) is consulted first and only the
misses are executed; stored entries include the original wall seconds, so
warm sweeps reproduce cold rows exactly.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

from repro.core.model import ClassifierWorkload
from repro.core.solution import Solution
from repro.parallel.cache import ResultCache
from repro.parallel.fingerprint import task_fingerprint

T = TypeVar("T")
R = TypeVar("R")

#: Hard ceiling on worker processes (a runaway guard, not a tuning knob).
MAX_JOBS = 64


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """The effective worker count: explicit arg, else ``REPRO_JOBS``, else 1.

    ``jobs=0`` means "one worker per CPU".  The result is clamped to
    ``[1, MAX_JOBS]``.
    """
    if jobs is None:
        raw = os.environ.get("REPRO_JOBS", "1")
        try:
            jobs = int(raw)
        except ValueError:
            raise ValueError(f"REPRO_JOBS must be an integer, got {raw!r}")
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        jobs = os.cpu_count() or 1
    return max(1, min(jobs, MAX_JOBS))


def pmap(fn: Callable[[T], R], items: Sequence[T], jobs: Optional[int] = None) -> List[R]:
    """``[fn(x) for x in items]`` with optional process-pool fan-out.

    ``fn`` and every item must be picklable when ``jobs > 1``.  Output
    order always matches input order; ``jobs=1`` runs inline with no pool
    machinery at all.
    """
    items = list(items)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    workers = min(jobs, len(items))
    chunksize = max(1, len(items) // (workers * 4))
    with ProcessPoolExecutor(max_workers=workers) as executor:
        return list(executor.map(fn, items, chunksize=chunksize))


@dataclass(frozen=True)
class SolveTask:
    """One solver applied to one instance (the parallel unit of work).

    Attributes:
        key: batch-unique label used to address the result (never hashed).
        solver: registry name (see :mod:`repro.parallel.registry`).
        instance: the workload to solve (picklable by construction).
        seed: derived seed for randomized solvers; None for deterministic.
        certify: verify the result and attach its witness certificate.
    """

    key: str
    solver: str
    instance: ClassifierWorkload
    seed: Optional[int] = None
    certify: bool = False


@dataclass(frozen=True)
class TaskResult:
    """One executed (or cache-served) task."""

    key: str
    solution: Solution
    seconds: float
    cached: bool = False


@dataclass(frozen=True)
class ParallelConfig:
    """Execution policy for a batch: worker count and cache handle.

    ``jobs=None`` defers to ``REPRO_JOBS`` (default 1); ``cache=None``
    disables caching; ``certify=True`` forces certification onto every
    task in the batch.
    """

    jobs: Optional[int] = None
    cache: Optional[ResultCache] = None
    certify: bool = False


#: The do-nothing default: serial, uncached, uncertified.
SERIAL = ParallelConfig(jobs=1)


def _execute_task(task: SolveTask) -> Tuple[Solution, float]:
    """Worker entry: solve one task and time it (runs in the pool)."""
    from repro.parallel.registry import get_solver

    solver = get_solver(task.solver)
    start = time.perf_counter()
    solution = solver(task.instance, task.seed, task.certify)
    return solution, time.perf_counter() - start


def _recertify(task: SolveTask, solution: Solution) -> Solution:
    """Re-attach a certificate to a cache-served solution.

    Cached payloads never store certificates (they would be trusted
    blindly); certification is deterministic, so re-deriving it from the
    instance keeps hits equivalent to misses.
    """
    from repro.core.model import BCCInstance, GMC3Instance
    from repro.verify.certificate import attach_certificate

    budget = task.instance.budget if isinstance(task.instance, BCCInstance) else None
    target = task.instance.target if isinstance(task.instance, GMC3Instance) else None
    return attach_certificate(task.instance, solution, budget=budget, target=target)


def run_tasks(
    tasks: Sequence[SolveTask], parallel: Optional[ParallelConfig] = None
) -> List[TaskResult]:
    """Execute a batch and return results aligned with ``tasks``.

    Cache hits are served without touching the pool; only misses execute,
    and their results are stored back.  The returned list order — and
    every float in it — is independent of ``jobs``.
    """
    config = parallel or SERIAL
    tasks = list(tasks)
    seen = set()
    for task in tasks:
        if task.key in seen:
            raise ValueError(f"duplicate task key {task.key!r} in batch")
        seen.add(task.key)
    if config.certify:
        tasks = [
            task if task.certify
            else SolveTask(task.key, task.solver, task.instance, task.seed, True)
            for task in tasks
        ]

    results: List[Optional[TaskResult]] = [None] * len(tasks)
    misses: List[int] = []
    fingerprints: List[Optional[str]] = [None] * len(tasks)
    for index, task in enumerate(tasks):
        if config.cache is None:
            misses.append(index)
            continue
        fingerprint = task_fingerprint(task.instance, task.solver, task.seed)
        fingerprints[index] = fingerprint
        hit = config.cache.get(fingerprint)
        if hit is None:
            misses.append(index)
            continue
        solution, seconds = hit
        if task.certify:
            solution = _recertify(task, solution)
        results[index] = TaskResult(task.key, solution, seconds, cached=True)

    executed = pmap(_execute_task, [tasks[i] for i in misses], jobs=config.jobs)
    for index, (solution, seconds) in zip(misses, executed):
        task = tasks[index]
        results[index] = TaskResult(task.key, solution, seconds, cached=False)
        if config.cache is not None:
            config.cache.put(fingerprints[index], solution, seconds)

    return [result for result in results if result is not None]


@dataclass
class TaskBatch:
    """An order-preserving task accumulator with keyed result lookup.

    Figure builders stage every cell of a sweep into one batch, run it in
    a single :func:`run_tasks` call (maximal fan-out across budget points,
    trials and arms), then assemble rows by key.
    """

    tasks: List[SolveTask] = field(default_factory=list)

    def add(
        self,
        key: str,
        solver: str,
        instance: ClassifierWorkload,
        seed: Optional[int] = None,
    ) -> str:
        self.tasks.append(SolveTask(key=key, solver=solver, instance=instance, seed=seed))
        return key

    def run(self, parallel: Optional[ParallelConfig] = None) -> "BatchResults":
        return BatchResults(run_tasks(self.tasks, parallel))


class BatchResults:
    """Keyed access to a batch's results (insertion order preserved)."""

    def __init__(self, results: Sequence[TaskResult]) -> None:
        self._by_key = {result.key: result for result in results}

    def __getitem__(self, key: str) -> TaskResult:
        return self._by_key[key]

    def __len__(self) -> int:
        return len(self._by_key)

    def __iter__(self):
        return iter(self._by_key.values())

    def solution(self, key: str) -> Solution:
        return self._by_key[key].solution

    def seconds(self, key: str) -> float:
        return self._by_key[key].seconds
