"""Process-pool task execution with a serial fallback and result caching.

The unit of work is a :class:`SolveTask`: one named solver applied to one
instance with one derived seed.  :func:`run_tasks` executes a batch —
serially when ``jobs == 1`` (debugging and coverage stay trivial), via
``ProcessPoolExecutor`` otherwise — and returns results *in task order*
regardless of completion order.  Determinism contract:

- tasks share no state: randomized solvers are pure functions of their
  ``seed`` field (derive seeds with :func:`repro.parallel.seeding.seed_for`);
- results are collected positionally, so reductions downstream (means,
  best-of) accumulate in the same order on every path;
- hence ``jobs=N`` is bit-identical to ``jobs=1`` for every batch.

With a :class:`~repro.parallel.cache.ResultCache` attached, each task's
fingerprint (instance ⊕ solver ⊕ seed) is consulted first and only the
misses are executed; stored entries include the original wall seconds, so
warm sweeps reproduce cold rows exactly.

All timing goes through the config's :class:`~repro.parallel.clock.Clock`
(default: the system clock).  A :class:`~repro.parallel.clock.VirtualClock`
forces the batch serial and charges simulated task durations instead of
wall time — that is what makes the SLO meta-solver's scheduling decisions
testable bit for bit.  Worker processes of a fanned-out batch always
measure with the system clock (a virtual clock cannot cross a process
boundary, and never needs to: virtual implies serial).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

from repro.core.model import ClassifierWorkload
from repro.core.solution import Solution
from repro.parallel.cache import ResultCache
from repro.parallel.clock import SYSTEM_CLOCK, Clock
from repro.parallel.fingerprint import task_fingerprint

T = TypeVar("T")
R = TypeVar("R")

#: Hard ceiling on worker processes (a runaway guard, not a tuning knob).
MAX_JOBS = 64


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """The effective worker count: explicit arg, else ``REPRO_JOBS``, else 1.

    ``jobs=0`` means "one worker per CPU".  The result is clamped to
    ``[1, MAX_JOBS]``.
    """
    if jobs is None:
        raw = os.environ.get("REPRO_JOBS", "1")
        try:
            jobs = int(raw)
        except ValueError:
            raise ValueError(f"REPRO_JOBS must be an integer, got {raw!r}")
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        jobs = os.cpu_count() or 1
    return max(1, min(jobs, MAX_JOBS))


def pmap(fn: Callable[[T], R], items: Sequence[T], jobs: Optional[int] = None) -> List[R]:
    """``[fn(x) for x in items]`` with optional process-pool fan-out.

    ``fn`` and every item must be picklable when ``jobs > 1``.  Output
    order always matches input order; ``jobs=1`` runs inline with no pool
    machinery at all.
    """
    items = list(items)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    workers = min(jobs, len(items))
    chunksize = max(1, len(items) // (workers * 4))
    with ProcessPoolExecutor(max_workers=workers) as executor:
        return list(executor.map(fn, items, chunksize=chunksize))


@dataclass(frozen=True)
class SolveTask:
    """One solver applied to one instance (the parallel unit of work).

    Attributes:
        key: batch-unique label used to address the result (never hashed).
        solver: registry name (see :mod:`repro.parallel.registry`).
        instance: the workload to solve (picklable by construction).
        seed: derived seed for randomized solvers; None for deterministic.
        certify: verify the result and attach its witness certificate.
        timeout_s: advisory per-task deadline in seconds.  CPython cannot
            safely preempt a running solve, so the task is never killed;
            an overrun is *recorded* on the result (``timed_out=True``)
            for the scheduler to react to.  None disables the check.
    """

    key: str
    solver: str
    instance: ClassifierWorkload
    seed: Optional[int] = None
    certify: bool = False
    timeout_s: Optional[float] = None


@dataclass(frozen=True)
class TaskResult:
    """One executed (or cache-served) task.

    ``seconds`` is the task's elapsed time as measured by the batch's
    clock (wall seconds on the system clock, simulated seconds on a
    virtual one; cache hits replay the original solve's seconds) — the
    single source callers consume instead of re-timing around the batch.
    ``timed_out`` records whether ``seconds`` exceeded the task's
    advisory ``timeout_s``.
    """

    key: str
    solution: Solution
    seconds: float
    cached: bool = False
    timed_out: bool = False


@dataclass(frozen=True)
class ParallelConfig:
    """Execution policy for a batch: worker count and cache handle.

    ``jobs=None`` defers to ``REPRO_JOBS`` (default 1); ``cache=None``
    disables caching; ``certify=True`` forces certification onto every
    task in the batch; ``clock=None`` times tasks on the system clock.
    A virtual clock forces the batch serial (simulated time has no
    out-of-order completion), whatever ``jobs`` says.
    """

    jobs: Optional[int] = None
    cache: Optional[ResultCache] = None
    certify: bool = False
    clock: Optional[Clock] = None


#: The do-nothing default: serial, uncached, uncertified.
SERIAL = ParallelConfig(jobs=1)


def _execute_task(task: SolveTask) -> Tuple[Solution, float]:
    """Worker entry: solve one task and time it (runs in the pool).

    Workers always measure on the system clock — this entry only runs on
    the fanned-out path, which a virtual clock never takes.
    """
    from repro.parallel.registry import get_solver

    solver = get_solver(task.solver)
    start = time.perf_counter()
    solution = solver(task.instance, task.seed, task.certify)
    return solution, time.perf_counter() - start


def _execute_task_clocked(task: SolveTask, clock: Clock) -> Tuple[Solution, float]:
    """Serial-path execution: timing delegated to the injected clock."""
    from repro.parallel.registry import get_solver

    solver = get_solver(task.solver)
    return clock.run_task(
        task, lambda: solver(task.instance, task.seed, task.certify)
    )


def _is_timed_out(task: SolveTask, seconds: float) -> bool:
    return task.timeout_s is not None and seconds > task.timeout_s


def _recertify(task: SolveTask, solution: Solution) -> Solution:
    """Re-attach a certificate to a cache-served solution.

    Cached payloads never store certificates (they would be trusted
    blindly); certification is deterministic, so re-deriving it from the
    instance keeps hits equivalent to misses.
    """
    from repro.core.model import BCCInstance, GMC3Instance
    from repro.verify.certificate import attach_certificate

    budget = task.instance.budget if isinstance(task.instance, BCCInstance) else None
    target = task.instance.target if isinstance(task.instance, GMC3Instance) else None
    return attach_certificate(task.instance, solution, budget=budget, target=target)


def run_tasks(
    tasks: Sequence[SolveTask], parallel: Optional[ParallelConfig] = None
) -> List[TaskResult]:
    """Execute a batch and return results aligned with ``tasks``.

    Cache hits are served without touching the pool; only misses execute,
    and their results are stored back.  The returned list order — and
    every float in it — is independent of ``jobs``.
    """
    config = parallel or SERIAL
    clock = config.clock or SYSTEM_CLOCK
    tasks = list(tasks)
    seen = set()
    for task in tasks:
        if task.key in seen:
            raise ValueError(f"duplicate task key {task.key!r} in batch")
        seen.add(task.key)
    if config.certify:
        tasks = [
            task if task.certify
            else SolveTask(
                task.key, task.solver, task.instance, task.seed, True, task.timeout_s
            )
            for task in tasks
        ]

    results: List[Optional[TaskResult]] = [None] * len(tasks)
    misses: List[int] = []
    fingerprints: List[Optional[str]] = [None] * len(tasks)
    for index, task in enumerate(tasks):
        if config.cache is None:
            misses.append(index)
            continue
        fingerprint = task_fingerprint(task.instance, task.solver, task.seed)
        fingerprints[index] = fingerprint
        hit = config.cache.get(fingerprint)
        if hit is None:
            misses.append(index)
            continue
        solution, seconds = hit
        if task.certify:
            solution = _recertify(task, solution)
        results[index] = TaskResult(
            task.key, solution, seconds, cached=True,
            timed_out=_is_timed_out(task, seconds),
        )

    miss_tasks = [tasks[i] for i in misses]
    if clock.virtual or resolve_jobs(config.jobs) <= 1:
        # Serial path: timing goes through the injected clock (a virtual
        # clock charges simulated durations and must never fan out).
        executed = [_execute_task_clocked(task, clock) for task in miss_tasks]
    else:
        executed = pmap(_execute_task, miss_tasks, jobs=config.jobs)
    for index, (solution, seconds) in zip(misses, executed):
        task = tasks[index]
        results[index] = TaskResult(
            task.key, solution, seconds, cached=False,
            timed_out=_is_timed_out(task, seconds),
        )
        if config.cache is not None:
            config.cache.put(fingerprints[index], solution, seconds)

    return [result for result in results if result is not None]


@dataclass
class TaskBatch:
    """An order-preserving task accumulator with keyed result lookup.

    Figure builders stage every cell of a sweep into one batch, run it in
    a single :func:`run_tasks` call (maximal fan-out across budget points,
    trials and arms), then assemble rows by key.
    """

    tasks: List[SolveTask] = field(default_factory=list)

    def add(
        self,
        key: str,
        solver: str,
        instance: ClassifierWorkload,
        seed: Optional[int] = None,
    ) -> str:
        self.tasks.append(SolveTask(key=key, solver=solver, instance=instance, seed=seed))
        return key

    def run(self, parallel: Optional[ParallelConfig] = None) -> "BatchResults":
        return BatchResults(run_tasks(self.tasks, parallel))


class BatchResults:
    """Keyed access to a batch's results (insertion order preserved)."""

    def __init__(self, results: Sequence[TaskResult]) -> None:
        self._by_key = {result.key: result for result in results}

    def __getitem__(self, key: str) -> TaskResult:
        return self._by_key[key]

    def __len__(self) -> int:
        return len(self._by_key)

    def __iter__(self):
        return iter(self._by_key.values())

    def solution(self, key: str) -> Solution:
        return self._by_key[key].solution

    def seconds(self, key: str) -> float:
        return self._by_key[key].seconds

    def total_seconds(self) -> float:
        """Sum of per-task elapsed seconds (clock-measured, cache-replayed).

        The batch's own accounting — callers should consume this instead
        of re-timing around :meth:`TaskBatch.run`, which would conflate
        solver time with cache and scheduling overhead.
        """
        return sum(result.seconds for result in self._by_key.values())
