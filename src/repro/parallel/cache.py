"""Deterministic on-disk result cache for solve tasks.

One JSON file per fingerprint under ``.repro-cache/`` (override with
``REPRO_CACHE_DIR``; disable globally with ``REPRO_CACHE=0``).  Entries
hold the full :class:`~repro.core.solution.Solution` payload — classifier
sets, covered queries, cost/utility as exact round-trip floats — plus the
original solve's wall seconds, so a cache hit reproduces the original
result byte for byte, timing included.  That is what makes repeated
sweeps deterministic: warm runs of a figure return *identical* rows, not
merely equal utilities.

The cache is LRU-bounded: reads bump the entry's mtime and writes evict
the oldest entries beyond ``max_entries``.  All cache I/O happens in the
coordinating process — worker processes never touch the directory, so no
cross-process locking is needed.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.core.solution import Solution

#: Bump when the payload layout changes; stale-version entries are misses.
CACHE_VERSION = 1

DEFAULT_CACHE_DIR = ".repro-cache"
DEFAULT_MAX_ENTRIES = 512

_JSON_SAFE = (str, int, float, bool, type(None))


def _meta_payload(meta) -> Dict[str, object]:
    """The JSON-safe subset of a solution's meta mapping.

    Solver telemetry is plain scalars/containers and survives; opaque
    objects (certificates, trackers) are dropped — a cache hit re-derives
    certificates on demand instead of trusting stored ones.
    """

    def safe(value):
        if isinstance(value, _JSON_SAFE):
            return value
        if isinstance(value, dict):
            entries = {str(k): safe(v) for k, v in value.items()}
            return {k: v for k, v in entries.items() if v is not _DROP}
        if isinstance(value, (list, tuple)):
            converted = [safe(v) for v in value]
            return [v for v in converted if v is not _DROP]
        return _DROP

    _DROP = object()
    payload = {}
    for key, value in dict(meta).items():
        converted = safe(value)
        if converted is not _DROP:
            payload[str(key)] = converted
    return payload


def solution_to_payload(solution: Solution) -> dict:
    """A JSON dict that round-trips ``solution`` exactly (floats included)."""
    return {
        "classifiers": sorted(sorted(str(p) for p in c) for c in solution.classifiers),
        "covered": sorted(sorted(str(p) for p in q) for q in solution.covered),
        "cost": solution.cost,
        "utility": solution.utility,
        "meta": _meta_payload(solution.meta),
    }


def solution_from_payload(payload: dict) -> Solution:
    """Rebuild the :class:`Solution` stored by :func:`solution_to_payload`."""
    return Solution(
        classifiers=frozenset(frozenset(c) for c in payload["classifiers"]),
        covered=frozenset(frozenset(q) for q in payload["covered"]),
        cost=float(payload["cost"]),
        utility=float(payload["utility"]),
        meta=dict(payload.get("meta", {})),
    )


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0


@dataclass
class ResultCache:
    """Fingerprint → solved-task payload store (JSON files, LRU-bounded).

    Attributes:
        directory: cache root (created lazily on first store).
        max_entries: LRU bound; oldest-read entries are evicted on store.
        stats: hit/miss/store/eviction counters for this handle.
    """

    directory: Path = field(default_factory=lambda: Path(DEFAULT_CACHE_DIR))
    max_entries: int = DEFAULT_MAX_ENTRIES
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.directory = Path(self.directory)
        if self.max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {self.max_entries}")

    def _path(self, fingerprint: str) -> Path:
        return self.directory / f"{fingerprint}.json"

    def get(self, fingerprint: str) -> Optional[Tuple[Solution, float]]:
        """The cached ``(solution, seconds)`` for ``fingerprint``, or None."""
        path = self._path(fingerprint)
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            self.stats.misses += 1
            return None
        if payload.get("version") != CACHE_VERSION:
            self.stats.misses += 1
            return None
        try:
            solution = solution_from_payload(payload["solution"])
            seconds = float(payload["seconds"])
        except (KeyError, TypeError, ValueError):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        try:
            os.utime(path)  # bump recency for LRU eviction
        except OSError:
            pass
        return solution, seconds

    def put(self, fingerprint: str, solution: Solution, seconds: float) -> None:
        """Store one solved task and evict beyond the LRU bound."""
        if not math.isfinite(seconds):
            raise ValueError(f"seconds must be finite, got {seconds}")
        self.directory.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": CACHE_VERSION,
            "fingerprint": fingerprint,
            "seconds": seconds,
            "solution": solution_to_payload(solution),
        }
        path = self._path(fingerprint)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True))
        os.replace(tmp, path)  # atomic: readers never see partial JSON
        self.stats.stores += 1
        self._evict()

    def _entries(self) -> List[Path]:
        try:
            return [p for p in self.directory.iterdir() if p.suffix == ".json"]
        except OSError:
            return []

    def _evict(self) -> None:
        entries = self._entries()
        excess = len(entries) - self.max_entries
        if excess <= 0:
            return
        def mtime(path: Path) -> Tuple[float, str]:
            try:
                return (path.stat().st_mtime, path.name)
            except OSError:
                return (0.0, path.name)
        for path in sorted(entries, key=mtime)[:excess]:
            try:
                path.unlink()
                self.stats.evictions += 1
            except OSError:
                pass

    def __len__(self) -> int:
        return len(self._entries())

    def clear(self) -> None:
        for path in self._entries():
            try:
                path.unlink()
            except OSError:
                pass


def default_cache(directory: Optional[str] = None) -> Optional[ResultCache]:
    """The environment-configured cache, or None when caching is disabled.

    ``REPRO_CACHE=0`` disables caching outright; ``REPRO_CACHE_DIR``
    overrides the default ``.repro-cache/`` location.
    """
    if os.environ.get("REPRO_CACHE", "1") == "0":
        return None
    root = directory or os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)
    return ResultCache(directory=Path(root))
