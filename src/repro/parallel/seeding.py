"""Numpy-free splittable seeding for parallel tasks.

Every parallel task derives its RNG seed from a *task key* — a tuple of
plain values naming the task (figure, budget point, trial index, engine
name, ...) — via :func:`seed_for`.  Derivation is a SHA-256 of the
canonicalized key, so:

- seeds are deterministic functions of the key alone (no shared pool
  state, no dependence on execution order or worker identity);
- distinct keys get statistically independent 64-bit seeds;
- the scheme is stable across Python versions and platforms (no reliance
  on ``hash()``, which is salted per process).

This is the only seeding facility the execution layer uses: a task never
observes another task's draws, which is what makes the parallel paths
bit-identical to the serial ones.
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import Tuple, Union

KeyPart = Union[str, bytes, int, float, bool, None, tuple, frozenset, list]

#: Domain-separation prefix so repro seeds never collide with other users
#: of truncated SHA-256 in the same process.
_DOMAIN = b"repro.parallel.seed:"


def _canonical(part: KeyPart) -> bytes:
    """A canonical byte encoding of one key part (order- and type-tagged).

    Collections canonicalize recursively; ``frozenset`` members are sorted
    by their encoding so insertion order cannot leak into the seed.  Floats
    encode via ``repr`` (shortest round-trip form), so ``2`` and ``2.0``
    produce *different* seeds — ints and floats are distinct key parts on
    purpose; normalize before keying if that distinction is meaningless.
    """
    if part is None:
        return b"N"
    if isinstance(part, bool):  # before int: bool is an int subclass
        return b"b" + (b"1" if part else b"0")
    if isinstance(part, int):
        return b"i" + str(part).encode("ascii")
    if isinstance(part, float):
        if math.isnan(part):
            return b"f:nan"
        return b"f" + repr(part).encode("ascii")
    if isinstance(part, str):
        return b"s" + part.encode("utf-8")
    if isinstance(part, bytes):
        return b"y" + part
    if isinstance(part, (tuple, list)):
        encoded = [_canonical(p) for p in part]
        return b"t(" + b",".join(encoded) + b")"
    if isinstance(part, frozenset):
        encoded = sorted(_canonical(p) for p in part)
        return b"z{" + b",".join(encoded) + b"}"
    raise TypeError(f"unsupported key part type {type(part).__name__!r}")


def seed_for(*key_parts: KeyPart) -> int:
    """A 64-bit seed derived from the task key, independent per key.

    ``seed_for("fig3a", 120.0, "RAND", 3)`` is the seed of trial 3 of the
    RAND arm at budget 120 of Figure 3a — stable forever, regardless of
    which worker runs the task or in what order.
    """
    digest = hashlib.sha256(_DOMAIN + _canonical(tuple(key_parts))).digest()
    return int.from_bytes(digest[:8], "big")


def derive_rng(*key_parts: KeyPart) -> random.Random:
    """A fresh :class:`random.Random` seeded by :func:`seed_for` on the key."""
    return random.Random(seed_for(*key_parts))


def spawn_keys(base: Tuple[KeyPart, ...], count: int) -> Tuple[Tuple[KeyPart, ...], ...]:
    """``count`` child keys of ``base`` (append the child index)."""
    return tuple(base + (index,) for index in range(count))
