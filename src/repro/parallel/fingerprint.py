"""Stable instance fingerprints — the cache key of the execution layer.

A fingerprint is a SHA-256 over a canonical encoding of the semantic
content of an instance: the tuple ``⟨Q, U, C, B⟩`` (or target for GMC3),
plus the defaults that complete the partial utility/cost maps.  Canonical
means the encoding is invariant under every representation detail that
does not change the instance:

- query order and property iteration order (everything is sorted);
- dict insertion order of the utility and cost maps;
- float formatting of values (``2`` vs ``2.0`` vs ``2e0`` all encode as
  the shortest round-trip ``repr`` of the same ``float``);
- whether a query's utility arrives explicitly or through
  ``default_utility`` (effective per-query utilities are encoded).

Explicit classifier costs are encoded as the sorted explicit map plus the
default — two instances whose cost maps differ only in the explicit vs.
default split of the *same* effective costs hash differently, which costs
a cache miss but never a wrong hit.  Two semantically different instances
collide only with SHA-256 collision probability.
"""

from __future__ import annotations

import hashlib
import math
from typing import Iterable, List, Optional, Tuple

from repro.core.model import BCCInstance, ClassifierWorkload, GMC3Instance

FINGERPRINT_VERSION = 1


def _encode_float(value: float) -> str:
    """Shortest round-trip encoding; normalizes int-valued inputs."""
    value = float(value)
    if math.isinf(value):
        return "inf" if value > 0 else "-inf"
    if math.isnan(value):
        return "nan"
    return repr(value)


def _encode_props(props: Iterable[object]) -> str:
    return "{" + ",".join(sorted(str(p) for p in props)) + "}"


def workload_tokens(workload: ClassifierWorkload) -> List[str]:
    """The canonical token stream of the budget-free part of an instance."""
    tokens = [f"v{FINGERPRINT_VERSION}", type(workload).__name__]
    tokens.append("Q:")
    for query in sorted(workload.queries, key=_encode_props):
        tokens.append(f"{_encode_props(query)}={_encode_float(workload.utility(query))}")
    tokens.append("C:")
    explicit = sorted(
        (_encode_props(classifier), _encode_float(cost))
        for classifier, cost in workload._costs.items()
    )
    tokens.extend(f"{name}={cost}" for name, cost in explicit)
    tokens.append(f"dU={_encode_float(workload.default_utility)}")
    tokens.append(f"dC={_encode_float(workload.default_cost)}")
    return tokens


def workload_fingerprint(workload: ClassifierWorkload) -> str:
    """Hex SHA-256 of the budget-free instance content ``⟨Q, U, C⟩``.

    The content address of the incremental engine's shard-profile store:
    two shard views with identical queries, effective utilities and
    explicit costs hash equal no matter which global budget, shard index
    or workload version produced them, so solved pareto profiles survive
    re-partitioning after a delta.  Budget-sensitive callers want
    :func:`instance_fingerprint` instead.
    """
    payload = "\x1f".join(workload_tokens(workload)).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


def shard_fingerprints(
    workload: ClassifierWorkload,
    shards: Iterable[Iterable[object]],
) -> List[str]:
    """Per-shard :func:`workload_fingerprint` without materializing shards.

    Token-identical to ``workload_fingerprint(workload.restrict(shard))``
    for each shard, but computed in one pass over the parent workload:
    the explicit cost map is walked once, attributing each entry to every
    shard containing one of its queries, instead of once per shard.  For
    a partition of ``s`` shards this is ``O(|workload|)`` total where the
    restrict-based path is ``O(s * |workload|)`` — the difference between
    a re-plan touching two shards and one that re-reads the whole
    workload per shard.
    """
    shard_lists = [list(shard) for shard in shards]
    shard_of = {
        query: index
        for index, members in enumerate(shard_lists)
        for query in members
    }
    query_sections: List[List[str]] = []
    for members in shard_lists:
        query_sections.append(
            [
                f"{_encode_props(query)}={_encode_float(workload.utility(query))}"
                for query in sorted(members, key=_encode_props)
            ]
        )
    cost_entries: List[List[Tuple[str, str]]] = [[] for _ in shard_lists]
    for classifier, cost in workload._costs.items():
        encoded = (_encode_props(classifier), _encode_float(cost))
        seen: set = set()
        for query in workload.queries_containing(classifier):
            index = shard_of.get(query)
            if index is not None and index not in seen:
                seen.add(index)
                cost_entries[index].append(encoded)
    prefix = [f"v{FINGERPRINT_VERSION}", type(workload).__name__, "Q:"]
    suffix = [
        f"dU={_encode_float(workload.default_utility)}",
        f"dC={_encode_float(workload.default_cost)}",
    ]
    digests: List[str] = []
    for section, entries in zip(query_sections, cost_entries):
        tokens = prefix + section + ["C:"]
        tokens.extend(f"{name}={cost}" for name, cost in sorted(entries))
        tokens.extend(suffix)
        payload = "\x1f".join(tokens).encode("utf-8")
        digests.append(hashlib.sha256(payload).hexdigest())
    return digests


def instance_fingerprint(workload: ClassifierWorkload) -> str:
    """Hex SHA-256 of the canonical instance encoding (includes B/T)."""
    tokens = workload_tokens(workload)
    if isinstance(workload, BCCInstance):
        tokens.append(f"B={_encode_float(workload.budget)}")
    elif isinstance(workload, GMC3Instance):
        tokens.append(f"T={_encode_float(workload.target)}")
    payload = "\x1f".join(tokens).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


def task_fingerprint(
    workload: ClassifierWorkload,
    solver: str,
    seed: Optional[int] = None,
    params: Tuple[Tuple[str, object], ...] = (),
) -> str:
    """Cache key of one solve: instance ⊕ solver name ⊕ seed ⊕ params."""
    tokens = [
        instance_fingerprint(workload),
        f"solver={solver}",
        f"seed={'-' if seed is None else int(seed)}",
    ]
    tokens.extend(f"{name}={value!r}" for name, value in sorted(params))
    payload = "\x1f".join(tokens).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()
