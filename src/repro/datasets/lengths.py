"""Stratified query-length planning for the dataset generators.

The paper reports length marginals like "65% singletons" while our model
requires queries to be *distinct property sets*, so the number of singleton
queries can never exceed the number of properties.  (At the paper's stated
P-dataset ratio — 5K queries over 2K properties with 55% singletons — that
bound is already violated, suggesting the real logs contain distinct query
*strings* mapping onto colliding property sets.)  The generators therefore
plan exact per-length counts up front, cap the singleton bucket at a
fraction of the property pool, and spill the excess into length 2, which
keeps the achievable marginals as close to the paper's as possible.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

# Never use more than this fraction of the property pool as singleton
# queries; beyond it rejection sampling of distinct singletons stalls.
SINGLETON_POOL_FRACTION = 0.92


def plan_length_counts(
    n_queries: int,
    length_weights: Sequence[Tuple[int, float]],
    n_properties: int,
) -> Dict[int, int]:
    """Exact number of queries to generate per length.

    Largest-remainder apportionment of ``n_queries`` across the length
    distribution, then the singleton bucket is capped at
    ``SINGLETON_POOL_FRACTION * n_properties`` with the excess moved to
    length 2 (creating it if absent).
    """
    if n_queries <= 0:
        raise ValueError(f"n_queries must be positive, got {n_queries}")
    total_weight = sum(weight for _, weight in length_weights)
    if total_weight <= 0:
        raise ValueError("length weights must have positive total")

    shares = {
        length: n_queries * weight / total_weight
        for length, weight in length_weights
    }
    counts = {length: int(share) for length, share in shares.items()}
    remainder = n_queries - sum(counts.values())
    by_fraction = sorted(
        shares, key=lambda length: shares[length] - counts[length], reverse=True
    )
    for length in by_fraction[:remainder]:
        counts[length] += 1

    cap = int(SINGLETON_POOL_FRACTION * n_properties)
    if counts.get(1, 0) > cap:
        excess = counts[1] - cap
        counts[1] = cap
        counts[2] = counts.get(2, 0) + excess
    return {length: count for length, count in counts.items() if count > 0}
