"""Summary statistics for datasets — used by tests to check generator
marginals against the figures the paper reports (Section 6.1)."""

from __future__ import annotations

import math
from typing import Any, Dict

from repro.core.model import ClassifierWorkload


def dataset_stats(workload: ClassifierWorkload) -> Dict[str, Any]:
    """Marginal statistics of a workload.

    Keys: ``num_queries``, ``num_properties``, ``avg_length``,
    ``frac_length_1``, ``frac_length_le_2``, ``total_utility``,
    ``max_utility``, cost summary over finite explicit costs.
    """
    histogram = workload.length_histogram()
    m = workload.num_queries
    total_length = sum(length * count for length, count in histogram.items())
    finite_costs = [
        c for c in workload._costs.values() if not math.isinf(c)
    ]
    infinite = sum(1 for c in workload._costs.values() if math.isinf(c))
    return {
        "num_queries": m,
        "num_properties": len(workload.properties),
        "max_length": workload.length,
        "avg_length": total_length / m,
        "frac_length_1": histogram.get(1, 0) / m,
        "frac_length_le_2": (histogram.get(1, 0) + histogram.get(2, 0)) / m,
        "total_utility": workload.total_utility(),
        "max_utility": max(workload.utility(q) for q in workload.queries),
        "num_explicit_costs": len(workload._costs),
        "num_impractical": infinite,
        "avg_finite_cost": (
            sum(finite_costs) / len(finite_costs) if finite_costs else None
        ),
        "max_finite_cost": max(finite_costs) if finite_costs else None,
    }
