"""BestBuy-like dataset generator.

The real BestBuy query log used in [18, 23] and in this paper is not
redistributable, so this module generates a seeded instance that matches
every marginal the paper reports (Section 6.1):

- ~1000 queries over 725 distinct electronics properties;
- 65% of queries have length exactly 1 and more than 95% length <= 2
  (average length ~1.4);
- the utility of a query is its search count — a long-tail Zipf shape whose
  total lands near the ~1K total utility the paper reports;
- no classifier costs are provided, so costs are uniform (cost 1 each),
  exactly as the paper assumes for this dataset;
- the instance is *sparse*: each property appears in very few queries.
"""

from __future__ import annotations

import random
from typing import FrozenSet, List, Set

from repro.core.model import BCCInstance
from repro.datasets.lengths import plan_length_counts
from repro.datasets.zipf import zipf_utilities

_LENGTH_WEIGHTS = ((1, 0.65), (2, 0.31), (3, 0.04))


def generate_bestbuy(
    n_queries: int = 1000,
    n_properties: int = 725,
    budget: float = 100.0,
    seed: int = 0,
    top_utility: float = 40.0,
) -> BCCInstance:
    """Generate a BestBuy-like BCC instance (uniform costs, Zipf utilities)."""
    if n_queries <= 0:
        raise ValueError(f"n_queries must be positive, got {n_queries}")
    if n_properties < 3:
        raise ValueError(f"need at least 3 properties, got {n_properties}")
    rng = random.Random(seed)
    pool = [f"bb{i}" for i in range(n_properties)]

    counts = plan_length_counts(n_queries, _LENGTH_WEIGHTS, n_properties)
    queries: Set[FrozenSet[str]] = set()
    for length, count in sorted(counts.items()):
        bucket: Set[FrozenSet[str]] = set()
        while len(bucket) < count:
            candidate = frozenset(rng.sample(pool, length))
            if candidate not in queries:
                bucket.add(candidate)
        queries |= bucket
    query_list: List[FrozenSet[str]] = sorted(queries, key=sorted)
    rng.shuffle(query_list)
    # Popularity concentrates on short queries (the paper: "almost all of
    # the utility comes from covering singleton queries" on BB): rank by
    # length with noise, then assign Zipf search counts by rank.
    query_list.sort(key=lambda q: len(q) + 1.5 * rng.random())

    counts = zipf_utilities(len(query_list), top=top_utility)
    utilities = {q: counts[rank] for rank, q in enumerate(query_list)}
    # Uniform costs: no explicit cost map; default_cost = 1.0.
    return BCCInstance(
        sorted(query_list, key=sorted),
        utilities,
        costs=None,
        budget=budget,
        default_cost=1.0,
    )
