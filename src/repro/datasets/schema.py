"""JSON serialization of BCC instances.

Property sets are stored as sorted lists; infinite costs as the string
``"inf"``.  The format is stable and human-readable so generated datasets
can be saved, inspected and reloaded across sessions.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Dict, Union

from repro.core.model import BCCInstance

FORMAT_VERSION = 1


def instance_to_json(instance: BCCInstance) -> Dict[str, Any]:
    """Serialize ``instance`` to a JSON-compatible dict."""
    return {
        "format": FORMAT_VERSION,
        "budget": instance.budget,
        "default_utility": instance.default_utility,
        "default_cost": instance.default_cost,
        "queries": [
            {"props": sorted(q), "utility": instance.utility(q)}
            for q in instance.queries
        ],
        "costs": [
            {
                "props": sorted(classifier),
                "cost": "inf" if math.isinf(cost) else cost,
            }
            for classifier, cost in sorted(
                instance._costs.items(), key=lambda kv: sorted(kv[0])
            )
        ],
    }


def instance_from_json(payload: Dict[str, Any]) -> BCCInstance:
    """Rebuild a :class:`BCCInstance` from :func:`instance_to_json` output."""
    if payload.get("format") != FORMAT_VERSION:
        raise ValueError(f"unsupported format {payload.get('format')!r}")
    queries = [frozenset(entry["props"]) for entry in payload["queries"]]
    utilities = {
        frozenset(entry["props"]): float(entry["utility"])
        for entry in payload["queries"]
    }
    costs = {}
    for entry in payload["costs"]:
        value = entry["cost"]
        costs[frozenset(entry["props"])] = (
            math.inf if value == "inf" else float(value)
        )
    return BCCInstance(
        queries,
        utilities,
        costs,
        budget=float(payload["budget"]),
        default_utility=float(payload.get("default_utility", 1.0)),
        default_cost=float(payload.get("default_cost", 1.0)),
    )


def save_instance(instance: BCCInstance, path: Union[str, Path]) -> None:
    """Write ``instance`` to ``path`` as JSON."""
    Path(path).write_text(json.dumps(instance_to_json(instance)))


def load_instance(path: Union[str, Path]) -> BCCInstance:
    """Read an instance previously written by :func:`save_instance`."""
    return instance_from_json(json.loads(Path(path).read_text()))
