"""The paper's synthetic dataset generator (Section 6.1, verbatim spec).

- query length equals ``i`` with probability ``2^-i``; lengths above 6 are
  resampled ("omitted because companies do not allocate resources for such
  rare queries");
- properties are drawn uniformly from a fixed pool (10K in the paper);
- classifier costs are integers drawn uniformly from ``[0, 50]``;
- query utilities are integers drawn uniformly from ``[1, 50]``;
- the dataset is regenerated (new seed) for each experiment.
"""

from __future__ import annotations

import random
from typing import Dict, FrozenSet, Set

from repro.core.model import BCCInstance, powerset_classifiers
from repro.datasets.lengths import plan_length_counts

MAX_LENGTH = 6

# Truncated geometric: length i w.p. 2^-i, capped at MAX_LENGTH.
_LENGTH_WEIGHTS = tuple((i, 2.0**-i) for i in range(1, MAX_LENGTH + 1))


def generate_synthetic(
    n_queries: int = 10_000,
    n_properties: int = 10_000,
    budget: float = 5_000.0,
    seed: int = 0,
    max_cost: int = 50,
    max_utility: int = 50,
) -> BCCInstance:
    """Generate a synthetic BCC instance per the paper's specification.

    The paper uses ``n_queries = 100K`` (up to 1000K in scalability tests);
    the default here is laptop-sized, and every experiment passes its own
    size explicitly.
    """
    if n_queries <= 0:
        raise ValueError(f"n_queries must be positive, got {n_queries}")
    if n_properties < MAX_LENGTH:
        raise ValueError(f"need at least {MAX_LENGTH} properties, got {n_properties}")
    rng = random.Random(seed)
    pool = [f"p{i}" for i in range(n_properties)]

    counts = plan_length_counts(n_queries, _LENGTH_WEIGHTS, n_properties)
    queries: Set[FrozenSet[str]] = set()
    for length, count in sorted(counts.items()):
        bucket: Set[FrozenSet[str]] = set()
        while len(bucket) < count:
            candidate = frozenset(rng.sample(pool, length))
            if candidate not in queries:
                bucket.add(candidate)
        queries |= bucket
    query_list = sorted(queries, key=sorted)

    utilities = {q: float(rng.randint(1, max_utility)) for q in query_list}
    costs: Dict[FrozenSet[str], float] = {}
    for query in query_list:
        for classifier in powerset_classifiers(query):
            if classifier not in costs:
                costs[classifier] = float(rng.randint(0, max_cost))
    return BCCInstance(query_list, utilities, costs, budget=budget)
