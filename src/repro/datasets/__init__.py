"""Dataset generators and serialization.

The paper evaluates on three datasets (Section 6.1).  The BestBuy file and
the eBay private dataset are not distributable, so this package provides
*seeded generators that reproduce their published marginal statistics* (see
DESIGN.md, "Substitutions"); the synthetic dataset is generated exactly per
the paper's specification.

- :mod:`repro.datasets.bestbuy` — BestBuy-like: ~1000 queries, 725
  properties, 65% singletons, >=95% length <= 2, search-frequency
  (Zipf-like) utilities, uniform costs.
- :mod:`repro.datasets.private_like` — Private-like: 5K queries, 2K
  properties, lengths 1-5 (avg ~1.7), analyst costs in [0, 50] (avg ~8),
  utilities in [1, 50], category blocks, popular-subquery correlation.
- :mod:`repro.datasets.synthetic` — the paper's synthetic spec: length ``i``
  w.p. ``2^-i`` capped at 6, costs ~ U{0..50}, utilities ~ U{1..50},
  10K property pool.
- :mod:`repro.datasets.fragmented` — many-component workloads (disjoint
  per-component property pools, synthetic marginals) for the
  decomposition engine.
- :mod:`repro.datasets.schema` — JSON round-trip for instances.
"""

from repro.datasets.bestbuy import generate_bestbuy
from repro.datasets.fragmented import generate_fragmented
from repro.datasets.private_like import generate_private
from repro.datasets.synthetic import generate_synthetic
from repro.datasets.schema import instance_from_json, instance_to_json, load_instance, save_instance
from repro.datasets.stats import dataset_stats

__all__ = [
    "generate_bestbuy",
    "generate_fragmented",
    "generate_private",
    "generate_synthetic",
    "instance_to_json",
    "instance_from_json",
    "save_instance",
    "load_instance",
    "dataset_stats",
]
