"""Fragmented synthetic workloads: many independent components by design.

Real classifier workloads are often topically clustered — camera queries
share camera properties, refrigerator queries share refrigerator
properties, and nothing bridges the two.  Such workloads decompose into
independent components that :func:`repro.decompose.solve_bcc_sharded`
can solve in parallel.  This generator builds that structure explicitly:
``n_components`` disjoint property pools, each populated by an
independent synthetic sub-workload (same length/cost/utility marginals
as :func:`repro.datasets.synthetic.generate_synthetic`), so the
component count of the result is known by construction and the
decomposition engine has something honest to chew on.
"""

from __future__ import annotations

import math
import random
from typing import Dict, FrozenSet, List, Set

from repro.core.model import BCCInstance, powerset_classifiers
from repro.datasets.lengths import plan_length_counts
from repro.datasets.synthetic import MAX_LENGTH, _LENGTH_WEIGHTS


def _feasible_counts(n_queries: int, n_properties: int) -> Dict[int, int]:
    """Per-length counts clamped to the pool's distinct-query capacity.

    :func:`plan_length_counts` caps only the singleton bucket; on the
    small per-component pools used here any length can run out of
    distinct combinations, which would stall rejection sampling forever.
    Excess spills to the next longer length, then a final pass fills any
    length with capacity left.
    """
    capacity = {
        length: math.comb(n_properties, length)
        for length in range(1, MAX_LENGTH + 1)
    }
    if n_queries > sum(capacity.values()):
        raise ValueError(
            f"cannot draw {n_queries} distinct queries of length <= "
            f"{MAX_LENGTH} from {n_properties} properties"
        )
    counts = plan_length_counts(n_queries, _LENGTH_WEIGHTS, n_properties)
    feasible: Dict[int, int] = {}
    spill = 0
    for length in range(1, MAX_LENGTH + 1):
        want = counts.get(length, 0) + spill
        feasible[length] = min(want, capacity[length])
        spill = want - feasible[length]
    for length in range(1, MAX_LENGTH + 1):
        if spill == 0:
            break
        room = capacity[length] - feasible[length]
        extra = min(room, spill)
        feasible[length] += extra
        spill -= extra
    return {length: count for length, count in feasible.items() if count > 0}


def generate_fragmented(
    n_components: int = 8,
    queries_per_component: int = 40,
    properties_per_component: int = 30,
    budget: float = 400.0,
    seed: int = 0,
    max_cost: int = 50,
    max_utility: int = 50,
) -> BCCInstance:
    """Generate a BCC instance with exactly ``n_components`` components.

    Each component draws its queries from a private property pool
    (``c{k}_p{i}`` names), so no property — and hence no classifier — is
    shared across components; ``partition_workload`` recovers exactly
    ``n_components`` shards.  Marginals within a component follow the
    paper's synthetic spec: truncated-geometric lengths, integer costs in
    ``[0, max_cost]``, integer utilities in ``[1, max_utility]``.
    """
    if n_components <= 0:
        raise ValueError(f"n_components must be positive, got {n_components}")
    if queries_per_component <= 0:
        raise ValueError(
            f"queries_per_component must be positive, got {queries_per_component}"
        )
    if properties_per_component < MAX_LENGTH:
        raise ValueError(
            f"need at least {MAX_LENGTH} properties per component, "
            f"got {properties_per_component}"
        )
    rng = random.Random(seed)

    query_list: List[FrozenSet[str]] = []
    utilities: Dict[FrozenSet[str], float] = {}
    costs: Dict[FrozenSet[str], float] = {}
    for component in range(n_components):
        pool = [f"c{component}_p{i}" for i in range(properties_per_component)]
        counts = _feasible_counts(queries_per_component, properties_per_component)
        queries: Set[FrozenSet[str]] = set()
        for length, count in sorted(counts.items()):
            while count > 0:
                candidate = frozenset(rng.sample(pool, length))
                if candidate not in queries:
                    queries.add(candidate)
                    count -= 1
        for query in sorted(queries, key=sorted):
            query_list.append(query)
            utilities[query] = float(rng.randint(1, max_utility))
            for classifier in powerset_classifiers(query):
                if classifier not in costs:
                    costs[classifier] = float(rng.randint(0, max_cost))
    return BCCInstance(query_list, utilities, costs, budget=budget)
