"""Dataset CLI: generate, inspect and save workloads.

Examples::

    python -m repro.datasets generate --kind bb --out bb.json
    python -m repro.datasets generate --kind private --queries 500 --properties 800 --seed 3 --out p.json
    python -m repro.datasets stats bb.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.datasets import (
    dataset_stats,
    generate_bestbuy,
    generate_private,
    generate_synthetic,
    load_instance,
    save_instance,
)

_GENERATORS = {
    "bb": generate_bestbuy,
    "private": generate_private,
    "synthetic": generate_synthetic,
}

_DEFAULT_SIZES = {
    "bb": (1000, 725),
    "private": (5000, 2000),
    "synthetic": (10_000, 6_200),
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(prog="python -m repro.datasets")
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a dataset and save it")
    gen.add_argument("--kind", choices=sorted(_GENERATORS), required=True)
    gen.add_argument("--queries", type=int, default=0)
    gen.add_argument("--properties", type=int, default=0)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--out", required=True, help="output JSON path")

    stats = sub.add_parser("stats", help="print statistics of a saved dataset")
    stats.add_argument("path")

    args = parser.parse_args(argv)
    if args.command == "generate":
        queries, properties = _DEFAULT_SIZES[args.kind]
        if args.queries:
            queries = args.queries
        if args.properties:
            properties = args.properties
        instance = _GENERATORS[args.kind](queries, properties, seed=args.seed)
        save_instance(instance, args.out)
        print(f"wrote {args.kind} dataset ({queries} queries) to {args.out}")
        return 0
    if args.command == "stats":
        instance = load_instance(args.path)
        print(json.dumps(dataset_stats(instance), indent=2, default=str))
        return 0
    return 1


if __name__ == "__main__":
    sys.exit(main())
