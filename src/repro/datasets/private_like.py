"""Private-dataset-like generator (the eBay "P" dataset of Section 6.1).

The real dataset is proprietary; this generator reproduces its published
structure (see DESIGN.md "Substitutions"):

- 5K queries over 2K properties, organized into product *categories*
  (mostly Electronics, Fashion, Home & Garden in the paper);
- query lengths 1-5 with 55% singletons and >=95% length <= 2;
- "popular queries have popular subqueries": multi-property queries are
  built from *popular* properties, and with high probability their
  singleton/pair subqueries are added to the workload too — the structural
  feature the paper credits for ``A^BCC``'s wide margin on P;
- classifier costs estimated by analysts: in ``[0, 50]`` with average ~8;
  conjunction classifiers are usually cheaper than the sum of their parts
  (less feature variability, as in the "wooden table" example) which makes
  the 1-cover/2-cover tradeoff real; a small fraction are impractical
  (cost infinity, omitted from the input as the paper does);
- utilities combine category importance with query popularity, rescaled to
  ``[1, 50]``.
"""

from __future__ import annotations

import math
import random
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.core.model import BCCInstance, powerset_classifiers
from repro.datasets.lengths import plan_length_counts
from repro.datasets.zipf import weighted_sample_distinct, zipf_weights

_LENGTH_WEIGHTS = ((1, 0.55), (2, 0.40), (3, 0.03), (4, 0.015), (5, 0.005))
_CATEGORIES = (
    "electronics",
    "fashion",
    "home-garden",
    "sports",
    "toys",
    "auto",
    "beauty",
    "books",
)


def _property_difficulty(rng: random.Random) -> float:
    """Analyst-estimated labeling difficulty, lognormal, mean ~8, max 50."""
    value = rng.lognormvariate(math.log(7.0), 0.7)
    return min(50.0, max(1.0, value))


def generate_private(
    n_queries: int = 5000,
    n_properties: int = 2000,
    budget: float = 2000.0,
    seed: int = 0,
    subquery_boost: float = 0.5,
    impractical_rate: float = 0.02,
) -> BCCInstance:
    """Generate a Private-like BCC instance with analyst costs and utilities."""
    if n_queries <= 0:
        raise ValueError(f"n_queries must be positive, got {n_queries}")
    if n_properties < 5 * len(_CATEGORIES):
        raise ValueError(f"need at least {5 * len(_CATEGORIES)} properties")
    rng = random.Random(seed)

    # Partition the properties into category blocks; popularity is Zipf
    # *within* each category so every category has its own head terms.
    per_category = n_properties // len(_CATEGORIES)
    category_props: Dict[str, List[str]] = {}
    popularity: Dict[str, float] = {}
    difficulty: Dict[str, float] = {}
    category_importance: Dict[str, float] = {}
    for index, category in enumerate(_CATEGORIES):
        start = index * per_category
        end = start + per_category if index < len(_CATEGORIES) - 1 else n_properties
        block = [f"{category}:{i}" for i in range(end - start)]
        category_props[category] = block
        for rank, prop in enumerate(block):
            popularity[prop] = 1.0 / (rank + 1)
            difficulty[prop] = _property_difficulty(rng)
        category_importance[category] = 0.5 + rng.random()

    counts = plan_length_counts(n_queries, _LENGTH_WEIGHTS, n_properties)
    queries: Set[FrozenSet[str]] = set()
    raw_utility: Dict[FrozenSet[str], float] = {}
    category_of: Dict[str, str] = {
        prop: category
        for category, block in category_props.items()
        for prop in block
    }

    def utility_of(query: FrozenSet[str], category: str) -> float:
        pop = sum(popularity[p] for p in query) / len(query)
        noise = 0.6 + 0.8 * rng.random()
        return category_importance[category] * pop * noise

    def add_query(query: FrozenSet[str], category: str) -> bool:
        if query in queries:
            return False
        queries.add(query)
        raw_utility[query] = utility_of(query, category)
        return True

    def fresh_query(length: int) -> Tuple[FrozenSet[str], str]:
        category = rng.choice(_CATEGORIES)
        block = category_props[category]
        weights = zipf_weights(len(block))
        chosen = weighted_sample_distinct(
            rng, block, weights, min(length, len(block))
        )
        return frozenset(chosen), category

    # Longest queries first; shorter buckets then preferentially reuse
    # their sub-sets ("popular queries have popular subqueries").
    for length in sorted(counts, reverse=True):
        target = counts[length]
        produced = 0
        supersets = sorted(
            (q for q in queries if len(q) > length), key=sorted
        )
        rng.shuffle(supersets)
        superset_index = 0
        while produced < target:
            query = None
            if superset_index < len(supersets) and rng.random() < subquery_boost:
                parent = supersets[superset_index]
                superset_index += 1
                sub = frozenset(rng.sample(sorted(parent), length))
                category = category_of[next(iter(sub))]
                if add_query(sub, category):
                    produced += 1
                    continue
            query, category = fresh_query(length)
            if len(query) == length and add_query(query, category):
                produced += 1

    query_list = sorted(queries, key=sorted)

    # Rescale raw utilities into [1, 50] as the paper does.
    max_raw = max(raw_utility.values())
    utilities = {
        q: max(1.0, round(49.0 * raw_utility[q] / max_raw + 1.0))
        for q in query_list
    }

    # Classifier costs: a conjunction classifier is cheaper than the sum of
    # its parts (shrink factor per extra property) but never trivial.
    costs: Dict[FrozenSet[str], float] = {}
    for query in query_list:
        for classifier in powerset_classifiers(query):
            if classifier in costs:
                continue
            if len(classifier) >= 2 and rng.random() < impractical_rate:
                costs[classifier] = math.inf
                continue
            base = sum(difficulty[p] for p in classifier)
            shrink = 0.62 ** (len(classifier) - 1)
            noise = 0.75 + 0.5 * rng.random()
            costs[classifier] = float(
                min(50.0, max(0.0, round(base * shrink * noise)))
            )
    return BCCInstance(query_list, utilities, costs, budget=budget)
