"""Zipf-style popularity helpers shared by the dataset generators."""

from __future__ import annotations

import random
from typing import List, Sequence, TypeVar

T = TypeVar("T")


def zipf_utilities(count: int, top: float, exponent: float = 1.0) -> List[float]:
    """Rank-based search-frequency utilities: ``max(1, top / rank^exponent)``.

    Models the classic long-tail search-log shape: a few very popular
    queries and a large floor of rarely-searched ones.
    """
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    if top < 1:
        raise ValueError(f"top must be >= 1, got {top}")
    return [max(1.0, round(top / (rank**exponent))) for rank in range(1, count + 1)]


def zipf_weights(count: int, exponent: float = 1.0) -> List[float]:
    """Unnormalized Zipf weights ``1 / rank^exponent``."""
    return [1.0 / (rank**exponent) for rank in range(1, count + 1)]


def zipf_rank(rng: random.Random, count: int, exponent: float = 1.0) -> int:
    """A 0-based rank sampled with probability ∝ ``1 / (rank+1)^exponent``.

    The popularity draw of the serving traffic generator: rank 0 is the
    hottest tenant, the tail falls off Zipf-style.  Deterministic in
    ``rng``'s state, so seeded traces are replayable.
    """
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    return rng.choices(range(count), weights=zipf_weights(count, exponent), k=1)[0]


def weighted_sample_distinct(
    rng: random.Random, items: Sequence[T], weights: Sequence[float], k: int
) -> List[T]:
    """Sample ``k`` distinct items with probability proportional to weight."""
    if k > len(items):
        raise ValueError(f"cannot sample {k} distinct items from {len(items)}")
    chosen: List[T] = []
    taken = set()
    # Rejection sampling is fast because k is tiny (query length <= 6).
    while len(chosen) < k:
        item = rng.choices(items, weights=weights, k=1)[0]
        if item not in taken:
            taken.add(item)
            chosen.append(item)
    return chosen
