"""``A^BCC`` — Algorithm 1 of the paper.

High-level scheme (verbatim from the paper):

1. preprocessing: apply two pruning methods to reduce the classifier set;
2. allocate half of the budget to solve the BCC(1) and BCC(2) subproblems
   via the algorithm for ``BCC_{l=2}`` (Knapsack + ``A_H^QK``);
3. test whether the produced solution can be improved cost-wise via the
   MC3 algorithm of [23] (a local-search optimization);
4.-6. while the budget allows covering more queries: compute the residual
   problem and repeat steps 2-3 with the *remaining* budget.

Free (zero-cost) classifiers are selected up front; every candidate
extension is re-scored with true coverage semantics before acceptance, so
the Knapsack/QK objective overcounts can never inflate the result.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.algorithms.pruning import PruningConfig, prune_classifiers, prune_qk_graph
from repro.algorithms.residual import ResidualProblem
from repro.core.bitset import MASK_ENGINES, active_engine
from repro.core.model import BCCInstance, Classifier, Query
from repro.core.solution import Solution, evaluate
from repro.knapsack.solvers import solve_knapsack
from repro.mc3 import InfeasibleCoverError, solve_mc3
from repro.profile import (
    PhaseProfiler,
    activate,
    current_profiler,
    phase,
    profiling_enabled,
)
from repro.qk import QKConfig, solve_qk


@dataclass
class AbccConfig:
    """Tuning knobs for ``A^BCC``.

    Attributes:
        qk: configuration of the inner ``A_H^QK`` solver.
        pruning: preprocessing configuration (line 1); ``None`` disables
            preprocessing entirely (the Figure 3e/3f ablation).
        use_mc3: run the MC3 local-search improvement (line 3).
        first_round_fraction: budget fraction for the first BCC(1)/BCC(2)
            round (the paper uses half, saving the rest for residuals).
        max_rounds: hard cap on residual iterations.
        max_qk_query_length: only queries up to this length contribute
            2-cover edges to the QK graph (longer ones still reach the
            solution through residual 1-covers); ``None`` = no limit.
        qk_singleton_bonus: expose 1-coverable-query utilities to the QK
            solver as node bonuses through a zero-cost virtual node, so
            the HkS engine optimizes the singleton/pair synergy the paper
            observes ("the QK solution also tends to cover many popular
            queries of length 1").  Engineering refinement; candidate
            picks are still scored with true coverage either way.
        cover_greedy_arm: add a third per-round candidate that greedily
            buys whole cheapest residual covers by utility per cost (the
            same minimal-cover machinery MC3 uses).  It reaches covers of
            three or more classifiers in one step, which the Knapsack/QK
            split only reaches after residual unlocking — important on
            sparse workloads with long queries.
        cover_arm_threshold: only run the cover-greedy arm in a round when
            at least this fraction of the uncovered utility sits in
            queries whose missing set has three or more properties (the
            covers the other two arms cannot express).  On short-query
            workloads the arm is unnecessary and its greedy picks can
            derail the Knapsack/QK trajectory.
    """

    qk: QKConfig = field(default_factory=QKConfig)
    pruning: Optional[PruningConfig] = field(default_factory=PruningConfig)
    use_mc3: bool = True
    first_round_fraction: float = 0.5
    max_rounds: int = 12
    max_qk_query_length: Optional[int] = None
    qk_singleton_bonus: bool = True
    final_polish: bool = True
    polish_eval_cap: int = 400
    throttle_all_rounds: bool = False
    cover_greedy_arm: bool = True
    cover_arm_threshold: float = 0.08


_SINGLETON_BONUS = ("__singleton_bonus__",)


def _augment_with_singleton_bonus(residual, graph, budget: float):
    """Attach 1-cover utilities to the QK graph via a zero-cost virtual node.

    For each uncovered query ``q`` with missing set ``M`` and each usable
    classifier ``c`` with ``M ⊆ c ⊆ q``, an edge (virtual, c) of weight
    ``U(q)`` is added — classifiers not yet in the graph join it with
    their cost.  ``solve_qk`` always selects zero-cost nodes, so these
    edges act as node bonuses inside the HkS engine, letting one QK run
    optimize 1-cover and 2-cover gains jointly.
    """
    bonus_edges = []
    for query in residual.uncovered_queries():
        missing = residual.missing(query)
        utility = residual.workload.utility(query)
        # Credit exactly the two residual 1-covers the paper's construction
        # uses (the full query classifier and the missing-set classifier);
        # crediting intermediate supersets of M(q) invites greedy traps.
        for classifier in {query, missing}:
            if classifier and (
                classifier in graph or residual.usable(classifier, budget)
            ):
                bonus_edges.append((classifier, utility))
    if not bonus_edges:
        return graph
    augmented = graph.copy()
    augmented.add_node(_SINGLETON_BONUS, 0.0)
    for classifier, utility in bonus_edges:
        if classifier not in augmented:
            augmented.add_node(classifier, residual.workload.cost(classifier))
        augmented.add_edge(_SINGLETON_BONUS, classifier, utility)
    return augmented


def _cover_greedy_pick(
    residual: ResidualProblem, budget: float
) -> FrozenSet[Classifier]:
    """Greedy whole-cover selection on the residual problem.

    Repeatedly buys the uncovered query's cheapest residual minimal cover
    with the best utility-per-incremental-cost ratio until the budget is
    exhausted.  Uses the same minimal-cover search as the MC3 greedy; a
    lazy heap re-validates each query's cached cover on pop (costs only
    drop as classifiers accumulate).

    Entries popped while unaffordable are *parked*, not dropped: a later
    purchase can make cover members free (or cover missing properties),
    shrinking the cover's residual cost, so parked entries re-enter the
    heap after every purchase and late-affordable covers are still bought.
    """
    import heapq

    from repro.core.model import powerset_classifiers
    from repro.mc3.greedy import cheapest_residual_cover

    workload = residual.workload
    compiled = workload.compiled() if active_engine() in MASK_ENGINES else None
    picked: Set[Classifier] = set()
    covered_props: Dict[Query, Set[str]] = {
        q: set(q) - set(residual.missing(q)) for q in residual.uncovered_queries()
    }
    remaining = budget

    def cover_of(query):
        candidates = []
        for classifier in powerset_classifiers(query):
            if classifier in picked or residual.tracker.is_selected(classifier):
                candidates.append((classifier, 0.0))
            elif residual.usable(classifier, budget):
                candidates.append((classifier, workload.cost(classifier)))
        return cheapest_residual_cover(query, candidates, covered_props[query], compiled)

    def ratio_of(query, cost: float) -> float:
        return -math.inf if cost <= 0 else -workload.utility(query) / cost

    heap: List[Tuple[float, float, int, Query]] = []
    for index, query in enumerate(covered_props):
        found = cover_of(query)
        if found is None:
            continue
        cost, _ = found
        heapq.heappush(heap, (ratio_of(query, cost), cost, index, query))

    parked: List[Tuple[float, float, int, Query]] = []

    while heap and remaining > 1e-9:
        ratio, cached_cost, index, query = heapq.heappop(heap)
        if covered_props[query] == set(query):
            continue
        found = cover_of(query)
        if found is None:
            continue
        cost, cover = found
        if cost < cached_cost - 1e-12:
            heapq.heappush(heap, (ratio_of(query, cost), cost, index, query))
            continue
        if cost > remaining + 1e-9:
            # Currently unaffordable: park the entry instead of dropping
            # it; the next purchase re-queues it with fresh costs.
            parked.append((ratio, cost, index, query))
            continue
        for classifier in cover:
            if classifier not in picked and not residual.tracker.is_selected(classifier):
                picked.add(classifier)
                remaining -= workload.cost(classifier)
            for other in workload.queries_containing(classifier):
                if other in covered_props:
                    covered_props[other] |= classifier
        if parked:
            for entry in parked:
                heapq.heappush(heap, entry)
            parked = []
    return frozenset(picked)


def _mc3_improve(residual: ResidualProblem, instance: BCCInstance) -> None:
    """Line 3: try to re-cover the same queries at lower cost.

    The MC3 output replaces the current selection only when it is strictly
    cheaper and verifiably covers the same query set; otherwise the current
    selection is kept (the paper: MC3 is a local-search optimization, not
    guaranteed to improve).
    """
    covered = set(residual.tracker.covered)
    if not covered:
        return
    current = residual.selected
    current_cost = residual.spent()
    try:
        alternative = solve_mc3(instance, queries=covered)
    except InfeasibleCoverError:
        return
    alt_cost = sum(instance.cost(c) for c in alternative)
    if alt_cost >= current_cost - 1e-9:
        return
    # Swap the cheaper selection in through the engine's reset (never
    # re-__init__ the residual in place); revert if it fails to re-cover
    # everything the current selection covers.
    residual.reset(alternative)
    if not covered <= set(residual.tracker.covered):
        residual.reset(current)


def _swap_polish(
    instance: BCCInstance,
    selection: Set[Classifier],
    allowed: FrozenSet[Classifier],
    eval_cap: int,
) -> Set[Classifier]:
    """Bounded 1-for-1 swap local search on the final selection.

    Tries to swap a low-marginal selected classifier for an unselected one
    when the true utility strictly improves within the budget.  Coverage
    tests run off a contributor map (the selected subsets of each affected
    query, maintained across accepted swaps) instead of re-enumerating
    ``2^q`` per trial, and the running spend is maintained incrementally
    by the tracker.  Under the ``bits`` engine the per-query coverage
    test runs on int masks from the compiled workload; affected-query
    utility deltas accumulate in workload order under both engines, so
    the engines accept identical swap sequences.
    """
    from repro.core.coverage import CoverageTracker

    tracker = CoverageTracker(instance)
    tracker.add_all(selection)
    current = set(selection)

    contributors: Dict[Query, Set[Classifier]] = {}
    for classifier in current:
        for query in instance.queries_containing(classifier):
            contributors.setdefault(query, set()).add(classifier)

    compiled = instance.compiled() if active_engine() in MASK_ENGINES else None

    def covered_after_sets(
        query: Query, out: Optional[Classifier], incoming: Optional[Classifier]
    ) -> bool:
        """Coverage of ``(current - {out}) | {incoming}`` restricted to ``query``."""
        union: Set[str] = set()
        if incoming is not None and incoming <= query:
            union |= incoming
        target = set(query)
        if target <= union:
            return True
        for c in contributors.get(query, ()):
            if c != out:
                union |= c
                if target <= union:
                    return True
        return False

    def covered_after_bits(
        query: Query, out: Optional[Classifier], incoming: Optional[Classifier]
    ) -> bool:
        qmask = compiled.query_masks[compiled.query_pos[query]]
        union = 0
        if incoming is not None:
            mask = compiled.mask_of(incoming)
            if mask is not None and not mask & ~qmask:
                union = mask
                if not qmask & ~union:
                    return True
        for c in contributors.get(query, ()):
            if c != out:
                union |= compiled.mask_of(c)
                if not qmask & ~union:
                    return True
        return False

    covered_after = covered_after_bits if compiled is not None else covered_after_sets

    def affected_queries(
        out: Optional[Classifier], incoming: Classifier
    ) -> List[Query]:
        """Queries either classifier touches, in workload order, deduped."""
        affected = list(instance.queries_containing(incoming))
        if out is not None:
            seen = set(affected)
            for query in instance.queries_containing(out):
                if query not in seen:
                    affected.append(query)
        return affected

    def swap_delta(out: Optional[Classifier], incoming: Classifier) -> float:
        delta = 0.0
        for query in affected_queries(out, incoming):
            before = tracker.is_query_covered(query)
            after = covered_after(query, out, incoming)
            if before != after:
                delta += instance.utility(query) * (1.0 if after else -1.0)
        return delta

    # Swap-in candidates ranked by optimistic completion value per cost
    # (the classifier→query index replaces the per-query power-set walk).
    gain_hint: Dict[Classifier, float] = {}
    for c in allowed:
        if c in current:
            continue
        hint = sum(instance.utility(q) for q in instance.queries_containing(c))
        if hint > 0:
            gain_hint[c] = hint
    candidates = sorted(
        gain_hint,
        key=lambda c: (-gain_hint[c] / max(instance.cost(c), 1e-12), sorted(c)),
    )[:60]

    trials = 0
    improved = True
    while improved and trials < eval_cap:
        improved = False
        # Selected classifiers by marginal contribution per cost.
        marginal = {}
        for out in current:
            if instance.cost(out) <= 0:
                continue
            loss = 0.0
            for query in instance.queries_containing(out):
                if tracker.is_query_covered(query) and not covered_after(query, out, None):
                    loss += instance.utility(query)
            marginal[out] = loss
        removable = sorted(
            marginal,
            key=lambda c: (marginal[c] / max(instance.cost(c), 1e-12), sorted(c)),
        )[:10]
        for out in removable:
            refund = instance.cost(out)
            for incoming in candidates:
                if incoming in current:
                    continue
                cost_in = instance.cost(incoming)
                if tracker.spent - refund + cost_in > instance.budget + 1e-9:
                    continue
                if trials >= eval_cap:
                    break
                trials += 1
                delta = swap_delta(out, incoming)
                if delta > 1e-9:
                    tracker.remove(out)
                    tracker.add(incoming)
                    for query in instance.queries_containing(out):
                        contributors.get(query, set()).discard(out)
                    for query in instance.queries_containing(incoming):
                        contributors.setdefault(query, set()).add(incoming)
                    current = (current - {out}) | {incoming}
                    improved = True
                    break
            if improved:
                break
    return current


def solve_bcc(
    instance: BCCInstance,
    config: Optional[AbccConfig] = None,
    certify: bool = False,
) -> Solution:
    """Run ``A^BCC`` on ``instance`` and return an evaluated solution.

    With ``certify``, the result is independently verified against the
    instance (coverage/cost/utility re-derived from first principles,
    budget feasibility checked) and the witness certificate is recorded in
    ``solution.meta["certificate"]``; any disagreement raises a typed
    :class:`~repro.core.errors.CertificateError`.

    When a :mod:`repro.profile` profiler is active — or ``REPRO_PROFILE=1``
    asks for a solve-scoped one — per-phase seconds and probe/rebuild
    counts are attached as ``solution.meta["profile"]``.  Without one, no
    phase timers run and the meta key is absent, so cached solutions stay
    byte-identical to unprofiled runs.
    """
    prof = current_profiler()
    if prof is None and profiling_enabled():
        with activate(PhaseProfiler()) as prof:
            solution = _solve_bcc_impl(instance, config, certify)
    else:
        solution = _solve_bcc_impl(instance, config, certify)
    if prof is not None:
        solution.meta["profile"] = prof.snapshot()
    return solution


def _solve_bcc_impl(
    instance: BCCInstance,
    config: Optional[AbccConfig],
    certify: bool,
) -> Solution:
    config = config or AbccConfig()
    started = time.perf_counter()

    # ------------------------------------------------------------------
    # line 1: preprocessing
    # ------------------------------------------------------------------
    with phase("prune"):
        if config.pruning is not None:
            allowed = prune_classifiers(instance, instance.budget, config.pruning)
        else:
            allowed = frozenset(
                c
                for c in instance.relevant_classifiers()
                if not math.isinf(instance.cost(c))
                and instance.cost(c) <= instance.budget + 1e-9
            )
    residual = ResidualProblem(instance, allowed=allowed)

    # Zero-cost classifiers are free utility: select them all up front.
    residual.select([c for c in allowed if instance.cost(c) == 0.0])

    rounds = 0
    throttled = True
    round_times: List[float] = []
    qk_nodes: List[int] = []
    qk_edges: List[int] = []
    while rounds < config.max_rounds:
        rounds += 1
        round_started = time.perf_counter()
        try:
            remaining = instance.budget - residual.spent()
            if remaining <= 1e-9:
                break
            if rounds >= config.max_rounds - 1:
                throttled = False  # last chance: spend whatever remains
            round_throttled = throttled
            round_budget = (
                remaining * config.first_round_fraction if round_throttled else remaining
            )
            if not config.throttle_all_rounds:
                throttled = False  # only the first round is throttled

            # --------------------------------------------------------------
            # line 2: BCC(1) via Knapsack and BCC(2) via A_H^QK, best of two
            # --------------------------------------------------------------
            with phase("knapsack"):
                items = residual.knapsack_items(round_budget)
                _, chosen_items = solve_knapsack(items, round_budget)
                knapsack_pick = frozenset(item.key for item in chosen_items)

            with phase("qk_build"):
                qk_graph = residual.qk_graph(round_budget, config.max_qk_query_length)
                if config.pruning is not None:
                    qk_graph = prune_qk_graph(qk_graph, config.pruning)
                if config.qk_singleton_bonus:
                    qk_graph = _augment_with_singleton_bonus(
                        residual, qk_graph, round_budget
                    )
                qk_nodes.append(len(qk_graph))
                qk_edges.append(qk_graph.num_edges())
            qk_pick: FrozenSet[Classifier] = frozenset()
            if qk_graph.num_edges() > 0:
                with phase("qk_solve"):
                    qk_pick = frozenset(
                        c for c in solve_qk(qk_graph, round_budget, config.qk)
                        if c != _SINGLETON_BONUS
                    )

            picks = [knapsack_pick, qk_pick]
            if config.cover_greedy_arm:
                uncovered = residual.uncovered_queries()
                total_uncovered = sum(instance.utility(q) for q in uncovered)
                deep = sum(
                    instance.utility(q)
                    for q in uncovered
                    if len(residual.missing(q)) >= 3
                )
                if total_uncovered > 0 and deep / total_uncovered >= config.cover_arm_threshold:
                    with phase("cover_greedy"):
                        picks.append(_cover_greedy_pick(residual, round_budget))

            # True-coverage comparison; infeasible picks are discarded.
            # The candidate slates are probed as one batch — a single
            # vectorized sweep under the matrix engine, the identical
            # serial sequence under sets/bits.
            best_pick: FrozenSet[Classifier] = frozenset()
            best_gain = 0.0
            best_cost = 0.0
            with phase("pick_eval"):
                pick_scores = residual.evaluate_gain_batch(picks)
            for pick, (gain, cost) in zip(picks, pick_scores):
                if cost <= remaining + 1e-9 and (
                    gain > best_gain + 1e-9
                    or (gain > 0 and abs(gain - best_gain) <= 1e-9 and cost < best_cost)
                ):
                    best_pick, best_gain, best_cost = pick, gain, cost

            if best_gain <= 0:
                if round_throttled:
                    # The throttled round found nothing affordable; retry
                    # with the full remaining budget before giving up.
                    throttled = False
                    continue
                break
            residual.select(best_pick)

            # --------------------------------------------------------------
            # line 3: MC3 local-search improvement
            # --------------------------------------------------------------
            if config.use_mc3:
                with phase("mc3"):
                    _mc3_improve(residual, instance)
        finally:
            round_times.append(time.perf_counter() - round_started)

    final_selection: Set[Classifier] = set(residual.selected)
    if config.final_polish:
        with phase("swap_polish"):
            final_selection = _swap_polish(
                instance, final_selection, allowed, config.polish_eval_cap
            )

    prof = current_profiler()
    if prof is not None:
        # Probe/rebuild telemetry folded from the tracker's own counters —
        # the probe paths never call into the profiler, so disabled runs
        # pay nothing there.
        prof.add_count("tracker_probes", residual.tracker.rollbacks)
        prof.add_count("transpose_rebuilds", residual.tracker.transpose_rebuilds)
        prof.add_count("rebuilds_avoided", residual.stats["rebuilds_avoided"])
        prof.add_count("tracker_resets", residual.stats["resets"])

    solution = evaluate(
        instance,
        final_selection,
        meta={
            "algorithm": "A^BCC",
            "rounds": rounds,
            "allowed_classifiers": len(allowed),
            "runtime_sec": time.perf_counter() - started,
            "engine": {
                "kernel": residual.tracker.engine_name,
                "rebuilds_avoided": residual.stats["rebuilds_avoided"],
                "resets": residual.stats["resets"],
                "rollbacks": residual.tracker.rollbacks,
                "transpose_rebuilds": residual.tracker.transpose_rebuilds,
                "qk_nodes": qk_nodes,
                "qk_edges": qk_edges,
                "round_times_sec": round_times,
            },
        },
    )
    if certify:
        from repro.verify.certificate import attach_certificate

        attach_certificate(instance, solution, budget=instance.budget)
    return solution
