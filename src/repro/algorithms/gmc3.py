"""``A^GMC3`` — minimum-cost classifier set reaching a utility target.

Theorem 5.3's scheme: with an alpha-approximate BCC solver, repeatedly run
it with budget ``B`` on the residual workload (covered queries removed,
already-built classifiers free) until the accumulated utility reaches the
target; geometric decay bounds the iteration count.  The optimal budget is
unknown, so — following the paper's practical variant — we binary-search
budgets below the MC3 full-cover cost and keep the cheapest accumulated
solution that reaches the target.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Set, Tuple

from repro.algorithms.bcc import AbccConfig, solve_bcc
from repro.qk import QKConfig


def _light_bcc_config() -> AbccConfig:
    """Default inner-solver configuration for the budget search.

    The binary search discards most iterations, so each A^BCC run uses a
    lighter setup (fewer bipartition rounds, no final polish); the quality
    loss per run is small and the search dominates the outcome.
    """
    return AbccConfig(final_polish=False, qk=QKConfig(rounds=2))
from repro.core.errors import InfeasibleTargetError
from repro.core.model import BCCInstance, Classifier, GMC3Instance
from repro.core.solution import Solution, evaluate
from repro.mc3 import full_cover_cost


@dataclass
class Gmc3Config:
    """Tuning knobs for ``A^GMC3``.

    Attributes:
        bcc: configuration for the inner ``A^BCC`` runs.
        search_steps: binary-search iterations over the budget.
        max_bcc_rounds: cap on successive ``A^BCC`` invocations per budget
            guess (the paper observes 2-4 suffice).
    """

    bcc: AbccConfig = field(default_factory=_light_bcc_config)
    search_steps: int = 5
    max_bcc_rounds: int = 4
    greedy_candidate: bool = True


def _trim(
    instance: GMC3Instance, selection: FrozenSet[Classifier]
) -> FrozenSet[Classifier]:
    """Drop overshoot: remove classifiers while the target still holds,
    then re-cover the surviving query set at minimum cost via MC3."""
    from repro.mc3 import InfeasibleCoverError, solve_mc3

    current = set(selection)
    # Bounded pass: only the most expensive classifiers are candidates for
    # removal (full O(|S|^2 m) trimming is too slow at scale).
    removal_candidates = sorted(current, key=lambda c: -instance.cost(c))[:40]
    for classifier in removal_candidates:
        if instance.cost(classifier) == 0:
            continue
        without = current - {classifier}
        reduced = evaluate(instance, without)
        if reduced.utility >= instance.target - 1e-9:
            current = without
    covered = evaluate(instance, current).covered
    if covered:
        try:
            compressed = solve_mc3(instance, queries=covered)
        except InfeasibleCoverError:
            return frozenset(current)
        if sum(instance.cost(c) for c in compressed) < sum(
            instance.cost(c) for c in current
        ):
            check = evaluate(instance, compressed)
            if check.utility >= instance.target - 1e-9:
                return frozenset(compressed)
    return frozenset(current)


def _greedy_candidate(instance: GMC3Instance) -> Optional[FrozenSet[Classifier]]:
    """Per-classifier greedy until the target, then trimmed.

    A cheap seeding candidate: repeatedly select the classifier with the
    best uncovered-utility-per-cost ratio until the target is reached.
    Guarantees ``A^GMC3`` never returns a costlier solution than the
    natural greedy on the same instance.
    """
    import math as _math

    from repro.core.coverage import CoverageTracker

    tracker = CoverageTracker(instance)
    pool = [
        c
        for c in instance.relevant_classifiers()
        if not _math.isinf(instance.cost(c))
    ]
    spent = 0.0
    while tracker.utility < instance.target - 1e-9:
        best, best_key = None, (-1.0, -1.0)
        for classifier in pool:
            if tracker.is_selected(classifier):
                continue
            gain = sum(
                instance.utility(q)
                for q in instance.queries_containing(classifier)
                if not tracker.is_query_covered(q)
            )
            if gain <= 0:
                continue
            cost = instance.cost(classifier)
            ratio = _math.inf if cost == 0 else gain / cost
            if (ratio, gain) > best_key:
                best_key, best = (ratio, gain), classifier
        if best is None:
            return None
        spent += instance.cost(best)
        tracker.add(best)
    return _trim(instance, tracker.selected)


def _attempt(
    instance: GMC3Instance, budget: float, config: Gmc3Config
) -> Tuple[FrozenSet[Classifier], float, bool]:
    """Accumulate A^BCC solutions at ``budget`` until the target is reached.

    Returns ``(selection, true cost, reached_target)``.
    """
    selected: Set[Classifier] = set()
    for _ in range(config.max_bcc_rounds):
        baseline = evaluate(instance, selected)
        if baseline.utility >= instance.target - 1e-9:
            break
        uncovered = [q for q in instance.queries if q not in baseline.covered]
        if not uncovered:
            break
        residual_costs = dict(instance._costs)
        for classifier in selected:
            residual_costs[classifier] = 0.0
        residual = BCCInstance(
            uncovered,
            {q: instance.utility(q) for q in uncovered},
            residual_costs,
            budget=budget,
            default_utility=instance.default_utility,
            default_cost=instance.default_cost,
        )
        round_solution = solve_bcc(residual, config.bcc)
        if round_solution.utility <= 0:
            break
        selected |= round_solution.classifiers
    trimmed = _trim(instance, frozenset(selected))
    final = evaluate(instance, trimmed)
    if final.utility >= instance.target - 1e-9:
        return trimmed, final.cost, True
    untrimmed = evaluate(instance, selected)
    return (
        frozenset(selected),
        untrimmed.cost,
        untrimmed.utility >= instance.target - 1e-9,
    )


def solve_gmc3(
    instance: GMC3Instance,
    config: Optional[Gmc3Config] = None,
    certify: bool = False,
) -> Solution:
    """Run ``A^GMC3`` and return the cheapest target-reaching solution found.

    With ``certify``, the result is verified from first principles —
    including that the certified utility actually reaches the target —
    and the witness certificate lands in ``solution.meta["certificate"]``.

    Raises:
        InfeasibleTargetError: if the target exceeds the total utility of
            the workload, or the utility coverable at finite cost — in
            either case no classifier set can reach it.
    """
    config = config or Gmc3Config()
    started = time.perf_counter()
    total = instance.total_utility()
    if instance.target > total + 1e-9:
        raise InfeasibleTargetError(
            f"target {instance.target} exceeds total utility {total}"
        )
    coverable = instance.coverable_queries()
    if len(coverable) < len(instance.queries):
        # Queries walled off by infinite costs shrink both the reachable
        # utility and the MC3 upper bound; covering them is impossible at
        # any budget, so they must not make the budget search crash.
        coverable_total = sum(instance.utility(q) for q in coverable)
        if instance.target > coverable_total + 1e-9:
            raise InfeasibleTargetError(
                f"target {instance.target} exceeds coverable utility "
                f"{coverable_total} ({len(instance.queries) - len(coverable)} "
                f"queries have no finite-cost cover)"
            )
        from repro.mc3 import solve_mc3

        high = sum(
            instance.cost(c) for c in solve_mc3(instance, queries=coverable)
        )
    else:
        high = full_cover_cost(instance)
    best: Optional[Tuple[FrozenSet[Classifier], float]] = None

    if config.greedy_candidate:
        seeded = _greedy_candidate(instance)
        if seeded is not None:
            seeded_cost = evaluate(instance, seeded).cost
            best = (seeded, seeded_cost)

    # The full-cover budget always reaches any feasible target in one round.
    selection, cost, reached = _attempt(instance, high, config)
    if reached and (best is None or cost < best[1]):
        best = (selection, cost)

    lo, hi = 0.0, high
    for _ in range(config.search_steps):
        mid = 0.5 * (lo + hi)
        selection, cost, reached = _attempt(instance, mid, config)
        if reached:
            hi = mid
            if best is None or cost < best[1]:
                best = (selection, cost)
        else:
            lo = mid

    if best is None:
        # Numerically pathological; fall back to covering everything that
        # can be covered.
        from repro.mc3 import solve_mc3

        best = (solve_mc3(instance, queries=coverable), 0.0)
    solution = evaluate(
        instance,
        best[0],
        meta={
            "algorithm": "A^GMC3",
            "budget_upper_bound": high,
            "runtime_sec": time.perf_counter() - started,
            "reached_target": True,
        },
    )
    if certify:
        from repro.verify.certificate import attach_certificate

        attach_certificate(instance, solution, target=instance.target)
    return solution
