"""Preprocessing / pruning (line 1 of Algorithm 1).

Two procedures, both with bounded objective error (Section 4.2):

1. **Replaceable-classifier rule** — drop a classifier of length ``r > 1``
   whenever strictly shorter relevant classifiers can cover the same
   properties for at most ``r`` times its cost (in uniform-cost instances
   this collapses the solution space to singleton classifiers).  A
   *small-budget protection* keeps a long classifier when pruning it would
   leave some query with no within-budget cover.
2. **Leverage-score rule** — spectral pruning of the BCC(2)/QK graph: node
   importance is its weighted leverage in a low-rank approximation of the
   adjacency matrix; nodes in the negligible tail (and the edges through
   them) are dropped, shrinking the QK instance at a provably small cost.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Set

import numpy as np

from repro.core.model import Classifier, ClassifierWorkload, powerset_classifiers
from repro.graphs.graph import Node, WeightedGraph
from repro.mc3.greedy import cheapest_residual_cover


@dataclass
class PruningConfig:
    """Knobs for the two pruning procedures.

    Attributes:
        replaceable: run the replaceable-classifier rule.
        leverage: run the leverage-score rule on QK graphs.
        leverage_rank: rank of the spectral approximation.
        leverage_keep: fraction of total leverage mass that must be kept.
        leverage_min_nodes: only prune QK graphs at least this large —
            on small graphs the spectral tail still carries real utility
            and the speedup is irrelevant.
    """

    replaceable: bool = True
    replaceable_factor: float = 1.0
    replaceable_scale_by_length: bool = False
    leverage: bool = True
    leverage_rank: int = 8
    leverage_keep: float = 0.995
    leverage_min_nodes: int = 3000

    @classmethod
    def paper(cls) -> "PruningConfig":
        """The paper's aggressive variant: a length-``r`` classifier is
        pruned when shorter ones replace it within ``r`` times its cost.
        Fast (uniform-cost instances collapse to singletons) but pays a
        real objective factor under tight budgets; used by the
        scalability experiments (Figures 3e/3f)."""
        return cls(replaceable_scale_by_length=True)


def prune_classifiers(
    workload: ClassifierWorkload,
    budget: float,
    config: Optional[PruningConfig] = None,
) -> FrozenSet[Classifier]:
    """The allowed classifier set after preprocessing.

    Always removes classifiers with cost above the budget or infinite cost.
    With ``config.replaceable`` also applies the replaceable-classifier
    rule with small-budget protection.
    """
    config = config or PruningConfig()
    from repro.core.bitset import MASK_ENGINES, active_engine

    compiled = workload.compiled() if active_engine() in MASK_ENGINES else None
    relevant = workload.relevant_classifiers()
    allowed: Set[Classifier] = {
        c
        for c in relevant
        if not math.isinf(workload.cost(c)) and workload.cost(c) <= budget + 1e-9
    }
    if not config.replaceable:
        return frozenset(allowed)

    # Replaceable rule: try to prune long classifiers.
    by_length = sorted(
        (c for c in allowed if len(c) > 1), key=lambda c: (-len(c), sorted(c))
    )
    pruned: Set[Classifier] = set()
    for classifier in by_length:
        shorter = [
            (c, workload.cost(c))
            for c in powerset_classifiers(classifier)
            if len(c) < len(classifier) and c in allowed and c not in pruned
        ]
        found = cheapest_residual_cover(classifier, shorter, set(), compiled)
        if found is None:
            continue
        replacement_cost, _ = found
        threshold = config.replaceable_factor * workload.cost(classifier)
        if config.replaceable_scale_by_length:
            threshold *= len(classifier)
        if replacement_cost <= threshold + 1e-9:
            pruned.add(classifier)

    # Small-budget protection: a query whose every cover from the retained
    # classifiers exceeds the budget re-protects its pruned classifiers.
    retained = allowed - pruned
    for query in workload.queries:
        candidates = [
            (c, workload.cost(c)) for c in powerset_classifiers(query) if c in retained
        ]
        found = cheapest_residual_cover(query, candidates, set(), compiled)
        if found is None or found[0] > budget + 1e-9:
            for c in powerset_classifiers(query):
                if c in pruned:
                    pruned.discard(c)
                    retained.add(c)
    return frozenset(retained)


def leverage_scores(graph: WeightedGraph, rank: int = 8) -> Dict[Node, float]:
    """Weighted leverage score of each node from a rank-``k`` eigenbasis.

    Score of node ``i`` is ``sum_j lambda_j * v_j(i)^2`` over the top
    ``rank`` eigenpairs (by absolute eigenvalue) of the weighted adjacency
    matrix — the spectral mass the node carries.
    """
    nodes = list(graph.nodes)
    n = len(nodes)
    if n == 0:
        return {}
    index = {u: i for i, u in enumerate(nodes)}
    rank = max(1, min(rank, n - 1 if n > 1 else 1))

    if n <= 3 or graph.num_edges() == 0:
        return {u: graph.weighted_degree(u) for u in nodes}

    try:
        from scipy.sparse import coo_matrix
        from scipy.sparse.linalg import eigsh

        rows, cols, vals = [], [], []
        for u, v, w in graph.edges():
            rows.extend((index[u], index[v]))
            cols.extend((index[v], index[u]))
            vals.extend((w, w))
        matrix = coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsr()
        k = min(rank, n - 2)
        # Fixed ARPACK start vector: the default draws from numpy's global
        # RNG, which both advances shared state and makes near-tie
        # selections vary between otherwise identical runs.
        v0 = np.random.RandomState(0).uniform(-1.0, 1.0, n)
        eigenvalues, vectors = eigsh(
            matrix.asfptype(), k=max(1, k), which="LM", v0=v0
        )
    except Exception:
        dense = np.zeros((n, n))
        for u, v, w in graph.edges():
            dense[index[u], index[v]] = w
            dense[index[v], index[u]] = w
        eigenvalues, vectors = np.linalg.eigh(dense)
        order = np.argsort(-np.abs(eigenvalues))[:rank]
        eigenvalues, vectors = eigenvalues[order], vectors[:, order]

    scores = (vectors**2) @ np.abs(eigenvalues)
    return {u: float(scores[index[u]]) for u in nodes}


def prune_qk_graph(
    graph: WeightedGraph, config: Optional[PruningConfig] = None
) -> WeightedGraph:
    """Drop the negligible-leverage tail of a QK graph's nodes.

    Nodes are ranked by leverage; the smallest-score tail whose cumulative
    share is below ``1 - leverage_keep`` is removed together with its
    edges.  Returns a (possibly) smaller copy; the input is not modified.
    """
    config = config or PruningConfig()
    if not config.leverage or len(graph) < max(5, config.leverage_min_nodes):
        return graph.copy()
    scores = leverage_scores(graph, config.leverage_rank)
    total = sum(scores.values())
    if total <= 0:
        return graph.copy()
    ranked = sorted(scores, key=lambda u: scores[u])
    budget_mass = (1.0 - config.leverage_keep) * total
    dropped: Set[Node] = set()
    accumulated = 0.0
    for node in ranked:
        accumulated += scores[node]
        if accumulated > budget_mass:
            break
        dropped.add(node)
    if not dropped:
        return graph.copy()
    return graph.subgraph([u for u in graph.nodes if u not in dropped])
