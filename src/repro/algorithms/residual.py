"""Residual-problem views: BCC(1) and BCC(2) instances given a selection.

Section 4.2 observes that after selecting classifiers, the residual problem
exposes *new* 1- and 2-covers: e.g. once ``Y`` is selected, ``XW`` becomes
a 1-cover of the query ``xyw`` (Example 4.8).  This module captures that:

- For each uncovered query ``q``, the *missing set* ``M(q)`` is ``q`` minus
  the union of the selected classifiers that are subsets of ``q``.
- A classifier ``c`` is a residual 1-cover of ``q`` iff ``M(q) ⊆ c ⊆ q``;
  the Knapsack instance gives each classifier the summed utility of the
  queries it 1-covers (Observation 4.3, generalized).
- A pair ``{A, B}`` is a residual 2-cover of ``q`` iff ``A, B ⊆ q``,
  ``M(q) ⊆ A ∪ B`` and neither alone contains ``M(q)``; the QK graph gives
  the pair edge the summed utility of the queries it 2-covers
  (Observation 4.4, generalized — for ``l > 2`` the same query can induce
  several edges, the overcount the MC3 local search later removes).

On the very first iteration (nothing selected), these constructions are
exactly the paper's BCC(1) Knapsack and BCC(2) QK instances.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.core.bitset import MASK_ENGINES, active_engine
from repro.core.coverage import CoverageTracker
from repro.core.model import Classifier, ClassifierWorkload, Query, powerset_classifiers
from repro.graphs.graph import WeightedGraph
from repro.knapsack.items import KnapsackItem


class ResidualProblem:
    """The residual BCC problem after selecting some classifiers.

    Args:
        workload: the full instance.
        allowed: optional classifier whitelist (post-pruning); classifiers
            outside it are ignored.  Selected classifiers are always valid.
    """

    def __init__(
        self,
        workload: ClassifierWorkload,
        allowed: Optional[Iterable[Classifier]] = None,
    ) -> None:
        self.workload = workload
        self.tracker = CoverageTracker(workload)
        self._allowed: Optional[Set[Classifier]] = (
            None if allowed is None else set(allowed)
        )
        #: Engine telemetry: candidate evaluations served by the undo log
        #: (each one a full tracker rebuild avoided) and selection resets.
        self.stats: Dict[str, int] = {"rebuilds_avoided": 0, "resets": 0}

    # ------------------------------------------------------------------
    # selection state
    # ------------------------------------------------------------------
    @property
    def selected(self) -> FrozenSet[Classifier]:
        """The classifiers selected so far."""
        return self.tracker.selected

    @property
    def utility(self) -> float:
        """Total utility of the queries covered so far."""
        return self.tracker.utility

    def spent(self) -> float:
        """Total cost of the selected classifiers (tracked incrementally)."""
        return self.tracker.spent

    def select(self, classifiers: Iterable[Classifier]) -> List[Query]:
        """Select classifiers; returns the newly covered queries."""
        return self.tracker.add_all(classifiers)

    def reset(self, classifiers: Iterable[Classifier]) -> List[Query]:
        """Replace the whole selection with ``classifiers`` in place.

        Restores the tracker's pristine state and re-selects, so callers
        (the MC3 swap-in) never re-``__init__`` the residual object; the
        allowed whitelist is preserved.  Returns the covered queries.
        """
        self.tracker.reset()
        self.stats["resets"] += 1
        return self.select(classifiers)

    def uncovered_queries(self) -> List[Query]:
        """Queries not yet covered, in workload order."""
        return [
            q for q in self.workload.queries if not self.tracker.is_query_covered(q)
        ]

    def missing(self, query: Query) -> FrozenSet[str]:
        """The missing set ``M(q)``: properties no selected subset covers."""
        return self.tracker.missing_properties(query)

    # ------------------------------------------------------------------
    # classifier availability
    # ------------------------------------------------------------------
    def usable(self, classifier: Classifier, budget: float) -> bool:
        """Unselected, allowed, finite cost within ``budget``."""
        if self.tracker.is_selected(classifier):
            return False
        if self._allowed is not None and classifier not in self._allowed:
            return False
        cost = self.workload.cost(classifier)
        return not math.isinf(cost) and cost <= budget + 1e-9

    def _query_candidates(self, query: Query, budget: float) -> List[Classifier]:
        return [
            c for c in powerset_classifiers(query) if self.usable(c, budget)
        ]

    # ------------------------------------------------------------------
    # BCC(1): residual Knapsack instance
    # ------------------------------------------------------------------
    def knapsack_items(self, budget: float) -> List[KnapsackItem]:
        """One item per classifier that residual-1-covers some query.

        Following the paper's construction, a query ``q`` credits exactly
        two classifiers: the one identical to ``q`` (the original 1-cover)
        and the one identical to its missing set ``M(q)`` (the transferred
        item of the preprocessing step / Example 4.8's residual 1-cover).
        Intermediate supersets of ``M(q)`` would also complete ``q`` but
        crediting them invites greedy traps; they stay reachable through
        the QK bonus augmentation.  Values overlap when one query credits
        both classifiers (the paper's factor-2 loss in the transferred
        instance); produced solutions are always re-scored with true
        coverage.
        """
        value: Dict[Classifier, float] = {}
        for query in self.uncovered_queries():
            missing = self.missing(query)
            utility = self.workload.utility(query)
            for classifier in {query, missing}:
                if classifier and self.usable(classifier, budget):
                    value[classifier] = value.get(classifier, 0.0) + utility
        return [
            KnapsackItem(key=classifier, weight=self.workload.cost(classifier), value=val)
            for classifier, val in value.items()
        ]

    # ------------------------------------------------------------------
    # BCC(2): residual QK instance
    # ------------------------------------------------------------------
    def qk_graph(self, budget: float, max_query_length: Optional[int] = None) -> WeightedGraph:
        """QK graph over residual 2-covers.

        Nodes are usable classifiers participating in some 2-cover (node
        cost = classifier cost); an edge ``{A, B}`` accumulates the utility
        of every uncovered query the pair 2-covers.  For length-2 queries
        with nothing selected this is exactly Observation 4.4's graph.
        """
        graph = WeightedGraph()
        bits = active_engine() in MASK_ENGINES
        compiled = self.workload.compiled() if bits else None
        for query in self.uncovered_queries():
            if max_query_length is not None and len(query) > max_query_length:
                continue
            missing = self.missing(query)
            if len(missing) < 2:
                continue  # 1-coverable; BCC(1) owns it
            utility = self.workload.utility(query)
            if bits:
                # Same candidate order as the set reference; only the
                # intersection/subset tests run on masks.
                mmask = compiled.mask_of(missing)
                pairs = [
                    (c, compiled.mask_of(c))
                    for c in self._query_candidates(query, budget)
                ]
                pairs = [
                    (c, m)
                    for c, m in pairs
                    if m & mmask and mmask & ~m
                ]
                for (a, amask), (b, bmask) in itertools.combinations(pairs, 2):
                    if not mmask & ~(amask | bmask):
                        for node in (a, b):
                            if node not in graph:
                                graph.add_node(node, self.workload.cost(node))
                        graph.add_edge(a, b, utility)
                continue
            candidates = [
                c
                for c in self._query_candidates(query, budget)
                if c & missing and not missing <= c
            ]
            for a, b in itertools.combinations(candidates, 2):
                if missing <= (a | b):
                    for node in (a, b):
                        if node not in graph:
                            graph.add_node(node, self.workload.cost(node))
                    graph.add_edge(a, b, utility)
        return graph

    # ------------------------------------------------------------------
    def evaluate_gain(self, classifiers: Iterable[Classifier]) -> Tuple[float, float]:
        """True (utility gain, cost) of adding ``classifiers`` — no side effects.

        Runs the tracker's read-only ``probe_gain`` kernel: missing-set
        deltas are applied and replayed back in place, so the cost is
        proportional to the trial addition rather than to a full coverage
        rebuild of the current selection.
        """
        addition = [c for c in classifiers if not self.tracker.is_selected(c)]
        cost = sum(self.workload.cost(c) for c in addition)
        gain = self.tracker.probe_gain(addition)
        self.stats["rebuilds_avoided"] += 1
        return gain, cost

    def evaluate_gain_batch(
        self, picks: Iterable[Iterable[Classifier]]
    ) -> List[Tuple[float, float]]:
        """Per-pick :meth:`evaluate_gain` over a batch of candidate slates.

        Element ``i`` is float-exact equal to ``evaluate_gain(picks[i])``
        on the same selection state (each pick is probed against the
        current tracker, never against another pick's additions).  Routed
        through the tracker's ``probe_gain_batch`` kernel: one vectorized
        sweep under the ``matrix`` engine, the serial per-slate sequence
        under ``sets``/``bits``.
        """
        additions: List[List[Classifier]] = []
        costs: List[float] = []
        is_selected = self.tracker.is_selected
        cost_of = self.workload.cost
        for pick in picks:
            addition = [c for c in pick if not is_selected(c)]
            additions.append(addition)
            costs.append(sum(cost_of(c) for c in addition))
        gains = self.tracker.probe_gain_batch(additions)
        self.stats["rebuilds_avoided"] += len(additions)
        return list(zip(gains, costs))

    def _rebuild_evaluate_gain(
        self, classifiers: Iterable[Classifier]
    ) -> Tuple[float, float]:
        """Legacy gain evaluation rebuilding a fresh tracker per call.

        Kept only as the "before" arm of ``bench_coverage_engine``; the
        solver always uses :meth:`evaluate_gain`.
        """
        addition = [c for c in classifiers if c not in self.tracker.selected]
        cost = sum(self.workload.cost(c) for c in addition)
        probe = CoverageTracker(self.workload)
        probe.add_all(self.tracker.selected)
        before = probe.utility
        probe.add_all(addition)
        return probe.utility - before, cost
