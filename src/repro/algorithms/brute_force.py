"""Exact BCC oracle by branch-and-bound (Figure 3d and the test suite).

Enumerates include/exclude decisions over the feasible relevant classifiers
ordered by potential utility, with an optimistic bound (utility of every
query still coverable by the remaining classifier suffix).  Node utilities
come from one shared :class:`CoverageTracker` driven through its
checkpoint/rollback undo log — the search never re-derives coverage of the
current prefix from scratch.
"""

from __future__ import annotations

import math
from typing import List, Set, Tuple

from repro.core.coverage import CoverageTracker
from repro.core.model import BCCInstance, Classifier
from repro.core.solution import Solution, evaluate

_MAX_CLASSIFIERS = 24


def solve_bcc_exact(instance: BCCInstance, certify: bool = False) -> Solution:
    """Provably optimal BCC solution (small instances only).

    With ``certify``, the result is verified from first principles and the
    witness certificate lands in ``solution.meta["certificate"]``.

    Raises:
        ValueError: if the feasible classifier set is too large.
    """
    classifiers: List[Classifier] = sorted(
        (
            c
            for c in instance.relevant_classifiers()
            if not math.isinf(instance.cost(c)) and instance.cost(c) <= instance.budget
        ),
        key=lambda c: (instance.cost(c), sorted(c)),
    )
    if len(classifiers) > _MAX_CLASSIFIERS:
        raise ValueError(
            f"exact BCC limited to {_MAX_CLASSIFIERS} classifiers, got {len(classifiers)}"
        )

    # Optimistic bound: utility of queries whose properties are coverable
    # by the classifiers from position i on plus anything already selected.
    suffix_props: List[Set[str]] = [set() for _ in range(len(classifiers) + 1)]
    for i in range(len(classifiers) - 1, -1, -1):
        suffix_props[i] = suffix_props[i + 1] | classifiers[i]

    best_utility = -1.0
    best_selection: Tuple[Classifier, ...] = ()

    tracker = CoverageTracker(instance)

    def search(index: int, chosen: List[Classifier], cost: float) -> None:
        nonlocal best_utility, best_selection
        if tracker.utility > best_utility:
            best_utility = tracker.utility
            best_selection = tuple(chosen)
        if index == len(classifiers):
            return
        chosen_props = set().union(*chosen) if chosen else set()
        available = chosen_props | suffix_props[index]
        bound = sum(
            instance.utility(q) for q in instance.queries if set(q) <= available
        )
        if bound <= best_utility:
            return
        classifier = classifiers[index]
        if cost + instance.cost(classifier) <= instance.budget + 1e-9:
            chosen.append(classifier)
            tracker.checkpoint()
            tracker.add(classifier)
            search(index + 1, chosen, cost + instance.cost(classifier))
            tracker.rollback()
            chosen.pop()
        search(index + 1, chosen, cost)

    search(0, [], 0.0)
    solution = evaluate(
        instance, best_selection, meta={"algorithm": "brute-force"}
    )
    if certify:
        from repro.verify.certificate import attach_certificate

        attach_certificate(instance, solution, budget=instance.budget)
    return solution
