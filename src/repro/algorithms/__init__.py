"""The paper's algorithms: ``A^BCC``, ``A^GMC3``, ``A^ECC`` and support.

- :mod:`repro.algorithms.residual` — residual-problem views: given the
  classifiers selected so far, what are the current 1-covers (a Knapsack
  instance) and 2-covers (a QK instance) of the uncovered queries.
- :mod:`repro.algorithms.pruning` — preprocessing (line 1 of Algorithm 1).
- :mod:`repro.algorithms.bcc` — ``A^BCC`` (Algorithm 1).
- :mod:`repro.algorithms.gmc3` — ``A^GMC3`` (Theorem 5.3).
- :mod:`repro.algorithms.ecc` — ``A^ECC`` (Theorem 5.4).
- :mod:`repro.algorithms.brute_force` — exact BCC oracle (Figure 3d).
"""

from repro.algorithms.bcc import AbccConfig, solve_bcc
from repro.algorithms.brute_force import solve_bcc_exact
from repro.algorithms.ecc import solve_ecc
from repro.algorithms.gmc3 import Gmc3Config, solve_gmc3
from repro.algorithms.pruning import PruningConfig, prune_classifiers
from repro.algorithms.residual import ResidualProblem

__all__ = [
    "solve_bcc",
    "AbccConfig",
    "solve_gmc3",
    "Gmc3Config",
    "solve_ecc",
    "solve_bcc_exact",
    "prune_classifiers",
    "PruningConfig",
    "ResidualProblem",
]
