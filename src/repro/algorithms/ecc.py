"""``A^ECC`` — maximize utility/cost ratio via densest-subgraph reductions.

Theorem 5.4's construction, reproduced in full:

- **Graph reduction (l <= 2)** — singleton classifiers are nodes weighted
  by cost; a pair query ``xy`` is the edge ``(X, Y)`` weighted by its
  utility; a special zero-cost node ``v*`` hosts an edge ``(X, v*)`` per
  singleton query ``x``.  Solved *exactly* by parametric min-cut.
- **Hypergraph reduction (any l)** — classifiers of length <= l-1 are
  nodes; every minimal cover of a query is a hyperedge with the query's
  utility (the O(1) overcount per query is why this arm is O(1)-approx).
  Solved by greedy peeling, as in the paper's own experiments.
- **Single long classifier** — the best ratio among classifiers identical
  to a query (the solution family the reductions cannot express).

All arms are re-scored with true coverage semantics and the best true
ratio wins.
"""

from __future__ import annotations

import math
from typing import FrozenSet, List, Optional, Tuple

from repro.core.coverage import minimal_covers
from repro.core.model import Classifier, ECCInstance, powerset_classifiers
from repro.core.solution import Solution, evaluate
from repro.densest import solve_densest_exact, solve_densest_peeling
from repro.graphs.graph import WeightedGraph
from repro.graphs.hypergraph import Hypergraph

_VSTAR = ("__vstar__",)


def _graph_arm(instance: ECCInstance) -> Optional[FrozenSet[Classifier]]:
    """Exact DS over the singleton-classifier graph (length <= 2 queries)."""
    graph = WeightedGraph()
    graph.add_node(_VSTAR, 0.0)
    added_edges = 0
    for query in instance.queries:
        if len(query) > 2:
            continue
        utility = instance.utility(query)
        endpoints = []
        feasible = True
        for prop in query:
            classifier = frozenset({prop})
            cost = instance.cost(classifier)
            if math.isinf(cost):
                feasible = False
                break
            if classifier not in graph:
                graph.add_node(classifier, cost)
            endpoints.append(classifier)
        if not feasible:
            continue
        if len(endpoints) == 1:
            graph.add_edge(endpoints[0], _VSTAR, utility)
        else:
            graph.add_edge(endpoints[0], endpoints[1], utility)
        added_edges += 1
    if added_edges == 0:
        return None
    _, selection = solve_densest_exact(graph)
    return frozenset(c for c in selection if c != _VSTAR)


def _hypergraph_arm(
    instance: ECCInstance, max_cover_size: Optional[int] = None
) -> Optional[FrozenSet[Classifier]]:
    """Greedy DS over the minimal-cover hypergraph (all query lengths)."""
    hypergraph = Hypergraph()
    length = instance.length
    added = 0
    for query in instance.queries:
        utility = instance.utility(query)
        available = [
            c
            for c in powerset_classifiers(query)
            if len(c) <= max(1, length - 1) or len(query) == 1
            if not math.isinf(instance.cost(c))
        ]
        for cover in minimal_covers(query, available=available, max_size=max_cover_size):
            for classifier in cover:
                if classifier not in hypergraph:
                    hypergraph.add_node(classifier, instance.cost(classifier))
            hypergraph.add_edge(cover, utility)
            added += 1
    if added == 0:
        return None
    _, selection = solve_densest_peeling(hypergraph)
    return frozenset(selection)


def _single_classifier_arm(instance: ECCInstance) -> Optional[FrozenSet[Classifier]]:
    """The best single classifier identical to a query."""
    best: Optional[Classifier] = None
    best_ratio = -1.0
    for query in instance.queries:
        cost = instance.cost(query)
        if math.isinf(cost):
            continue
        utility = instance.utility(query)
        ratio = math.inf if cost == 0 else utility / cost
        if ratio > best_ratio:
            best_ratio = ratio
            best = query
    return frozenset({best}) if best is not None else None


def _compress(instance: ECCInstance, selection: FrozenSet[Classifier]) -> FrozenSet[Classifier]:
    """Re-cover the same queries at minimum cost (drops the overcounted
    redundancy the hypergraph reduction introduces)."""
    from repro.core.coverage import covered_queries
    from repro.mc3 import InfeasibleCoverError, solve_mc3

    covered = covered_queries(instance, selection)
    if not covered:
        return selection
    try:
        compressed = solve_mc3(instance, queries=covered)
    except InfeasibleCoverError:
        return selection
    return compressed


def solve_ecc(instance: ECCInstance, certify: bool = False) -> Solution:
    """Run ``A^ECC`` and return the evaluated best-ratio solution.

    With ``certify``, the result is verified from first principles and the
    witness certificate lands in ``solution.meta["certificate"]``.
    """
    arms: List[Tuple[str, Optional[FrozenSet[Classifier]]]] = [
        ("graph-exact", _graph_arm(instance)),
        ("hypergraph-peeling", _hypergraph_arm(instance)),
        ("single-classifier", _single_classifier_arm(instance)),
    ]
    best: Optional[Solution] = None
    for name, selection in arms:
        if not selection:
            continue
        for variant, chosen in (
            (name, selection),
            (name + "+mc3", _compress(instance, selection)),
        ):
            candidate = evaluate(
                instance, chosen, meta={"algorithm": "A^ECC", "arm": variant}
            )
            if best is None or candidate.ratio > best.ratio:
                best = candidate
    if best is None:
        best = evaluate(instance, [], meta={"algorithm": "A^ECC", "arm": "empty"})
    if certify:
        from repro.verify.certificate import attach_certificate

        attach_certificate(instance, best)
    return best
