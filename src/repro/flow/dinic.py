"""Dinic's maximum-flow algorithm on an adjacency-list residual network.

A standard O(V^2 E) implementation (much faster in practice, and O(E sqrt(V))
on unit networks).  Capacities are floats; an epsilon guards against
round-off when deciding residual feasibility.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, List, Optional, Set

NodeId = Hashable

_EPS = 1e-12


class _Arc:
    __slots__ = ("to", "cap", "rev")

    def __init__(self, to: int, cap: float, rev: int) -> None:
        self.to = to
        self.cap = cap
        self.rev = rev  # index of the reverse arc in adj[to]


class Dinic:
    """Max-flow solver over nodes named by arbitrary hashables.

    Usage::

        flow = Dinic()
        flow.add_edge("s", "a", 3.0)
        flow.add_edge("a", "t", 2.0)
        value = flow.max_flow("s", "t")
        side = flow.min_cut_source_side("s")
    """

    def __init__(self) -> None:
        self._index: Dict[NodeId, int] = {}
        self._names: List[NodeId] = []
        self._adj: List[List[_Arc]] = []
        self._level: List[int] = []
        self._it: List[int] = []

    def _node(self, name: NodeId) -> int:
        if name not in self._index:
            self._index[name] = len(self._names)
            self._names.append(name)
            self._adj.append([])
        return self._index[name]

    def add_node(self, name: NodeId) -> None:
        """Ensure ``name`` exists (useful for isolated sinks/sources)."""
        self._node(name)

    def add_edge(self, u: NodeId, v: NodeId, capacity: float) -> None:
        """Directed edge ``u -> v``; parallel edges are allowed."""
        if capacity < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity}")
        iu, iv = self._node(u), self._node(v)
        self._adj[iu].append(_Arc(iv, float(capacity), len(self._adj[iv])))
        self._adj[iv].append(_Arc(iu, 0.0, len(self._adj[iu]) - 1))

    # ------------------------------------------------------------------
    def _bfs(self, s: int, t: int) -> bool:
        self._level = [-1] * len(self._names)
        self._level[s] = 0
        queue = deque([s])
        while queue:
            u = queue.popleft()
            for arc in self._adj[u]:
                if arc.cap > _EPS and self._level[arc.to] < 0:
                    self._level[arc.to] = self._level[u] + 1
                    queue.append(arc.to)
        return self._level[t] >= 0

    def _dfs(self, u: int, t: int, pushed: float) -> float:
        if u == t:
            return pushed
        adj_u = self._adj[u]
        while self._it[u] < len(adj_u):
            arc = adj_u[self._it[u]]
            if arc.cap > _EPS and self._level[arc.to] == self._level[u] + 1:
                flow = self._dfs(arc.to, t, min(pushed, arc.cap))
                if flow > _EPS:
                    arc.cap -= flow
                    self._adj[arc.to][arc.rev].cap += flow
                    return flow
            self._it[u] += 1
        return 0.0

    def max_flow(self, source: NodeId, sink: NodeId, limit: Optional[float] = None) -> float:
        """Compute the maximum flow from ``source`` to ``sink``.

        ``limit`` optionally caps the amount of flow pushed (early exit).
        """
        s, t = self._node(source), self._node(sink)
        if s == t:
            raise ValueError("source and sink must differ")
        total = 0.0
        remaining = float("inf") if limit is None else float(limit)
        while remaining > _EPS and self._bfs(s, t):
            self._it = [0] * len(self._names)
            while True:
                flow = self._dfs(s, t, remaining)
                if flow <= _EPS:
                    break
                total += flow
                remaining -= flow
                if remaining <= _EPS:
                    break
        return total

    def min_cut_source_side(self, source: NodeId) -> Set[NodeId]:
        """Nodes reachable from ``source`` in the residual network.

        Valid only after :meth:`max_flow`; the returned set is the source
        side of a minimum cut.
        """
        s = self._node(source)
        seen = [False] * len(self._names)
        seen[s] = True
        stack = [s]
        while stack:
            u = stack.pop()
            for arc in self._adj[u]:
                if arc.cap > _EPS and not seen[arc.to]:
                    seen[arc.to] = True
                    stack.append(arc.to)
        return {self._names[i] for i, flag in enumerate(seen) if flag}
