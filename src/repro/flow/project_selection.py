"""Project selection (maximum-weight closure) via min-cut.

Given *machines* with non-negative costs and *projects* with non-negative
revenues, where each project requires a set of machines, select projects and
machines maximizing ``sum(revenue of selected projects) - sum(cost of
selected machines)`` subject to every selected project having all of its
machines selected.

Classic reduction: source -> project arcs with capacity = revenue,
machine -> sink arcs with capacity = cost, project -> machine arcs with
infinite capacity.  The optimum equals ``total revenue - min cut`` and an
optimal selection is the source side of the cut.

This is the engine behind the exact MC3 solver for ``l <= 2`` and the exact
weighted densest-subgraph oracle: both problems are supermodular
maximizations of the form ``max_S sum of pair/hyperedge revenues fully
inside S minus node costs of S``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, Iterable, Set, Tuple

from repro.flow.dinic import Dinic

Machine = Hashable
ProjectKey = Hashable


@dataclass
class ProjectSelection:
    """A project-selection instance under construction."""

    machine_costs: Dict[Machine, float] = field(default_factory=dict)
    projects: Dict[ProjectKey, Tuple[float, FrozenSet[Machine]]] = field(default_factory=dict)

    def add_machine(self, machine: Machine, cost: float) -> None:
        """Register a machine; repeated registration accumulates cost."""
        if cost < 0:
            raise ValueError(f"machine cost must be non-negative, got {cost}")
        self.machine_costs[machine] = self.machine_costs.get(machine, 0.0) + float(cost)

    def add_project(self, key: ProjectKey, revenue: float, machines: Iterable[Machine]) -> None:
        """Register a project with its revenue and required machines."""
        if revenue < 0:
            raise ValueError(f"project revenue must be non-negative, got {revenue}")
        required = frozenset(machines)
        if key in self.projects:
            raise ValueError(f"duplicate project key {key!r}")
        for machine in required:
            self.machine_costs.setdefault(machine, 0.0)
        self.projects[key] = (float(revenue), required)

    def solve(self) -> Tuple[float, Set[ProjectKey], Set[Machine]]:
        """Return ``(max profit, selected projects, selected machines)``.

        Profit can be 0 (empty selection is always feasible).
        """
        source, sink = ("__source__",), ("__sink__",)
        total_revenue = sum(rev for rev, _ in self.projects.values())
        infinite = total_revenue + 1.0
        net = Dinic()
        net.add_node(source)
        net.add_node(sink)
        for machine, cost in self.machine_costs.items():
            net.add_edge(("m", machine), sink, cost)
        for key, (revenue, machines) in self.projects.items():
            net.add_edge(source, ("p", key), revenue)
            for machine in machines:
                net.add_edge(("p", key), ("m", machine), infinite)
        cut = net.max_flow(source, sink)
        source_side = net.min_cut_source_side(source)
        chosen_projects = {
            key for key in self.projects if ("p", key) in source_side
        }
        chosen_machines = {
            machine for machine in self.machine_costs if ("m", machine) in source_side
        }
        return total_revenue - cut, chosen_projects, chosen_machines


def select_projects(
    machine_costs: Dict[Machine, float],
    projects: Dict[ProjectKey, Tuple[float, Iterable[Machine]]],
) -> Tuple[float, Set[ProjectKey], Set[Machine]]:
    """One-shot helper around :class:`ProjectSelection`."""
    instance = ProjectSelection()
    for machine, cost in machine_costs.items():
        instance.add_machine(machine, cost)
    for key, (revenue, machines) in projects.items():
        instance.add_project(key, revenue, machines)
    return instance.solve()
