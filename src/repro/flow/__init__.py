"""Maximum-flow substrate.

Provides a Dinic max-flow solver and the *project selection* (maximum-weight
closure) reduction built on it.  Project selection is the workhorse behind
two exact polynomial-time components of the reproduction:

- the exact MC3 solver for query length <= 2 (Theorem 2.5 of the paper), and
- the exact weighted densest-subgraph solver used by ``A^ECC``.
"""

from repro.flow.dinic import Dinic
from repro.flow.project_selection import ProjectSelection, select_projects

__all__ = ["Dinic", "ProjectSelection", "select_projects"]
