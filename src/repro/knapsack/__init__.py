"""Knapsack solvers.

``BCC_{l=1}`` is *equivalent* to Knapsack (Theorem 3.1), and the BCC(1)
subproblem of the general algorithm is a Knapsack instance for any ``l``
(Observation 4.3).  The paper relies on the classical FPTAS
(Theorem 2.3); this package provides an exact DP (used whenever the scaled
weights are small), a value-scaling FPTAS, and a ratio-greedy fallback with
the standard 1/2-approximation guarantee.
"""

from repro.knapsack.items import KnapsackItem
from repro.knapsack.solvers import (
    solve_knapsack,
    solve_knapsack_dp,
    solve_knapsack_fptas,
    solve_knapsack_greedy,
    solve_knapsack_grouped,
)

__all__ = [
    "KnapsackItem",
    "solve_knapsack",
    "solve_knapsack_dp",
    "solve_knapsack_fptas",
    "solve_knapsack_greedy",
    "solve_knapsack_grouped",
]
