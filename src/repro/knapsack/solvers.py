"""Knapsack algorithms: exact DP, FPTAS, ratio greedy, and a dispatcher.

All solvers return ``(total value, list of chosen items)`` and never exceed
the capacity.  Items of zero weight and positive value are always taken.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.knapsack.items import KnapsackItem

Result = Tuple[float, List[KnapsackItem]]

# Maximum number of DP cells (items x capacity states) before the exact DP
# refuses and the dispatcher falls back to greedy.
_MAX_DP_CELLS = 150_000_000


def _split_zero_weight(items: Sequence[KnapsackItem]):
    free = [item for item in items if item.weight == 0 and item.value > 0]
    rest = [item for item in items if item.weight > 0]
    return free, rest


def _integer_weights(
    items: Sequence[KnapsackItem], capacity: float
) -> Optional[Tuple[List[int], int]]:
    """Scale weights/capacity to integers if they are (nearly) integral."""
    for scale in (1, 2, 4, 5, 10, 100):
        scaled = [item.weight * scale for item in items]
        cap = capacity * scale
        if all(abs(w - round(w)) < 1e-9 for w in scaled):
            return [int(round(w)) for w in scaled], int(math.floor(cap + 1e-9))
    return None


def solve_knapsack_dp(items: Sequence[KnapsackItem], capacity: float) -> Result:
    """Exact 0/1 knapsack by weight-indexed dynamic programming.

    Requires (near-)integral weights after scaling; raises ``ValueError``
    when weights are not integral or the DP table would be too large.
    """
    if capacity < 0:
        raise ValueError(f"capacity must be >= 0, got {capacity}")
    free, rest = _split_zero_weight(items)
    scaled = _integer_weights(rest, capacity)
    if scaled is None:
        raise ValueError("weights are not integral at any supported scale")
    weights, cap = scaled
    usable = [
        (item, w) for item, w in zip(rest, weights) if w <= cap and item.value > 0
    ]
    if not usable or cap == 0:
        chosen = list(free)
        return sum(i.value for i in chosen), chosen
    if sum(weight for _, weight in usable) <= cap:
        # Everything fits: the optimum takes every positive-value item, no
        # weight-indexed table needed.  Mirrors the DP's backtrack order
        # (free items, then usable in reverse) so the result is identical.
        chosen = list(free)
        chosen.extend(item for item, _ in reversed(usable))
        return sum(i.value for i in chosen), chosen
    if len(usable) * (cap + 1) > _MAX_DP_CELLS:
        raise ValueError(
            f"DP table too large: {len(usable)} items x {cap + 1} states"
        )

    dp = np.zeros(cap + 1)
    take = np.zeros((len(usable), cap + 1), dtype=bool)
    for index, (item, weight) in enumerate(usable):
        shifted = dp[: cap + 1 - weight] + item.value
        better = shifted > dp[weight:]
        dp[weight:][better] = shifted[better]
        take[index, weight:] = better

    position = int(np.argmax(dp))
    chosen = list(free)
    for index in range(len(usable) - 1, -1, -1):
        item, weight = usable[index]
        if take[index, position]:
            chosen.append(item)
            position -= weight
    value = sum(i.value for i in chosen)
    return value, chosen


def solve_knapsack_greedy(items: Sequence[KnapsackItem], capacity: float) -> Result:
    """Ratio-greedy with best-single-item fallback (1/2-approximation)."""
    if capacity < 0:
        raise ValueError(f"capacity must be >= 0, got {capacity}")
    free, rest = _split_zero_weight(items)
    fitting = [i for i in rest if i.weight <= capacity and i.value > 0]
    by_ratio = sorted(
        fitting, key=lambda i: (-i.value / i.weight, i.weight)
    )
    chosen: List[KnapsackItem] = []
    remaining = capacity
    for item in by_ratio:
        if item.weight <= remaining + 1e-12:
            chosen.append(item)
            remaining -= item.weight
    greedy_value = sum(i.value for i in chosen)
    best_single = max(fitting, key=lambda i: i.value, default=None)
    if best_single is not None and best_single.value > greedy_value:
        chosen = [best_single]
    chosen.extend(free)
    return sum(i.value for i in chosen), chosen


def solve_knapsack_fptas(
    items: Sequence[KnapsackItem], capacity: float, epsilon: float = 0.1
) -> Result:
    """Classical value-scaling FPTAS: ``(1 + epsilon)``-approximation.

    Values are rounded down to multiples of ``eps * vmax / n`` and a
    min-weight-per-value DP runs over the scaled value range.
    """
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    if capacity < 0:
        raise ValueError(f"capacity must be >= 0, got {capacity}")
    free, rest = _split_zero_weight(items)
    fitting = [i for i in rest if i.weight <= capacity and i.value > 0]
    if not fitting:
        chosen = list(free)
        return sum(i.value for i in chosen), chosen

    vmax = max(i.value for i in fitting)
    scale = epsilon * vmax / len(fitting)
    scaled_values = [int(i.value / scale) for i in fitting]
    value_cap = sum(scaled_values)

    INF = float("inf")
    min_weight = [0.0] + [INF] * value_cap
    take = np.zeros((len(fitting), value_cap + 1), dtype=bool)
    for index, (item, sval) in enumerate(zip(fitting, scaled_values)):
        if sval == 0:
            continue
        for value in range(value_cap, sval - 1, -1):
            candidate = min_weight[value - sval] + item.weight
            if candidate < min_weight[value]:
                min_weight[value] = candidate
                take[index, value] = True

    best_value = max(
        (v for v in range(value_cap + 1) if min_weight[v] <= capacity + 1e-12),
        default=0,
    )
    chosen = list(free)
    position = best_value
    for index in range(len(fitting) - 1, -1, -1):
        if position > 0 and take[index, position]:
            chosen.append(fitting[index])
            position -= scaled_values[index]
    return sum(i.value for i in chosen), chosen


GroupedResult = Tuple[float, List[Optional[KnapsackItem]]]


def solve_knapsack_grouped(
    groups: Sequence[Sequence[KnapsackItem]], capacity: float
) -> GroupedResult:
    """Exact multiple-choice 0/1 knapsack: at most one item per group.

    The decomposition engine's recombination problem: each group is one
    shard's (cost, utility) profile and the DP picks one point per shard
    maximizing total value within ``capacity``.  Skipping a group is
    always allowed (the returned per-group entry is ``None``).

    Same contract as :func:`solve_knapsack_dp`: requires (near-)integral
    weights after scaling and a tractable table, else ``ValueError`` —
    callers fall back to an exact pareto-merge over float weights.
    Returns ``(total value, chosen item or None per group)``.
    """
    if capacity < 0:
        raise ValueError(f"capacity must be >= 0, got {capacity}")
    flat = [item for group in groups for item in group]
    scaled = _integer_weights(flat, capacity)
    if scaled is None:
        raise ValueError("weights are not integral at any supported scale")
    weights, cap = scaled
    group_weights: List[List[int]] = []
    cursor = 0
    for group in groups:
        group_weights.append(weights[cursor : cursor + len(group)])
        cursor += len(group)
    if (len(groups) + 1) * (cap + 1) > _MAX_DP_CELLS:
        raise ValueError(
            f"DP table too large: {len(groups)} groups x {cap + 1} states"
        )

    dp = np.zeros(cap + 1)
    picks: List[np.ndarray] = []
    for group, gweights in zip(groups, group_weights):
        ndp = dp.copy()
        pick = np.full(cap + 1, -1, dtype=np.int32)
        for index, (item, weight) in enumerate(zip(group, gweights)):
            if weight > cap or item.value <= 0:
                continue
            shifted = dp[: cap + 1 - weight] + item.value
            better = shifted > ndp[weight:]
            ndp[weight:][better] = shifted[better]
            pick[weight:][better] = index
        dp = ndp
        picks.append(pick)

    position = int(np.argmax(dp))  # ties break to the lowest weight
    value = float(dp[position])
    chosen: List[Optional[KnapsackItem]] = [None] * len(groups)
    for gi in range(len(groups) - 1, -1, -1):
        index = int(picks[gi][position])
        if index >= 0:
            chosen[gi] = groups[gi][index]
            position -= group_weights[gi][index]
    return value, chosen


def solve_knapsack(
    items: Sequence[KnapsackItem], capacity: float
) -> Result:
    """Best-effort knapsack: exact DP when tractable, greedy otherwise.

    This is the entry point ``A^BCC`` uses for the BCC(1) subproblem.
    """
    try:
        return solve_knapsack_dp(items, capacity)
    except ValueError:
        return solve_knapsack_greedy(items, capacity)
