"""Knapsack item type."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable


@dataclass(frozen=True)
class KnapsackItem:
    """An item with a payload key, non-negative weight and value.

    ``key`` identifies the item in solutions (for BCC(1) it is the
    classifier the item stands for).
    """

    key: Hashable
    weight: float
    value: float

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise ValueError(f"item weight must be >= 0, got {self.weight}")
        if self.value < 0:
            raise ValueError(f"item value must be >= 0, got {self.value}")
