"""``A_H^QK`` — the paper's practical Quadratic Knapsack heuristic (Section 4.1).

Pipeline (mirroring the paper, with each stage a private helper below):

1. **Preprocessing** — zero-cost nodes are always selected; nodes costing
   more than ``B`` are pruned; *expensive* nodes (cost in ``[B/2, B]``) are
   handled by enumeration since an optimal solution holds at most two of
   them: we try pairs of expensive nodes, single expensive nodes combined
   with a recursive solve over the cheap residual graph, and the purely
   cheap solve.
2. **Integer cost scaling** — costs are rounded up to multiples of a
   granularity ``g`` chosen so the scaled budget (= number of unit copies)
   stays small; ceiling-rounding keeps every scaled-feasible set feasible
   under the true costs.
3. **Random bipartition** — ``log n`` independent splits; only crossing
   edges are kept (loses at most a factor 2 w.h.p.).
4. **Blow-up + HkS** — each node becomes ``c(v)`` unit copies and the HkS
   engine runs with ``k = B/2`` copies (half the budget is reserved for the
   completion step, Theorem 4.7).
5. **Copy redistribution** — because all copies of a node have identical
   per-copy weighted degree, the paper's two-phase swapping procedure is
   equivalent to refilling each side's copy mass into its nodes in
   decreasing per-copy-degree order, leaving at most one partially selected
   node per side; the induced weight never decreases.
6. **Final selection** — the paper's case analysis (complete the partials
   if affordable; otherwise case I drops them / case II keeps only the two
   partial nodes).  We evaluate *all* of these candidates on the true graph
   and keep the best, which dominates the paper's case split.
7. **Greedy top-up** — leftover true budget is spent on the nodes with the
   best marginal weight per cost (harmless, strictly improving).

Preselected nodes (zero-cost or an enumerated expensive node) contribute
*bonuses* to their neighbors; bonuses enter the HkS instance through a
single virtual unit-cost node connected with the bonus weights.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.dks.portfolio import HksPortfolio
from repro.graphs.bipartite import bipartition_rounds, random_bipartition
from repro.graphs.blowup import BlowupGraph
from repro.graphs.graph import Node, WeightedGraph, node_repr as _node_repr

_BONUS_NODE = ("__bonus__",)

@dataclass
class QKConfig:
    """Tuning knobs for ``A_H^QK``.

    Attributes:
        hks: the HkS engine (defaults to the full portfolio).
        rounds: random-bipartition repetitions (0 = ``ceil(log2 n)``).
        seed: RNG seed (bipartitions and engine restarts).
        target_copies: cap on the scaled budget, i.e. on blow-up copies
            (0 = automatic: ``max(2n, 256)`` capped at 8192).
        max_expensive_solves: how many single-expensive-node residual
            solves to run (the paper runs one per expensive node; we cap
            for scalability and document the deviation).
        max_expensive_pairs: cap on enumerated expensive pairs.
        greedy_topup: spend leftover budget greedily at the end.
    """

    hks: HksPortfolio = field(default_factory=HksPortfolio)
    rounds: int = 0
    seed: int = 0
    target_copies: int = 0
    max_expensive_solves: int = 4
    max_expensive_pairs: int = 400
    greedy_topup: bool = True


def _bonuses(
    graph: WeightedGraph, preselected: Iterable[Node], candidates: Iterable[Node]
) -> Dict[Node, float]:
    """Edge weight each candidate gains from already-selected nodes."""
    chosen = set(preselected)
    bonus: Dict[Node, float] = {}
    for v in candidates:
        total = sum(w for u, w in graph.neighbors(v).items() if u in chosen)
        if total > 0:
            bonus[v] = total
    return bonus


def _value(
    graph: WeightedGraph, bonuses: Dict[Node, float], selection: Set[Node]
) -> float:
    return graph.induced_weight(selection) + sum(
        bonuses.get(v, 0.0) for v in selection
    )


def _scaled_graph(
    graph: WeightedGraph,
    budget: float,
    nodes: Iterable[Node],
    bonuses: Dict[Node, float],
    target_copies: int,
) -> Tuple[WeightedGraph, int]:
    """Integer-cost copy of ``graph`` plus the virtual bonus node.

    Costs are rounded *up* to multiples of a granularity ``g`` so that
    scaled feasibility implies true feasibility.  ``g`` is the minimum
    positive cost when the copy budget allows (then near-uniform costs
    scale *exactly*), clamped to ``[budget / target_copies, budget / 16]``
    so the blow-up stays bounded while keeping at least ~16 budget steps
    of resolution.  Returns the scaled graph and the scaled budget.
    """
    node_list = list(nodes)
    finest = budget / target_copies
    positive = [graph.cost(v) for v in node_list if graph.cost(v) > 0]
    anchor = min(positive) if positive else budget / 8.0
    granularity = max(anchor, finest)
    if budget / granularity < 8:
        # Too few budget steps (min cost near the budget scale): refine so
        # the scaled budget keeps at least ~8 units of resolution.
        granularity = max(finest, budget / 8.0)
    # The blow-up size is the total scaled cost, not the scaled budget:
    # coarsen if the copy count would exceed the target.
    total_copies = sum(
        max(1, math.ceil(graph.cost(v) / granularity - 1e-9)) for v in node_list
    )
    if total_copies > target_copies:
        granularity *= total_copies / target_copies
    nodes = node_list
    scaled = WeightedGraph()
    scaled_budget = int(math.floor(budget / granularity + 1e-9))
    kept: List[Node] = []
    for node in nodes:
        scaled_cost = max(1, int(math.ceil(graph.cost(node) / granularity - 1e-9)))
        if scaled_cost <= scaled_budget:
            scaled.add_node(node, float(scaled_cost))
            kept.append(node)
    kept_set = set(kept)
    scaled.add_edges(
        (u, v, w)
        for u, v, w in graph.edges()
        if u in kept_set and v in kept_set
    )
    if any(bonuses.get(v, 0.0) > 0 for v in kept):
        scaled.add_node(_BONUS_NODE, 1.0)
        scaled_budget += 1  # the virtual node must not eat real budget
        for v in kept:
            bonus = bonuses.get(v, 0.0)
            if bonus > 0:
                scaled.add_edge(_BONUS_NODE, v, bonus)
    return scaled, scaled_budget


def _per_copy_degree(
    scaled: WeightedGraph, node: Node, counts: Dict[Node, int]
) -> float:
    """Weighted degree of one copy of ``node`` into the selected copies."""
    own_cost = scaled.cost(node)
    total = 0.0
    for neighbor, weight in scaled.neighbors(node).items():
        selected = counts.get(neighbor, 0)
        if selected:
            total += weight * selected / (own_cost * scaled.cost(neighbor))
    return total


def _refill_side(
    scaled: WeightedGraph,
    side_nodes: List[Node],
    counts: Dict[Node, int],
    other_counts: Dict[Node, int],
) -> None:
    """Redistribute one side's copy mass by decreasing per-copy degree.

    Equivalent to the paper's two swap phases: at most one node per side
    remains partially selected and the induced weight never decreases.
    """
    mass = sum(counts.get(u, 0) for u in side_nodes)
    if mass == 0:
        return
    ranked = sorted(
        side_nodes,
        key=lambda u: (-_per_copy_degree(scaled, u, other_counts), _node_repr(u)),
    )
    for u in side_nodes:
        counts[u] = 0
    for u in ranked:
        if mass <= 0:
            break
        capacity = int(scaled.cost(u))
        take = min(capacity, mass)
        counts[u] = take
        mass -= take


def _core_candidates(
    scaled: WeightedGraph,
    scaled_budget: int,
    config: QKConfig,
    rng: random.Random,
) -> List[Set[Node]]:
    """Run bipartition -> blow-up -> HkS -> redistribution -> case analysis.

    Returns candidate selections over the *scaled* graph's nodes (the
    virtual bonus node may appear; callers strip it).
    """
    n = len(scaled)
    if n == 0 or scaled_budget <= 0:
        return []
    # Auto mode caps the paper's log(n) repetitions at 4: the whp bound is
    # a worst-case device and in practice a handful of splits suffice.
    rounds = config.rounds if config.rounds > 0 else min(4, bipartition_rounds(n))
    candidates: List[Set[Node]] = []
    for _ in range(rounds):
        split = random_bipartition(scaled, rng)
        if split.graph.num_edges() == 0:
            continue
        blown = BlowupGraph(split.graph)
        k = max(1, scaled_budget // 2)
        selection = config.hks.solve(blown.graph, min(k, blown.size()))
        counts = blown.group_selection(selection)

        left = [u for u in split.left if u in split.graph]
        right = [u for u in split.right if u in split.graph]
        _refill_side(split.graph, left, counts, counts)
        _refill_side(split.graph, right, counts, counts)

        full = {
            u for u, taken in counts.items() if taken >= int(split.graph.cost(u))
        }
        partial = [
            u
            for u, taken in counts.items()
            if 0 < taken < int(split.graph.cost(u))
        ]
        used = sum(counts.values())
        leftover = scaled_budget - used

        candidates.append(set(full))
        if partial:
            # Complete as many partials as the reserved half-budget allows,
            # richer-degree first; also consider each completion separately
            # and (case II) the partial pair alone.
            partial.sort(
                key=lambda u: (-_per_copy_degree(split.graph, u, counts), _node_repr(u))
            )
            budget_left = leftover
            completed = set(full)
            for u in partial:
                need = int(split.graph.cost(u)) - counts[u]
                if need <= budget_left:
                    completed.add(u)
                    budget_left -= need
            candidates.append(completed)
            for u in partial:
                need = int(split.graph.cost(u)) - counts[u]
                if need <= leftover:
                    candidates.append(set(full) | {u})
            if len(partial) == 2:
                candidates.append(set(partial))
    return candidates


def _greedy_fill(
    graph: WeightedGraph,
    start: Set[Node],
    budget_left: float,
    bonuses: Optional[Dict[Node, float]] = None,
) -> Set[Node]:
    """Greedy marginal-weight-per-cost filling with a lazy max-heap.

    Considers single nodes AND whole edges (both endpoints at once — a
    fresh 2-cover has zero single-node marginal gain, so a node-only
    greedy would never start one).  Gains only grow as the selection
    grows, and every growth pushes a fresh heap entry, so stale entries
    can be discarded on pop.  ``bonuses`` adds selection-independent value
    to nodes (used for preselected-neighbor credit).
    """
    import heapq

    bonuses = bonuses or {}
    selection = set(start)
    remaining = budget_left
    gain: Dict[Node, float] = {}
    for v in graph.nodes:
        if v not in selection:
            gain[v] = graph.weighted_degree(v, within=selection) + bonuses.get(v, 0.0)

    heap: list = []

    def push_node(v: Node) -> None:
        g = gain[v]
        if g <= 0:
            return
        cost = graph.cost(v)
        ratio = g / cost if cost > 0 else math.inf
        heapq.heappush(heap, (-ratio, 1, _node_repr(v), "n", v, g))

    def push_edge(u: Node, v: Node) -> None:
        if u in selection or v in selection:
            return
        g = graph.weight(u, v) + gain[u] + gain[v]
        if g <= 0:
            return
        cost = graph.cost(u) + graph.cost(v)
        ratio = g / cost if cost > 0 else math.inf
        heapq.heappush(heap, (-ratio, 0, _node_repr(u) + _node_repr(v), "e", (u, v), g))

    for v in gain:
        push_node(v)
    for u, v, _ in graph.edges():
        push_edge(u, v)

    def add(x: Node) -> None:
        nonlocal remaining
        selection.add(x)
        remaining -= graph.cost(x)
        for neighbor, weight in graph.neighbors(x).items():
            if neighbor in selection:
                continue
            gain[neighbor] += weight
            push_node(neighbor)
            for other in graph.neighbors(neighbor):
                if other not in selection and other != x:
                    push_edge(neighbor, other)

    while heap and remaining > 1e-9:
        _, _, _, kind, payload, pushed_gain = heapq.heappop(heap)
        if kind == "n":
            v = payload
            if v in selection or gain[v] != pushed_gain or gain[v] <= 0:
                continue  # selected or stale (a fresher entry exists)
            if graph.cost(v) > remaining + 1e-9:
                continue  # the budget only shrinks: never affordable again
            add(v)
        else:
            u, v = payload
            if u in selection or v in selection:
                continue
            current = graph.weight(u, v) + gain[u] + gain[v]
            if current != pushed_gain or current <= 0:
                continue
            if graph.cost(u) + graph.cost(v) > remaining + 1e-9:
                continue  # the single-node entries remain available
            add(u)
            add(v)
    return selection


def _solve_core(
    graph: WeightedGraph,
    budget: float,
    preselected: Set[Node],
    all_nodes_graph: WeightedGraph,
    config: QKConfig,
    rng: random.Random,
) -> Set[Node]:
    """Best selection from ``graph`` (cheap nodes only) within ``budget``.

    ``all_nodes_graph`` still contains ``preselected`` so bonuses can be
    computed; the returned set contains only nodes of ``graph``.
    """
    if budget <= 0 or len(graph) == 0:
        return set()
    bonuses = _bonuses(all_nodes_graph, preselected, graph.nodes)
    target = config.target_copies
    if target <= 0:
        target = min(max(2 * len(graph), 256), 8192)
    scaled, scaled_budget = _scaled_graph(
        graph, budget, graph.nodes, bonuses, target
    )
    raw_candidates = _core_candidates(scaled, scaled_budget, config, rng)
    best: Set[Node] = set()
    best_value = 0.0
    for candidate in raw_candidates:
        candidate.discard(_BONUS_NODE)
        cost = sum(graph.cost(v) for v in candidate)
        if cost > budget + 1e-9:
            continue
        value = _value(graph, bonuses, candidate)
        if value > best_value:
            best_value = value
            best = candidate
    if config.greedy_topup:
        best = _greedy_fill(
            graph,
            best,
            budget - sum(graph.cost(v) for v in best),
            bonuses,
        )
    return best


def solve_qk(
    graph: WeightedGraph, budget: float, config: Optional[QKConfig] = None
) -> FrozenSet[Node]:
    """Solve Quadratic Knapsack with ``A_H^QK``.

    Returns a node set whose total cost is within ``budget``, chosen to
    (heuristically) maximize the induced edge weight.
    """
    if budget < 0:
        raise ValueError(f"budget must be >= 0, got {budget}")
    config = config or QKConfig()
    rng = random.Random(config.seed)

    work = WeightedGraph()
    for node in graph.nodes:
        cost = graph.cost(node)
        if not math.isinf(cost) and cost <= budget + 1e-9:
            work.add_node(node, cost)
    for u, v, w in graph.edges():
        if u in work and v in work:
            work.add_edge(u, v, w)

    zero = {v for v in work.nodes if work.cost(v) == 0.0}
    expensive = [
        v for v in work.nodes if v not in zero and work.cost(v) >= budget / 2.0
    ]
    cheap_nodes = [
        v for v in work.nodes if v not in zero and work.cost(v) < budget / 2.0
    ]
    cheap = work.subgraph(cheap_nodes)

    def evaluate(selection: Set[Node]) -> Tuple[float, float]:
        full = selection | zero
        return work.induced_weight(full), sum(work.cost(v) for v in selection)

    candidates: List[Set[Node]] = [set()]

    # Expensive pairs (an optimal solution has at most two expensive nodes,
    # and with two of them it has nothing else).
    ranked_expensive = sorted(
        expensive, key=lambda v: (-work.weighted_degree(v), _node_repr(v))
    )
    pair_pool = ranked_expensive[: max(2, int(math.isqrt(config.max_expensive_pairs * 2)))]
    pairs_tried = 0
    for i in range(len(pair_pool)):
        for j in range(i + 1, len(pair_pool)):
            if pairs_tried >= config.max_expensive_pairs:
                break
            u, v = pair_pool[i], pair_pool[j]
            if work.cost(u) + work.cost(v) <= budget + 1e-9:
                candidates.append({u, v})
                pairs_tried += 1

    # Single expensive node + residual solve over the cheap subgraph.
    for v in ranked_expensive[: config.max_expensive_solves]:
        candidates.append({v})
        residual_budget = budget - work.cost(v)
        extra = _solve_core(cheap, residual_budget, zero | {v}, work, config, rng)
        candidates.append(extra | {v})

    # No expensive node at all.
    candidates.append(_solve_core(cheap, budget, zero, work, config, rng))

    best: Set[Node] = set()
    best_weight = -1.0
    for candidate in candidates:
        weight, cost = evaluate(candidate)
        if cost <= budget + 1e-9 and weight > best_weight:
            best_weight = weight
            best = candidate

    if config.greedy_topup:
        # Top up the best structural candidate AND run pure greedy from
        # scratch; keep the heavier.  The latter guarantees the heuristic
        # never falls below the natural node/edge greedy on the instance.
        topped = _greedy_fill(
            work,
            set(best) | zero,
            budget - sum(work.cost(v) for v in best),
        )
        greedy_only = _greedy_fill(work, set(zero), budget)
        if work.induced_weight(greedy_only) > work.induced_weight(topped):
            topped = greedy_only
        best = topped - zero

    return frozenset(best | zero)
