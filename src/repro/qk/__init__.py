"""Quadratic Knapsack (QK) solvers.

QK (Definition 2.6): given a graph with node costs and edge weights plus a
budget ``B``, select nodes of total cost at most ``B`` maximizing the induced
edge weight.  ``BCC_{l=2}(2)`` is equivalent to QK (Observation 4.4), which
makes this subsystem the computational core of ``A^BCC``.

- :mod:`repro.qk.heuristic` — ``A_H^QK`` (Section 4.1): the practical
  algorithm built on random bipartitions, cost blow-up and an HkS engine,
  with the ``(5*alpha + eps)`` worst-case analysis of Theorem 4.7.
- :mod:`repro.qk.taylor` — ``A_T^QK``: the worst-case ``Õ(n^{1/3})``
  algorithm (modified Taylor [62]) with procedures P1/P2/P3.
- :mod:`repro.qk.brute` — exact oracle for tests and Figure 3d.
"""

from repro.qk.brute import solve_qk_exact
from repro.qk.heuristic import QKConfig, solve_qk
from repro.qk.taylor import solve_qk_taylor

__all__ = ["solve_qk", "QKConfig", "solve_qk_taylor", "solve_qk_exact"]
