"""``A_T^QK`` — the worst-case ``Õ(n^{1/3})`` QK algorithm (Lemma 4.6).

A reproduction of the modified Taylor [62] algorithm the paper describes:

1. *Normalization* — edge weights are rescaled by ``w_max / n^2``; edges
   below weight 1 are dropped (loses a factor <= 2); weights round down and
   node costs round up to powers of two; the budget rounds down.
2. *Partition* — edges split into classes ``G_{i,j,t}`` by endpoint cost
   classes ``(2^i, 2^j)`` and weight class ``2^t``; each class is solved
   separately and the best class solution wins (loses ``O(log^3 n)``).
3. *Uniform classes* (``i = j``) — the budget becomes a cardinality bound
   and a DkS engine applies directly.
4. *Bipartite classes* (``i > j``) — after dividing by ``2^j`` the left
   side costs 1 and the right side costs ``w = 2^{i-j}``; we run the three
   procedures and keep the best:

   - **P1**: top ``B/(2w)`` right nodes by degree, then the top ``B/2``
     left nodes by degree into them — an ``O(n/B)`` approximation.
   - **P2**: blow each right node into ``w`` unit copies, run DkS with
     ``k = B``, keep the selected left nodes, and spend the remaining
     budget on the right nodes with the highest degree into them — an
     ``Õ((nw)^{1/4})`` approximation.
   - **P3** (the paper's modification): the highest-degree right node plus
     as many of its left neighbors as fit — an ``O(B/w)`` approximation.

   Together: ``O(min(n/B, (nw)^{1/4}, B/w)) = Õ(n^{1/3})``.

The paper itself concludes ``A_T^QK`` is impractical and worst-case
oriented; it is reproduced here for completeness and as an ablation
baseline against ``A_H^QK``.  The DkS engine substitutes our portfolio for
the Bhaskara et al. algorithm (see DESIGN.md).
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.dks.portfolio import HksPortfolio
from repro.graphs.blowup import BlowupGraph
from repro.graphs.graph import Node, WeightedGraph

# P2 blow-up guard: skip the procedure when it would explode.
_MAX_P2_COPIES = 30_000


def _normalized_classes(
    graph: WeightedGraph, budget: float
) -> Tuple[Dict[Tuple[int, int, int], List[Tuple[Node, Node]]], Dict[Node, int], int]:
    """Partition edges into ``G_{i,j,t}`` classes.

    Returns (edge classes, power-of-two scaled node costs, scaled budget).
    """
    n = max(len(graph), 2)
    weights = [w for _, _, w in graph.edges()]
    if not weights:
        return {}, {}, 0
    w_max = max(weights)
    weight_unit = w_max / (n * n)

    cost_unit = budget / n
    scaled_cost: Dict[Node, int] = {}
    for node in graph.nodes:
        cost = graph.cost(node) / cost_unit
        power = max(0, math.ceil(math.log2(cost))) if cost > 1 else 0
        scaled_cost[node] = 2**power
    scaled_budget = 2 ** int(math.floor(math.log2(n)))

    classes: Dict[Tuple[int, int, int], List[Tuple[Node, Node]]] = {}
    for u, v, w in graph.edges():
        normalized = w / weight_unit
        if normalized < 1.0:
            continue  # pruned light edge
        t = int(math.floor(math.log2(normalized)))
        cu, cv = scaled_cost[u], scaled_cost[v]
        i, j = int(math.log2(max(cu, cv))), int(math.log2(min(cu, cv)))
        classes.setdefault((i, j, t), []).append((u, v))
    return classes, scaled_cost, scaled_budget


def _class_subgraph(
    graph: WeightedGraph, edges: List[Tuple[Node, Node]], scaled_cost: Dict[Node, int]
) -> WeightedGraph:
    sub = WeightedGraph()
    for u, v in edges:
        for node in (u, v):
            if node not in sub:
                sub.add_node(node, float(scaled_cost[node]))
        sub.add_edge(u, v, graph.weight(u, v))
    return sub


def _procedure_p1(
    sub: WeightedGraph, left: List[Node], right: List[Node], w: int, budget: int
) -> Set[Node]:
    take_right = max(1, budget // (2 * w))
    ranked_right = sorted(right, key=lambda u: (-sub.degree(u), repr(u)))
    r_chosen = set(ranked_right[:take_right])
    take_left = max(1, budget // 2)
    ranked_left = sorted(
        left,
        key=lambda u: (-sum(1 for x in sub.neighbors(u) if x in r_chosen), repr(u)),
    )
    l_chosen = set(ranked_left[:take_left])
    return l_chosen | r_chosen


def _procedure_p2(
    sub: WeightedGraph,
    left: List[Node],
    right: List[Node],
    w: int,
    budget: int,
    dks: HksPortfolio,
) -> Optional[Set[Node]]:
    if len(left) + len(right) * w > _MAX_P2_COPIES:
        return None
    unit = WeightedGraph()
    for u in left:
        unit.add_node(u, 1.0)
    for v in right:
        unit.add_node(v, float(w))
    for u, v, weight in sub.edges():
        unit.add_edge(u, v, weight)
    blown = BlowupGraph(unit)
    k = min(budget, blown.size())
    selection = dks.solve(blown.graph, k)
    counts = blown.group_selection(selection)
    l_chosen = {u for u in left if counts.get(u, 0) > 0}
    spent = len(l_chosen)
    remaining = max(0, budget - spent)
    take_right = remaining // w
    ranked_right = sorted(
        right,
        key=lambda v: (-sum(1 for x in sub.neighbors(v) if x in l_chosen), repr(v)),
    )
    return l_chosen | set(ranked_right[:take_right])


def _procedure_p3(
    sub: WeightedGraph, left: List[Node], right: List[Node], w: int, budget: int
) -> Optional[Set[Node]]:
    if not right or budget < w:
        return None
    star = max(right, key=lambda v: (sub.degree(v), repr(v)))
    remaining = budget - w
    neighbors = sorted(sub.neighbors(star), key=repr)
    return {star} | set(neighbors[: max(0, remaining)])


def solve_qk_taylor(
    graph: WeightedGraph,
    budget: float,
    dks: Optional[HksPortfolio] = None,
    seed: int = 0,
    greedy_topup: bool = True,
) -> FrozenSet[Node]:
    """Solve QK with the worst-case-oriented ``A_T^QK`` algorithm."""
    if budget < 0:
        raise ValueError(f"budget must be >= 0, got {budget}")
    dks = dks or HksPortfolio(seed=seed)

    work = WeightedGraph()
    for node in graph.nodes:
        cost = graph.cost(node)
        if not math.isinf(cost) and cost <= budget + 1e-9:
            work.add_node(node, cost)
    for u, v, w in graph.edges():
        if u in work and v in work:
            work.add_edge(u, v, w)
    zero = {v for v in work.nodes if work.cost(v) == 0.0}
    if budget == 0 or len(work) == 0:
        return frozenset(zero)

    classes, scaled_cost, scaled_budget = _normalized_classes(work, budget)

    candidates: List[Set[Node]] = [set(zero)]
    for (i, j, t), edges in classes.items():
        sub = _class_subgraph(work, edges, scaled_cost)
        if i == j:
            node_cost = 2**i
            k = scaled_budget // node_cost
            if k >= 1:
                selection = dks.solve(sub, min(k, len(sub)))
                candidates.append(set(selection))
            continue
        w = 2 ** (i - j)
        class_budget = scaled_budget // (2**j)
        left = [u for u in sub.nodes if scaled_cost[u] == 2**j]
        right = [u for u in sub.nodes if scaled_cost[u] == 2**i]
        candidates.append(_procedure_p1(sub, left, right, w, class_budget))
        p2 = _procedure_p2(sub, left, right, w, class_budget, dks)
        if p2 is not None:
            candidates.append(p2)
        p3 = _procedure_p3(sub, left, right, w, class_budget)
        if p3 is not None:
            candidates.append(p3)

    def trim(selection: Set[Node]) -> Set[Node]:
        """Drop lowest-contribution nodes until the true budget holds."""
        chosen = set(selection) | zero
        while sum(work.cost(v) for v in chosen) > budget + 1e-9:
            victim = min(
                (v for v in chosen if work.cost(v) > 0),
                key=lambda v: (
                    work.weighted_degree(v, within=chosen) / work.cost(v),
                    repr(v),
                ),
            )
            chosen.discard(victim)
        return chosen

    best: Set[Node] = set(zero)
    best_weight = work.induced_weight(best)
    for candidate in candidates:
        feasible = trim(candidate)
        weight = work.induced_weight(feasible)
        if weight > best_weight:
            best_weight = weight
            best = feasible

    if greedy_topup:
        from repro.qk.heuristic import _greedy_fill

        best = _greedy_fill(
            work, best, budget - sum(work.cost(v) for v in best)
        )

    return frozenset(best)
