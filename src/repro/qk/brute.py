"""Exact QK oracle by branch-and-bound (small graphs only)."""

from __future__ import annotations

from typing import FrozenSet, List, Tuple

from repro.graphs.graph import Node, WeightedGraph

_MAX_NODES = 22


def solve_qk_exact(graph: WeightedGraph, budget: float) -> FrozenSet[Node]:
    """Optimal QK selection (cost within ``budget``, max induced weight).

    Branch-and-bound over nodes in decreasing weighted-degree order; the
    bound adds each remaining node's full weighted degree (an upper bound
    on its marginal contribution).

    Raises:
        ValueError: if the graph exceeds the exhaustive-size limit.
    """
    nodes = sorted(
        graph.nodes, key=lambda u: (-graph.weighted_degree(u), repr(u))
    )
    if len(nodes) > _MAX_NODES:
        raise ValueError(f"exact QK limited to {_MAX_NODES} nodes, got {len(nodes)}")

    # Suffix sums of weighted degrees for the optimistic bound.
    suffix = [0.0] * (len(nodes) + 1)
    for index in range(len(nodes) - 1, -1, -1):
        suffix[index] = suffix[index + 1] + graph.weighted_degree(nodes[index])

    best_weight = -1.0
    best_set: Tuple[Node, ...] = ()

    def search(index: int, chosen: List[Node], cost: float, weight: float) -> None:
        nonlocal best_weight, best_set
        if weight > best_weight:
            best_weight = weight
            best_set = tuple(chosen)
        if index == len(nodes):
            return
        if weight + suffix[index] <= best_weight:
            return
        node = nodes[index]
        node_cost = graph.cost(node)
        if cost + node_cost <= budget + 1e-9:
            gain = graph.weighted_degree(node, within=set(chosen))
            chosen.append(node)
            search(index + 1, chosen, cost + node_cost, weight + gain)
            chosen.pop()
        search(index + 1, chosen, cost, weight)

    search(0, [], 0.0, 0.0)
    return frozenset(best_set)
