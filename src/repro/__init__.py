"""repro — reproduction of "Classifier Construction Under Budget Constraints".

Public API re-exports: the problem model (:mod:`repro.core`), the paper's
algorithms (:mod:`repro.algorithms`), baselines, datasets and the experiment
harness.  See README.md for a quickstart and DESIGN.md for the full system
inventory.
"""

from repro.core import (
    BCCInstance,
    ECCInstance,
    GMC3Instance,
    Solution,
    evaluate,
    from_letters,
    from_phrase,
    props,
)

__version__ = "1.0.0"

__all__ = [
    "BCCInstance",
    "GMC3Instance",
    "ECCInstance",
    "Solution",
    "evaluate",
    "props",
    "from_letters",
    "from_phrase",
    "__version__",
]
