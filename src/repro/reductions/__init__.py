"""Executable versions of the paper's hardness-proof reductions.

Sections 3 and 5 prove hardness by exhibiting bijections between special
cases of BCC/GMC3 and graph density problems.  This package makes those
bijections runnable, and the test suite verifies objective equality on
random instances — the reproduction of Theorems 3.1, 3.3 and 5.3 as code:

- ``BCC_{l=1}``  <->  Knapsack (Theorem 3.1);
- ``I_2``        <->  Densest k-Subgraph (Theorem 3.3);
- ``I_3``        <->  Densest k-Subhypergraph with 3-edges (Theorem 3.3);
- ``BCC_{l=2}(2)`` <-> Quadratic Knapsack (Observation 4.4);
- GMC3 special case <-> Smallest p-Edge Subgraph (Theorem 5.3).
"""

from repro.reductions.density import (
    bcc_solution_from_nodes,
    dks_to_bcc,
    dksh_to_bcc,
    nodes_from_bcc_solution,
    spes_to_gmc3,
)
from repro.reductions.knapsack import bcc_l1_to_knapsack, knapsack_to_bcc_l1
from repro.reductions.quadratic import bcc2_to_qk, qk_to_bcc2

__all__ = [
    "dks_to_bcc",
    "dksh_to_bcc",
    "spes_to_gmc3",
    "bcc_solution_from_nodes",
    "nodes_from_bcc_solution",
    "knapsack_to_bcc_l1",
    "bcc_l1_to_knapsack",
    "bcc2_to_qk",
    "qk_to_bcc2",
]
