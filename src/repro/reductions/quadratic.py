"""``BCC_{l=2}(2)`` <-> Quadratic Knapsack (Observation 4.4)."""

from __future__ import annotations

import math
from typing import Tuple

from repro.core.model import BCCInstance
from repro.graphs.graph import WeightedGraph


def bcc2_to_qk(instance: BCCInstance) -> Tuple[WeightedGraph, float]:
    """The BCC(2) subproblem of a length-2 instance as a QK graph.

    Nodes are singleton classifiers with their costs; each length-2 query
    is an edge weighted by its utility; the budget carries over.  Length-1
    queries are ignored (they belong to BCC(1)).
    """
    if instance.length > 2:
        raise ValueError(f"instance has length {instance.length}, expected <= 2")
    graph = WeightedGraph()
    for query in instance.queries:
        if len(query) != 2:
            continue
        endpoints = []
        feasible = True
        for prop in query:
            classifier = frozenset({prop})
            cost = instance.cost(classifier)
            if math.isinf(cost):
                feasible = False
                break
            endpoints.append((classifier, cost))
        if not feasible:
            continue
        for classifier, cost in endpoints:
            if classifier not in graph:
                graph.add_node(classifier, cost)
        graph.add_edge(endpoints[0][0], endpoints[1][0], instance.utility(query))
    return graph, instance.budget


def qk_to_bcc2(graph: WeightedGraph, budget: float) -> BCCInstance:
    """A QK instance as the equivalent ``BCC_{l=2}(2)`` special case.

    Each node becomes a property whose singleton classifier costs the node
    cost; each edge becomes a length-2 query with the edge weight as
    utility; pair classifiers are impractical so only 2-covers exist.
    """
    queries = []
    utilities = {}
    costs = {}
    names = {node: f"q{i}" for i, node in enumerate(sorted(graph.nodes, key=repr))}
    for node in graph.nodes:
        costs[frozenset({names[node]})] = graph.cost(node)
    for u, v, w in graph.edges():
        query = frozenset({names[u], names[v]})
        queries.append(query)
        utilities[query] = w
        costs[query] = math.inf
    if not queries:
        raise ValueError("QK reduction requires at least one edge")
    return BCCInstance(queries, utilities, costs, budget=float(budget))
