"""DkS / DkSH / SpES reductions (Theorems 3.3 and 5.3).

The ``I_l`` special case of BCC: all queries of length exactly ``l``, unit
utilities, unit singleton-classifier costs, every longer classifier
impractical, integer budget.  Nodes map to properties, (hyper)edges map to
queries, the budget maps to the cardinality bound ``k``.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, Iterable, Set

from repro.core.model import BCCInstance, Classifier, GMC3Instance, powerset_classifiers
from repro.graphs.graph import Node, WeightedGraph
from repro.graphs.hypergraph import Hypergraph


def _prop(node: Node) -> str:
    return f"n{node}"


def _unit_cost_map(queries: Iterable[FrozenSet[str]]) -> Dict[Classifier, float]:
    """Unit singleton costs; every non-singleton classifier impractical."""
    costs: Dict[Classifier, float] = {}
    for query in queries:
        for classifier in powerset_classifiers(query):
            costs[classifier] = 1.0 if len(classifier) == 1 else math.inf
    return costs


def dks_to_bcc(graph: WeightedGraph, k: int) -> BCCInstance:
    """DkS instance ``<G, k>`` as the equivalent ``I_2`` BCC instance.

    Edge weights are carried over as utilities, so an HkS instance maps to
    the same special case with non-uniform utilities.
    """
    queries = []
    utilities = {}
    for u, v, w in graph.edges():
        query = frozenset({_prop(u), _prop(v)})
        queries.append(query)
        utilities[query] = w
    if not queries:
        raise ValueError("DkS reduction requires at least one edge")
    return BCCInstance(queries, utilities, _unit_cost_map(queries), budget=float(k))


def dksh_to_bcc(hypergraph: Hypergraph, k: int) -> BCCInstance:
    """DkSH (3-edges or larger) as the equivalent ``I_l`` BCC instance."""
    queries = []
    utilities = {}
    for edge, w in hypergraph.edges():
        query = frozenset(_prop(v) for v in edge)
        queries.append(query)
        utilities[query] = w
    if not queries:
        raise ValueError("DkSH reduction requires at least one hyperedge")
    return BCCInstance(queries, utilities, _unit_cost_map(queries), budget=float(k))


def spes_to_gmc3(graph: WeightedGraph, p: float) -> GMC3Instance:
    """Smallest p-Edge Subgraph as the GMC3 special case of Theorem 5.3.

    Unit utilities and unit singleton costs; the edge-count target ``p``
    becomes the utility target ``T``.
    """
    queries = []
    for u, v, _ in graph.edges():
        queries.append(frozenset({_prop(u), _prop(v)}))
    if not queries:
        raise ValueError("SpES reduction requires at least one edge")
    return GMC3Instance(queries, None, _unit_cost_map(queries), target=float(p))


def bcc_solution_from_nodes(nodes: Iterable[Node]) -> FrozenSet[Classifier]:
    """Map a DkS node selection to the corresponding singleton classifiers."""
    return frozenset(frozenset({_prop(v)}) for v in nodes)


def nodes_from_bcc_solution(classifiers: Iterable[Classifier]) -> Set[str]:
    """Map singleton classifiers back to DkS node names (``nX`` strings)."""
    nodes = set()
    for classifier in classifiers:
        if len(classifier) != 1:
            raise ValueError(f"I_l solutions are singleton-only, got {sorted(classifier)}")
        (prop,) = classifier
        nodes.add(prop[1:])
    return nodes
