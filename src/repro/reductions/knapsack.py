"""``BCC_{l=1}`` <-> Knapsack (Theorem 3.1)."""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.core.model import BCCInstance
from repro.knapsack.items import KnapsackItem


def knapsack_to_bcc_l1(items: Sequence[KnapsackItem], capacity: float) -> BCCInstance:
    """Each item becomes a singleton query whose classifier costs its weight.

    Items must have positive values (utilities must be positive in BCC).
    """
    queries = []
    utilities = {}
    costs = {}
    for index, item in enumerate(items):
        if item.value <= 0:
            raise ValueError(f"item {item.key!r} has non-positive value")
        query = frozenset({f"item{index}"})
        queries.append(query)
        utilities[query] = item.value
        costs[query] = item.weight
    if not queries:
        raise ValueError("knapsack reduction requires at least one item")
    return BCCInstance(queries, utilities, costs, budget=float(capacity))


def bcc_l1_to_knapsack(instance: BCCInstance) -> Tuple[List[KnapsackItem], float]:
    """The reverse direction: a length-1 BCC instance as Knapsack items."""
    if instance.length != 1:
        raise ValueError(f"instance has length {instance.length}, expected 1")
    items = [
        KnapsackItem(key=q, weight=instance.cost(q), value=instance.utility(q))
        for q in instance.queries
    ]
    return items, instance.budget
