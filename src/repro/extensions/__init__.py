"""Model extensions the paper leaves as future work (Section 8).

> "One interesting direction ... is generalizing our model to account for
> utility in partial covers of queries or generalizing the cost function
> to capture overlaps in classifier construction."

Two optional extensions, each with its own solver and exact test oracle:

- :mod:`repro.extensions.partial_cover` — a query yields a configurable
  fraction of its utility when only part of its property set is covered
  (the base model is the step credit: all or nothing).
- :mod:`repro.extensions.shared_costs` — classifier construction costs
  overlap through shared per-property data-collection costs, making the
  cost of a classifier *set* subadditive.

Both extensions keep the base model as a special case and are exercised
by dedicated ablation benchmarks.
"""

from repro.extensions.partial_cover import (
    CreditFunction,
    PartialCoverModel,
    linear_credit,
    quadratic_credit,
    solve_partial_bcc,
    step_credit,
    threshold_credit,
)
from repro.extensions.shared_costs import (
    SharedCostModel,
    solve_shared_cost_bcc,
)

__all__ = [
    "PartialCoverModel",
    "CreditFunction",
    "step_credit",
    "linear_credit",
    "quadratic_credit",
    "threshold_credit",
    "solve_partial_bcc",
    "SharedCostModel",
    "solve_shared_cost_bcc",
]
