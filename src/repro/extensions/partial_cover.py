"""Partial-cover utility extension (future work in Section 8).

The base model pays a query's utility only when its property set is
covered *exactly* (Section 2: partial conformance can be worse than
nothing).  This extension parameterizes that choice with a *credit
function* ``phi: [0, 1] -> [0, 1]`` mapping the covered-property fraction
to a utility fraction, with ``phi(1) = 1``:

- ``step_credit``    — the base model (0 below full coverage);
- ``threshold_credit(t)`` — full credit at 1, partial credit above ``t``;
- ``linear_credit``  — proportional credit;
- ``quadratic_credit`` — discourages shallow partial covers.

The solver is an exchange-greedy over classifiers with credit-aware
marginal gains, warm-started from the base-model ``A^BCC`` solution
(with a step credit the two coincide).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, FrozenSet, Iterable, List, Optional, Set

from repro.algorithms import solve_bcc
from repro.core.errors import InvalidInstanceError
from repro.core.model import BCCInstance, Classifier, Query

CreditFunction = Callable[[float], float]


def step_credit(fraction: float) -> float:
    """The base model: utility only for complete coverage."""
    return 1.0 if fraction >= 1.0 - 1e-12 else 0.0


def linear_credit(fraction: float) -> float:
    """Proportional credit for partial coverage."""
    return max(0.0, min(1.0, fraction))


def quadratic_credit(fraction: float) -> float:
    """Convex credit: shallow partial covers earn very little."""
    clipped = max(0.0, min(1.0, fraction))
    return clipped * clipped


def threshold_credit(threshold: float) -> CreditFunction:
    """Linear credit above ``threshold``, nothing below.

    Models the finding of [31] that *mildly* incomplete filtering is
    tolerable but badly incomplete filtering is worse than nothing.
    """
    if not 0.0 <= threshold <= 1.0:
        raise ValueError(f"threshold must be in [0, 1], got {threshold}")

    def credit(fraction: float) -> float:
        if fraction >= 1.0 - 1e-12:
            return 1.0
        if fraction < threshold:
            return 0.0
        if threshold >= 1.0:
            return 0.0
        return (fraction - threshold) / (1.0 - threshold)

    return credit


def _validate(credit: CreditFunction) -> None:
    if abs(credit(1.0) - 1.0) > 1e-9:
        raise InvalidInstanceError("credit function must satisfy phi(1) = 1")
    if credit(0.0) < -1e-12:
        raise InvalidInstanceError("credit function must be non-negative")


@dataclass
class PartialCoverModel:
    """A BCC instance re-scored under a partial-cover credit function."""

    instance: BCCInstance
    credit: CreditFunction = step_credit

    def __post_init__(self) -> None:
        _validate(self.credit)

    def covered_fraction(self, query: Query, selection: Iterable[Classifier]) -> float:
        """Fraction of the query properties the selection covers."""
        covered: Set[str] = set()
        for classifier in selection:
            if classifier <= query:
                covered |= classifier
        return len(covered) / len(query)

    def utility_of(self, selection: Iterable[Classifier]) -> float:
        """Credited utility of ``selection`` over the whole workload."""
        chosen = list(selection)
        total = 0.0
        for query in self.instance.queries:
            fraction = self.covered_fraction(query, chosen)
            total += self.instance.utility(query) * self.credit(fraction)
        return total

    def cost_of(self, selection: Iterable[Classifier]) -> float:
        """Total construction cost (each classifier counted once)."""
        return sum(self.instance.cost(c) for c in set(selection))


def certify_partial_cover(
    model: PartialCoverModel, selection: Iterable[Classifier]
) -> float:
    """First-principles check of a partial-cover selection; returns its
    credited utility.

    Checks budget feasibility under the (plain, additive) cost model and
    the credit invariant ``phi(f) in [0, 1]`` with fully covered queries
    earning full utility — so the credited total always dominates the
    base-model utility of the same selection.

    Raises:
        BudgetCertificateError: the selection exceeds the budget.
        UtilityCertificateError: the credited utility falls below the
            base-model (step-credit) utility of the same selection.
    """
    from repro.core.errors import BudgetCertificateError, UtilityCertificateError
    from repro.core.solution import evaluate

    chosen = list(selection)
    cost = model.cost_of(chosen)
    budget = model.instance.budget
    if cost > budget * (1.0 + 1e-9) + 1e-9:
        raise BudgetCertificateError(
            f"partial-cover cost {cost} exceeds budget {budget}"
        )
    credited = model.utility_of(chosen)
    base = evaluate(model.instance, chosen).utility
    if credited < base - 1e-9 * max(1.0, base):
        raise UtilityCertificateError(
            f"credited utility {credited} falls below the base-model utility "
            f"{base} of the same selection (phi(1) = 1 forbids this)"
        )
    return credited


def solve_partial_bcc(
    model: PartialCoverModel,
    warm_start: bool = True,
    max_steps: int = 10_000,
    certify: bool = False,
) -> FrozenSet[Classifier]:
    """Credit-aware greedy for the partial-cover model.

    Runs the credit-aware greedy from two starts — the base-model
    ``A^BCC`` solution (when ``warm_start`` is set) and an empty set —
    and keeps whichever scores better under the model: the warm start is
    exactly right under a step credit, but under partial credit it can
    lock the budget into all-or-nothing picks a cold greedy avoids.

    With ``certify``, the returned selection is re-checked against the
    credited objective via :func:`certify_partial_cover`.
    """
    instance = model.instance
    starts: List[Set[Classifier]] = [set()]
    if warm_start:
        starts.append(set(solve_bcc(instance).classifiers))
    best_selection: Set[Classifier] = set()
    best_utility = -1.0
    for start in starts:
        selection = _greedy_from(model, start, max_steps)
        utility = model.utility_of(selection)
        if utility > best_utility:
            best_utility = utility
            best_selection = selection
    if certify:
        certify_partial_cover(model, best_selection)
    return frozenset(best_selection)


def _greedy_from(
    model: PartialCoverModel, start: Set[Classifier], max_steps: int
) -> Set[Classifier]:
    """Credit-aware greedy fill from a given starting selection."""
    instance = model.instance
    selection: Set[Classifier] = set(start)
    spent = model.cost_of(selection)
    current = model.utility_of(selection)

    candidates = [
        c
        for c in instance.relevant_classifiers()
        if not math.isinf(instance.cost(c))
    ]
    for _ in range(max_steps):
        remaining = instance.budget - spent
        best_gain_rate = 0.0
        best_choice: Optional[Classifier] = None
        best_utility = current
        for classifier in candidates:
            if classifier in selection:
                continue
            cost = instance.cost(classifier)
            if cost > remaining + 1e-9:
                continue
            utility = model.utility_of(selection | {classifier})
            gain = utility - current
            if gain <= 1e-12:
                continue
            rate = gain / cost if cost > 0 else math.inf
            if rate > best_gain_rate:
                best_gain_rate = rate
                best_choice = classifier
                best_utility = utility
        if best_choice is None:
            break
        selection.add(best_choice)
        spent += instance.cost(best_choice)
        current = best_utility
    return frozenset(selection)
