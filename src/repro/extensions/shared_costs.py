"""Shared-construction-cost extension (future work in Section 8).

The base model sums independent classifier costs.  In practice training
data overlaps: once labeled examples exist for the property "wooden",
every classifier testing "wooden" reuses them.  This extension makes the
cost of a classifier *set* subadditive through a concrete two-part model:

- each property ``p`` has a one-time *data-collection* cost ``d(p)``,
  paid once if any selected classifier tests ``p``;
- each classifier ``c`` has a *marginal* training cost ``m(c)``.

``C(S) = sum_{p in union(S)} d(p) + sum_{c in S} m(c)`` — monotone and
submodular in ``S``, with the base model as the special case ``d = 0``.

The solver greedily adds classifiers by true marginal covered utility per
*marginal shared cost*, which correctly prefers classifiers whose
properties were already paid for.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Mapping, Set

from repro.core.coverage import CoverageTracker
from repro.core.errors import InvalidInstanceError
from repro.core.model import BCCInstance, Classifier


@dataclass
class SharedCostModel:
    """A BCC instance whose selection cost is the shared-cost objective.

    Args:
        instance: the underlying workload and budget.  The instance's own
            classifier costs are used as the *marginal* costs ``m(c)``.
        property_costs: one-time data-collection cost per property
            (missing properties default to ``default_property_cost``).
        default_property_cost: see above.
    """

    instance: BCCInstance
    property_costs: Mapping[str, float] = field(default_factory=dict)
    default_property_cost: float = 0.0

    def __post_init__(self) -> None:
        for prop, cost in self.property_costs.items():
            if cost < 0:
                raise InvalidInstanceError(
                    f"property cost must be >= 0, got {cost} for {prop!r}"
                )
        if self.default_property_cost < 0:
            raise InvalidInstanceError("default property cost must be >= 0")

    def property_cost(self, prop: str) -> float:
        """One-time data-collection cost of ``prop``."""
        return float(self.property_costs.get(prop, self.default_property_cost))

    def cost_of(self, selection: Iterable[Classifier]) -> float:
        chosen = set(selection)
        paid_properties: Set[str] = set()
        total = 0.0
        for classifier in chosen:
            total += self.instance.cost(classifier)
            paid_properties |= classifier
        total += sum(self.property_cost(p) for p in paid_properties)
        return total

    def marginal_cost(
        self, classifier: Classifier, paid_properties: Set[str]
    ) -> float:
        extra = sum(
            self.property_cost(p) for p in classifier if p not in paid_properties
        )
        return self.instance.cost(classifier) + extra

    def utility_of(self, selection: Iterable[Classifier]) -> float:
        """Covered utility of ``selection`` (base coverage semantics)."""
        tracker = CoverageTracker(self.instance)
        tracker.add_all(selection)
        return tracker.utility


def certify_shared_cost(
    model: SharedCostModel, selection: Iterable[Classifier]
) -> float:
    """First-principles check of a shared-cost selection; returns its cost.

    Recomputes the subadditive cost from the model definition (one-time
    property costs plus marginal classifier costs — no solver state) and
    checks budget feasibility and finiteness.

    Raises:
        BudgetCertificateError: the selection exceeds the budget.
        CostCertificateError: an infinite-cost classifier was selected.
    """
    from repro.core.errors import BudgetCertificateError, CostCertificateError

    chosen = set(selection)
    for classifier in chosen:
        if math.isinf(model.instance.cost(classifier)):
            raise CostCertificateError(
                f"shared-cost selection includes the infinite-cost classifier "
                f"{sorted(map(str, classifier))}"
            )
    total = model.cost_of(chosen)
    budget = model.instance.budget
    if total > budget * (1.0 + 1e-9) + 1e-9:
        raise BudgetCertificateError(
            f"shared cost {total} exceeds budget {budget}"
        )
    return total


def solve_shared_cost_bcc(
    model: SharedCostModel, max_steps: int = 10_000, certify: bool = False
) -> FrozenSet[Classifier]:
    """Greedy for the shared-cost model: utility per *marginal* cost.

    Pair-aware: also considers buying a whole 2-cover in one step (a
    fresh pair has zero single-classifier gain), mirroring the greedy
    fill of the base solver.

    With ``certify``, the returned selection is re-checked against the
    shared-cost objective via :func:`certify_shared_cost`.
    """
    instance = model.instance
    tracker = CoverageTracker(instance)
    selection: Set[Classifier] = set()
    paid: Set[str] = set()
    spent = 0.0

    candidates = [
        c
        for c in instance.relevant_classifiers()
        if not math.isinf(instance.cost(c))
    ]

    def gain_of(addition) -> float:
        # Trial additions run against the live tracker under a checkpoint
        # and roll back — no per-candidate tracker rebuild.
        before = tracker.utility
        tracker.checkpoint()
        tracker.add_all(addition)
        gain = tracker.utility - before
        tracker.rollback()
        return gain

    for _ in range(max_steps):
        remaining = instance.budget - spent
        best_rate = 0.0
        best_addition = None
        best_cost = 0.0
        for classifier in candidates:
            if classifier in selection:
                continue
            cost = model.marginal_cost(classifier, paid)
            if cost > remaining + 1e-9:
                continue
            gain = gain_of([classifier])
            if gain <= 1e-12:
                continue
            rate = gain / cost if cost > 0 else math.inf
            if rate > best_rate:
                best_rate, best_addition, best_cost = rate, (classifier,), cost
        # Pair-aware step over the uncovered queries' cheapest 2-covers.
        from repro.core.coverage import i_covers

        for query in instance.queries:
            if tracker.is_query_covered(query):
                continue
            for cover in i_covers(query, 2, available=candidates):
                addition = tuple(c for c in cover if c not in selection)
                if not addition:
                    continue
                cost = 0.0
                provisional = set(paid)
                for classifier in addition:
                    cost += model.marginal_cost(classifier, provisional)
                    provisional |= classifier
                if cost > remaining + 1e-9:
                    continue
                gain = gain_of(addition)
                if gain <= 1e-12:
                    continue
                rate = gain / cost if cost > 0 else math.inf
                if rate > best_rate:
                    best_rate, best_addition, best_cost = rate, addition, cost
        if best_addition is None:
            break
        for classifier in best_addition:
            selection.add(classifier)
            tracker.add(classifier)
            paid |= classifier
        spent += best_cost
    if certify:
        certify_shared_cost(model, selection)
    return frozenset(selection)
