"""Multi-tenant serving façade over the solver stack.

Public surface:

- :class:`~repro.serving.facade.ServingFacade` /
  :class:`~repro.serving.facade.ServingConfig` — the asyncio request
  loop (register tenants, ``submit``/``tick``/``run``, deterministic
  ``replay``);
- :func:`~repro.serving.facade.tier_prior_clock` — the standard virtual
  clock for deterministic serving simulations;
- the typed requests/responses of :mod:`repro.serving.requests`;
- :func:`~repro.serving.traffic.generate_trace` and the trace file
  helpers of :mod:`repro.serving.traffic`;
- ``python -m repro.serving`` — trace replay CLI.
"""

from repro.serving.facade import (
    ServingConfig,
    ServingCounters,
    ServingFacade,
    tier_prior_clock,
)
from repro.serving.requests import (
    KINDS,
    PlanRequest,
    ReplanRequest,
    ServeRequest,
    ServeResponse,
    WhatIfRequest,
    request_from_json,
    request_to_json,
)
from repro.serving.traffic import (
    ServingTrace,
    TraceItem,
    generate_trace,
    load_trace,
    save_trace,
    trace_from_json,
    trace_to_json,
)

__all__ = [
    "KINDS",
    "PlanRequest",
    "ReplanRequest",
    "ServeRequest",
    "ServeResponse",
    "ServingConfig",
    "ServingCounters",
    "ServingFacade",
    "ServingTrace",
    "TraceItem",
    "WhatIfRequest",
    "generate_trace",
    "load_trace",
    "request_from_json",
    "request_to_json",
    "save_trace",
    "tier_prior_clock",
    "trace_from_json",
    "trace_to_json",
]
