"""Zipf-distributed multi-tenant traffic generation and trace files.

A :class:`ServingTrace` is a complete, replayable serving workload: the
tenant registry (name → :class:`~repro.core.model.BCCInstance`) plus a
time-ordered list of :class:`TraceItem` arrivals.  :func:`generate_trace`
builds one deterministically from a seed:

- **tenant popularity is Zipf** (:func:`repro.datasets.zipf.zipf_rank`) —
  a few hot tenants dominate, mirroring the millions-of-users regime the
  ROADMAP targets and giving the result cache its hit mass;
- **request mix**: mostly ``plan`` at the tenant's own budget (the
  repeatable, cacheable question), a slice of ``what_if`` probes drawn
  from a small per-tenant budget palette (repeatable too), and a trickle
  of ``replan`` deltas that *mutate* the hot tenants and force fresh
  solves;
- **replans are causally valid by construction**: each tenant's deltas
  are generated against a scratch clone that applies them in trace
  order (the same discipline as
  :func:`repro.verify.incremental.random_delta_stream`), so every delta
  validates against the workload state it will actually meet;
- **arrivals** follow seeded exponential interarrivals, so coalescing
  windows see realistic bursts.

Every random draw derives from splittable
:func:`~repro.parallel.seeding.seed_for` seeds — the same
``(seed, tenant)`` pair yields the same tenant workload forever, and the
whole trace is a pure function of its parameters.  Traces round-trip
through JSON (:func:`save_trace` / :func:`load_trace`) for the
``python -m repro.serving --trace`` CLI.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.core.model import BCCInstance
from repro.datasets.fragmented import generate_fragmented
from repro.datasets.schema import instance_from_json, instance_to_json
from repro.datasets.zipf import zipf_rank
from repro.incremental.delta import random_delta
from repro.parallel.seeding import derive_rng
from repro.serving.requests import (
    PlanRequest,
    ReplanRequest,
    ServeRequest,
    WhatIfRequest,
    request_from_json,
    request_to_json,
)

TRACE_FORMAT_VERSION = 1


@dataclass(frozen=True)
class TraceItem:
    """One arrival: a request with its sequence id and arrival offset."""

    seq: int
    arrival_s: float
    request: ServeRequest


@dataclass
class ServingTrace:
    """Tenant registry plus the ordered arrival list (fully replayable)."""

    tenants: Dict[str, BCCInstance] = field(default_factory=dict)
    items: List[TraceItem] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.items)

    def kind_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {"plan": 0, "replan": 0, "what_if": 0}
        for item in self.items:
            counts[item.request.kind] += 1
        return counts


def generate_trace(
    n_requests: int = 1000,
    n_tenants: int = 8,
    seed: int = 0,
    exponent: float = 1.0,
    replan_fraction: float = 0.02,
    what_if_fraction: float = 0.10,
    mean_interarrival_s: float = 0.002,
    components_per_tenant: int = 2,
    queries_per_component: int = 6,
    deadline_ms: Optional[float] = None,
    budget_levels: int = 3,
) -> ServingTrace:
    """A seeded Zipf trace over ``n_tenants`` independent workloads.

    Each tenant gets its own fragmented workload (seeded by
    ``seed_for("serving-trace", seed, name)``), a small palette of
    ``budget_levels`` what-if budgets, and a scratch clone that replans
    mutate in causal order.  The trace is a pure function of the
    arguments — regenerate with the same parameters and you get the same
    bytes.
    """
    if n_requests <= 0:
        raise ValueError(f"n_requests must be positive, got {n_requests}")
    if n_tenants <= 0:
        raise ValueError(f"n_tenants must be positive, got {n_tenants}")
    if not 0 <= replan_fraction + what_if_fraction <= 1:
        raise ValueError(
            "replan_fraction + what_if_fraction must lie in [0, 1], got "
            f"{replan_fraction} + {what_if_fraction}"
        )

    names = [f"tenant{index:03d}" for index in range(n_tenants)]
    tenants: Dict[str, BCCInstance] = {}
    scratch: Dict[str, BCCInstance] = {}
    palettes: Dict[str, List[float]] = {}
    for index, name in enumerate(names):
        rng = derive_rng("serving-trace", seed, name)
        instance = generate_fragmented(
            n_components=components_per_tenant,
            queries_per_component=queries_per_component,
            budget=float(40 * components_per_tenant + 10 * (index % 5)),
            seed=rng.randrange(2**31),
        )
        tenants[name] = instance
        scratch[name] = instance.clone()
        palettes[name] = [
            round(instance.budget * factor, 6)
            for factor in (0.5, 0.75, 1.25, 1.5, 2.0)[:budget_levels]
        ]

    rng = derive_rng("serving-trace", seed, "arrivals")
    items: List[TraceItem] = []
    arrival = 0.0
    for seq in range(n_requests):
        arrival += rng.expovariate(1.0 / mean_interarrival_s)
        name = names[zipf_rank(rng, n_tenants, exponent)]
        roll = rng.random()
        request: ServeRequest
        if roll < replan_fraction:
            delta = random_delta(scratch[name], rng, fraction=0.05)
            scratch[name].apply_delta(delta)
            request = ReplanRequest(name, delta, deadline_ms=deadline_ms)
        elif roll < replan_fraction + what_if_fraction:
            budget = rng.choice(palettes[name])
            request = WhatIfRequest(name, budget=budget, deadline_ms=deadline_ms)
        else:
            request = PlanRequest(name, deadline_ms=deadline_ms)
        items.append(TraceItem(seq=seq, arrival_s=round(arrival, 9), request=request))
    return ServingTrace(tenants=tenants, items=items)


# ----------------------------------------------------------------------
# JSON round-trip
# ----------------------------------------------------------------------
def trace_to_json(trace: ServingTrace) -> dict:
    """A JSON-compatible dict round-tripping through :func:`trace_from_json`."""
    return {
        "format": TRACE_FORMAT_VERSION,
        "tenants": {
            name: instance_to_json(instance)
            for name, instance in sorted(trace.tenants.items())
        },
        "items": [
            {
                "seq": item.seq,
                "arrival_s": item.arrival_s,
                "request": request_to_json(item.request),
            }
            for item in trace.items
        ],
    }


def trace_from_json(payload: dict) -> ServingTrace:
    """Rebuild the trace stored by :func:`trace_to_json`."""
    if payload.get("format") != TRACE_FORMAT_VERSION:
        raise ValueError(f"unsupported trace format {payload.get('format')!r}")
    return ServingTrace(
        tenants={
            name: instance_from_json(entry)
            for name, entry in payload["tenants"].items()
        },
        items=[
            TraceItem(
                seq=int(entry["seq"]),
                arrival_s=float(entry["arrival_s"]),
                request=request_from_json(entry["request"]),
            )
            for entry in payload["items"]
        ],
    )


def save_trace(trace: ServingTrace, path: Union[str, Path]) -> None:
    """Write ``trace`` to ``path`` as JSON."""
    Path(path).write_text(json.dumps(trace_to_json(trace), sort_keys=True))


def load_trace(path: Union[str, Path]) -> ServingTrace:
    """Read a trace previously written by :func:`save_trace`."""
    return trace_from_json(json.loads(Path(path).read_text()))
