"""Typed requests and responses of the serving façade.

Three request kinds cover the deployment-time question spectrum:

- :class:`PlanRequest` — *"best certified plan for my workload right
  now"*, optionally at an overriding budget and under a latency SLO;
- :class:`ReplanRequest` — *"my workload changed, re-plan"*: carries a
  :class:`~repro.incremental.delta.WorkloadDelta` that mutates the
  tenant's workload and re-solves warm through the incremental engine;
- :class:`WhatIfRequest` — *"what would I get if…"*: a hypothetical
  budget and/or delta evaluated against a clone, never committed.

Responses are :class:`ServeResponse` records: either a certified
:class:`~repro.core.solution.Solution` or a typed error (one tenant's
failure is *that tenant's response*, never an exception into another
tenant's in-flight request), plus per-request telemetry — arrival /
start / finish timestamps on the façade's clock, queue wait, coalesced
batch size, cache disposition and the arm that produced the answer.

:meth:`ServeResponse.canonical` is the determinism contract: the
byte-exact JSON encoding of everything that must be identical when a
trace replays under a virtual clock — across runs, engines and worker
counts.  Volatile diagnostics (wall seconds, engine name, full solver
telemetry) deliberately stay outside it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Mapping, Optional, Union

from repro.core.solution import Solution
from repro.incremental.delta import WorkloadDelta

#: Request kinds, in the order ``kind`` reports them.
KINDS = ("plan", "replan", "what_if")


def _check_common(tenant: str, budget: Optional[float], deadline_ms: Optional[float]) -> None:
    if not tenant or not isinstance(tenant, str):
        raise ValueError(f"tenant must be a non-empty string, got {tenant!r}")
    if budget is not None and not budget >= 0:
        raise ValueError(f"budget must be >= 0, got {budget}")
    if deadline_ms is not None and not deadline_ms >= 0:
        raise ValueError(f"deadline_ms must be >= 0, got {deadline_ms}")


@dataclass(frozen=True)
class PlanRequest:
    """Plan the tenant's current workload (read-only).

    Attributes:
        tenant: registered tenant name.
        budget: overriding budget; ``None`` uses the tenant's own.
        deadline_ms: latency SLO for a cold solve; ``None`` is unbounded.
    """

    tenant: str
    budget: Optional[float] = None
    deadline_ms: Optional[float] = None

    kind = "plan"

    def __post_init__(self) -> None:
        _check_common(self.tenant, self.budget, self.deadline_ms)


@dataclass(frozen=True)
class ReplanRequest:
    """Mutate the tenant's workload by ``delta`` and re-plan warm.

    Attributes:
        tenant: registered tenant name.
        delta: the workload edit batch to apply (validated at service
            time; an invalid delta is an error response, not a crash).
        expected_version: optimistic-concurrency guard — when set, the
            tenant's workload version must still equal it at service
            time, otherwise the request fails with a
            :class:`~repro.core.errors.StaleWorkloadError` response (the
            delta was built against a state another replan has since
            replaced).
        deadline_ms: advisory latency SLO recorded in telemetry.
    """

    tenant: str
    delta: WorkloadDelta
    expected_version: Optional[int] = None
    deadline_ms: Optional[float] = None

    kind = "replan"

    def __post_init__(self) -> None:
        _check_common(self.tenant, None, self.deadline_ms)
        if not isinstance(self.delta, WorkloadDelta):
            raise ValueError(f"delta must be a WorkloadDelta, got {type(self.delta).__name__}")
        if self.expected_version is not None and self.expected_version < 0:
            raise ValueError(f"expected_version must be >= 0, got {self.expected_version}")


@dataclass(frozen=True)
class WhatIfRequest:
    """Hypothetical plan: optional delta and/or budget against a clone.

    Nothing is committed — the tenant's workload, version and warm solver
    state are untouched no matter what the what-if explores.
    """

    tenant: str
    budget: Optional[float] = None
    delta: Optional[WorkloadDelta] = None
    deadline_ms: Optional[float] = None

    kind = "what_if"

    def __post_init__(self) -> None:
        _check_common(self.tenant, self.budget, self.deadline_ms)
        if self.delta is not None and not isinstance(self.delta, WorkloadDelta):
            raise ValueError(f"delta must be a WorkloadDelta, got {type(self.delta).__name__}")


ServeRequest = Union[PlanRequest, ReplanRequest, WhatIfRequest]


@dataclass(frozen=True)
class ServeResponse:
    """One answered request: a certified solution or a typed error.

    Attributes:
        request_id: the trace sequence id (or submission counter).
        tenant: the requesting tenant.
        kind: ``plan`` / ``replan`` / ``what_if``.
        status: ``"ok"`` or ``"error"``.
        solution: the certified solution (``meta["certificate"]`` always
            present) when ``status == "ok"``.
        error: the error's class name when ``status == "error"``.
        detail: the error message (diagnostic, excluded from canonical).
        telemetry: per-request serving record — deterministic fields
            (timestamps on the façade clock, ``queue_wait_s``,
            ``batch_size``, ``cache``, ``path``, ``arm``, ``tick``) plus
            volatile diagnostics under the ``"slo"`` / ``"incremental"``
            keys.
    """

    request_id: int
    tenant: str
    kind: str
    status: str
    solution: Optional[Solution] = None
    error: Optional[str] = None
    detail: Optional[str] = None
    telemetry: Mapping[str, object] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def canonical(self) -> str:
        """The byte-exact deterministic encoding of this response.

        Two replays of the same trace under a virtual clock must produce
        identical canonical strings position by position — across runs,
        across ``REPRO_JOBS`` settings and across coverage engines.  The
        encoding covers the request identity, the full solution content
        (classifiers, covered queries, exact cost/utility floats), the
        error type, the simulated timeline and the serving disposition
        (batch size, cache hit/miss, solve path, arm chosen).
        """
        solution = None
        if self.solution is not None:
            solution = {
                "classifiers": sorted(
                    sorted(str(p) for p in c) for c in self.solution.classifiers
                ),
                "covered": sorted(
                    sorted(str(p) for p in q) for q in self.solution.covered
                ),
                "cost": repr(self.solution.cost),
                "utility": repr(self.solution.utility),
            }
        deterministic = {
            key: self.telemetry.get(key)
            for key in (
                "arrival_s",
                "start_s",
                "finish_s",
                "queue_wait_s",
                "batch_size",
                "cache",
                "path",
                "arm",
                "tick",
            )
        }
        payload = {
            "request_id": self.request_id,
            "tenant": self.tenant,
            "kind": self.kind,
            "status": self.status,
            "error": self.error,
            "solution": solution,
            "telemetry": deterministic,
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def request_to_json(request: ServeRequest) -> dict:
    """A JSON-compatible dict round-tripping through :func:`request_from_json`."""
    payload: dict = {"kind": request.kind, "tenant": request.tenant}
    if request.kind in ("plan", "what_if") and request.budget is not None:
        payload["budget"] = request.budget
    if request.deadline_ms is not None:
        payload["deadline_ms"] = request.deadline_ms
    if request.kind == "replan":
        payload["delta"] = request.delta.to_json()
        if request.expected_version is not None:
            payload["expected_version"] = request.expected_version
    elif request.kind == "what_if" and request.delta is not None:
        payload["delta"] = request.delta.to_json()
    return payload


def request_from_json(payload: Mapping) -> ServeRequest:
    """Rebuild the request stored by :func:`request_to_json`."""
    kind = payload.get("kind")
    tenant = payload.get("tenant")
    deadline = payload.get("deadline_ms")
    if kind == "plan":
        return PlanRequest(tenant, budget=payload.get("budget"), deadline_ms=deadline)
    if kind == "replan":
        return ReplanRequest(
            tenant,
            WorkloadDelta.from_json(payload["delta"]),
            expected_version=payload.get("expected_version"),
            deadline_ms=deadline,
        )
    if kind == "what_if":
        delta = payload.get("delta")
        return WhatIfRequest(
            tenant,
            budget=payload.get("budget"),
            delta=None if delta is None else WorkloadDelta.from_json(delta),
            deadline_ms=deadline,
        )
    raise ValueError(f"unknown request kind {kind!r}")
