"""``python -m repro.serving`` — replay a traffic trace through the façade.

Loads a trace file (``--trace``) or generates a seeded Zipf trace
(``--requests``/``--tenants``/``--seed``), serves it through
:class:`~repro.serving.facade.ServingFacade`, verifies every successful
response's certificate from first principles, and prints throughput,
latency percentiles and cache counters.  ``--virtual`` runs the whole
loop on the tier-prior virtual clock — deterministic timeline, identical
bytes on every run — which is the mode CI smokes.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path
from typing import List, Optional

from repro.core.errors import CertificateError
from repro.parallel.cache import ResultCache
from repro.serving.facade import ServingConfig, ServingFacade, tier_prior_clock
from repro.serving.traffic import generate_trace, load_trace, save_trace


def _percentile(values: List[float], q: float) -> float:
    if not values:
        return 0.0
    ranked = sorted(values)
    index = min(len(ranked) - 1, max(0, round(q * (len(ranked) - 1))))
    return ranked[index]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving",
        description="Replay a multi-tenant traffic trace through the serving façade.",
    )
    parser.add_argument(
        "--trace", metavar="PATH", default=None, help="trace JSON to replay"
    )
    parser.add_argument(
        "--requests", type=int, default=500, help="generated trace size (default 500)"
    )
    parser.add_argument(
        "--tenants", type=int, default=8, help="generated tenant count (default 8)"
    )
    parser.add_argument("--seed", type=int, default=0, help="trace seed (default 0)")
    parser.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="per-request latency SLO for generated traces (default: unbounded)",
    )
    parser.add_argument(
        "--virtual",
        action="store_true",
        help="serve on the tier-prior virtual clock (deterministic timeline)",
    )
    parser.add_argument(
        "--save-trace", metavar="PATH", default=None, help="write the trace as JSON"
    )
    parser.add_argument(
        "--cache-dir",
        metavar="PATH",
        default=None,
        help="result-cache directory (default: a fresh temporary directory)",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="disable the serving result cache"
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None, help="also write the report as JSON"
    )
    args = parser.parse_args(argv)

    if args.trace:
        trace = load_trace(args.trace)
    else:
        trace = generate_trace(
            n_requests=args.requests,
            n_tenants=args.tenants,
            seed=args.seed,
            deadline_ms=args.deadline_ms,
        )
    if args.save_trace:
        save_trace(trace, args.save_trace)
        print(f"trace saved to {args.save_trace} ({len(trace)} requests)")

    scratch = None
    cache = None
    if not args.no_cache:
        if args.cache_dir is None:
            scratch = tempfile.TemporaryDirectory(prefix="repro-serving-")
            cache = ResultCache(directory=Path(scratch.name), max_entries=4096)
        else:
            cache = ResultCache(directory=Path(args.cache_dir), max_entries=4096)

    clock = tier_prior_clock() if args.virtual else None
    facade = ServingFacade(ServingConfig(clock=clock, cache=cache))
    responses = facade.replay(trace)

    # Certificates are derived (or re-derived, on cache hits) at solve
    # time against the instance state the response answered — historical
    # after later replans, so the check here is presence plus internal
    # consistency of the certificate itself, not a re-solve.
    failures = 0
    for response in responses:
        if not response.ok:
            continue
        certificate = response.solution.meta.get("certificate")
        if certificate is None:
            failures += 1
            print(
                f"MISSING CERTIFICATE on request {response.request_id}", file=sys.stderr
            )
            continue
        try:
            if frozenset(certificate.classifiers) != response.solution.classifiers:
                raise CertificateError("certificate/solution selection mismatch")
        except CertificateError as exc:
            failures += 1
            print(
                f"CERTIFICATE FAILED for request {response.request_id}: {exc}",
                file=sys.stderr,
            )

    counters = facade.counters
    kinds = trace.kind_counts()
    latencies = [
        response.telemetry["finish_s"] - response.telemetry["arrival_s"]
        for response in responses
    ]
    elapsed = facade.clock.now() - (trace.items[0].arrival_s if args.virtual else 0.0)
    report = {
        "requests": len(responses),
        "kinds": kinds,
        "errors": counters.errors,
        "solves": counters.solves,
        "replans": counters.replans,
        "coalesced": counters.coalesced,
        "cache": {
            "hits": counters.cache_hits,
            "misses": counters.cache_misses,
            "rejected": counters.cache_rejected,
            "hit_rate": counters.hit_rate(),
        },
        "latency_s": {
            "p50": _percentile(latencies, 0.50),
            "p99": _percentile(latencies, 0.99),
        },
        "virtual": args.virtual,
    }

    clock_name = "virtual" if args.virtual else "system"
    print(
        f"served {report['requests']} requests "
        f"({kinds['plan']} plan / {kinds['replan']} replan / "
        f"{kinds['what_if']} what_if) on the {clock_name} clock"
    )
    print(
        f"solves={counters.solves} replans={counters.replans} "
        f"coalesced={counters.coalesced} errors={counters.errors}"
    )
    print(
        f"cache: hits={counters.cache_hits} misses={counters.cache_misses} "
        f"rejected={counters.cache_rejected} hit_rate={counters.hit_rate():.3f}"
    )
    print(
        f"latency: p50={report['latency_s']['p50'] * 1000.0:.3f}ms "
        f"p99={report['latency_s']['p99'] * 1000.0:.3f}ms "
        f"(timeline: {elapsed:.3f}s)"
    )

    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if scratch is not None:
        scratch.cleanup()
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
