"""The multi-tenant serving façade: an asyncio request loop over the stack.

:class:`ServingFacade` is the thin service layer the ROADMAP calls the
repo's forcing function: it accepts typed ``plan`` / ``replan`` /
``what_if`` requests (:mod:`repro.serving.requests`) for many registered
tenants and answers every one with a certificate-carrying solution or a
typed error, routed through the machinery the previous PRs built:

- **per-tick coalescing** — requests queued in the same tick whose
  effective instances share a canonical fingerprint (same workload
  content, same budget) and the same deadline collapse into *one* solve
  fanned to every waiter, across tenants;
- **cache short-circuit** — a coalesced group consults the PR-3
  :class:`~repro.parallel.cache.ResultCache` first and a warm hit never
  touches the pool.  Certificates are **never stored**: every hit is
  re-verified from first principles against the live instance
  (:func:`~repro.verify.certificate.attach_certificate`), so a tampered
  cache payload is rejected at the serving layer and the request falls
  back to a cold solve;
- **warm re-plans** — ``replan`` requests mutate the tenant's workload
  through its own :class:`~repro.incremental.engine.IncrementalSolver`,
  reusing every untouched shard profile;
- **deadline-policy cold solves** — cache misses go through the PR-8
  :class:`~repro.slo.meta.AnytimeMetaSolver`, which admits arms through
  the PR-3 task pool under the request's latency SLO and always returns
  a certified incumbent.

Determinism is the design driver, not an afterthought: every timestamp
the façade takes goes through the injected
:class:`~repro.parallel.clock.Clock`, and the tick loop services queued
requests in a single total order (arrival sequence, with coalesce groups
executing at their earliest member's position).  Under a
:class:`~repro.parallel.clock.VirtualClock` an entire traffic trace —
arrivals, batching, queue waits, schedules, answers — is bit-identical
across runs, across ``REPRO_JOBS`` settings (a virtual clock forces the
pool serial) and across coverage engines (floats are engine-identical by
construction).  :meth:`ServingFacade.replay` drives a recorded trace
through the real asyncio loop under exactly that regime.

Failures are responses, not exceptions: one tenant's
:class:`~repro.core.errors.StaleWorkloadError` (or invalid delta, or
unknown-tenant reference) becomes *that request's* error response and
never disturbs another tenant's in-flight work.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.errors import (
    CertificateError,
    ReproError,
    StaleWorkloadError,
    UnknownTenantError,
)
from repro.core.model import BCCInstance
from repro.core.solution import Solution
from repro.incremental.engine import IncrementalConfig, IncrementalSolver
from repro.parallel.cache import ResultCache
from repro.parallel.clock import SYSTEM_CLOCK, Clock, VirtualClock
from repro.parallel.fingerprint import task_fingerprint
from repro.parallel.registry import TIER_PRIOR_SECONDS, solver_tier
from repro.serving.requests import ReplanRequest, ServeRequest, ServeResponse
from repro.serving.traffic import ServingTrace
from repro.slo.meta import DEFAULT_ARMS, AnytimeMetaSolver, SloConfig
from repro.slo.stats import ArmStatsStore
from repro.verify.certificate import attach_certificate

#: Slack for arrival/window comparisons (float accumulation, not policy).
_TOL = 1e-12


def tier_prior_clock(start: float = 0.0) -> VirtualClock:
    """A virtual clock charging every solve task its registry tier prior.

    The standard serving simulation clock: deterministic, engine- and
    platform-independent, and coherent with the SLO meta-solver's cold
    predictions (an unknown task charges nothing).
    """

    def seconds(task: object) -> float:
        solver = getattr(task, "solver", None)
        if not isinstance(solver, str):
            return 0.0
        try:
            return TIER_PRIOR_SECONDS[solver_tier(solver)]
        except KeyError:
            return 0.0

    return VirtualClock(start=start, task_seconds=seconds)


@dataclass(frozen=True)
class ServingConfig:
    """Policy knobs for one façade.

    Attributes:
        arms: the cold-solve portfolio handed to the meta-solver.
        stats: runtime-observation store; ``None`` builds a hermetic
            in-memory one (no disk reads).
        clock: injected time; ``None`` uses the system clock.  Install a
            virtual clock (e.g. :func:`tier_prior_clock`) for
            deterministic replays.
        cache: serving-level result cache; ``None`` disables the warm
            path entirely (every plan solves cold).
        jobs: pool width for cold solves and dirty-shard fan-out
            (``None`` defers to ``REPRO_JOBS``; a virtual clock forces 1).
        record: write runtime observations back to the stats store.
        safety: admission safety multiplier (see :class:`SloConfig`).
        inner_solver: registry arm for per-shard replan solves.
        tick_seconds: width of one coalescing window on the clock.
        default_deadline_ms: deadline applied when a request carries none
            (``None`` means unbounded).
    """

    arms: Tuple[str, ...] = DEFAULT_ARMS
    stats: Optional[ArmStatsStore] = field(default=None, repr=False)
    clock: Optional[Clock] = field(default=None, repr=False)
    cache: Optional[ResultCache] = field(default=None, repr=False)
    jobs: Optional[int] = None
    record: bool = False
    safety: float = 1.0
    inner_solver: str = "abcc"
    tick_seconds: float = 0.02
    default_deadline_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if self.tick_seconds < 0:
            raise ValueError(f"tick_seconds must be >= 0, got {self.tick_seconds}")


@dataclass
class ServingCounters:
    """Aggregate serving telemetry (monotonic over the façade's lifetime)."""

    requests: int = 0
    responses: int = 0
    errors: int = 0
    ticks: int = 0
    solves: int = 0
    replans: int = 0
    coalesced: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_rejected: int = 0

    def hit_rate(self) -> float:
        """Cache hits over cache-consulting requests (0.0 when none ran)."""
        total = self.cache_hits + self.cache_misses + self.cache_rejected
        return self.cache_hits / total if total else 0.0

    def snapshot(self) -> Dict[str, float]:
        payload = dict(vars(self))
        payload["hit_rate"] = self.hit_rate()
        return payload


@dataclass
class _Pending:
    """One enqueued request awaiting its tick."""

    seq: int
    request: ServeRequest
    arrival_s: float
    future: "asyncio.Future[ServeResponse]"


@dataclass
class _Group:
    """A coalesced solve unit: identical effective instances, one solve."""

    instance: BCCInstance
    deadline_ms: Optional[float]
    members: List[_Pending] = field(default_factory=list)

    def tenants(self) -> set:
        return {pending.request.tenant for pending in self.members}


class _TenantState:
    """Everything the façade holds for one tenant."""

    def __init__(self, name: str, solver: IncrementalSolver) -> None:
        self.name = name
        self.solver = solver

    @property
    def instance(self) -> BCCInstance:
        return self.solver.instance

    @property
    def version(self) -> int:
        return self.solver.instance.version


class ServingFacade:
    """Async multi-tenant request loop over the solver stack.

    Production use: ``await facade.submit(request)`` from client
    coroutines while ``facade.run()`` ticks on real time.  Deterministic
    use: :meth:`replay` drives a recorded
    :class:`~repro.serving.traffic.ServingTrace` through the same loop
    under the façade's (virtual) clock.
    """

    def __init__(self, config: Optional[ServingConfig] = None) -> None:
        self.config = config or ServingConfig()
        self.clock = self.config.clock or SYSTEM_CLOCK
        self.cache = self.config.cache
        self.stats = (
            self.config.stats
            if self.config.stats is not None
            else ArmStatsStore(path=None)
        )
        self.counters = ServingCounters()
        self._meta = AnytimeMetaSolver(
            SloConfig(
                arms=self.config.arms,
                stats=self.stats,
                clock=self.clock,
                jobs=self.config.jobs,
                record=self.config.record,
                safety=self.config.safety,
            )
        )
        self._tenants: Dict[str, _TenantState] = {}
        self._inbox: List[_Pending] = []
        self._seq = 0
        self._running = False

    # ------------------------------------------------------------------
    # tenant lifecycle
    # ------------------------------------------------------------------
    def register_tenant(self, name: str, instance: BCCInstance) -> int:
        """Adopt ``instance`` (cloned — the façade owns its copy) for
        ``name`` and return the workload version clients should replan
        against.  Re-registering replaces the tenant's state wholesale.
        """
        if not name or not isinstance(name, str):
            raise ValueError(f"tenant name must be a non-empty string, got {name!r}")
        if not isinstance(instance, BCCInstance):
            raise ValueError(
                f"tenant workload must be a BCCInstance, got {type(instance).__name__}"
            )
        solver = IncrementalSolver(
            instance.clone(),
            config=IncrementalConfig(
                inner_solver=self.config.inner_solver,
                jobs=self.config.jobs,
                cache=self.cache,
                certify=True,
                clock=self.clock,
            ),
        )
        self._tenants[name] = _TenantState(name, solver)
        return self._tenants[name].version

    def tenant_version(self, name: str) -> int:
        """The tenant's current workload version (for optimistic replans)."""
        if name not in self._tenants:
            raise UnknownTenantError(f"unknown tenant {name!r}")
        return self._tenants[name].version

    def tenants(self) -> List[str]:
        return sorted(self._tenants)

    # ------------------------------------------------------------------
    # the asyncio loop
    # ------------------------------------------------------------------
    def enqueue(
        self,
        request: ServeRequest,
        request_id: Optional[int] = None,
        arrival_s: Optional[float] = None,
    ) -> "asyncio.Future[ServeResponse]":
        """Queue ``request`` for the next tick; resolves to its response.

        Must be called inside a running event loop.  ``request_id``
        defaults to the submission sequence number; ``arrival_s``
        defaults to the clock's now (replay drivers pass the trace's
        recorded arrival so queue waits are simulated faithfully).
        """
        future: "asyncio.Future[ServeResponse]" = (
            asyncio.get_running_loop().create_future()
        )
        seq = self._seq if request_id is None else request_id
        self._seq += 1
        self.counters.requests += 1
        self._inbox.append(
            _Pending(
                seq=seq,
                request=request,
                arrival_s=self.clock.now() if arrival_s is None else float(arrival_s),
                future=future,
            )
        )
        return future

    async def submit(self, request: ServeRequest) -> ServeResponse:
        """Queue ``request`` and await its response (client entry point)."""
        return await self.enqueue(request)

    async def tick(self) -> List[ServeResponse]:
        """Service everything queued right now, resolving the futures."""
        batch, self._inbox = self._inbox, []
        responses = self._service_tick(batch)
        for pending, response in zip(batch, responses):
            if not pending.future.done():
                pending.future.set_result(response)
        return responses

    async def run(self) -> None:
        """The production loop: tick on real time until :meth:`stop`.

        Solves execute inline in the loop (a CPython solve cannot be
        preempted anyway); concurrency comes from the task pool *inside*
        a solve, not from overlapping solves.
        """
        self._running = True
        try:
            while self._running:
                await asyncio.sleep(self.config.tick_seconds)
                if self._inbox:
                    await self.tick()
        finally:
            self._running = False

    def stop(self) -> None:
        self._running = False

    # ------------------------------------------------------------------
    # trace replay
    # ------------------------------------------------------------------
    def replay(self, trace: ServingTrace, register: bool = True) -> List[ServeResponse]:
        """Serve a recorded trace end to end; responses in trace order.

        Arrivals are grouped into ticks of ``tick_seconds`` starting at
        each window's first arrival.  Under a virtual clock the loop
        advances simulated time to each window close before servicing, so
        the whole timeline — queue waits included — is deterministic;
        under the system clock the trace is served as fast as the façade
        can tick (throughput mode, no artificial pacing).
        """
        return asyncio.run(self.replay_async(trace, register=register))

    async def replay_async(
        self, trace: ServingTrace, register: bool = True
    ) -> List[ServeResponse]:
        if register:
            for name in sorted(trace.tenants):
                self.register_tenant(name, trace.tenants[name])
        items = sorted(trace.items, key=lambda item: (item.arrival_s, item.seq))
        futures: List["asyncio.Future[ServeResponse]"] = []
        index = 0
        while index < len(items):
            window_close = items[index].arrival_s + self.config.tick_seconds
            while index < len(items) and items[index].arrival_s <= window_close + _TOL:
                item = items[index]
                futures.append(
                    self.enqueue(
                        item.request,
                        request_id=item.seq,
                        arrival_s=item.arrival_s if self.clock.virtual else None,
                    )
                )
                index += 1
            if self.clock.virtual:
                now = self.clock.now()
                if window_close > now:
                    self.clock.advance(window_close - now)
            await self.tick()
        return [future.result() for future in futures]

    # ------------------------------------------------------------------
    # the deterministic service core
    # ------------------------------------------------------------------
    def _service_tick(self, batch: List[_Pending]) -> List[ServeResponse]:
        """Service one tick's batch in a single deterministic total order.

        Walks the batch in sequence order.  Non-mutating requests
        accumulate into coalesce groups keyed by the canonical
        fingerprint of their *effective* instance (tenant workload with
        the request's budget / hypothetical delta applied) plus the
        deadline.  A ``replan`` is a mutation barrier: before it
        executes, every pending group containing a request from its
        tenant is flushed, so earlier requests answer against
        pre-delta state and later ones against post-delta state.
        """
        tick = self.counters.ticks
        self.counters.ticks += 1
        ordered = sorted(batch, key=lambda pending: pending.seq)
        responses: Dict[int, ServeResponse] = {}
        groups: Dict[str, _Group] = {}
        order: List[str] = []

        def flush(tenant: Optional[str]) -> None:
            kept: List[Tuple[str, str]] = []
            for key in order:
                group = groups[key]
                if tenant is None or tenant in group.tenants():
                    self._execute_group(group, tick, responses)
                    del groups[key]
                else:
                    kept.append(key)
            order[:] = kept

        for pending in ordered:
            request = pending.request
            state = self._tenants.get(request.tenant)
            if state is None:
                responses[pending.seq] = self._error_response(
                    pending,
                    UnknownTenantError(f"unknown tenant {request.tenant!r}"),
                    tick,
                )
                continue
            if isinstance(request, ReplanRequest):
                flush(request.tenant)
                responses[pending.seq] = self._execute_replan(pending, state, tick)
                continue
            try:
                instance = self._effective_instance(request, state)
            except ReproError as exc:
                responses[pending.seq] = self._error_response(pending, exc, tick)
                continue
            deadline = (
                request.deadline_ms
                if request.deadline_ms is not None
                else self.config.default_deadline_ms
            )
            # plan and what_if requests with the same effective instance
            # and deadline share one solve — the key is content, not kind.
            key = self._solve_fingerprint(instance, deadline)
            if key not in groups:
                groups[key] = _Group(instance=instance, deadline_ms=deadline)
                order.append(key)
            groups[key].members.append(pending)
        flush(None)

        out = []
        for pending in batch:
            response = responses[pending.seq]
            self.counters.responses += 1
            if not response.ok:
                self.counters.errors += 1
            out.append(response)
        return out

    def _effective_instance(
        self, request: ServeRequest, state: _TenantState
    ) -> BCCInstance:
        """The instance a non-mutating request actually asks about."""
        instance = state.instance
        if getattr(request, "delta", None) is not None:
            hypothetical = instance.clone()
            hypothetical.apply_delta(request.delta)
            instance = hypothetical
        if getattr(request, "budget", None) is not None:
            instance = instance.with_budget(request.budget)
        return instance

    def _solve_fingerprint(
        self, instance: BCCInstance, deadline_ms: Optional[float]
    ) -> str:
        """The serving-level cache/coalesce key of one effective solve."""
        return task_fingerprint(
            instance,
            "serving-slo",
            None,
            params=(
                ("arms", ",".join(self.config.arms)),
                ("deadline_ms", "inf" if deadline_ms is None else repr(float(deadline_ms))),
            ),
        )

    # ------------------------------------------------------------------
    # execution paths
    # ------------------------------------------------------------------
    def _execute_group(
        self,
        group: _Group,
        tick: int,
        responses: Dict[int, ServeResponse],
    ) -> None:
        """One solve for a coalesced group, fanned to every waiter."""
        start = self.clock.now()
        fingerprint = self._solve_fingerprint(group.instance, group.deadline_ms)
        solution: Optional[Solution] = None
        cache_state: Optional[str] = None
        if self.cache is not None:
            hit = self.cache.get(fingerprint)
            if hit is not None:
                cached, _seconds = hit
                try:
                    # PR-3 contract: certificates are never stored — every
                    # hit re-derives one against the live instance, so a
                    # tampered payload is rejected right here.
                    solution = attach_certificate(
                        group.instance, cached, budget=group.instance.budget
                    )
                    cache_state = "hit"
                    self.counters.cache_hits += 1
                except CertificateError:
                    solution = None
                    cache_state = "rejected"
                    self.counters.cache_rejected += 1
            else:
                cache_state = "miss"
                self.counters.cache_misses += 1

        if solution is None:
            solution = self._meta.solve(group.instance, deadline_ms=group.deadline_ms)
            self.counters.solves += 1
            if self.cache is not None:
                self.cache.put(fingerprint, solution, max(self.clock.now() - start, 0.0))

        finish = self.clock.now()
        self.counters.coalesced += len(group.members) - 1
        arm = _chosen_arm(solution)
        for pending in group.members:
            responses[pending.seq] = ServeResponse(
                request_id=pending.seq,
                tenant=pending.request.tenant,
                kind=pending.request.kind,
                status="ok",
                solution=solution,
                telemetry=self._telemetry(
                    pending,
                    start,
                    finish,
                    tick,
                    batch_size=len(group.members),
                    cache=cache_state,
                    path="cache" if cache_state == "hit" else "slo",
                    arm=arm,
                    extra={"slo": solution.meta.get("slo")},
                ),
            )

    def _execute_replan(
        self, pending: _Pending, state: _TenantState, tick: int
    ) -> ServeResponse:
        """Apply the delta through the tenant's warm incremental solver."""
        request = pending.request
        start = self.clock.now()
        try:
            if (
                request.expected_version is not None
                and request.expected_version != state.version
            ):
                raise StaleWorkloadError(
                    f"tenant {request.tenant!r} is at version {state.version}, "
                    f"replan expected {request.expected_version}"
                )
            solution = state.solver.resolve_delta(request.delta)
        except ReproError as exc:
            return self._error_response(pending, exc, tick)
        self.counters.replans += 1
        finish = self.clock.now()
        return ServeResponse(
            request_id=pending.seq,
            tenant=request.tenant,
            kind=request.kind,
            status="ok",
            solution=solution,
            telemetry=self._telemetry(
                pending,
                start,
                finish,
                tick,
                batch_size=1,
                cache=None,
                path="incremental",
                arm=self.config.inner_solver,
                extra={
                    "incremental": solution.meta.get("incremental"),
                    "version": state.version,
                },
            ),
        )

    # ------------------------------------------------------------------
    # response assembly
    # ------------------------------------------------------------------
    def _telemetry(
        self,
        pending: _Pending,
        start: float,
        finish: float,
        tick: int,
        batch_size: int,
        cache: Optional[str],
        path: Optional[str],
        arm: Optional[str],
        extra: Optional[Dict[str, object]] = None,
    ) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "arrival_s": pending.arrival_s,
            "start_s": start,
            "finish_s": finish,
            "queue_wait_s": max(start - pending.arrival_s, 0.0),
            "service_s": finish - start,
            "batch_size": batch_size,
            "cache": cache,
            "path": path,
            "arm": arm,
            "tick": tick,
        }
        if extra:
            payload.update(extra)
        return payload

    def _error_response(
        self, pending: _Pending, exc: ReproError, tick: int
    ) -> ServeResponse:
        now = self.clock.now()
        return ServeResponse(
            request_id=pending.seq,
            tenant=pending.request.tenant,
            kind=pending.request.kind,
            status="error",
            error=type(exc).__name__,
            detail=str(exc),
            telemetry=self._telemetry(
                pending, now, now, tick, batch_size=1, cache=None, path=None, arm=None
            ),
        )


def _chosen_arm(solution: Solution) -> str:
    """The arm that produced the incumbent (``"empty"`` when none improved)."""
    slo = solution.meta.get("slo")
    if not isinstance(slo, dict):
        return str(solution.meta.get("algorithm", "unknown"))
    chosen = "empty"
    for entry in slo.get("arms_tried", ()):
        if entry.get("improved"):
            chosen = entry.get("arm", chosen)
    return chosen
