"""The paper's worst-case bound expressions as functions.

Nothing here runs a solver; these are the closed-form pieces of the
approximation analysis, used by tests that verify the prose claims
numerically (e.g. that ``B = n^{2/3}, w = n^{1/3}`` really maximizes the
``A_T^QK`` class ratio, Lemma 4.6).
"""

from __future__ import annotations

import math
from typing import Tuple


def qk_heuristic_ratio(alpha: float, epsilon: float = 0.0) -> float:
    """Theorem 4.7: ``A_H^QK`` performance ratio ``5*alpha + epsilon``.

    The factor decomposes as 2 (random bipartition) x 2 (half budget for
    HkS) x ``alpha`` (HkS engine) x 5/4 (final partial-node selection).
    """
    if alpha < 1.0:
        raise ValueError(f"an approximation ratio is >= 1, got {alpha}")
    return 2.0 * 2.0 * alpha * (5.0 / 4.0) + epsilon


def subproblem_fraction_bound(l: int) -> float:
    """Observation 4.2: some BCC(i) holds >= 1/l of the optimal utility."""
    if l < 1:
        raise ValueError(f"query length must be >= 1, got {l}")
    return 1.0 / l


def bcc_decomposition_bound(knapsack_ratio: float, qk_ratio: float) -> Tuple[float, float]:
    """The best-of-two-subproblems analysis in the proof of Theorem 4.7.

    With a ``k``-approximate BCC(1) and a ``q``-approximate BCC(2), the
    worst optimal-utility split is ``beta = k / (k + q)`` and the overall
    ratio is ``k + q``.  Returns ``(worst beta, overall ratio)``.
    """
    if knapsack_ratio < 1.0 or qk_ratio < 1.0:
        raise ValueError("approximation ratios are >= 1")
    beta = knapsack_ratio / (knapsack_ratio + qk_ratio)
    return beta, knapsack_ratio + qk_ratio


def bcc_l2_ratio(alpha: float, epsilon: float = 0.0) -> float:
    """Theorem 4.7: ``BCC_{l=2}`` ratio ``7*alpha + epsilon`` for alpha >= 1.

    Via the decomposition with a 2-approximate BCC(1) (the preprocessing
    transfer loses a factor 2) and the ``(5*alpha)``-approximate BCC(2):
    overall ``2 + 5*alpha <= 7*alpha`` since ``alpha >= 1``.
    """
    if alpha < 1.0:
        raise ValueError(f"an approximation ratio is >= 1, got {alpha}")
    _, ratio = bcc_decomposition_bound(2.0, 5.0 * alpha)
    assert ratio <= 7.0 * alpha + 1e-12
    return 7.0 * alpha + epsilon


def taylor_class_ratio(n: float, budget: float, w: float) -> float:
    """Lemma 4.6: the bipartite-class ratio ``min(n/B, (n*w)^{1/4}, B/w)``.

    ``P1`` achieves ``O(n/B)``, ``P2`` achieves ``O((n*w)^{1/4})`` and the
    paper's new ``P3`` achieves ``O(B/w)``; the best of the three applies.
    """
    if min(n, budget, w) <= 0:
        raise ValueError("n, budget and w must be positive")
    return min(n / budget, (n * w) ** 0.25, budget / w)


def taylor_worst_case(n: float, grid: int = 60) -> Tuple[float, float, float]:
    """Numerically maximize the class ratio over ``(B, w)``.

    Lemma 4.6 claims the maximum is ``Theta(n^{1/3})`` at ``B = n^{2/3}``,
    ``w = n^{1/3}``.  Returns ``(worst ratio, argmax B, argmax w)``.
    """
    if n <= 1:
        raise ValueError(f"n must exceed 1, got {n}")
    best = (0.0, 1.0, 1.0)
    for i in range(1, grid + 1):
        budget = n ** (i / grid)
        for j in range(1, grid + 1):
            w = n ** (j / grid)
            if w > budget:
                continue  # a pair must be affordable
            ratio = taylor_class_ratio(n, budget, w)
            if ratio > best[0]:
                best = (ratio, budget, w)
    return best


def gmc3_iteration_bound(alpha: float, target: float) -> float:
    """Theorem 5.3: at most ``alpha * ln(T)`` BCC rounds reach target T.

    Each round covers at least a ``1/alpha`` fraction of the remaining
    target, so the residual decays geometrically below 1.
    """
    if alpha < 1.0:
        raise ValueError(f"an approximation ratio is >= 1, got {alpha}")
    if target <= 1.0:
        return 0.0
    return alpha * math.log(target)
