"""Executable versions of the paper's approximation-bound algebra.

The proofs of Lemma 4.6 and Theorems 4.7/5.3 hinge on small optimization
arguments ("the worst case is ``B = n^{2/3}``, ``w = n^{1/3}``", "the
worst split is ``beta = 2/(2+5a)``", "after ``a ln T`` iterations the
residual target drops below 1").  This package encodes those expressions
so the test suite can *check* them numerically instead of trusting the
prose.
"""

from repro.analysis.bounds import (
    bcc_decomposition_bound,
    bcc_l2_ratio,
    gmc3_iteration_bound,
    qk_heuristic_ratio,
    subproblem_fraction_bound,
    taylor_class_ratio,
    taylor_worst_case,
)

__all__ = [
    "qk_heuristic_ratio",
    "bcc_l2_ratio",
    "bcc_decomposition_bound",
    "subproblem_fraction_bound",
    "taylor_class_ratio",
    "taylor_worst_case",
    "gmc3_iteration_bound",
]
