"""Solution objects and evaluation helpers shared by every solver."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Mapping, Optional

from repro.core.coverage import covered_queries
from repro.core.errors import BudgetExceededError
from repro.core.model import BCCInstance, Classifier, ClassifierWorkload, Query


@dataclass(frozen=True)
class Solution:
    """An evaluated classifier selection.

    Attributes:
        classifiers: the selected classifier set.
        cost: total construction cost (sum of member costs).
        utility: total utility of the covered queries.
        covered: the covered query set.
        meta: free-form diagnostics recorded by the producing solver
            (iteration counts, subproblem values, timings).
    """

    classifiers: FrozenSet[Classifier]
    cost: float
    utility: float
    covered: FrozenSet[Query]
    meta: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Normalize to float: ``sum()`` over an empty selection yields the
        # int 0, which serializes as "0" rather than "0.0" and would break
        # byte-identity between live and cache-replayed results.
        object.__setattr__(self, "cost", float(self.cost))
        object.__setattr__(self, "utility", float(self.utility))

    @property
    def ratio(self) -> float:
        """Utility-to-cost ratio (the ECC objective); ``inf`` at zero cost."""
        if self.cost == 0:
            return math.inf if self.utility > 0 else 0.0
        return self.utility / self.cost

    def __len__(self) -> int:
        return len(self.classifiers)

    def describe(self, max_items: int = 10) -> str:
        """Human-readable multi-line summary (used by the examples)."""
        from repro.core.properties import format_props

        lines = [
            f"classifiers: {len(self.classifiers)}  "
            f"cost: {self.cost:g}  utility: {self.utility:g}  "
            f"covered queries: {len(self.covered)}"
        ]
        shown = sorted(
            self.classifiers, key=lambda c: format_props(c, classifier=True)
        )[:max_items]
        for classifier in shown:
            lines.append(f"  + {format_props(classifier, classifier=True)}")
        hidden = len(self.classifiers) - len(shown)
        if hidden > 0:
            lines.append(f"  ... and {hidden} more")
        return "\n".join(lines)


def evaluate(
    workload: ClassifierWorkload,
    classifiers: Iterable[Classifier],
    meta: Optional[Dict[str, object]] = None,
) -> Solution:
    """Evaluate a classifier set against ``workload`` from first principles.

    This is the single source of truth for solution quality: every solver's
    output is re-scored here, so bookkeeping bugs inside a solver cannot
    inflate reported utility.
    """
    selected = frozenset(classifiers)
    covered = frozenset(covered_queries(workload, selected))
    cost = sum(workload.cost(c) for c in selected)
    utility = sum(workload.utility(q) for q in covered)
    return Solution(
        classifiers=selected,
        cost=cost,
        utility=utility,
        covered=covered,
        meta=dict(meta or {}),
    )


def check_budget(instance: BCCInstance, solution: Solution, slack: float = 1e-9) -> None:
    """Raise :class:`BudgetExceededError` if ``solution`` violates the budget.

    A tiny relative ``slack`` absorbs floating-point accumulation.
    """
    allowed = instance.budget * (1.0 + slack) + slack
    if solution.cost > allowed:
        raise BudgetExceededError(
            f"solution cost {solution.cost} exceeds budget {instance.budget}"
        )


def best_solution(*solutions: Optional[Solution]) -> Solution:
    """The highest-utility solution among the given ones (ties: lower cost)."""
    candidates = [s for s in solutions if s is not None]
    if not candidates:
        raise ValueError("best_solution requires at least one non-None solution")
    return max(candidates, key=lambda s: (s.utility, -s.cost))
