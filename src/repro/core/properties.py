"""Property sets: the shared vocabulary of queries and classifiers.

Both a query and a classifier are fully captured by a set of *properties*
(Section 2.1 of the paper), so the library represents both as
``frozenset[str]``.  This module provides construction helpers and the
paper's compact letter notation (query ``xyz`` / classifier ``XYZ``).
"""

from __future__ import annotations

from typing import FrozenSet, Iterable

PropertySet = FrozenSet[str]


def props(*names: str) -> PropertySet:
    """Build a property set from explicit names: ``props("wooden", "table")``."""
    if not names:
        raise ValueError("a property set must contain at least one property")
    for name in names:
        if not isinstance(name, str) or not name:
            raise ValueError(f"property names must be non-empty strings, got {name!r}")
    return frozenset(names)


def from_letters(letters: str) -> PropertySet:
    """Paper notation: ``from_letters("xyz")`` is the set ``{x, y, z}``.

    Case-insensitive, so ``"XYZ"`` (a classifier in the paper's notation)
    and ``"xyz"`` (a query) denote the same property set.
    """
    if not letters:
        raise ValueError("letter notation requires at least one letter")
    return frozenset(letters.lower())


def from_phrase(phrase: str) -> PropertySet:
    """Whitespace-separated names: ``from_phrase("wooden table")``."""
    tokens = phrase.split()
    if not tokens:
        raise ValueError("phrase must contain at least one property token")
    return frozenset(tokens)


def format_props(properties: PropertySet, classifier: bool = False) -> str:
    """Render a property set in the paper's notation (sorted for determinism)."""
    names = sorted(str(p) for p in properties)
    letters = all(isinstance(p, str) and len(p) == 1 for p in properties)
    joined = "".join(names) if letters else " ".join(names)
    return joined.upper() if classifier else joined


def universe(collections: Iterable[PropertySet]) -> PropertySet:
    """Union of all property sets — the property universe ``P``."""
    result: FrozenSet[str] = frozenset()
    for properties in collections:
        result = result | properties
    return result
