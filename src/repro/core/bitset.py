"""Bitset kernels: the workload compiled to integer bitmasks.

Every coverage-algebra hot path — subset tests, missing-set updates,
minimal-cover searches — ultimately manipulates small sets of property
names.  The paper's instances have a fixed, modest property universe per
workload (``l <= 5``, a few hundred properties), which is exactly the
regime where interning properties to bit positions and replacing
``frozenset`` algebra with single-word ``&``/``|``/``==`` on Python ints
pays an order of magnitude in the kernels.

Three layers:

- :class:`PropertySpace` interns a property universe into bit positions
  (sorted name order, so bit layout is deterministic across processes);
- :class:`CompiledWorkload` is a per-workload view materializing every
  query as an ``int`` mask plus mask-keyed utility and inverted-index
  tables (property→query and property→classifier become lists of ints),
  memoized per workload via :func:`compile_workload`;
- :class:`QueryInterner` is the throwaway per-query variant used by
  kernels that receive a bare query and no workload (``is_covered``,
  ``minimal_covers``, ``cheapest_residual_cover``).

A fourth layer backs the ``matrix`` engine (wide property spaces):

- :class:`MatrixWorkload` re-packs a :class:`CompiledWorkload` into
  ``np.uint64`` bitmatrices — queries × 64-bit word-columns, plus the
  transposed property→query view — so slate probes and batched
  candidate evaluation (``probe_gain_batch``) run as vectorized
  AND-NOT/popcount sweeps instead of per-query big-int loops,
  memoized per workload version via :func:`matrix_workload`.

The engine switch: ``REPRO_ENGINE=sets|bits|matrix`` (default ``bits``)
selects which backend the kernels run; :func:`use_engine` overrides it
in-process for differential tests.  ``bits`` and ``matrix`` share the
mask compilation layer (:data:`MASK_ENGINES`), so every mask kernel in
the codebase serves both.  The public API everywhere stays ``frozenset``
— translation happens once at compile time and at result boundaries, so
solutions, certificates and cache fingerprints see identical objects
under any engine.
"""

from __future__ import annotations

import os
import weakref
from contextlib import contextmanager
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
)

from repro.core.properties import PropertySet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.model import ClassifierWorkload

ENGINES: Tuple[str, ...] = ("sets", "bits", "matrix")
#: Engines whose kernels run on compiled int masks; the ``matrix``
#: backend extends ``bits`` (same mask layout, numpy batch kernels on
#: top), so every ``bits`` fast path in the codebase gates on this.
MASK_ENGINES: Tuple[str, ...] = ("bits", "matrix")
_DEFAULT_ENGINE = "bits"
_OVERRIDE: Optional[str] = None

#: Entry cap for :meth:`CompiledWorkload.row_bitmap`'s memo.
_ROW_BITMAP_CAP = 8192


def active_engine() -> str:
    """The coverage-algebra backend in effect: ``sets``/``bits``/``matrix``.

    Reads ``REPRO_ENGINE`` (default ``bits``) unless :func:`use_engine`
    is overriding it.  Components bind a backend at construction time
    (e.g. a tracker), so flipping the engine mid-object is a no-op for
    already-built objects.
    """
    if _OVERRIDE is not None:
        return _OVERRIDE
    name = os.environ.get("REPRO_ENGINE", _DEFAULT_ENGINE).strip().lower()
    if name not in ENGINES:
        raise ValueError(f"REPRO_ENGINE must be one of {ENGINES}, got {name!r}")
    return name


@contextmanager
def use_engine(name: str) -> Iterator[None]:
    """Force the engine within a ``with`` block (differential testing)."""
    global _OVERRIDE
    if name not in ENGINES:
        raise ValueError(f"engine must be one of {ENGINES}, got {name!r}")
    previous = _OVERRIDE
    _OVERRIDE = name
    try:
        yield
    finally:
        _OVERRIDE = previous


class PropertySpace:
    """Deterministic property↔bit interning over a fixed universe.

    Bit ``i`` is the ``i``-th property in sorted name order, so the same
    universe always compiles to the same layout (mask equality is
    meaningful across processes and cache entries).
    """

    __slots__ = ("names", "index", "universe_mask")

    def __init__(self, names: Iterable[str]) -> None:
        self.names: Tuple[str, ...] = tuple(sorted(set(names)))
        self.index: Dict[str, int] = {p: i for i, p in enumerate(self.names)}
        self.universe_mask: int = (1 << len(self.names)) - 1

    @classmethod
    def from_collections(cls, collections: Iterable[PropertySet]) -> "PropertySpace":
        names: set = set()
        for properties in collections:
            names.update(properties)
        return cls(names)

    def __len__(self) -> int:
        return len(self.names)

    def mask_of(self, properties: Iterable[str]) -> Optional[int]:
        """The mask of ``properties``; ``None`` if any name is foreign."""
        mask = 0
        index = self.index
        for prop in properties:
            bit = index.get(prop)
            if bit is None:
                return None
            mask |= 1 << bit
        return mask

    def clip_mask(self, properties: Iterable[str]) -> int:
        """The mask of the known subset of ``properties`` (foreign names drop)."""
        mask = 0
        index = self.index
        for prop in properties:
            bit = index.get(prop)
            if bit is not None:
                mask |= 1 << bit
        return mask

    def props_of(self, mask: int) -> PropertySet:
        """The property set a mask denotes."""
        names = self.names
        result = []
        while mask:
            low = mask & -mask
            result.append(names[low.bit_length() - 1])
            mask ^= low
        return frozenset(result)


class QueryInterner:
    """Bit positions for one query's properties (sorted order).

    The lowest set bit of a mask is always the lexicographically smallest
    property, so branch-and-bound pivots match the set-algebra reference
    exactly.
    """

    __slots__ = ("props", "index", "full")

    def __init__(self, query: PropertySet) -> None:
        self.props: Tuple[str, ...] = tuple(sorted(query))
        self.index: Dict[str, int] = {p: i for i, p in enumerate(self.props)}
        self.full: int = (1 << len(self.props)) - 1

    def mask(self, properties: Iterable[str]) -> Optional[int]:
        """Mask of ``properties``; ``None`` when not a subset of the query."""
        mask = 0
        index = self.index
        for prop in properties:
            bit = index.get(prop)
            if bit is None:
                return None
            mask |= 1 << bit
        return mask

    def clip(self, properties: Iterable[str]) -> int:
        """Mask of ``properties ∩ query`` (foreign names drop silently)."""
        mask = 0
        index = self.index
        for prop in properties:
            bit = index.get(prop)
            if bit is not None:
                mask |= 1 << bit
        return mask

    def props_of(self, mask: int) -> PropertySet:
        props = self.props
        result = []
        while mask:
            low = mask & -mask
            result.append(props[low.bit_length() - 1])
            mask ^= low
        return frozenset(result)


class CompiledWorkload:
    """A workload's queries, utilities and indexes as integer bitmasks.

    Built once per workload (see :func:`compile_workload`); translation
    caches are append-only and bounded by the relevant-classifier count
    (only property sets contained in some query — i.e. relevant
    classifiers — are memoized, everything else is recomputed).
    """

    def __init__(self, workload: "ClassifierWorkload") -> None:
        self.workload = workload
        #: Workload version this view was compiled against; a mutation
        #: bumps the workload's counter, `compile_workload` then drops
        #: this view, and any holder that kept it raises through
        #: :meth:`assert_current` instead of serving pre-mutation masks.
        self.version: int = getattr(workload, "version", 0)
        self.queries: Tuple = workload.queries
        self.space = PropertySpace.from_collections(self.queries)
        space = self.space
        self.query_masks: List[int] = [space.clip_mask(q) for q in self.queries]
        self.query_pos: Dict[PropertySet, int] = {
            q: i for i, q in enumerate(self.queries)
        }
        self.utilities: List[float] = [workload.utility(q) for q in self.queries]
        # property-bit → ascending query indexes (the property→query
        # inverted index as a list of ints, in workload order).
        self.bit_queries: List[List[int]] = [[] for _ in range(len(space))]
        for qidx, mask in enumerate(self.query_masks):
            remaining = mask
            while remaining:
                low = remaining & -remaining
                self.bit_queries[low.bit_length() - 1].append(qidx)
                remaining ^= low
        # Translation caches (mask_of: propset → mask-or-None; props_of:
        # mask → propset).  Query masks are pre-seeded.
        self._mask_cache: Dict[PropertySet, Optional[int]] = dict(
            zip(self.queries, self.query_masks)
        )
        self._props_cache: Dict[int, PropertySet] = {
            m: q for q, m in zip(self.queries, self.query_masks)
        }
        # classifier-mask → ascending query indexes (supersets).
        self._containing: Dict[int, Tuple[int, ...]] = {}
        # classifier-mask → the same superset rows as one bitmap over
        # query positions (bit ``i`` set ⇔ query ``i`` contains it).
        # Bounded: every value is a |Q|-bit int, so on a long-lived
        # interned workload probed with many distinct slate masks this
        # memo would otherwise hold O(entries · |Q|) bytes forever; at
        # the cap it clears wholesale (same discipline as the model's
        # containing memo) and the next probe re-derives.
        self._row_bitmaps: Dict[int, int] = {}
        # property-bit → bitmap of the query positions containing it.
        self.prop_bitmaps: List[int] = [
            sum(1 << qidx for qidx in row) for row in self.bit_queries
        ]
        # Lazy: property-bit → relevant classifier masks, mask → cost.
        self._bit_classifiers: Optional[List[List[int]]] = None
        self._cost_table: Optional[Dict[int, float]] = None

    def assert_current(self) -> None:
        """Raise :class:`StaleWorkloadError` if the workload mutated since compile."""
        if getattr(self.workload, "version", 0) != self.version:
            from repro.core.errors import StaleWorkloadError

            raise StaleWorkloadError(
                f"compiled workload built at version {self.version} read after "
                f"mutation to version {self.workload.version}; recompile via "
                f"compile_workload()"
            )

    # ------------------------------------------------------------------
    # translation
    # ------------------------------------------------------------------
    def mask_of(self, properties: PropertySet) -> Optional[int]:
        """Memoized mask of a property set (``None`` for foreign names)."""
        cached = self._mask_cache.get(properties)
        if cached is not None or properties in self._mask_cache:
            return cached
        mask = self.space.mask_of(properties)
        self._mask_cache[properties] = mask
        return mask

    def props_of(self, mask: int) -> PropertySet:
        """Memoized property set of a mask."""
        cached = self._props_cache.get(mask)
        if cached is None:
            cached = self.space.props_of(mask)
            self._props_cache[mask] = cached
        return cached

    # ------------------------------------------------------------------
    # inverted indexes
    # ------------------------------------------------------------------
    def containing(self, cmask: int) -> Tuple[int, ...]:
        """Query indexes whose mask is a superset of ``cmask`` (ascending).

        Rarest-bit filtering, memoized per mask; ascending index order is
        workload order, matching the set-algebra reference exactly.
        """
        cached = self._containing.get(cmask)
        if cached is not None:
            return cached
        if not cmask:
            raise ValueError("containing() requires a non-empty mask")
        best: Optional[List[int]] = None
        remaining = cmask
        bit_queries = self.bit_queries
        while remaining:
            low = remaining & -remaining
            candidates = bit_queries[low.bit_length() - 1]
            if best is None or len(candidates) < len(best):
                best = candidates
            remaining ^= low
        masks = self.query_masks
        result = tuple(i for i in best if not (cmask & ~masks[i]))
        if result:
            # Non-empty ⇒ cmask is a subset of some query ⇒ a relevant
            # classifier mask, so the memo stays bounded by |CL|.
            self._containing[cmask] = result
        return result

    def row_bitmap(self, cmask: int) -> int:
        """The :meth:`containing` row of ``cmask`` as a query-position bitmap.

        Bit ``i`` is set iff query ``i`` contains ``cmask``; the probe-gain
        kernel intersects these with per-property missing bitmaps so a
        whole trial addition applies in a handful of big-int operations.
        Memoized under the same non-empty-only rule as :meth:`containing`.
        """
        cached = self._row_bitmaps.get(cmask)
        if cached is not None:
            return cached
        bitmap = 0
        for qidx in self.containing(cmask):
            bitmap |= 1 << qidx
        if bitmap:
            if len(self._row_bitmaps) >= _ROW_BITMAP_CAP:
                self._row_bitmaps.clear()
            self._row_bitmaps[cmask] = bitmap
        return bitmap

    def _relevant_tables(self) -> Tuple[List[List[int]], Dict[int, float]]:
        if self._bit_classifiers is None:
            bit_classifiers: List[List[int]] = [[] for _ in range(len(self.space))]
            cost_table: Dict[int, float] = {}
            for classifier in sorted(self.workload.relevant_classifiers(), key=sorted):
                mask = self.space.clip_mask(classifier)
                cost_table[mask] = self.workload.cost(classifier)
                remaining = mask
                while remaining:
                    low = remaining & -remaining
                    bit_classifiers[low.bit_length() - 1].append(mask)
                    remaining ^= low
            self._bit_classifiers = bit_classifiers
            self._cost_table = cost_table
        return self._bit_classifiers, self._cost_table

    @property
    def bit_classifiers(self) -> List[List[int]]:
        """Property-bit → relevant classifier masks (sorted-name order)."""
        return self._relevant_tables()[0]

    @property
    def cost_table(self) -> Dict[int, float]:
        """Relevant classifier mask → construction cost."""
        return self._relevant_tables()[1]


def _require_numpy():
    """numpy, or a typed error explaining how to avoid the matrix engine."""
    try:
        import numpy
    except ImportError as exc:  # pragma: no cover - numpy ships in the image
        raise RuntimeError(
            "REPRO_ENGINE=matrix requires numpy; install it or select the "
            "'bits' engine (REPRO_ENGINE=bits)"
        ) from exc
    return numpy


def matrix_available() -> bool:
    """Whether the ``matrix`` engine can run (numpy importable)."""
    try:
        import numpy  # noqa: F401
    except ImportError:  # pragma: no cover - numpy ships in the image
        return False
    return True


class MatrixWorkload:
    """A :class:`CompiledWorkload` re-packed into ``np.uint64`` bitmatrices.

    Layout (``P`` properties, ``Q`` queries, ``W = ceil(P/64)`` /
    ``Wq = ceil(Q/64)`` word-columns):

    - :attr:`query_words` — ``(Q, W)`` uint64, row ``i`` is query ``i``'s
      property mask packed little-endian (word ``j`` holds property bits
      ``64j .. 64j+63``);
    - :attr:`prop_query_words` — ``(P, Wq)`` uint64, the transposed
      property→query view: row ``p`` is the bitmap of query positions
      containing property ``p`` (the packed form of
      ``CompiledWorkload.prop_bitmaps``).

    Classifier-side lookups (:meth:`pack`, :meth:`rows`) are memoized
    under the compiled layer's non-empty-only rule, so the caches stay
    bounded by the relevant-classifier count.  Version-keyed like the
    compiled view: :meth:`assert_current` raises
    :class:`~repro.core.errors.StaleWorkloadError` after any workload
    mutation, so matrices can never serve pre-mutation coverage.
    """

    def __init__(self, compiled: CompiledWorkload) -> None:
        np = _require_numpy()
        self.np = np
        self.compiled = compiled
        self.version = compiled.version
        n_props = len(compiled.space)
        n_queries = len(compiled.queries)
        self.words: int = max(1, -(-n_props // 64))
        self.query_words = self._pack_rows(compiled.query_masks, self.words)
        qwords = max(1, -(-n_queries // 64))
        self.prop_query_words = self._pack_rows(compiled.prop_bitmaps, qwords)
        # classifier mask → (W,) packed words / ascending containing rows.
        self._pack_cache: Dict[int, object] = {}
        self._rows_cache: Dict[int, object] = {}

    def _pack_rows(self, masks: List[int], words: int):
        """Pack int masks into a ``(len(masks), words)`` uint64 matrix."""
        np = self.np
        if not masks:
            return np.zeros((0, words), dtype=np.uint64)
        nbytes = words * 8
        buffer = b"".join(mask.to_bytes(nbytes, "little") for mask in masks)
        return np.frombuffer(buffer, dtype="<u8").reshape(len(masks), words)

    def assert_current(self) -> None:
        """Raise :class:`StaleWorkloadError` if the workload mutated."""
        self.compiled.assert_current()

    def pack(self, mask: int):
        """``mask`` as a read-only ``(W,)`` uint64 row (memoized non-empty)."""
        cached = self._pack_cache.get(mask)
        if cached is None:
            row = self.np.frombuffer(
                mask.to_bytes(self.words * 8, "little"), dtype="<u8"
            )
            if mask:
                self._pack_cache[mask] = row
            return row
        return cached

    def rows(self, cmask: int):
        """Ascending query positions containing ``cmask`` as an intp array."""
        cached = self._rows_cache.get(cmask)
        if cached is None:
            cached = self.np.asarray(self.compiled.containing(cmask), dtype=self.np.intp)
            if cached.size:
                self._rows_cache[cmask] = cached
        return cached

    def popcount(self, matrix):
        """Per-row population count of a uint64 matrix (vectorized)."""
        np = self.np
        if hasattr(np, "bitwise_count"):
            return np.bitwise_count(matrix).sum(axis=-1, dtype=np.int64)
        bytes_view = matrix.view(np.uint8)  # pragma: no cover - numpy < 2
        return np.unpackbits(bytes_view, axis=-1).sum(axis=-1, dtype=np.int64)


_COMPILED: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
_MATRIX: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def matrix_workload(workload: "ClassifierWorkload") -> MatrixWorkload:
    """The memoized matrix view of ``workload`` (one per instance version).

    Layered on :func:`compile_workload`: the same weak-keyed,
    version-keyed discipline — a mutation bumps ``workload.version``, the
    stale matrices are dropped here and rebuilt on demand, and any holder
    that kept the old view raises :class:`StaleWorkloadError` through
    :meth:`MatrixWorkload.assert_current` instead of reading pre-mutation
    bit rows.
    """
    matrix = _MATRIX.get(workload)
    if matrix is None or matrix.version != getattr(workload, "version", 0):
        matrix = MatrixWorkload(compile_workload(workload))
        _MATRIX[workload] = matrix
    return matrix


def compile_workload(workload: "ClassifierWorkload") -> CompiledWorkload:
    """The memoized compiled view of ``workload`` (one per instance version).

    Held in a weak-keyed side table so workload pickling (process
    fan-out) and fingerprinting never see the compiled state.  The memo
    is keyed on the workload's mutation counter: a delta application
    bumps ``workload.version``, the stale view is dropped here, and a
    fresh compile replaces it — callers holding the old view directly
    (e.g. a coverage tracker built before the mutation) raise
    :class:`~repro.core.errors.StaleWorkloadError` instead of reading
    pre-mutation masks.
    """
    compiled = _COMPILED.get(workload)
    if compiled is None or compiled.version != getattr(workload, "version", 0):
        compiled = CompiledWorkload(workload)
        _COMPILED[workload] = compiled
    return compiled
