"""Core problem model: properties, queries, classifiers, coverage, solutions."""

from repro.core.errors import (
    BudgetExceededError,
    InfeasibleTargetError,
    InvalidInstanceError,
    ReproError,
)
from repro.core.model import (
    BCCInstance,
    Classifier,
    ClassifierWorkload,
    ECCInstance,
    GMC3Instance,
    Query,
    powerset_classifiers,
)
from repro.core.coverage import (
    CoverageTracker,
    covered_queries,
    i_covers,
    is_covered,
    is_minimal_cover,
    minimal_covers,
)
from repro.core.properties import (
    PropertySet,
    format_props,
    from_letters,
    from_phrase,
    props,
    universe,
)
from repro.core.solution import Solution, best_solution, check_budget, evaluate

__all__ = [
    "ReproError",
    "InvalidInstanceError",
    "BudgetExceededError",
    "InfeasibleTargetError",
    "BCCInstance",
    "GMC3Instance",
    "ECCInstance",
    "ClassifierWorkload",
    "Classifier",
    "Query",
    "powerset_classifiers",
    "CoverageTracker",
    "covered_queries",
    "is_covered",
    "is_minimal_cover",
    "minimal_covers",
    "i_covers",
    "PropertySet",
    "props",
    "from_letters",
    "from_phrase",
    "format_props",
    "universe",
    "Solution",
    "evaluate",
    "check_budget",
    "best_solution",
]
