"""Exception hierarchy for the BCC reproduction library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class InvalidInstanceError(ReproError):
    """A problem instance violates the model's input contract."""


class InvalidDeltaError(InvalidInstanceError):
    """A :class:`~repro.incremental.delta.WorkloadDelta` does not apply to
    the workload it was given (unknown query, duplicate add, emptying
    removal, invalid utility or cost value)."""


class StaleWorkloadError(ReproError):
    """A cached view outlived a workload mutation.

    Every workload mutation bumps ``ClassifierWorkload.version``; compiled
    bitmask views and coverage trackers record the version they were built
    against and raise this instead of serving coverage derived from the
    pre-mutation query set.  Catching it is never the fix — rebuild the
    view (``compile_workload`` does so automatically) or construct a fresh
    tracker for the mutated workload.
    """


class ServingError(ReproError):
    """A serving-façade request could not be admitted.

    Raised (and converted into an error *response* — never propagated
    into another tenant's in-flight request) when a request references
    state the façade does not hold or cannot act on.
    """


class UnknownTenantError(ServingError):
    """A request named a tenant the façade has no registered workload for."""


class BudgetExceededError(ReproError):
    """A produced solution exceeds the budget — indicates a solver bug."""


class InfeasibleTargetError(ReproError):
    """A GMC3 utility target exceeds the total achievable utility."""


class DecompositionError(ReproError):
    """A workload decomposition invariant broke — shards were not independent.

    Raised when the sharded solver's recombined totals disagree with the
    first-principles evaluation of the union selection, i.e. some
    classifier leaked utility or cost across shard boundaries.
    """


class CertificateError(ReproError):
    """A solution failed independent verification (``repro.verify``).

    Base class of every typed certificate failure; CI treats any of these
    as a build-breaking defect in the producing solver (or in the
    certificate itself, when one was tampered with).
    """


class CoverageCertificateError(CertificateError):
    """A solution's claimed covered-query set disagrees with first-principles coverage."""


class CostCertificateError(CertificateError):
    """A solution's claimed cost disagrees with the itemised re-computation."""


class UtilityCertificateError(CertificateError):
    """A solution's claimed utility disagrees with the re-derived covered utility."""


class WitnessCertificateError(CertificateError):
    """A certificate witness is not a valid ``T ⊆ S`` with ``⋃T = q``."""


class BudgetCertificateError(CertificateError, BudgetExceededError):
    """A certified solution exceeds the instance budget."""


class TargetCertificateError(CertificateError):
    """A certified GMC3 solution falls short of the utility target."""


class DifferentialError(CertificateError):
    """Two solver arms violated a cross-solver invariant (dominance, reduction match)."""


class MetamorphicError(CertificateError):
    """A semantics-preserving instance transformation changed a certified answer."""


class IncumbentCertificateError(CertificateError):
    """An anytime incumbent trace regressed.

    The SLO meta-solver's contract is that later incumbents are never
    worse than earlier ones — utility non-decreasing, cost non-increasing
    at equal utility, every entry independently certified.  A violation
    means the scheduler returned a worse answer after doing more work.
    """
