"""Exception hierarchy for the BCC reproduction library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class InvalidInstanceError(ReproError):
    """A problem instance violates the model's input contract."""


class BudgetExceededError(ReproError):
    """A produced solution exceeds the budget — indicates a solver bug."""


class InfeasibleTargetError(ReproError):
    """A GMC3 utility target exceeds the total achievable utility."""
