"""Coverage semantics and minimal-cover enumeration.

A query ``q`` is *covered* by a classifier set ``S`` iff some ``T ⊆ S`` has
``⋃ T = q``.  Because only classifiers that are subsets of ``q`` can appear
in such a ``T`` (anything else would add foreign properties), the test
reduces to: the union of ``{c ∈ S : c ⊆ q}`` equals ``q``.

An *i-cover* of ``q`` (Section 4.1) is a set of ``i`` classifiers covering
``q`` such that no proper subset covers ``q`` — equivalently, every member
contributes a property no other member has.

Two interchangeable backends implement the algebra (see
:mod:`repro.core.bitset`): the ``sets`` reference runs on frozensets, the
default ``bits`` engine interns properties to bit positions and runs the
same algorithms on Python ints.  Both produce identical results — the
differential suite (``tests/test_bitset.py``) holds them to it.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.core.bitset import (
    MASK_ENGINES,
    QueryInterner,
    active_engine,
    compile_workload,
    matrix_workload,
)
from repro.core.model import Classifier, ClassifierWorkload, Query

ClassifierSet = FrozenSet[Classifier]


def is_covered(query: Query, classifiers: Iterable[Classifier]) -> bool:
    """Whether ``query`` is covered by the classifier collection."""
    if active_engine() in MASK_ENGINES:
        interner = QueryInterner(query)
        remaining = interner.full
        for classifier in classifiers:
            mask = interner.mask(classifier)
            if mask is not None:
                remaining &= ~mask
                if not remaining:
                    return True
        return not remaining
    remaining = set(query)
    for classifier in classifiers:
        if classifier <= query:
            remaining -= classifier
            if not remaining:
                return True
    return not remaining


def covered_queries(
    workload: ClassifierWorkload, classifiers: Iterable[Classifier]
) -> Set[Query]:
    """All workload queries covered by ``classifiers``.

    Routed through the classifier→query inverted index: each classifier
    contributes its properties only to the queries containing it, so the
    cost is ``O(Σ_c |containing(c)|)`` instead of re-scanning every
    workload query against the full classifier list with repeated subset
    tests.
    """
    selected = {c for c in classifiers if c}
    if active_engine() in MASK_ENGINES:
        # Accumulate each touched query's covered-property mask (small
        # ints) over the memoized ``containing`` rows; a query is covered
        # when its accumulated union equals its own mask.
        compiled = compile_workload(workload)
        query_masks = compiled.query_masks
        accumulated: Dict[int, int] = {}
        for classifier in selected:
            cmask = compiled.mask_of(classifier)
            if not cmask:
                continue
            for qidx in compiled.containing(cmask):
                accumulated[qidx] = accumulated.get(qidx, 0) | cmask
        queries = compiled.queries
        return {
            queries[qidx]
            for qidx, union in accumulated.items()
            if union == query_masks[qidx]
        }
    union_by_query: Dict[Query, Set[str]] = {}
    for classifier in selected:
        for query in workload.queries_containing(classifier):
            union_by_query.setdefault(query, set()).update(classifier)
    return {q for q, union in union_by_query.items() if union == set(q)}


def is_minimal_cover(query: Query, cover: Iterable[Classifier]) -> bool:
    """Whether ``cover`` covers ``query`` with no redundant member.

    A member is redundant iff the others already union to ``query`` —
    equivalently, iff it contributes no property covered exactly once.
    One counting pass over the members replaces the quadratic
    rest-union-per-member recomputation.
    """
    members = list(cover)
    counts: Dict[str, int] = {}
    for classifier in members:
        if not classifier <= query:
            return False
        for prop in classifier:
            counts[prop] = counts.get(prop, 0) + 1
    if len(counts) != len(query):
        return False
    for classifier in members:
        if all(counts[prop] > 1 for prop in classifier):
            return False
    return True


def _masks_minimal(masks: Tuple[int, ...], target: int) -> bool:
    """Mask form of the minimality test: union is ``target`` and every
    member owns a bit set exactly once."""
    union = 0
    once = 0  # bits seen exactly once so far
    for mask in masks:
        once = (once & ~mask) | (mask & ~union)
        union |= mask
    if union != target:
        return False
    for mask in masks:
        if not mask & once:
            return False
    return True


def _minimal_covers_sets(
    query: Query,
    candidates: List[Classifier],
    max_size: int,
) -> List[ClassifierSet]:
    """Reference set-algebra minimal-cover search (``sets`` engine)."""
    ordered_props = sorted(query)
    by_property: Dict[str, List[Classifier]] = {p: [] for p in ordered_props}
    for classifier in candidates:
        for prop in classifier:
            by_property[prop].append(classifier)

    results: Set[ClassifierSet] = set()
    target = set(query)

    def search(covered: Set[str], chosen: Tuple[Classifier, ...]) -> None:
        if covered == target:
            cover = frozenset(chosen)
            if is_minimal_cover(query, cover):
                results.add(cover)
            return
        if len(chosen) >= max_size:
            return
        # Branch on the first property not yet covered.
        pivot = next(p for p in ordered_props if p not in covered)
        for classifier in by_property[pivot]:
            if classifier in chosen:
                continue
            # Skip classifiers that add nothing new (cannot be minimal).
            if classifier <= covered:
                continue
            search(covered | classifier, chosen + (classifier,))

    search(set(), ())
    return sorted(results, key=lambda cover: (len(cover), sorted(map(sorted, cover))))


def _minimal_covers_bits(
    query: Query,
    candidates: List[Classifier],
    max_size: int,
) -> List[ClassifierSet]:
    """Mask minimal-cover search: identical branching on lowest unset bit."""
    interner = QueryInterner(query)
    target = interner.full
    by_bit: List[List[Tuple[Classifier, int]]] = [[] for _ in interner.props]
    for classifier in candidates:
        mask = interner.mask(classifier)
        remaining = mask
        while remaining:
            low = remaining & -remaining
            by_bit[low.bit_length() - 1].append((classifier, mask))
            remaining ^= low

    results: Set[ClassifierSet] = set()

    def search(covered: int, chosen: Tuple[Tuple[Classifier, int], ...]) -> None:
        if covered == target:
            if _masks_minimal(tuple(m for _, m in chosen), target):
                results.add(frozenset(c for c, _ in chosen))
            return
        if len(chosen) >= max_size:
            return
        uncovered = ~covered & target
        pivot = (uncovered & -uncovered).bit_length() - 1
        for classifier, mask in by_bit[pivot]:
            if any(mask == m for _, m in chosen):
                continue
            if not mask & ~covered:
                continue
            search(covered | mask, chosen + ((classifier, mask),))

    search(0, ())
    return sorted(results, key=lambda cover: (len(cover), sorted(map(sorted, cover))))


def minimal_covers(
    query: Query,
    available: Optional[Iterable[Classifier]] = None,
    max_size: Optional[int] = None,
) -> List[ClassifierSet]:
    """All minimal covers of ``query`` from ``available`` classifiers.

    ``available`` defaults to the full power set ``2^q \\ ∅``.  The search
    branches on the smallest uncovered property and keeps only covers that
    pass the minimality check, so each returned set is a genuine minimal
    cover and every minimal cover is returned exactly once.
    """
    if available is None:
        from repro.core.model import powerset_classifiers

        candidates = [c for c in powerset_classifiers(query)]
    else:
        candidates = [c for c in set(available) if c <= query]
    if max_size is None:
        max_size = len(query)
    if active_engine() in MASK_ENGINES:
        return _minimal_covers_bits(query, candidates, max_size)
    return _minimal_covers_sets(query, candidates, max_size)


def i_covers(
    query: Query,
    size: int,
    available: Optional[Iterable[Classifier]] = None,
) -> List[ClassifierSet]:
    """Minimal covers of ``query`` with exactly ``size`` classifiers."""
    return [c for c in minimal_covers(query, available, max_size=size) if len(c) == size]


class CoverageTracker:
    """Incrementally tracks which queries a growing classifier set covers.

    Adding a classifier updates, for each query that contains it, the set of
    properties already covered; a query flips to covered when its missing
    set empties.  Selection order does not matter and re-adding a classifier
    is a no-op.

    The tracker is the shared *coverage engine* of every solver arm: besides
    plain adds it supports

    - :meth:`checkpoint` / :meth:`rollback` — an undo log of per-add deltas,
      so candidate evaluations (``evaluate_gain``, branch-and-bound probes)
      run against the live tracker and unwind in time proportional to the
      trial, never rebuilding from scratch;
    - :meth:`remove` — incremental deselection touching only the queries
      that contain the removed classifier (used by the swap-polish local
      search), with :meth:`contributors` computed on demand so plain adds
      pay nothing for the removal machinery;
    - :meth:`reset` — restore the pristine empty selection in one pass
      (used to swap in a cheaper MC3 selection without re-``__init__``);
    - an incrementally maintained :attr:`spent` total, and engine counters
      (``constructed`` class-wide, ``rollbacks`` per instance) surfaced in
      ``Solution.meta`` by the solvers.

    ``CoverageTracker(workload)`` dispatches on the active engine: the
    ``bits`` backend (:class:`BitsetCoverageTracker`) keeps per-query
    missing sets as int masks over the compiled workload, the ``sets``
    reference (:class:`SetCoverageTracker`, also this base class) keeps
    them as property sets.  Checkpoint/rollback semantics are preserved
    bit-for-bit — the undo log stores mask deltas instead of set deltas.
    """

    #: Class-wide count of tracker constructions (engine telemetry; tests
    #: assert hot paths stay rebuild-free by snapshotting this counter).
    constructed: int = 0

    #: Backend name surfaced in solver telemetry.
    engine_name: str = "sets"

    def __new__(cls, workload: Optional[ClassifierWorkload] = None):
        if cls is CoverageTracker:
            engine = active_engine()
            if engine == "bits":
                return super().__new__(BitsetCoverageTracker)
            if engine == "matrix":
                return super().__new__(MatrixCoverageTracker)
        return super().__new__(cls)

    def __init__(self, workload: ClassifierWorkload) -> None:
        CoverageTracker.constructed += 1
        self._workload = workload
        # Workload version this tracker was built against: any mutation of
        # the workload (the delta API) invalidates every per-query missing
        # set here, so reads after a mutation raise instead of answering
        # for a query set that no longer exists.
        self._workload_version = getattr(workload, "version", 0)
        self._covered: Set[Query] = set()
        self._selected: Set[Classifier] = set()
        self._utility = 0.0
        self._spent = 0.0
        # Insertion-order histories backing :meth:`remove`'s total
        # recomputation: classifiers in the order they were added, and
        # covered queries in the order they flipped covered (the bits
        # backend stores compiled positions).  ``remove`` replays these to
        # rebuild ``spent``/``utility`` instead of subtracting floats, so
        # remove/add round-trips restore the totals bit-for-bit.
        self._add_order: List[Classifier] = []
        self._covered_order: List = []
        # Undo log: entries appended only while a checkpoint is active.
        # Each entry is (classifier, newly_covered, {query-key: props/mask
        # removed}) — the per-query delta representation is backend-owned.
        self._undo: List[Tuple[Classifier, List[Query], Dict]] = []
        # Checkpoint stack: (undo-log mark, utility snapshot, spent snapshot).
        self._checkpoints: List[Tuple[int, float, float]] = []
        #: Number of rollbacks performed (engine telemetry).
        self.rollbacks: int = 0
        #: Full transpose rebuild walks performed (engine telemetry; the
        #: bits backend increments this in :meth:`_transpose`, so solver
        #: loops can assert the incremental maintenance keeps it at the
        #: one cold build instead of one per mutation).
        self.transpose_rebuilds: int = 0
        # Query → workload position, built on the first gain probe: both
        # backends sum probe gains in ascending workload order so the
        # returned float is engine-identical.
        self._query_order: Optional[Dict[Query, int]] = None
        self._init_missing()

    def _init_missing(self) -> None:
        self._missing: Dict[Query, Set[str]] = {
            q: set(q) for q in self._workload.queries
        }

    def _check_current(self) -> None:
        """Raise if the workload mutated after this tracker was built."""
        if getattr(self._workload, "version", 0) != self._workload_version:
            from repro.core.errors import StaleWorkloadError

            raise StaleWorkloadError(
                f"tracker built at workload version {self._workload_version} "
                f"used after mutation to version {self._workload.version}; "
                f"build a fresh CoverageTracker for the mutated workload"
            )

    @property
    def selected(self) -> FrozenSet[Classifier]:
        """The classifiers selected so far."""
        return frozenset(self._selected)

    @property
    def covered(self) -> FrozenSet[Query]:
        """The queries covered so far."""
        return frozenset(self._covered)

    @property
    def utility(self) -> float:
        """Total utility of the covered queries."""
        return self._utility

    @property
    def spent(self) -> float:
        """Total construction cost of the selected classifiers."""
        return self._spent

    @property
    def num_selected(self) -> int:
        """Number of selected classifiers (no frozenset materialization)."""
        return len(self._selected)

    def is_selected(self, classifier: Classifier) -> bool:
        """Whether ``classifier`` is currently selected (O(1))."""
        return classifier in self._selected

    def is_query_covered(self, query: Query) -> bool:
        """Whether ``query`` is covered by the current selection."""
        return query in self._covered

    def missing_properties(self, query: Query) -> FrozenSet[str]:
        """Properties of ``query`` not yet covered by any selected subset classifier."""
        return frozenset(self._missing[query])

    def contributors(self, query: Query) -> FrozenSet[Classifier]:
        """Selected classifiers that are subsets of ``query``.

        Exactly the classifiers whose union determines whether ``query`` is
        covered; swap local searches test "covered without ``c``" from this
        set instead of re-enumerating ``2^q``.  Computed on demand — the
        add hot path keeps no per-query contributor bookkeeping.
        """
        return frozenset(self._workload.subset_classifiers(query, self._selected))

    def uncovered_contained_utility(self, classifier: Classifier) -> float:
        """Summed utility of uncovered queries containing ``classifier``.

        The IG2 scoring kernel, summed in workload order under both
        backends so float accumulation is engine-identical.
        """
        self._check_current()
        total = 0.0
        for query in self._workload.queries_containing(classifier):
            if query not in self._covered:
                total += self._workload.utility(query)
        return total

    def probe_gain(self, additions: Iterable[Classifier]) -> float:
        """Utility gained by adding ``additions`` — read-only, no side effects.

        The gain-evaluation kernel: applies the missing-set deltas in add
        order, collects the queries that become covered, then restores
        every delta — without touching the selection, the spent total, or
        the undo log.  Both backends sum the collected utilities in
        ascending workload order starting from 0.0, so the returned float
        is engine-identical.  Counted as a rollback in the engine
        telemetry (state is restored by delta replay).
        """
        self._check_current()
        newly: List[Query] = []
        touched: List[Tuple[Set[str], Set[str]]] = []
        workload = self._workload
        missing_by_query = self._missing
        for classifier in additions:
            if not classifier:
                continue
            for query in workload.queries_containing(classifier):
                missing = missing_by_query[query]
                if not missing:
                    continue
                delta = missing & classifier
                if not delta:
                    continue
                missing -= delta
                touched.append((missing, delta))
                if not missing:
                    newly.append(query)
        for missing, delta in touched:
            missing |= delta
        self.rollbacks += 1
        if not newly:
            return 0.0
        if self._query_order is None:
            self._query_order = {q: i for i, q in enumerate(workload.queries)}
        newly.sort(key=self._query_order.__getitem__)
        gain = 0.0
        for query in newly:
            gain += workload.utility(query)
        return gain

    def probe_gain_batch(
        self, slates: Iterable[Iterable[Classifier]]
    ) -> List[float]:
        """Per-slate :meth:`probe_gain` over a batch of candidate slates.

        The contract on every backend: element ``i`` is float-exact equal
        to ``probe_gain(slates[i])`` called on the same tracker state —
        the batch is read-only and slates never see each other's
        additions.  ``sets``/``bits`` fall back to the serial sequence;
        the ``matrix`` backend evaluates the whole batch in one
        vectorized AND-NOT/popcount sweep.
        """
        return [self.probe_gain(slate) for slate in slates]

    def add(self, classifier: Classifier) -> List[Query]:
        """Select ``classifier``; return queries that became covered."""
        self._check_current()
        if classifier in self._selected:
            return []
        self._selected.add(classifier)
        self._add_order.append(classifier)
        self._spent += self._workload.cost(classifier)
        logging = bool(self._checkpoints)
        removed: Dict[Query, Set[str]] = {}
        newly_covered: List[Query] = []
        for query in self._workload.queries_containing(classifier):
            if query in self._covered:
                continue
            missing = self._missing[query]
            if logging:
                delta = missing & classifier
                if delta:
                    removed[query] = delta
                    missing -= delta
            else:
                missing -= classifier
            if not missing:
                self._covered.add(query)
                self._utility += self._workload.utility(query)
                newly_covered.append(query)
        if logging:
            self._undo.append((classifier, newly_covered, removed))
        self._covered_order.extend(newly_covered)
        return newly_covered

    def add_all(self, classifiers: Iterable[Classifier]) -> List[Query]:
        """Select several classifiers; return all newly covered queries."""
        newly: List[Query] = []
        for classifier in classifiers:
            newly.extend(self.add(classifier))
        return newly

    # ------------------------------------------------------------------
    # incremental engine: checkpoint / rollback / remove / reset
    # ------------------------------------------------------------------
    def checkpoint(self) -> int:
        """Start recording undo deltas; returns the checkpoint depth.

        Checkpoints nest: each :meth:`rollback` unwinds to the most recent
        one.  While any checkpoint is active, :meth:`remove` is forbidden
        (the undo log only records additive deltas).
        """
        self._check_current()
        self._checkpoints.append((len(self._undo), self._utility, self._spent))
        return len(self._checkpoints)

    def _undo_one(self) -> None:
        classifier, newly_covered, removed = self._undo.pop()
        self._selected.discard(classifier)
        # Unwinding is LIFO and remove() is forbidden inside a checkpoint,
        # so this add's history entries are exactly the list tails.
        self._add_order.pop()
        if newly_covered:
            del self._covered_order[-len(newly_covered):]
        for query in newly_covered:
            self._covered.discard(query)
        for query, delta in removed.items():
            self._missing[query] |= delta

    def rollback(self) -> None:
        """Undo every :meth:`add` since the most recent :meth:`checkpoint`.

        Restores ``selected`` / ``covered`` / per-query missing sets exactly,
        and ``utility`` / ``spent`` bit-identically (from the checkpoint
        snapshot, immune to floating-point re-accumulation drift).
        """
        if not self._checkpoints:
            raise RuntimeError("rollback() without an active checkpoint")
        mark, utility_snapshot, spent_snapshot = self._checkpoints.pop()
        while len(self._undo) > mark:
            self._undo_one()
        self._utility = utility_snapshot
        self._spent = spent_snapshot
        self.rollbacks += 1

    def _replay_utility(self) -> float:
        """Re-sum covered utility in original coverage order (backend hook)."""
        total = 0.0
        for query in self._covered_order:
            total += self._workload.utility(query)
        return total

    def _replay_totals(self) -> None:
        """Recompute ``spent``/``utility`` by replaying insertion order.

        Re-running the exact additions the surviving history performed —
        in their original order, minus the removed entries — produces the
        floats a tracker that never saw the removed classifier would hold.
        That makes remove/add round-trips restore totals bit-for-bit under
        both engines, with no ``-=`` accumulation drift and no
        ``inf - inf`` hazard for unbuildable classifiers.
        """
        workload = self._workload
        spent = 0.0
        for classifier in self._add_order:
            spent += workload.cost(classifier)
        self._spent = spent
        self._utility = self._replay_utility()

    def remove(self, classifier: Classifier) -> List[Query]:
        """Deselect ``classifier``; return queries that became uncovered.

        Missing sets are recomputed only for the queries containing
        ``classifier``, from the remaining selected subset classifiers;
        ``spent``/``utility`` are rebuilt by :meth:`_replay_totals`.
        Not allowed while a checkpoint is active.
        """
        self._check_current()
        if self._checkpoints:
            raise RuntimeError("remove() is not allowed inside a checkpoint")
        if classifier not in self._selected:
            return []
        self._selected.discard(classifier)
        self._add_order.remove(classifier)
        newly_uncovered: List[Query] = []
        for query in self._workload.queries_containing(classifier):
            union: Set[str] = set()
            for other in self._workload.subset_classifiers(query, self._selected):
                union |= other
            missing = set(query) - union
            self._missing[query] = missing
            if missing and query in self._covered:
                self._covered.discard(query)
                newly_uncovered.append(query)
        if newly_uncovered:
            gone = set(newly_uncovered)
            self._covered_order = [q for q in self._covered_order if q not in gone]
        self._replay_totals()
        return newly_uncovered

    def reset(self) -> None:
        """Restore the pristine empty-selection state in one pass."""
        self._init_missing()
        self._covered.clear()
        self._selected.clear()
        self._utility = 0.0
        self._spent = 0.0
        self._add_order.clear()
        self._covered_order.clear()
        self._undo.clear()
        self._checkpoints.clear()


class SetCoverageTracker(CoverageTracker):
    """The set-algebra reference backend, regardless of the active engine."""


class BitsetCoverageTracker(CoverageTracker):
    """The ``bits`` backend: per-query missing sets as int masks.

    State layout: ``_missing`` is a list of masks indexed by query
    position in the compiled workload; the undo log stores mask deltas
    keyed by query index, so ``rollback`` is the same ``|=`` replay as
    the reference.  Public accessors translate at the boundary.
    """

    engine_name = "bits"

    def _init_missing(self) -> None:
        self._compiled = compile_workload(self._workload)
        self._missing: List[int] = list(self._compiled.query_masks)  # type: ignore[assignment]
        self._selected_masks: Dict[Classifier, int] = {}
        # Covered queries live as compiled positions (ints hash faster than
        # frozensets in the add hot loop); a parallel Query set serves the
        # membership probes so they stay one hash lookup like the reference.
        self._covered: Set[int] = set()  # type: ignore[assignment]
        self._covered_queries: Set[Query] = set()
        # Transposed residual state for the probe kernel: property bit →
        # bitmap over query positions still missing that property, plus
        # the uncovered-query bitmap.  Built lazily on the first probe that
        # wants it and from then on maintained *incrementally*: ``add``
        # clears the flipped bits it already computes, the undo log's
        # ``(qidx, old-mask)`` entries replay the exact inverse deltas on
        # rollback, and ``remove`` applies its recomputed per-query masks
        # as set/clear deltas — so solver loops that alternate
        # mutate/probe never pay a full rebuild walk again.  ``None`` =
        # never built (the matrix backend probes its numpy mirror
        # instead, so it stays ``None`` there and the maintenance in the
        # mutation hot paths is a single ``is None`` test).
        self._t_by_prop: Optional[Dict[int, int]] = None
        self._t_uncovered: int = 0

    @property
    def covered(self) -> FrozenSet[Query]:
        return frozenset(self._covered_queries)

    def is_query_covered(self, query: Query) -> bool:
        return query in self._covered_queries

    def missing_properties(self, query: Query) -> FrozenSet[str]:
        compiled = self._compiled
        return compiled.props_of(self._missing[compiled.query_pos[query]])

    def missing_mask(self, query: Query) -> int:
        """The query's residual mask in the compiled global bit layout."""
        return self._missing[self._compiled.query_pos[query]]

    def contributors(self, query: Query) -> FrozenSet[Classifier]:
        qmask = self._compiled.mask_of(query)
        if qmask is None:
            return frozenset()
        return frozenset(
            c for c, m in self._selected_masks.items() if not m & ~qmask
        )

    def _replay_utility(self) -> float:
        utilities = self._compiled.utilities
        total = 0.0
        for qidx in self._covered_order:
            total += utilities[qidx]
        return total

    def uncovered_contained_utility(self, classifier: Classifier) -> float:
        self._check_current()
        compiled = self._compiled
        cmask = compiled.mask_of(classifier)
        if not cmask:
            return 0.0
        total = 0.0
        missing = self._missing
        utilities = compiled.utilities
        for qidx in compiled.containing(cmask):
            if missing[qidx]:
                total += utilities[qidx]
        return total

    def _transpose(self) -> Tuple[Dict[int, int], int]:
        by_prop = self._t_by_prop
        if by_prop is None:
            self.transpose_rebuilds += 1
            by_prop = {}
            uncovered = 0
            for qidx, miss in enumerate(self._missing):
                if not miss:
                    continue
                qbit = 1 << qidx
                uncovered |= qbit
                while miss:
                    low = miss & -miss
                    pidx = low.bit_length() - 1
                    by_prop[pidx] = by_prop.get(pidx, 0) | qbit
                    miss ^= low
            self._t_by_prop = by_prop
            self._t_uncovered = uncovered
        return by_prop, self._t_uncovered

    def probe_gain(self, additions: Iterable[Classifier]) -> float:
        # Bit-parallel over *queries*: property ``p`` of query ``q`` is
        # cleared by addition ``c`` iff ``p ∈ c`` and ``q`` contains ``c``
        # (its row-bitmap bit), so one ``&~`` per (addition, property)
        # pair applies the whole trial to every query at once.  Queries
        # with no remaining missing property across all per-property
        # bitmaps became covered.
        self._check_current()
        self.rollbacks += 1
        compiled = self._compiled
        mask_of = compiled.mask_of
        masks = [m for c in additions if (m := mask_of(c))]
        if self._t_by_prop is None:
            # Cold transpose: a rebuild walks every uncovered query.  When
            # the slate's inverted-index rows are short (the solve-side
            # pattern of one or two trial classifiers between commits),
            # replaying just those rows is cheaper than rebuilding.
            rows = sum(len(compiled.containing(m)) for m in masks)
            if 4 * rows < len(self._missing) - len(self._covered):
                return self._probe_gain_rows(masks)
        by_prop, uncovered = self._transpose()
        if not uncovered:
            return 0.0
        row_bitmap = compiled.row_bitmap
        local: Dict[int, int] = {}
        for cmask in masks:
            nrow = None
            bits = cmask
            while bits:
                low = bits & -bits
                bits ^= low
                pidx = low.bit_length() - 1
                cur = local.get(pidx)
                if cur is None:
                    cur = by_prop.get(pidx)
                    if cur is None:
                        continue
                if nrow is None:
                    nrow = ~row_bitmap(cmask)
                local[pidx] = cur & nrow
        if not local:
            return 0.0
        still = 0
        for pidx, bitmap in by_prop.items():
            got = local.get(pidx)
            still |= bitmap if got is None else got
        newly = uncovered & ~still
        gain = 0.0
        utilities = compiled.utilities
        while newly:
            low = newly & -newly
            gain += utilities[low.bit_length() - 1]
            newly ^= low
        return gain

    def _probe_gain_rows(self, masks: List[int]) -> float:
        """Row-replay probe: apply trial masks per containing query.

        Same result as the transposed kernel (newly covered utilities
        summed in ascending workload order), used when rebuilding the
        transpose would cost more than walking the slate's rows.
        """
        compiled = self._compiled
        missing = self._missing
        local: Dict[int, int] = {}
        for cmask in masks:
            for qidx in compiled.containing(cmask):
                cur = local.get(qidx)
                if cur is None:
                    cur = missing[qidx]
                if cur:
                    local[qidx] = cur & ~cmask
        newly = [
            qidx for qidx, left in local.items() if not left and missing[qidx]
        ]
        if not newly:
            return 0.0
        newly.sort()
        utilities = compiled.utilities
        return sum(utilities[qidx] for qidx in newly)

    def add(self, classifier: Classifier) -> List[Query]:
        self._check_current()
        if classifier in self._selected:
            return []
        self._selected.add(classifier)
        self._add_order.append(classifier)
        self._spent += self._workload.cost(classifier)
        logging = bool(self._checkpoints)
        removed: List[Tuple[int, int]] = []
        newly_idx: List[int] = []
        compiled = self._compiled
        cmask = compiled.mask_of(classifier)
        if cmask:
            self._selected_masks[classifier] = cmask
            missing = self._missing
            covered = self._covered
            covered_queries = self._covered_queries
            queries = compiled.queries
            utilities = compiled.utilities
            utility = self._utility
            ncmask = ~cmask
            # Live transpose: clear each flipped (property, query) bit as
            # we go — the delta ``miss & cmask`` is exactly the bits this
            # add removes from the query's residual, so the transpose
            # stays cold-rebuild-identical (zero entries deleted) without
            # ever walking unaffected queries.
            by_prop = self._t_by_prop
            t_uncovered = self._t_uncovered
            for qidx in compiled.containing(cmask):
                miss = missing[qidx]
                new = miss & ncmask
                if new == miss:
                    continue
                missing[qidx] = new
                if logging:
                    removed.append((qidx, miss))
                if by_prop is not None:
                    qbit = 1 << qidx
                    nqbit = ~qbit
                    delta = miss & cmask
                    while delta:
                        low = delta & -delta
                        delta ^= low
                        pidx = low.bit_length() - 1
                        left = by_prop[pidx] & nqbit
                        if left:
                            by_prop[pidx] = left
                        else:
                            del by_prop[pidx]
                    if not new:
                        t_uncovered &= nqbit
                if not new:
                    covered.add(qidx)
                    covered_queries.add(queries[qidx])
                    utility += utilities[qidx]
                    newly_idx.append(qidx)
            self._utility = utility
            if by_prop is not None:
                self._t_uncovered = t_uncovered
        if logging:
            self._undo.append((classifier, newly_idx, removed))
        self._covered_order.extend(newly_idx)
        queries = compiled.queries
        return [queries[i] for i in newly_idx]

    def _undo_one(self) -> None:
        classifier, newly_idx, removed = self._undo.pop()
        self._selected.discard(classifier)
        self._add_order.pop()
        if newly_idx:
            del self._covered_order[-len(newly_idx):]
        self._selected_masks.pop(classifier, None)
        covered = self._covered
        covered_queries = self._covered_queries
        queries = self._compiled.queries
        for qidx in newly_idx:
            covered.discard(qidx)
            covered_queries.discard(queries[qidx])
        missing = self._missing
        by_prop = self._t_by_prop
        if by_prop is None:
            for qidx, old in removed:
                missing[qidx] = old
        else:
            # Replay the inverse transpose deltas from the undo log: the
            # bits this add cleared from a query are ``old & ~current``,
            # and ``old`` is always nonzero (zero-missing queries never
            # log), so the query's uncovered bit is re-set unconditionally.
            t_uncovered = self._t_uncovered
            for qidx, old in removed:
                qbit = 1 << qidx
                delta = old & ~missing[qidx]
                missing[qidx] = old
                t_uncovered |= qbit
                while delta:
                    low = delta & -delta
                    delta ^= low
                    pidx = low.bit_length() - 1
                    by_prop[pidx] = by_prop.get(pidx, 0) | qbit
            self._t_uncovered = t_uncovered

    def remove(self, classifier: Classifier) -> List[Query]:
        self._check_current()
        if self._checkpoints:
            raise RuntimeError("remove() is not allowed inside a checkpoint")
        if classifier not in self._selected:
            return []
        self._selected.discard(classifier)
        self._add_order.remove(classifier)
        newly_uncovered: List[Query] = []
        uncovered_idx: List[int] = []
        compiled = self._compiled
        cmask = self._selected_masks.pop(classifier, None)
        if cmask:
            selected_masks = self._selected_masks
            query_masks = compiled.query_masks
            by_prop = self._t_by_prop
            for qidx in compiled.containing(cmask):
                qmask = query_masks[qidx]
                union = 0
                for mask in selected_masks.values():
                    if not mask & ~qmask:
                        union |= mask
                miss = qmask & ~union
                old = self._missing[qidx]
                self._missing[qidx] = miss
                if by_prop is not None and miss != old:
                    # Two-direction transpose delta: bits this removal
                    # resurrects (now missing, weren't) get the query bit
                    # set; bits it retires get it cleared.
                    qbit = 1 << qidx
                    added = miss & ~old
                    while added:
                        low = added & -added
                        added ^= low
                        pidx = low.bit_length() - 1
                        by_prop[pidx] = by_prop.get(pidx, 0) | qbit
                    cleared = old & ~miss
                    nqbit = ~qbit
                    while cleared:
                        low = cleared & -cleared
                        cleared ^= low
                        pidx = low.bit_length() - 1
                        left = by_prop[pidx] & nqbit
                        if left:
                            by_prop[pidx] = left
                        else:
                            del by_prop[pidx]
                    if miss:
                        self._t_uncovered |= qbit
                    else:
                        self._t_uncovered &= nqbit
                if miss and qidx in self._covered:
                    self._covered.discard(qidx)
                    self._covered_queries.discard(compiled.queries[qidx])
                    uncovered_idx.append(qidx)
                    newly_uncovered.append(compiled.queries[qidx])
        if uncovered_idx:
            gone = set(uncovered_idx)
            self._covered_order = [q for q in self._covered_order if q not in gone]
        self._replay_totals()
        return newly_uncovered


class MatrixCoverageTracker(BitsetCoverageTracker):
    """The ``matrix`` backend: missing sets as a packed ``uint64`` bitmatrix.

    Subclasses :class:`BitsetCoverageTracker`, so the mutation machinery —
    add/remove, checkpoint/rollback undo log, replay-order totals — is the
    ``bits`` implementation verbatim and its bit-for-bit semantics carry
    over unchanged.  What changes is the probe side: a ``(Q, W)`` uint64
    mirror of the per-query missing masks (kept in sync lazily via a
    dirty-row set) lets :meth:`probe_gain` evaluate a slate as one
    vectorized AND-NOT sweep over the touched rows, and
    :meth:`probe_gain_batch` score a whole batch of candidate slates in a
    single ``(S, Q, W)`` pass.  Newly covered utilities are still summed
    in ascending workload order from 0.0 — numpy finds *which* queries
    flip, Python sums *their* utilities — so every returned float is
    engine-identical to ``sets``/``bits``.
    """

    engine_name = "matrix"

    def _init_missing(self) -> None:
        super()._init_missing()
        self._matrix = matrix_workload(self._workload)
        np = self._matrix.np
        # Writable mirror of ``_missing`` (the compiled query masks, one
        # packed row per query) plus the uncovered-row indicator.
        self._missing_np = self._matrix.query_words.copy()
        self._uncovered_np = np.fromiter(
            (bool(mask) for mask in self._compiled.query_masks),
            dtype=bool,
            count=len(self._compiled.query_masks),
        )
        # Rows whose int mask changed since the last numpy sync.
        self._dirty_rows: Set[int] = set()

    # ------------------------------------------------------------------
    # mutation hooks: record which rows the bits machinery touched
    # ------------------------------------------------------------------
    def add(self, classifier: Classifier) -> List[Query]:
        fresh = classifier not in self._selected
        newly = super().add(classifier)
        if fresh:
            cmask = self._compiled.mask_of(classifier)
            if cmask:
                self._dirty_rows.update(self._compiled.containing(cmask))
        return newly

    def _undo_one(self) -> None:
        if self._undo:
            _, _, removed = self._undo[-1]
            self._dirty_rows.update(qidx for qidx, _ in removed)
        super()._undo_one()

    def remove(self, classifier: Classifier) -> List[Query]:
        cmask = self._selected_masks.get(classifier)
        newly_uncovered = super().remove(classifier)
        if cmask:
            self._dirty_rows.update(self._compiled.containing(cmask))
        return newly_uncovered

    def _sync_np(self) -> None:
        """Re-pack the rows whose int missing mask changed since last sync."""
        dirty = self._dirty_rows
        if not dirty:
            return
        np = self._matrix.np
        nbytes = self._matrix.words * 8
        missing = self._missing
        missing_np = self._missing_np
        uncovered_np = self._uncovered_np
        for qidx in dirty:
            mask = missing[qidx]
            missing_np[qidx] = np.frombuffer(
                mask.to_bytes(nbytes, "little"), dtype="<u8"
            )
            uncovered_np[qidx] = bool(mask)
        dirty.clear()

    # ------------------------------------------------------------------
    # probe kernels
    # ------------------------------------------------------------------
    def _newly_covered_rows(self, masks: List[int]):
        """Ascending query positions a slate flips to covered (post-sync).

        Work is proportional to the slate's containment footprint, not to
        the workload: only rows some slate classifier is contained in can
        flip, so the AND-NOT sweep runs over that row universe alone.
        """
        matrix = self._matrix
        np = matrix.np
        if len(masks) == 1:
            # One classifier: only its containing rows can flip.
            cmask = masks[0]
            rows = matrix.rows(cmask)
            if not rows.size:
                return rows
            still = self._missing_np[rows] & ~matrix.pack(cmask)
            return rows[self._uncovered_np[rows] & ~still.any(axis=1)]
        row_arrays = [(cmask, matrix.rows(cmask)) for cmask in masks]
        nonempty = [rows for _, rows in row_arrays if rows.size]
        if not nonempty:
            return np.zeros(0, dtype=np.intp)
        universe = np.unique(np.concatenate(nonempty))
        cleared = np.zeros((universe.size, matrix.words), dtype=np.uint64)
        for cmask, rows in row_arrays:
            if rows.size:
                cleared[np.searchsorted(universe, rows)] |= matrix.pack(cmask)
        still_any = (self._missing_np[universe] & ~cleared).any(axis=1)
        return universe[self._uncovered_np[universe] & ~still_any]

    def probe_gain(self, additions: Iterable[Classifier]) -> float:
        self._check_current()
        self.rollbacks += 1
        mask_of = self._compiled.mask_of
        masks = [m for c in additions if (m := mask_of(c))]
        if not masks:
            return 0.0
        self._sync_np()
        gain = 0.0
        utilities = self._compiled.utilities
        for qidx in self._newly_covered_rows(masks).tolist():
            gain += utilities[qidx]
        return gain

    def probe_gain_batch(
        self, slates: Iterable[Iterable[Classifier]]
    ) -> List[float]:
        self._check_current()
        mask_of = self._compiled.mask_of
        mask_lists = [
            [m for c in slate if (m := mask_of(c))] for slate in slates
        ]
        self.rollbacks += len(mask_lists)
        if not mask_lists:
            return []
        self._sync_np()
        matrix = self._matrix
        np = matrix.np
        utilities = self._compiled.utilities
        gains = [0.0] * len(mask_lists)
        # The batch row universe: only rows some batch classifier is
        # contained in can flip, so the broadcast sweep runs over those —
        # work scales with the batch's containment footprint, not |Q|.
        row_arrays = {}
        for masks in mask_lists:
            for cmask in masks:
                if cmask not in row_arrays:
                    row_arrays[cmask] = matrix.rows(cmask)
        nonempty = [rows for rows in row_arrays.values() if rows.size]
        if not nonempty:
            return gains
        universe = np.unique(np.concatenate(nonempty))
        positions = {
            cmask: np.searchsorted(universe, rows)
            for cmask, rows in row_arrays.items()
            if rows.size
        }
        missing_r = self._missing_np[universe]
        uncovered_r = self._uncovered_np[universe]
        # Chunked (S, R, W) sweep: bounds the cleared-matrix working set
        # while still amortizing the broadcast AND-NOT over many slates.
        chunk_size = max(1, (1 << 22) // max(1, missing_r.size))
        for start in range(0, len(mask_lists), chunk_size):
            chunk = mask_lists[start : start + chunk_size]
            cleared = np.zeros((len(chunk),) + missing_r.shape, dtype=np.uint64)
            for offset, masks in enumerate(chunk):
                out = cleared[offset]
                for cmask in masks:
                    pos = positions.get(cmask)
                    if pos is not None:
                        out[pos] |= matrix.pack(cmask)
            still_any = (missing_r[None, :, :] & ~cleared).any(axis=2)
            newly = uncovered_r[None, :] & ~still_any
            for offset in range(len(chunk)):
                gain = 0.0
                for qidx in universe[np.flatnonzero(newly[offset])].tolist():
                    gain += utilities[qidx]
                gains[start + offset] = gain
        return gains
