"""Coverage semantics and minimal-cover enumeration.

A query ``q`` is *covered* by a classifier set ``S`` iff some ``T ⊆ S`` has
``⋃ T = q``.  Because only classifiers that are subsets of ``q`` can appear
in such a ``T`` (anything else would add foreign properties), the test
reduces to: the union of ``{c ∈ S : c ⊆ q}`` equals ``q``.

An *i-cover* of ``q`` (Section 4.1) is a set of ``i`` classifiers covering
``q`` such that no proper subset covers ``q`` — equivalently, every member
contributes a property no other member has.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.core.model import Classifier, ClassifierWorkload, Query

ClassifierSet = FrozenSet[Classifier]


def is_covered(query: Query, classifiers: Iterable[Classifier]) -> bool:
    """Whether ``query`` is covered by the classifier collection."""
    remaining = set(query)
    for classifier in classifiers:
        if classifier <= query:
            remaining -= classifier
            if not remaining:
                return True
    return not remaining


def covered_queries(
    workload: ClassifierWorkload, classifiers: Iterable[Classifier]
) -> Set[Query]:
    """All workload queries covered by ``classifiers``."""
    selected = list(classifiers)
    return {q for q in workload.queries if is_covered(q, selected)}


def is_minimal_cover(query: Query, cover: Iterable[Classifier]) -> bool:
    """Whether ``cover`` covers ``query`` with no redundant member."""
    members = list(cover)
    union: Set[str] = set()
    for classifier in members:
        if not classifier <= query:
            return False
        union |= classifier
    if union != set(query):
        return False
    for index in range(len(members)):
        rest_union: Set[str] = set()
        for other, classifier in enumerate(members):
            if other != index:
                rest_union |= classifier
        if rest_union == set(query):
            return False
    return True


def minimal_covers(
    query: Query,
    available: Optional[Iterable[Classifier]] = None,
    max_size: Optional[int] = None,
) -> List[ClassifierSet]:
    """All minimal covers of ``query`` from ``available`` classifiers.

    ``available`` defaults to the full power set ``2^q \\ ∅``.  The search
    branches on the smallest uncovered property and keeps only covers that
    pass the minimality check, so each returned set is a genuine minimal
    cover and every minimal cover is returned exactly once.
    """
    if available is None:
        from repro.core.model import powerset_classifiers

        candidates = [c for c in powerset_classifiers(query)]
    else:
        candidates = [c for c in set(available) if c <= query]
    if max_size is None:
        max_size = len(query)

    ordered_props = sorted(query)
    by_property: Dict[str, List[Classifier]] = {p: [] for p in ordered_props}
    for classifier in candidates:
        for prop in classifier:
            by_property[prop].append(classifier)

    results: Set[ClassifierSet] = set()
    target = set(query)

    def search(covered: Set[str], chosen: Tuple[Classifier, ...]) -> None:
        if covered == target:
            cover = frozenset(chosen)
            if is_minimal_cover(query, cover):
                results.add(cover)
            return
        if len(chosen) >= max_size:
            return
        # Branch on the first property not yet covered.
        pivot = next(p for p in ordered_props if p not in covered)
        for classifier in by_property[pivot]:
            if classifier in chosen:
                continue
            # Skip classifiers that add nothing new (cannot be minimal).
            if classifier <= covered:
                continue
            search(covered | classifier, chosen + (classifier,))

    search(set(), ())
    return sorted(results, key=lambda cover: (len(cover), sorted(map(sorted, cover))))


def i_covers(
    query: Query,
    size: int,
    available: Optional[Iterable[Classifier]] = None,
) -> List[ClassifierSet]:
    """Minimal covers of ``query`` with exactly ``size`` classifiers."""
    return [c for c in minimal_covers(query, available, max_size=size) if len(c) == size]


class CoverageTracker:
    """Incrementally tracks which queries a growing classifier set covers.

    Adding a classifier updates, for each query that contains it, the set of
    properties already covered; a query flips to covered when its missing
    set empties.  Selection order does not matter and re-adding a classifier
    is a no-op.

    The tracker is the shared *coverage engine* of every solver arm: besides
    plain adds it supports

    - :meth:`checkpoint` / :meth:`rollback` — an undo log of per-add deltas,
      so candidate evaluations (``evaluate_gain``, branch-and-bound probes)
      run against the live tracker and unwind in time proportional to the
      trial, never rebuilding from scratch;
    - :meth:`remove` — incremental deselection touching only the queries
      that contain the removed classifier (used by the swap-polish local
      search), with :meth:`contributors` computed on demand from the
      workload's property→classifier index so plain adds pay nothing for
      the removal machinery;
    - :meth:`reset` — restore the pristine empty selection in one pass
      (used to swap in a cheaper MC3 selection without re-``__init__``);
    - an incrementally maintained :attr:`spent` total, and engine counters
      (``constructed`` class-wide, ``rollbacks`` per instance) surfaced in
      ``Solution.meta`` by the solvers.
    """

    #: Class-wide count of tracker constructions (engine telemetry; tests
    #: assert hot paths stay rebuild-free by snapshotting this counter).
    constructed: int = 0

    def __init__(self, workload: ClassifierWorkload) -> None:
        type(self).constructed += 1
        self._workload = workload
        self._missing: Dict[Query, Set[str]] = {q: set(q) for q in workload.queries}
        self._covered: Set[Query] = set()
        self._selected: Set[Classifier] = set()
        self._utility = 0.0
        self._spent = 0.0
        # Undo log: entries appended only while a checkpoint is active.
        # Each entry is (classifier, newly_covered, {query: props removed}).
        self._undo: List[Tuple[Classifier, List[Query], Dict[Query, Set[str]]]] = []
        # Checkpoint stack: (undo-log mark, utility snapshot, spent snapshot).
        self._checkpoints: List[Tuple[int, float, float]] = []
        #: Number of rollbacks performed (engine telemetry).
        self.rollbacks: int = 0

    @property
    def selected(self) -> FrozenSet[Classifier]:
        """The classifiers selected so far."""
        return frozenset(self._selected)

    @property
    def covered(self) -> FrozenSet[Query]:
        """The queries covered so far."""
        return frozenset(self._covered)

    @property
    def utility(self) -> float:
        """Total utility of the covered queries."""
        return self._utility

    @property
    def spent(self) -> float:
        """Total construction cost of the selected classifiers."""
        return self._spent

    @property
    def num_selected(self) -> int:
        """Number of selected classifiers (no frozenset materialization)."""
        return len(self._selected)

    def is_selected(self, classifier: Classifier) -> bool:
        """Whether ``classifier`` is currently selected (O(1))."""
        return classifier in self._selected

    def is_query_covered(self, query: Query) -> bool:
        """Whether ``query`` is covered by the current selection."""
        return query in self._covered

    def missing_properties(self, query: Query) -> FrozenSet[str]:
        """Properties of ``query`` not yet covered by any selected subset classifier."""
        return frozenset(self._missing[query])

    def contributors(self, query: Query) -> FrozenSet[Classifier]:
        """Selected classifiers that are subsets of ``query``.

        Exactly the classifiers whose union determines whether ``query`` is
        covered; swap local searches test "covered without ``c``" from this
        set instead of re-enumerating ``2^q``.  Computed on demand through
        the workload's property→classifier index — the add hot path keeps
        no per-query contributor bookkeeping.
        """
        return frozenset(self._workload.subset_classifiers(query, self._selected))

    def add(self, classifier: Classifier) -> List[Query]:
        """Select ``classifier``; return queries that became covered."""
        if classifier in self._selected:
            return []
        self._selected.add(classifier)
        self._spent += self._workload.cost(classifier)
        logging = bool(self._checkpoints)
        removed: Dict[Query, Set[str]] = {}
        newly_covered: List[Query] = []
        for query in self._workload.queries_containing(classifier):
            if query in self._covered:
                continue
            missing = self._missing[query]
            if logging:
                delta = missing & classifier
                if delta:
                    removed[query] = delta
                    missing -= delta
            else:
                missing -= classifier
            if not missing:
                self._covered.add(query)
                self._utility += self._workload.utility(query)
                newly_covered.append(query)
        if logging:
            self._undo.append((classifier, newly_covered, removed))
        return newly_covered

    def add_all(self, classifiers: Iterable[Classifier]) -> List[Query]:
        """Select several classifiers; return all newly covered queries."""
        newly: List[Query] = []
        for classifier in classifiers:
            newly.extend(self.add(classifier))
        return newly

    # ------------------------------------------------------------------
    # incremental engine: checkpoint / rollback / remove / reset
    # ------------------------------------------------------------------
    def checkpoint(self) -> int:
        """Start recording undo deltas; returns the checkpoint depth.

        Checkpoints nest: each :meth:`rollback` unwinds to the most recent
        one.  While any checkpoint is active, :meth:`remove` is forbidden
        (the undo log only records additive deltas).
        """
        self._checkpoints.append((len(self._undo), self._utility, self._spent))
        return len(self._checkpoints)

    def rollback(self) -> None:
        """Undo every :meth:`add` since the most recent :meth:`checkpoint`.

        Restores ``selected`` / ``covered`` / per-query missing sets exactly,
        and ``utility`` / ``spent`` bit-identically (from the checkpoint
        snapshot, immune to floating-point re-accumulation drift).
        """
        if not self._checkpoints:
            raise RuntimeError("rollback() without an active checkpoint")
        mark, utility_snapshot, spent_snapshot = self._checkpoints.pop()
        while len(self._undo) > mark:
            classifier, newly_covered, removed = self._undo.pop()
            self._selected.discard(classifier)
            for query in newly_covered:
                self._covered.discard(query)
            for query, delta in removed.items():
                self._missing[query] |= delta
        self._utility = utility_snapshot
        self._spent = spent_snapshot
        self.rollbacks += 1

    def remove(self, classifier: Classifier) -> List[Query]:
        """Deselect ``classifier``; return queries that became uncovered.

        Missing sets are recomputed only for the queries containing
        ``classifier``, from the remaining selected subset classifiers.
        Not allowed while a checkpoint is active.
        """
        if self._checkpoints:
            raise RuntimeError("remove() is not allowed inside a checkpoint")
        if classifier not in self._selected:
            return []
        self._selected.discard(classifier)
        cost = self._workload.cost(classifier)
        if math.isinf(cost):
            self._spent = sum(self._workload.cost(c) for c in self._selected)
        else:
            self._spent -= cost
        newly_uncovered: List[Query] = []
        for query in self._workload.queries_containing(classifier):
            union: Set[str] = set()
            for other in self._workload.subset_classifiers(query, self._selected):
                union |= other
            missing = set(query) - union
            self._missing[query] = missing
            if missing and query in self._covered:
                self._covered.discard(query)
                self._utility -= self._workload.utility(query)
                newly_uncovered.append(query)
        return newly_uncovered

    def reset(self) -> None:
        """Restore the pristine empty-selection state in one pass."""
        self._missing = {q: set(q) for q in self._workload.queries}
        self._covered.clear()
        self._selected.clear()
        self._utility = 0.0
        self._spent = 0.0
        self._undo.clear()
        self._checkpoints.clear()
