"""Coverage semantics and minimal-cover enumeration.

A query ``q`` is *covered* by a classifier set ``S`` iff some ``T ⊆ S`` has
``⋃ T = q``.  Because only classifiers that are subsets of ``q`` can appear
in such a ``T`` (anything else would add foreign properties), the test
reduces to: the union of ``{c ∈ S : c ⊆ q}`` equals ``q``.

An *i-cover* of ``q`` (Section 4.1) is a set of ``i`` classifiers covering
``q`` such that no proper subset covers ``q`` — equivalently, every member
contributes a property no other member has.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.core.model import Classifier, ClassifierWorkload, Query

ClassifierSet = FrozenSet[Classifier]


def is_covered(query: Query, classifiers: Iterable[Classifier]) -> bool:
    """Whether ``query`` is covered by the classifier collection."""
    remaining = set(query)
    for classifier in classifiers:
        if classifier <= query:
            remaining -= classifier
            if not remaining:
                return True
    return not remaining


def covered_queries(
    workload: ClassifierWorkload, classifiers: Iterable[Classifier]
) -> Set[Query]:
    """All workload queries covered by ``classifiers``."""
    selected = list(classifiers)
    return {q for q in workload.queries if is_covered(q, selected)}


def is_minimal_cover(query: Query, cover: Iterable[Classifier]) -> bool:
    """Whether ``cover`` covers ``query`` with no redundant member."""
    members = list(cover)
    union: Set[str] = set()
    for classifier in members:
        if not classifier <= query:
            return False
        union |= classifier
    if union != set(query):
        return False
    for index in range(len(members)):
        rest_union: Set[str] = set()
        for other, classifier in enumerate(members):
            if other != index:
                rest_union |= classifier
        if rest_union == set(query):
            return False
    return True


def minimal_covers(
    query: Query,
    available: Optional[Iterable[Classifier]] = None,
    max_size: Optional[int] = None,
) -> List[ClassifierSet]:
    """All minimal covers of ``query`` from ``available`` classifiers.

    ``available`` defaults to the full power set ``2^q \\ ∅``.  The search
    branches on the smallest uncovered property and keeps only covers that
    pass the minimality check, so each returned set is a genuine minimal
    cover and every minimal cover is returned exactly once.
    """
    if available is None:
        from repro.core.model import powerset_classifiers

        candidates = [c for c in powerset_classifiers(query)]
    else:
        candidates = [c for c in set(available) if c <= query]
    if max_size is None:
        max_size = len(query)

    ordered_props = sorted(query)
    by_property: Dict[str, List[Classifier]] = {p: [] for p in ordered_props}
    for classifier in candidates:
        for prop in classifier:
            by_property[prop].append(classifier)

    results: Set[ClassifierSet] = set()
    target = set(query)

    def search(covered: Set[str], chosen: Tuple[Classifier, ...]) -> None:
        if covered == target:
            cover = frozenset(chosen)
            if is_minimal_cover(query, cover):
                results.add(cover)
            return
        if len(chosen) >= max_size:
            return
        # Branch on the first property not yet covered.
        pivot = next(p for p in ordered_props if p not in covered)
        for classifier in by_property[pivot]:
            if classifier in chosen:
                continue
            # Skip classifiers that add nothing new (cannot be minimal).
            if classifier <= covered:
                continue
            search(covered | classifier, chosen + (classifier,))

    search(set(), ())
    return sorted(results, key=lambda cover: (len(cover), sorted(map(sorted, cover))))


def i_covers(
    query: Query,
    size: int,
    available: Optional[Iterable[Classifier]] = None,
) -> List[ClassifierSet]:
    """Minimal covers of ``query`` with exactly ``size`` classifiers."""
    return [c for c in minimal_covers(query, available, max_size=size) if len(c) == size]


class CoverageTracker:
    """Incrementally tracks which queries a growing classifier set covers.

    Adding a classifier updates, for each query that contains it, the set of
    properties already covered; a query flips to covered when its missing
    set empties.  Selection order does not matter and re-adding a classifier
    is a no-op.
    """

    def __init__(self, workload: ClassifierWorkload) -> None:
        self._workload = workload
        self._missing: Dict[Query, Set[str]] = {q: set(q) for q in workload.queries}
        self._covered: Set[Query] = set()
        self._selected: Set[Classifier] = set()
        self._utility = 0.0

    @property
    def selected(self) -> FrozenSet[Classifier]:
        """The classifiers selected so far."""
        return frozenset(self._selected)

    @property
    def covered(self) -> FrozenSet[Query]:
        """The queries covered so far."""
        return frozenset(self._covered)

    @property
    def utility(self) -> float:
        """Total utility of the covered queries."""
        return self._utility

    def is_query_covered(self, query: Query) -> bool:
        """Whether ``query`` is covered by the current selection."""
        return query in self._covered

    def missing_properties(self, query: Query) -> FrozenSet[str]:
        """Properties of ``query`` not yet covered by any selected subset classifier."""
        return frozenset(self._missing[query])

    def add(self, classifier: Classifier) -> List[Query]:
        """Select ``classifier``; return queries that became covered."""
        if classifier in self._selected:
            return []
        self._selected.add(classifier)
        newly_covered: List[Query] = []
        for query in self._workload.queries_containing(classifier):
            if query in self._covered:
                continue
            missing = self._missing[query]
            missing -= classifier
            if not missing:
                self._covered.add(query)
                self._utility += self._workload.utility(query)
                newly_covered.append(query)
        return newly_covered

    def add_all(self, classifiers: Iterable[Classifier]) -> List[Query]:
        """Select several classifiers; return all newly covered queries."""
        newly: List[Query] = []
        for classifier in classifiers:
            newly.extend(self.add(classifier))
        return newly
