"""Problem instances: BCC, GMC3 and ECC.

The input to the Budgeted Classifier Construction problem is the tuple
``⟨Q, U, C, B⟩`` (Section 2.1): queries ``Q ⊆ 2^P``, utilities
``U : Q → R+``, classifier costs ``C : CL → [0, ∞]`` and budget ``B``.
The relevant classifier set ``CL = ⋃_{q∈Q} 2^q \\ ∅`` is derived, never
supplied.  A cost of ``math.inf`` marks a classifier whose construction is
impractical (excluded from every solution); a cost of ``0`` marks one that
already exists.
"""

from __future__ import annotations

import itertools
import math
from collections import Counter
from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.errors import InvalidDeltaError, InvalidInstanceError
from repro.core.properties import PropertySet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.incremental.delta import WorkloadDelta  # noqa: F401

Query = PropertySet
Classifier = PropertySet


def _validate_query(query: Query) -> None:
    if not isinstance(query, frozenset):
        raise InvalidInstanceError(f"queries must be frozensets, got {type(query).__name__}")
    if not query:
        raise InvalidInstanceError("queries must contain at least one property")


def powerset_classifiers(query: Query) -> Iterator[Classifier]:
    """All classifiers relevant to ``query``: ``2^q`` minus the empty set."""
    items = sorted(query)
    for size in range(1, len(items) + 1):
        for combo in itertools.combinations(items, size):
            yield frozenset(combo)


class ClassifierWorkload:
    """The budget-free part of an instance: queries, utilities, costs.

    Args:
        queries: the query set (duplicates are rejected).
        utilities: query -> positive utility.  Queries missing from the
            mapping get ``default_utility``.
        costs: classifier -> cost in ``[0, ∞]``.  Classifiers missing from
            the mapping get ``default_cost`` (the paper's uniform-cost
            convention when analysts supplied no estimates).
        default_utility: utility for unlisted queries (must be positive).
        default_cost: cost for unlisted classifiers (must be >= 0).
    """

    def __init__(
        self,
        queries: Iterable[Query],
        utilities: Optional[Mapping[Query, float]] = None,
        costs: Optional[Mapping[Classifier, float]] = None,
        default_utility: float = 1.0,
        default_cost: float = 1.0,
    ) -> None:
        query_list = list(queries)
        seen = set()
        for query in query_list:
            _validate_query(query)
            if query in seen:
                raise InvalidInstanceError(f"duplicate query {sorted(query)}")
            seen.add(query)
        if not query_list:
            raise InvalidInstanceError("the query set must not be empty")
        if default_utility <= 0:
            raise InvalidInstanceError("default utility must be positive")
        if default_cost < 0:
            raise InvalidInstanceError("default cost must be non-negative")

        self.queries: Tuple[Query, ...] = tuple(query_list)
        self._query_set = frozenset(query_list)
        self._utilities: Dict[Query, float] = {}
        for query, value in (utilities or {}).items():
            if query not in self._query_set:
                raise InvalidInstanceError(
                    f"utility given for unknown query {sorted(query)}"
                )
            if not value > 0 or math.isinf(value):
                raise InvalidInstanceError(
                    f"utilities must be finite and positive, got {value} for {sorted(query)}"
                )
            self._utilities[query] = float(value)
        self._costs: Dict[Classifier, float] = {}
        for classifier, value in (costs or {}).items():
            if not isinstance(classifier, frozenset) or not classifier:
                raise InvalidInstanceError(
                    f"classifier keys must be non-empty frozensets, got {classifier!r}"
                )
            if value < 0:
                raise InvalidInstanceError(
                    f"costs must be >= 0 (math.inf allowed), got {value}"
                )
            self._costs[classifier] = float(value)
        self.default_utility = float(default_utility)
        self.default_cost = float(default_cost)
        #: Mutation counter: bumped by every in-place mutation (the delta
        #: API).  Derived views — the compiled bitmask workload, coverage
        #: trackers — record the version they were built against; a stale
        #: view raises :class:`~repro.core.errors.StaleWorkloadError`
        #: instead of serving coverage for a query set that no longer
        #: exists.
        self.version: int = 0
        self._relevant_cache: Optional[FrozenSet[Classifier]] = None
        self._property_index: Optional[Dict[str, List[Query]]] = None
        self._classifier_index: Optional[Dict[str, List[Classifier]]] = None
        self._containing_cache: Dict[PropertySet, Tuple[Query, ...]] = {}
        #: Version the memoized containing/index caches were filled at.
        self._containing_version: int = 0

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def properties(self) -> PropertySet:
        """The property universe ``P`` (union of all queries)."""
        result: FrozenSet[str] = frozenset()
        for query in self.queries:
            result = result | query
        return result

    @property
    def num_queries(self) -> int:
        """Number of queries ``m``."""
        return len(self.queries)

    @property
    def length(self) -> int:
        """The length parameter ``l``: maximum query cardinality."""
        return max(len(q) for q in self.queries)

    def has_query(self, query: Query) -> bool:
        """Whether ``query`` belongs to the workload."""
        return query in self._query_set

    def utility(self, query: Query) -> float:
        """The utility of a workload query (default for unlisted ones)."""
        if query not in self._query_set:
            raise KeyError(f"unknown query {sorted(query)}")
        return self._utilities.get(query, self.default_utility)

    def cost(self, classifier: Classifier) -> float:
        """The construction cost of ``classifier`` (default for unlisted ones)."""
        return self._costs.get(classifier, self.default_cost)

    def total_utility(self) -> float:
        """Sum of all query utilities (the utility of covering everything)."""
        return sum(self.utility(q) for q in self.queries)

    # ------------------------------------------------------------------
    # derived structure
    # ------------------------------------------------------------------
    def relevant_classifiers(self) -> FrozenSet[Classifier]:
        """``CL = ⋃_{q∈Q} 2^q \\ ∅`` — every classifier that can help cover."""
        if self._relevant_cache is None:
            classifiers = set()
            for query in self.queries:
                classifiers.update(powerset_classifiers(query))
            self._relevant_cache = frozenset(classifiers)
        return self._relevant_cache

    def feasible_classifiers(self) -> Iterator[Classifier]:
        """Relevant classifiers of finite cost."""
        for classifier in self.relevant_classifiers():
            if not math.isinf(self.cost(classifier)):
                yield classifier

    def coverable_queries(self) -> List[Query]:
        """Queries fully coverable by finite-cost classifiers, workload order.

        A query is coverable iff the union of its finite-cost subsets
        equals the query itself; no budget can change this, so the
        complement is permanently out of reach for every solver.
        """
        coverable: List[Query] = []
        for query in self.queries:
            union: set = set()
            for classifier in powerset_classifiers(query):
                if not math.isinf(self.cost(classifier)):
                    union |= classifier
                    if len(union) == len(query):
                        break
            if len(union) == len(query):
                coverable.append(query)
        return coverable

    def compiled(self) -> "CompiledWorkload":
        """The memoized bitmask view of this workload (``bits`` engine)."""
        from repro.core.bitset import compile_workload

        return compile_workload(self)

    def queries_containing(self, properties: PropertySet) -> Sequence[Query]:
        """Queries that are supersets of ``properties`` (candidate beneficiaries).

        Results are memoized per classifier: the coverage engine calls this
        on every add/remove/rollback, and the classifier→query index turns
        those calls into dictionary lookups after the first one.  The
        returned tuple is shared — iterate it, do not mutate.

        Only non-empty results are memoized.  A non-empty result means
        ``properties`` is a subset of some query, i.e. a relevant
        classifier, so the cache can never grow beyond ``|CL|`` entries
        no matter what callers probe; irrelevant probes (empty result)
        are recomputed, which is cheap through the rarest-property list.

        The memo is keyed on :attr:`version`: mutations clear it eagerly,
        and the version recorded at fill time is re-checked on every read
        so a row filled against an older query set can never be served
        (belt and braces — a subclass that mutated state without going
        through the mutators would otherwise leak stale coverage).
        """
        if self._containing_version != self.version:
            self._containing_cache.clear()
            self._property_index = None
            self._containing_version = self.version
        cached = self._containing_cache.get(properties)
        if cached is not None:
            return cached
        from repro.core.bitset import MASK_ENGINES, active_engine

        if active_engine() in MASK_ENGINES:
            compiled = self.compiled()
            mask = compiled.mask_of(properties)
            if not mask:
                return ()
            result = tuple(compiled.queries[i] for i in compiled.containing(mask))
            if result:
                self._containing_cache[properties] = result
            return result
        if self._property_index is None:
            index: Dict[str, List[Query]] = {}
            for query in self.queries:
                for prop in query:
                    index.setdefault(prop, []).append(query)
            self._property_index = index
        rarest = min(properties, key=lambda p: len(self._property_index.get(p, [])))
        result = tuple(q for q in self._property_index.get(rarest, []) if properties <= q)
        if result:
            self._containing_cache[properties] = result
        return result

    def _classifier_index_map(self) -> Dict[str, List[Classifier]]:
        """The lazily built property→classifier inverted index (shared)."""
        if self._classifier_index is None:
            index: Dict[str, List[Classifier]] = {}
            for classifier in self.relevant_classifiers():
                for p in classifier:
                    index.setdefault(p, []).append(classifier)
            self._classifier_index = index
        return self._classifier_index

    def classifiers_containing_property(self, prop: str) -> List[Classifier]:
        """Relevant classifiers testing ``prop`` (inverted property→classifier index)."""
        return list(self._classifier_index_map().get(prop, []))

    def subset_classifiers(self, query: Query, pool: Iterable[Classifier]) -> List[Classifier]:
        """Members of ``pool`` that are subsets of ``query``.

        For large pools this walks the property→classifier index over the
        query's properties (every subset classifier tests at least one of
        them) instead of scanning the whole pool; small pools — e.g. the
        current selection of a tracker — are scanned directly without
        forcing the index to exist.
        """
        pool_set = pool if isinstance(pool, (set, frozenset)) else set(pool)
        if len(pool_set) > 64:
            index = self._classifier_index_map()
            candidate_lists = [index.get(p, []) for p in query]
            if sum(len(lst) for lst in candidate_lists) < len(pool_set):
                seen: set = set()
                result: List[Classifier] = []
                for lst in candidate_lists:
                    for classifier in lst:
                        if classifier not in seen:
                            seen.add(classifier)
                            if classifier in pool_set and classifier <= query:
                                result.append(classifier)
                return result
        from repro.core.bitset import MASK_ENGINES, active_engine

        if active_engine() in MASK_ENGINES:
            compiled = self.compiled()
            qmask = compiled.mask_of(query)
            if qmask is not None:
                mask_of = compiled.mask_of
                masked: List[Classifier] = []
                for classifier in pool_set:
                    cmask = mask_of(classifier)
                    if cmask is not None and not cmask & ~qmask:
                        masked.append(classifier)
                return masked
        return [c for c in pool_set if c <= query]

    def restrict(self, queries: Iterable[Query]) -> "ClassifierWorkload":
        """The sub-workload over ``queries`` (workload order preserved).

        Explicit utilities carry over for the kept queries; explicit costs
        carry over for every classifier still relevant to some kept query
        (including infinite-cost entries — they keep constraining the
        sub-problem).  Defaults are inherited, so ``restrict`` followed by
        ``cost``/``utility`` agrees with the parent workload on everything
        the sub-workload can see.  This is the shard view the
        decomposition engine solves independently.
        """
        kept_set = set()
        for query in queries:
            if query not in self._query_set:
                raise InvalidInstanceError(
                    f"restrict() given a query outside the workload: {sorted(query)}"
                )
            kept_set.add(query)
        ordered = [q for q in self.queries if q in kept_set]
        utilities = {q: self._utilities[q] for q in ordered if q in self._utilities}
        costs: Dict[Classifier, float] = {}
        for classifier, value in self._costs.items():
            for query in self.queries_containing(classifier):
                if query in kept_set:
                    costs[classifier] = value
                    break
        return self._restricted(ordered, utilities, costs)

    def _restricted(
        self,
        queries: List[Query],
        utilities: Dict[Query, float],
        costs: Dict[Classifier, float],
    ) -> "ClassifierWorkload":
        """Build the restricted view (subclasses re-attach budget/target)."""
        return ClassifierWorkload(
            queries,
            utilities,
            costs,
            default_utility=self.default_utility,
            default_cost=self.default_cost,
        )

    # ------------------------------------------------------------------
    # mutation: the WorkloadDelta API (dynamic BCC)
    # ------------------------------------------------------------------
    def _bump_version(self) -> None:
        """Invalidate every derived cache after an in-place mutation."""
        self.version += 1
        self._relevant_cache = None
        self._property_index = None
        self._classifier_index = None
        self._containing_cache.clear()
        self._containing_version = self.version

    def add_query(self, query: Query, utility: Optional[float] = None) -> None:
        """Append ``query`` to the workload (optionally with an explicit utility).

        Bumps :attr:`version`; the new query takes the last workload
        position, so positions of existing queries — and every tie-break
        that depends on workload order — are unchanged.
        """
        _validate_query(query)
        if query in self._query_set:
            raise InvalidDeltaError(f"add of duplicate query {sorted(query)}")
        if utility is not None:
            if not utility > 0 or math.isinf(utility):
                raise InvalidDeltaError(
                    f"utilities must be finite and positive, got {utility} "
                    f"for {sorted(query)}"
                )
        self.queries = self.queries + (query,)
        self._query_set = frozenset(self.queries)
        if utility is not None:
            self._utilities[query] = float(utility)
        self._bump_version()

    def remove_query(self, query: Query) -> None:
        """Drop ``query`` from the workload (its explicit utility with it).

        Explicit classifier costs are kept even when the removed query was
        the last one making them relevant: a cost is a statement about the
        classifier, not about any query, and keeping it means an
        add-then-remove round trip restores the exact original instance.
        """
        if query not in self._query_set:
            raise InvalidDeltaError(f"remove of unknown query {sorted(query)}")
        if len(self.queries) == 1:
            raise InvalidDeltaError("removal would leave an empty query set")
        self.queries = tuple(q for q in self.queries if q != query)
        self._query_set = frozenset(self.queries)
        self._utilities.pop(query, None)
        self._bump_version()

    def set_utility(self, query: Query, utility: Optional[float]) -> None:
        """Reprice a query's utility; ``None`` reverts to the default.

        Reverting deletes the explicit entry (rather than writing the
        default's value) so a reprice-then-revert round trip restores the
        original explicit/default split — and hence the original
        fingerprint token stream.
        """
        if query not in self._query_set:
            raise InvalidDeltaError(f"utility for unknown query {sorted(query)}")
        if utility is None:
            self._utilities.pop(query, None)
        else:
            if not utility > 0 or math.isinf(utility):
                raise InvalidDeltaError(
                    f"utilities must be finite and positive, got {utility} "
                    f"for {sorted(query)}"
                )
            self._utilities[query] = float(utility)
        self._bump_version()

    def set_cost(self, classifier: Classifier, cost: Optional[float]) -> None:
        """Reprice a classifier; ``None`` reverts to the default cost."""
        if not isinstance(classifier, frozenset) or not classifier:
            raise InvalidDeltaError(
                f"classifier keys must be non-empty frozensets, got {classifier!r}"
            )
        if cost is None:
            self._costs.pop(classifier, None)
        else:
            if cost < 0:
                raise InvalidDeltaError(
                    f"costs must be >= 0 (math.inf allowed), got {cost}"
                )
            self._costs[classifier] = float(cost)
        self._bump_version()

    def apply_delta(self, delta: "WorkloadDelta") -> "ClassifierWorkload":
        """Apply a :class:`~repro.incremental.delta.WorkloadDelta` in place.

        The delta is validated in full before the first mutation, so an
        invalid delta raises :class:`~repro.core.errors.InvalidDeltaError`
        without touching the workload.  Application order is removals,
        additions, utility reprices, cost reprices; :attr:`version` is
        bumped once per individual mutation.  Returns ``self``.
        """
        delta.validate(self)
        for query in delta.remove:
            self.remove_query(query)
        for query, utility in delta.add:
            self.add_query(query, utility)
        for query, utility in delta.utilities:
            self.set_utility(query, utility)
        for classifier, cost in delta.costs:
            self.set_cost(classifier, cost)
        return self

    def clone(self) -> "ClassifierWorkload":
        """An independent copy sharing no mutable state (version reset).

        The copy preserves query order, the explicit/default utility and
        cost splits, and the budget/target of instance subclasses — it is
        the cold-solve baseline of the incremental engine's equivalence
        harness.
        """
        return self._restricted(
            list(self.queries), dict(self._utilities), dict(self._costs)
        )

    def length_histogram(self) -> Counter:
        """Counter of query lengths."""
        return Counter(len(q) for q in self.queries)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(m={self.num_queries}, n={len(self.properties)}, "
            f"l={self.length})"
        )


class BCCInstance(ClassifierWorkload):
    """A full BCC input ``⟨Q, U, C, B⟩`` (Section 2.1)."""

    def __init__(
        self,
        queries: Iterable[Query],
        utilities: Optional[Mapping[Query, float]] = None,
        costs: Optional[Mapping[Classifier, float]] = None,
        budget: float = 0.0,
        default_utility: float = 1.0,
        default_cost: float = 1.0,
    ) -> None:
        super().__init__(queries, utilities, costs, default_utility, default_cost)
        if budget < 0 or math.isinf(budget) or math.isnan(budget):
            raise InvalidInstanceError(f"budget must be finite and >= 0, got {budget}")
        self.budget = float(budget)

    def with_budget(self, budget: float) -> "BCCInstance":
        """Same workload, different budget (shares no mutable state)."""
        return BCCInstance(
            self.queries,
            self._utilities,
            self._costs,
            budget=budget,
            default_utility=self.default_utility,
            default_cost=self.default_cost,
        )

    def _restricted(
        self,
        queries: List[Query],
        utilities: Dict[Query, float],
        costs: Dict[Classifier, float],
    ) -> "BCCInstance":
        return BCCInstance(
            queries,
            utilities,
            costs,
            budget=self.budget,
            default_utility=self.default_utility,
            default_cost=self.default_cost,
        )


class GMC3Instance(ClassifierWorkload):
    """Generalized MC3 input ``⟨Q, U, C, T⟩`` (Definition 5.1)."""

    def __init__(
        self,
        queries: Iterable[Query],
        utilities: Optional[Mapping[Query, float]] = None,
        costs: Optional[Mapping[Classifier, float]] = None,
        target: float = 0.0,
        default_utility: float = 1.0,
        default_cost: float = 1.0,
    ) -> None:
        super().__init__(queries, utilities, costs, default_utility, default_cost)
        if target < 0 or math.isnan(target):
            raise InvalidInstanceError(f"target must be >= 0, got {target}")
        self.target = float(target)

    def as_bcc(self, budget: float) -> BCCInstance:
        """The same workload viewed as a BCC instance with ``budget``."""
        return BCCInstance(
            self.queries,
            self._utilities,
            self._costs,
            budget=budget,
            default_utility=self.default_utility,
            default_cost=self.default_cost,
        )

    def _restricted(
        self,
        queries: List[Query],
        utilities: Dict[Query, float],
        costs: Dict[Classifier, float],
    ) -> "GMC3Instance":
        return GMC3Instance(
            queries,
            utilities,
            costs,
            target=self.target,
            default_utility=self.default_utility,
            default_cost=self.default_cost,
        )


class ECCInstance(ClassifierWorkload):
    """Effective Classifier Construction input ``⟨Q, U, C⟩`` (Definition 5.2)."""

    def _restricted(
        self,
        queries: List[Query],
        utilities: Dict[Query, float],
        costs: Dict[Classifier, float],
    ) -> "ECCInstance":
        return ECCInstance(
            queries,
            utilities,
            costs,
            default_utility=self.default_utility,
            default_cost=self.default_cost,
        )

    def as_bcc(self, budget: float) -> BCCInstance:
        return BCCInstance(
            self.queries,
            self._utilities,
            self._costs,
            budget=budget,
            default_utility=self.default_utility,
            default_cost=self.default_cost,
        )
