"""MC3 — Minimization of Classifier Construction Costs (Definition 2.4).

The predecessor problem of [23]: find a classifier set of minimum total cost
that covers *all* queries.  The paper uses an MC3 solver in three places,
all reproduced here:

1. as the local-search optimization inside ``A^BCC`` (line 3 of Algorithm 1),
2. to compute the budget upper bound for experiment sweeps (the cost that
   suffices to cover every query), and
3. as the backbone of the IG1 baseline's cheapest-cover computation.

For ``l <= 2`` the problem is solvable exactly in PTIME (Theorem 2.5); our
exact solver expresses it as a project-selection min-cut.  For ``l >= 3``
(NP-hard) we provide a greedy minimal-cover heuristic.
"""

from repro.mc3.exact_l2 import solve_mc3_l2
from repro.mc3.greedy import solve_mc3_greedy
from repro.mc3.solver import InfeasibleCoverError, full_cover_cost, solve_mc3

__all__ = [
    "solve_mc3",
    "solve_mc3_l2",
    "solve_mc3_greedy",
    "full_cover_cost",
    "InfeasibleCoverError",
]
