"""MC3-specific errors."""

from __future__ import annotations

from repro.core.errors import ReproError


class InfeasibleCoverError(ReproError):
    """Some query has no finite-cost cover, so no MC3 solution exists."""
