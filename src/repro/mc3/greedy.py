"""Greedy MC3 heuristic for general query length (NP-hard regime).

Strategy: repeatedly take the uncovered query whose *residual* cheapest
cover is the least expensive, buy that cover, and update.  Residual costs
only decrease as classifiers accumulate, so a lazy heap with on-pop
re-validation keeps the loop near ``O(m log m)`` cover computations.

This mirrors the minimal-cover greedy of [23] (Theorem 2.5 gives it a
``min(2^{l-1}, O(log n))`` factor); here it also serves as the local-search
optimizer inside ``A^BCC`` (line 3 of Algorithm 1).
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.core.coverage import CoverageTracker
from repro.core.model import Classifier, ClassifierWorkload, Query
from repro.mc3.errors import InfeasibleCoverError


def cheapest_residual_cover(
    query: Query,
    candidates: List[Tuple[Classifier, float]],
    covered_props: Set[str],
) -> Optional[Tuple[float, FrozenSet[Classifier]]]:
    """Cheapest classifier set (from ``candidates``) covering what's missing.

    ``candidates`` are ``(classifier, cost)`` pairs with each classifier a
    subset of ``query``; already-covered properties cost nothing to re-test.
    Branch-and-bound on the lexicographically smallest missing property.

    Returns ``None`` when the missing part cannot be covered.
    """
    missing = frozenset(query) - covered_props
    if not missing:
        return 0.0, frozenset()
    ordered_missing = sorted(missing)
    usable = [(c, cost) for c, cost in candidates if c & missing and not math.isinf(cost)]
    # Cheap upper bound first: sort candidates by cost for better pruning.
    usable.sort(key=lambda item: item[1])

    by_prop: Dict[str, List[Tuple[Classifier, float]]] = {p: [] for p in ordered_missing}
    for classifier, cost in usable:
        for prop in classifier & missing:
            by_prop[prop].append((classifier, cost))

    best: List[Optional[Tuple[float, Tuple[Classifier, ...]]]] = [None]

    def search(still_missing: FrozenSet[str], chosen: Tuple[Classifier, ...], spent: float) -> None:
        if best[0] is not None and spent >= best[0][0]:
            return
        if not still_missing:
            best[0] = (spent, chosen)
            return
        pivot = min(still_missing)
        for classifier, cost in by_prop[pivot]:
            if classifier in chosen:
                continue
            search(still_missing - classifier, chosen + (classifier,), spent + cost)

    search(missing, (), 0.0)
    if best[0] is None:
        return None
    spent, chosen = best[0]
    return spent, frozenset(chosen)


def solve_mc3_greedy(
    workload: ClassifierWorkload,
    queries: Optional[Iterable[Query]] = None,
    available: Optional[Iterable[Classifier]] = None,
    preselected: FrozenSet[Classifier] = frozenset(),
) -> FrozenSet[Classifier]:
    """Greedy minimum-cost cover of all target queries (any length).

    Same contract as :func:`repro.mc3.exact_l2.solve_mc3_l2` but heuristic.

    Raises:
        InfeasibleCoverError: if some query has no finite-cost cover.
    """
    targets = list(queries) if queries is not None else list(workload.queries)
    available_set = None if available is None else set(available)

    # The shared coverage engine supplies per-query covered-property state;
    # target coverage and residual missing sets come from its indexes.
    state = CoverageTracker(workload)
    state.add_all(preselected)

    def cost(classifier: Classifier) -> float:
        if classifier in preselected or state.is_selected(classifier):
            return 0.0
        if available_set is not None and classifier not in available_set:
            return math.inf
        return workload.cost(classifier)

    def candidates_for(query: Query) -> List[Tuple[Classifier, float]]:
        from repro.core.model import powerset_classifiers

        result = []
        for classifier in powerset_classifiers(query):
            c = cost(classifier)
            if not math.isinf(c):
                result.append((classifier, c))
        return result

    def covered_props(query: Query) -> Set[str]:
        return set(query) - set(state.missing_properties(query))

    heap: List[Tuple[float, int, Query]] = []
    for index, query in enumerate(targets):
        if state.is_query_covered(query):
            continue
        found = cheapest_residual_cover(
            query, candidates_for(query), covered_props(query)
        )
        if found is None:
            raise InfeasibleCoverError(f"query {sorted(query)} has no finite-cost cover")
        heapq.heappush(heap, (found[0], index, query))

    chosen: Set[Classifier] = set()
    while heap:
        cached_cost, index, query = heapq.heappop(heap)
        if state.is_query_covered(query):
            continue
        found = cheapest_residual_cover(
            query, candidates_for(query), covered_props(query)
        )
        if found is None:
            raise InfeasibleCoverError(f"query {sorted(query)} has no finite-cost cover")
        current_cost, cover = found
        if current_cost > cached_cost + 1e-12:
            # Should not happen (costs only decrease), but stay safe.
            heapq.heappush(heap, (current_cost, index, query))
            continue
        if current_cost < cached_cost - 1e-12:
            heapq.heappush(heap, (current_cost, index, query))
            continue
        for classifier in cover:
            if classifier not in preselected:
                chosen.add(classifier)
            state.add(classifier)
    return frozenset(chosen)
