"""Greedy MC3 heuristic for general query length (NP-hard regime).

Strategy: repeatedly take the uncovered query whose *residual* cheapest
cover is the least expensive, buy that cover, and update.  Residual costs
only decrease as classifiers accumulate, so a lazy heap with on-pop
re-validation keeps the loop near ``O(m log m)`` cover computations.

This mirrors the minimal-cover greedy of [23] (Theorem 2.5 gives it a
``min(2^{l-1}, O(log n))`` factor); here it also serves as the local-search
optimizer inside ``A^BCC`` (line 3 of Algorithm 1).
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.core.bitset import MASK_ENGINES, QueryInterner, active_engine
from repro.core.coverage import CoverageTracker
from repro.core.model import Classifier, ClassifierWorkload, Query
from repro.mc3.errors import InfeasibleCoverError


def _mask_cover_search(
    missing: int,
    usable: List[Tuple[Classifier, int, float]],
) -> Optional[Tuple[float, FrozenSet[Classifier]]]:
    """Branch-and-bound over mask candidates (cost-sorted, missing-relevant).

    Pivots on the lowest set bit of the still-missing mask — in both the
    per-query and the compiled global bit layout that is the
    lexicographically smallest missing property, so the traversal (and
    therefore every equal-cost tie) matches the set reference exactly.
    """
    # Pivot buckets are built lazily: the search usually reaches only one
    # or two distinct pivot bits, so indexing every candidate under every
    # bit up front (as the set reference does per property) is wasted work.
    # A bucket keeps ``usable``'s cost-sorted order, so the traversal — and
    # therefore every equal-cost tie — matches the eager build exactly.
    by_bit: Dict[int, List[Tuple[Classifier, int, float]]] = {}

    def bucket(pivot: int) -> List[Tuple[Classifier, int, float]]:
        got = by_bit.get(pivot)
        if got is None:
            pbit = 1 << pivot
            got = [item for item in usable if item[1] & pbit]
            by_bit[pivot] = got
        return got

    best: List[Optional[Tuple[float, Tuple[Classifier, ...]]]] = [None]

    def search(still_missing: int, chosen: Tuple[Classifier, ...], spent: float) -> None:
        if best[0] is not None and spent >= best[0][0]:
            return
        if not still_missing:
            best[0] = (spent, chosen)
            return
        pivot = (still_missing & -still_missing).bit_length() - 1
        for classifier, mask, cost in bucket(pivot):
            cur = best[0]
            if cur is not None and spent + cost >= cur[0]:
                # Bucket entries are cost-sorted, so no later entry can
                # strictly improve either; their recursive calls would
                # return immediately at the bound check above, and a best
                # update needs a strictly cheaper total — skipping them
                # cannot change which cover is found.
                break
            if classifier in chosen:
                continue
            search(still_missing & ~mask, chosen + (classifier,), spent + cost)

    search(missing, (), 0.0)
    if best[0] is None:
        return None
    spent, chosen = best[0]
    return spent, frozenset(chosen)


def cover_from_missing_mask(
    candidates: List[Tuple[Classifier, float]],
    missing: int,
    compiled,
) -> Optional[Tuple[float, FrozenSet[Classifier]]]:
    """Cheapest cover of a compiled-layout ``missing`` mask.

    The fast entry for callers that already hold the residual mask (e.g.
    straight off a :class:`BitsetCoverageTracker`), skipping the
    property-set translation of :func:`cheapest_residual_cover`.
    """
    if not missing:
        return 0.0, frozenset()
    mask_of = compiled.mask_of
    clip = compiled.space.clip_mask
    usable = []
    for classifier, cost in candidates:
        if math.isinf(cost):
            continue
        mask = mask_of(classifier)
        if mask is None:
            mask = clip(classifier)
        if mask & missing:
            usable.append((classifier, mask, cost))
    # Cheap upper bound first: sort candidates by cost for pruning.
    usable.sort(key=lambda item: item[2])
    return _mask_cover_search(missing, usable)


def cover_from_masked_usable(
    missing: int,
    usable: List[Tuple[Classifier, int, float]],
) -> Optional[Tuple[float, FrozenSet[Classifier]]]:
    """Cheapest cover when the caller already holds mask triples.

    ``usable`` must be ``(classifier, mask, cost)`` triples with finite
    costs, ordered by ``(cost, original candidate position)`` — the exact
    order :func:`cover_from_missing_mask`'s stable sort produces — and
    every entry intersecting ``missing``.  Hot callers (the IG1 selector)
    keep these triples precomputed per query so the per-step cover search
    skips mask translation and re-sorting entirely.
    """
    if not missing:
        return 0.0, frozenset()
    return _mask_cover_search(missing, usable)


def _cheapest_residual_cover_bits(
    query: Query,
    candidates: List[Tuple[Classifier, float]],
    covered_props: Set[str],
    compiled=None,
) -> Optional[Tuple[float, FrozenSet[Classifier]]]:
    """Mask backend of :func:`cheapest_residual_cover`.

    With a ``compiled`` workload view the query and candidate masks come
    from its memoized translation tables (warm after the first call per
    classifier); otherwise a throwaway :class:`QueryInterner` pays the
    interning cost per call.
    """
    if compiled is not None:
        qmask = compiled.mask_of(query)
        if qmask is not None:
            clip = compiled.space.clip_mask
            missing = qmask & ~clip(covered_props) if covered_props else qmask
            return cover_from_missing_mask(candidates, missing, compiled)
    interner = QueryInterner(query)
    missing = interner.full & ~interner.clip(covered_props)
    if not missing:
        return 0.0, frozenset()
    usable = [
        (classifier, interner.clip(classifier), cost)
        for classifier, cost in candidates
        if not math.isinf(cost)
    ]
    usable = [(c, m, cost) for c, m, cost in usable if m & missing]
    usable.sort(key=lambda item: item[2])
    return _mask_cover_search(missing, usable)


def cheapest_residual_cover(
    query: Query,
    candidates: List[Tuple[Classifier, float]],
    covered_props: Set[str],
    compiled=None,
) -> Optional[Tuple[float, FrozenSet[Classifier]]]:
    """Cheapest classifier set (from ``candidates``) covering what's missing.

    ``candidates`` are ``(classifier, cost)`` pairs with each classifier a
    subset of ``query``; already-covered properties cost nothing to re-test.
    Branch-and-bound on the lexicographically smallest missing property.

    Returns ``None`` when the missing part cannot be covered.

    ``compiled`` (a :class:`~repro.core.bitset.CompiledWorkload`) lets the
    ``bits`` engine reuse memoized masks across calls; pass it whenever a
    workload is in scope.
    """
    if active_engine() in MASK_ENGINES:
        return _cheapest_residual_cover_bits(query, candidates, covered_props, compiled)
    missing = frozenset(query) - covered_props
    if not missing:
        return 0.0, frozenset()
    ordered_missing = sorted(missing)
    usable = [(c, cost) for c, cost in candidates if c & missing and not math.isinf(cost)]
    # Cheap upper bound first: sort candidates by cost for better pruning.
    usable.sort(key=lambda item: item[1])

    by_prop: Dict[str, List[Tuple[Classifier, float]]] = {p: [] for p in ordered_missing}
    for classifier, cost in usable:
        for prop in classifier & missing:
            by_prop[prop].append((classifier, cost))

    best: List[Optional[Tuple[float, Tuple[Classifier, ...]]]] = [None]

    def search(still_missing: FrozenSet[str], chosen: Tuple[Classifier, ...], spent: float) -> None:
        if best[0] is not None and spent >= best[0][0]:
            return
        if not still_missing:
            best[0] = (spent, chosen)
            return
        pivot = min(still_missing)
        for classifier, cost in by_prop[pivot]:
            if classifier in chosen:
                continue
            search(still_missing - classifier, chosen + (classifier,), spent + cost)

    search(missing, (), 0.0)
    if best[0] is None:
        return None
    spent, chosen = best[0]
    return spent, frozenset(chosen)


def solve_mc3_greedy(
    workload: ClassifierWorkload,
    queries: Optional[Iterable[Query]] = None,
    available: Optional[Iterable[Classifier]] = None,
    preselected: FrozenSet[Classifier] = frozenset(),
) -> FrozenSet[Classifier]:
    """Greedy minimum-cost cover of all target queries (any length).

    Same contract as :func:`repro.mc3.exact_l2.solve_mc3_l2` but heuristic.

    Raises:
        InfeasibleCoverError: if some query has no finite-cost cover.
    """
    targets = list(queries) if queries is not None else list(workload.queries)
    available_set = None if available is None else set(available)
    compiled = workload.compiled() if active_engine() in MASK_ENGINES else None

    # The shared coverage engine supplies per-query covered-property state;
    # target coverage and residual missing sets come from its indexes.
    state = CoverageTracker(workload)
    state.add_all(preselected)

    def cost(classifier: Classifier) -> float:
        if classifier in preselected or state.is_selected(classifier):
            return 0.0
        if available_set is not None and classifier not in available_set:
            return math.inf
        return workload.cost(classifier)

    def candidates_for(query: Query) -> List[Tuple[Classifier, float]]:
        from repro.core.model import powerset_classifiers

        result = []
        for classifier in powerset_classifiers(query):
            c = cost(classifier)
            if not math.isinf(c):
                result.append((classifier, c))
        return result

    def covered_props(query: Query) -> Set[str]:
        return set(query) - set(state.missing_properties(query))

    heap: List[Tuple[float, int, Query]] = []
    for index, query in enumerate(targets):
        if state.is_query_covered(query):
            continue
        found = cheapest_residual_cover(
            query, candidates_for(query), covered_props(query), compiled
        )
        if found is None:
            raise InfeasibleCoverError(f"query {sorted(query)} has no finite-cost cover")
        heapq.heappush(heap, (found[0], index, query))

    chosen: Set[Classifier] = set()
    while heap:
        cached_cost, index, query = heapq.heappop(heap)
        if state.is_query_covered(query):
            continue
        found = cheapest_residual_cover(
            query, candidates_for(query), covered_props(query), compiled
        )
        if found is None:
            raise InfeasibleCoverError(f"query {sorted(query)} has no finite-cost cover")
        current_cost, cover = found
        if current_cost > cached_cost + 1e-12:
            # Should not happen (costs only decrease), but stay safe.
            heapq.heappush(heap, (current_cost, index, query))
            continue
        if current_cost < cached_cost - 1e-12:
            heapq.heappush(heap, (current_cost, index, query))
            continue
        for classifier in cover:
            if classifier not in preselected:
                chosen.add(classifier)
            state.add(classifier)
    return frozenset(chosen)
