"""MC3 dispatcher and the full-cover budget bound used by the experiments.

Strategy (mirroring [23]): solve the dominant ``l <= 2`` query subset
*exactly* with the min-cut solver, preselect its output, then extend to the
longer queries with the greedy minimal-cover heuristic.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Optional

from repro.core.model import Classifier, ClassifierWorkload, Query
from repro.mc3.errors import InfeasibleCoverError
from repro.mc3.exact_l2 import solve_mc3_l2
from repro.mc3.greedy import solve_mc3_greedy


def solve_mc3(
    workload: ClassifierWorkload,
    queries: Optional[Iterable[Query]] = None,
    available: Optional[Iterable[Classifier]] = None,
    preselected: FrozenSet[Classifier] = frozenset(),
    certify: bool = False,
) -> FrozenSet[Classifier]:
    """Minimum-cost classifier set covering all target queries.

    Exact for workloads with ``l <= 2``; hybrid exact + greedy otherwise.
    With ``certify``, the returned set is re-checked from first principles
    (every target query covered by selected-or-preselected subsets, all
    selected costs finite) before being returned.

    Raises:
        InfeasibleCoverError: if some query has no finite-cost cover.
        CoverageCertificateError: with ``certify``, if the produced set
            fails the independent coverage re-check.
        CostCertificateError: with ``certify``, if an infinite-cost
            classifier was selected.
    """
    targets = (
        sorted(queries, key=sorted) if queries is not None else list(workload.queries)
    )
    short = [q for q in targets if len(q) <= 2]
    long_queries = [q for q in targets if len(q) > 2]

    selected: FrozenSet[Classifier] = frozenset()
    if short:
        selected = solve_mc3_l2(workload, short, available, preselected)
    if long_queries:
        extension = solve_mc3_greedy(
            workload,
            long_queries,
            available,
            preselected=preselected | selected,
        )
        selected = selected | extension
    if certify:
        _certify_cover(workload, targets, selected | preselected, selected)
    return selected


def _certify_cover(workload, targets, covering, selected) -> None:
    """First-principles re-check of an MC3 cover (no tracker, no solver code)."""
    import math

    from repro.core.errors import CostCertificateError, CoverageCertificateError

    for classifier in selected:
        if math.isinf(workload.cost(classifier)):
            raise CostCertificateError(
                f"MC3 selected the infinite-cost classifier "
                f"{sorted(map(str, classifier))}"
            )
    for query in targets:
        union = set()
        for classifier in covering:
            if classifier <= query:
                union |= classifier
        if union != set(query):
            raise CoverageCertificateError(
                f"MC3 cover leaves query {sorted(map(str, query))} uncovered"
            )


def full_cover_cost(workload: ClassifierWorkload) -> float:
    """Cost of an MC3 solution covering every query.

    The paper uses this value as the upper end of the budget sweeps
    (Section 6.1: "To compute an upper bound on this range, we solved the
    MC3 problem").
    """
    solution = solve_mc3(workload)
    return sum(workload.cost(c) for c in solution)
