"""Exact PTIME MC3 for query length <= 2 (Theorem 2.5) via min-cut.

Buying singleton classifiers is a set ``V'`` of properties; a pair query
``xy`` then costs ``0`` extra if both endpoints are bought and ``C(XY)``
otherwise, while a singleton query ``x`` forces ``x in V'``.  Minimizing

    sum_{p in V'} C(p)  +  sum_{xy not endpoint-covered} C(XY)

is equivalent to maximizing ``sum_{xy} C(XY) * [x,y in V'] - sum C(p)``,
a supermodular objective solvable exactly as project selection (min-cut):
pair queries are projects with revenue ``C(XY)`` requiring machines ``x``
and ``y``.  This is the reproduction of the polynomial-time exact solver
that [23] provides for the dominant ``l <= 2`` workload fraction.
"""

from __future__ import annotations

import math
from typing import FrozenSet, Iterable, Optional, Set

from repro.core.model import Classifier, ClassifierWorkload, Query
from repro.flow import ProjectSelection
from repro.mc3.errors import InfeasibleCoverError


def _cost_fn(workload, available, preselected):
    available_set = None if available is None else set(available)

    def cost(classifier: Classifier) -> float:
        if classifier in preselected:
            return 0.0
        if available_set is not None and classifier not in available_set:
            return math.inf
        return workload.cost(classifier)

    return cost


def solve_mc3_l2(
    workload: ClassifierWorkload,
    queries: Optional[Iterable[Query]] = None,
    available: Optional[Iterable[Classifier]] = None,
    preselected: FrozenSet[Classifier] = frozenset(),
) -> FrozenSet[Classifier]:
    """Minimum-cost classifier set covering all target queries (all len <= 2).

    Args:
        workload: provides classifier costs.
        queries: queries to cover (default: all workload queries).
        available: if given, classifiers outside this set are unusable.
        preselected: classifiers already constructed (cost 0).

    Returns:
        The classifier set to construct (excluding ``preselected`` members
        unless they are needed at zero cost anyway).

    Raises:
        InfeasibleCoverError: if some query has no finite-cost cover.
        ValueError: if a target query is longer than 2.
    """
    targets = list(queries) if queries is not None else list(workload.queries)
    cost = _cost_fn(workload, available, preselected)

    singles: Set[str] = set()
    forced: Set[str] = set()
    direct_pairs: Set[Classifier] = set()
    projects = []  # (query, revenue, (x, y))

    for query in targets:
        if len(query) > 2:
            raise ValueError(
                f"solve_mc3_l2 handles queries of length <= 2, got {sorted(query)}"
            )
        if len(query) == 1:
            (p,) = query
            if math.isinf(cost(frozenset({p}))):
                raise InfeasibleCoverError(
                    f"singleton query {p!r} has an impractical classifier"
                )
            forced.add(p)
            singles.add(p)
        else:
            x, y = sorted(query)
            pair_cost = cost(query)
            x_cost = cost(frozenset({x}))
            y_cost = cost(frozenset({y}))
            singles.update((x, y))
            if math.isinf(pair_cost):
                if math.isinf(x_cost) or math.isinf(y_cost):
                    raise InfeasibleCoverError(
                        f"query {sorted(query)} has no finite-cost cover"
                    )
                forced.update((x, y))
            elif math.isinf(x_cost) or math.isinf(y_cost):
                direct_pairs.add(query)
            else:
                projects.append((query, pair_cost, (x, y)))

    instance = ProjectSelection()
    machine_props = set()
    for query, revenue, (x, y) in projects:
        machine_props.update((x, y))
    machine_props |= forced
    for p in sorted(machine_props):
        machine_cost = 0.0 if p in forced else cost(frozenset({p}))
        if math.isinf(machine_cost):
            continue  # unusable; its pair queries went to direct_pairs
        instance.add_machine(p, machine_cost)
    for query, revenue, (x, y) in projects:
        instance.add_project(query, revenue, (x, y))

    _, _, bought = instance.solve()
    bought |= forced

    solution: Set[Classifier] = {frozenset({p}) for p in bought}
    solution |= direct_pairs
    for query, revenue, (x, y) in projects:
        if x not in bought or y not in bought:
            solution.add(query)
    return frozenset(solution)
