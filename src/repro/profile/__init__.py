"""Phase-attribution profiling for the solver hot paths.

A :class:`PhaseProfiler` accumulates wall-seconds per named phase (from an
injectable monotonic clock, so tests can drive it deterministically) plus
free-form integer counters (probe counts, transpose rebuilds, memo hits).
``solve_bcc``, the tracker probe paths, and the HkS portfolio report into
whichever profiler is *active*; when none is, every hook is a single
``is None`` test — near-zero overhead on the paths this module exists to
measure.

Enable globally with ``REPRO_PROFILE=1`` (checked per solve, so tests can
flip it), or scope explicitly::

    with activate(PhaseProfiler()) as prof:
        solve_bcc(instance)
    print(prof.snapshot())

When a profiler is active (or the env var is set), ``solve_bcc`` attaches
the snapshot as ``Solution.meta["profile"]``.  When disabled, the meta key
is absent and solutions stay byte-identical to unprofiled runs — the
result cache never sees profiling noise.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional

__all__ = [
    "PhaseProfiler",
    "activate",
    "current_profiler",
    "phase",
    "add_count",
    "profiling_enabled",
]

Clock = Callable[[], float]


class PhaseProfiler:
    """Accumulates per-phase seconds and named counters.

    Phases nest: entering ``phase("qk")`` inside ``phase("round")``
    charges the inner span to both (each phase records its own inclusive
    time).  ``calls`` counts phase entries, ``counts`` holds free-form
    integer telemetry.
    """

    def __init__(self, clock: Optional[Clock] = None) -> None:
        self.clock: Clock = clock if clock is not None else time.perf_counter
        self.seconds: Dict[str, float] = {}
        self.calls: Dict[str, int] = {}
        self.counts: Dict[str, int] = {}

    def add_count(self, name: str, amount: int = 1) -> None:
        self.counts[name] = self.counts.get(name, 0) + amount

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        start = self.clock()
        try:
            yield
        finally:
            elapsed = self.clock() - start
            self.seconds[name] = self.seconds.get(name, 0.0) + elapsed
            self.calls[name] = self.calls.get(name, 0) + 1

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready view: per-phase seconds/calls plus counters."""
        return {
            "phases": {
                name: {"seconds": self.seconds[name], "calls": self.calls.get(name, 0)}
                for name in sorted(self.seconds)
            },
            "counts": dict(sorted(self.counts.items())),
        }


# Active-profiler stack: module-level so the solver layers report into the
# caller's profiler without threading it through every signature.
_ACTIVE: List[PhaseProfiler] = []


def current_profiler() -> Optional[PhaseProfiler]:
    """The innermost active profiler, or ``None`` (the common case)."""
    return _ACTIVE[-1] if _ACTIVE else None


@contextmanager
def activate(profiler: PhaseProfiler) -> Iterator[PhaseProfiler]:
    """Make ``profiler`` the active sink for the enclosed block."""
    _ACTIVE.append(profiler)
    try:
        yield profiler
    finally:
        _ACTIVE.pop()


@contextmanager
def phase(name: str) -> Iterator[None]:
    """Time a span against the active profiler; no-op when none is."""
    prof = _ACTIVE[-1] if _ACTIVE else None
    if prof is None:
        yield
        return
    with prof.phase(name):
        yield


def add_count(name: str, amount: int = 1) -> None:
    """Bump a counter on the active profiler; no-op when none is."""
    if _ACTIVE:
        _ACTIVE[-1].add_count(name, amount)


def profiling_enabled() -> bool:
    """Whether ``REPRO_PROFILE`` asks solves to self-profile."""
    return os.environ.get("REPRO_PROFILE", "").strip().lower() not in (
        "",
        "0",
        "false",
        "off",
    )
