"""Lightweight graph substrate used by the DkS/HkS, QK, and densest-subgraph solvers.

The graphs in this package carry exactly the annotations that the paper's
reductions need: non-negative *node costs* (classifier construction costs)
and positive *edge weights* (query utilities).  Nodes are arbitrary hashable
objects so callers can use property names or classifier objects directly.
"""

from repro.graphs.graph import WeightedGraph
from repro.graphs.bipartite import BipartiteGraph, random_bipartition
from repro.graphs.hypergraph import Hypergraph
from repro.graphs.blowup import BlowupGraph, blow_up

__all__ = [
    "WeightedGraph",
    "BipartiteGraph",
    "random_bipartition",
    "Hypergraph",
    "BlowupGraph",
    "blow_up",
]
