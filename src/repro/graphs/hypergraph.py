"""Weighted hypergraph used by the DkSH reductions and the ECC algorithm.

Hyperedges are frozensets of nodes with positive weights; nodes carry
non-negative costs.  The densest-subhypergraph objective counts a hyperedge
exactly when *all* of its endpoints are selected — matching the coverage
semantics of BCC where a minimal cover contributes only when every one of
its classifiers is constructed.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, Tuple

Node = Hashable
HyperEdge = FrozenSet[Node]


class Hypergraph:
    """Weighted hypergraph with node costs.

    Adding an existing hyperedge accumulates its weight (several queries can
    share the same minimal cover in the ECC reduction).
    """

    def __init__(self) -> None:
        self._cost: Dict[Node, float] = {}
        self._edges: Dict[HyperEdge, float] = {}
        self._incident: Dict[Node, set] = {}

    def add_node(self, node: Node, cost: float = 0.0) -> None:
        """Add ``node`` with the given cost; re-adding overwrites the cost."""
        if cost < 0:
            raise ValueError(f"node cost must be non-negative, got {cost}")
        self._cost[node] = float(cost)
        self._incident.setdefault(node, set())

    def add_edge(self, nodes: Iterable[Node], weight: float = 1.0) -> None:
        """Add a hyperedge over ``nodes``, accumulating weight if present."""
        edge = frozenset(nodes)
        if len(edge) < 1:
            raise ValueError("hyperedge must contain at least one node")
        if weight <= 0:
            raise ValueError(f"hyperedge weight must be positive, got {weight}")
        for node in edge:
            if node not in self._cost:
                self.add_node(node)
        self._edges[edge] = self._edges.get(edge, 0.0) + float(weight)
        for node in edge:
            self._incident[node].add(edge)

    def remove_node(self, node: Node) -> None:
        """Remove ``node`` and every hyperedge incident to it."""
        for edge in list(self._incident[node]):
            self.remove_edge(edge)
        del self._incident[node]
        del self._cost[node]

    def remove_edge(self, edge: HyperEdge) -> None:
        """Remove one hyperedge."""
        del self._edges[edge]
        for node in edge:
            self._incident[node].discard(edge)

    # ------------------------------------------------------------------
    def __contains__(self, node: Node) -> bool:
        return node in self._cost

    def __len__(self) -> int:
        return len(self._cost)

    @property
    def nodes(self) -> Iterable[Node]:
        """View of all nodes."""
        return self._cost.keys()

    def cost(self, node: Node) -> float:
        """The cost of ``node``."""
        return self._cost[node]

    def edges(self) -> Iterator[Tuple[HyperEdge, float]]:
        """Iterate ``(hyperedge, weight)`` pairs."""
        return iter(self._edges.items())

    def num_edges(self) -> int:
        """Number of hyperedges."""
        return len(self._edges)

    def incident_edges(self, node: Node) -> Iterable[HyperEdge]:
        """Hyperedges containing ``node``."""
        return self._incident[node]

    def edge_weight(self, edge: HyperEdge) -> float:
        """The weight of ``edge``."""
        return self._edges[edge]

    def weighted_degree(self, node: Node) -> float:
        """Sum of the weights of hyperedges incident to ``node``."""
        return sum(self._edges[e] for e in self._incident[node])

    def max_edge_cardinality(self) -> int:
        """Size of the largest hyperedge (0 when edgeless)."""
        return max((len(e) for e in self._edges), default=0)

    # ------------------------------------------------------------------
    def induced_weight(self, nodes: Iterable[Node]) -> float:
        """Total weight of hyperedges fully contained in ``nodes``."""
        selected = set(nodes)
        return sum(w for edge, w in self._edges.items() if edge <= selected)

    def induced_cost(self, nodes: Iterable[Node]) -> float:
        """Total node cost of ``nodes``."""
        return sum(self._cost[u] for u in nodes)

    def subhypergraph(self, nodes: Iterable[Node]) -> "Hypergraph":
        """New hypergraph induced by ``nodes``."""
        selected = set(nodes)
        sub = Hypergraph()
        for node in selected:
            sub.add_node(node, self._cost[node])
        for edge, w in self._edges.items():
            if edge <= selected:
                sub.add_edge(edge, w)
        return sub

    def __repr__(self) -> str:
        return f"Hypergraph(n={len(self)}, m={self.num_edges()})"
