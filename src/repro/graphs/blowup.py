"""Blow-up (copy) graph used by ``A_H^QK`` to eliminate node costs.

Each node ``v`` of integer cost ``c(v) >= 1`` is replaced by ``c(v)`` unit
copies; each edge ``{u, v}`` of weight ``w`` becomes ``c(u) * c(v)`` copy
edges of weight ``w / (c(u) * c(v))``, so the total weight carried between
the copy groups equals ``w``.  A cost budget ``B`` on the original graph then
becomes a plain cardinality bound ``k = B`` on copies — the HkS form.

Copies are addressed as ``(original_node, index)`` pairs.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.graphs.graph import Node, WeightedGraph

Copy = Tuple[Node, int]


class BlowupGraph:
    """The blown-up unit-cost graph, with bookkeeping back to the original.

    Attributes:
        graph: the blown-up :class:`WeightedGraph` (all node costs are 1).
        copies: mapping original node -> list of its copy nodes.
    """

    def __init__(self, original: WeightedGraph) -> None:
        self.original = original
        self.graph = WeightedGraph()
        self.copies: Dict[Node, List[Copy]] = {}
        for node in original.nodes:
            cost = original.cost(node)
            int_cost = int(round(cost))
            if int_cost != cost or int_cost < 1:
                raise ValueError(
                    f"blow-up requires integer node costs >= 1, got {cost!r} for {node!r}"
                )
            node_copies = [(node, i) for i in range(int_cost)]
            self.copies[node] = node_copies
            for copy in node_copies:
                self.graph.add_node(copy, cost=1.0)
        self.graph.add_edges(self._copy_edges())

    def _copy_edges(self):
        """Yield every copy edge (the add_edge loop, minus the dispatch)."""
        copies = self.copies
        for u, v, w in self.original.edges():
            u_copies = copies[u]
            v_copies = copies[v]
            per_copy = w / (len(u_copies) * len(v_copies))
            for cu in u_copies:
                for cv in v_copies:
                    yield cu, cv, per_copy

    def original_node(self, copy: Copy) -> Node:
        """The original node a copy belongs to."""
        return copy[0]

    def num_copies(self, node: Node) -> int:
        """Number of unit copies of ``node`` (its integer cost)."""
        return len(self.copies[node])

    def group_selection(self, selected_copies) -> Dict[Node, int]:
        """Count how many copies of each original node ``selected_copies`` holds."""
        counts: Dict[Node, int] = {}
        for copy in selected_copies:
            node = copy[0]
            counts[node] = counts.get(node, 0) + 1
        return counts

    def size(self) -> int:
        """Total number of copies in the blown-up graph."""
        return len(self.graph)


def blow_up(graph: WeightedGraph) -> BlowupGraph:
    """Convenience constructor for :class:`BlowupGraph`."""
    return BlowupGraph(graph)


def total_integer_cost(graph: WeightedGraph) -> int:
    """Sum of (integer) node costs — the size of the blow-up graph."""
    return int(sum(graph.cost(v) for v in graph.nodes))
