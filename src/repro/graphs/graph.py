"""Undirected weighted graph with node costs and edge weights.

This is the shared data structure for the Quadratic Knapsack (QK) instances
produced by the BCC(2) reduction (Observation 4.4 in the paper): nodes are
singleton classifiers with costs, edges are length-2 queries with utilities.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Tuple

Node = Hashable
Edge = Tuple[Node, Node]


#: Memoized canonical orientations.  Blow-up copy nodes compare via the
#: ``repr`` fallback (a ``TypeError`` raise plus two reprs per call), and
#: the DkS loops sweep the same graphs many times, so the pair → key map
#: pays for itself quickly.  Bounded by a wholesale clear.
_KEY_CACHE: Dict[Tuple[Node, Node], Edge] = {}


#: Memoized node reprs.  QK/DkS heuristics break float ties by ``repr``
#: so selections are deterministic across hash seeds; heap pushing and
#: greedy sweeps request the same node strings millions of times per
#: solve, so the string is computed once per node.  Bounded by a
#: wholesale clear.
_REPR_CACHE: Dict[Node, str] = {}


def node_repr(v: Node) -> str:
    """Memoized ``repr(v)`` for deterministic tiebreaks in hot loops."""
    cached = _REPR_CACHE.get(v)
    if cached is None:
        if len(_REPR_CACHE) > 1_000_000:
            _REPR_CACHE.clear()
        cached = _REPR_CACHE[v] = repr(v)
    return cached


def edge_key(u: Node, v: Node) -> Edge:
    """Canonical (order-independent) key for the undirected edge ``{u, v}``.

    Nodes of mixed, non-comparable types are ordered by ``repr`` as a
    deterministic tiebreak.
    """
    key = _KEY_CACHE.get((u, v))
    if key is not None:
        return key
    if u == v:
        raise ValueError(f"self-loops are not allowed: {u!r}")
    try:
        key = (u, v) if u <= v else (v, u)  # type: ignore[operator]
    except TypeError:
        key = (u, v) if repr(u) <= repr(v) else (v, u)
    if len(_KEY_CACHE) > 1_000_000:
        _KEY_CACHE.clear()
    _KEY_CACHE[(u, v)] = key
    return key


class GraphFingerprint:
    """Exact structural identity token for a :class:`WeightedGraph`.

    Wraps the full ``(node costs, canonical edges)`` structure — no lossy
    hashing shortcut, so equal fingerprints mean equal structure — while
    caching the (expensive, O(N+E)) hash so repeated dict lookups pay it
    once per graph, not once per lookup.  Instances are immutable and
    shared between a graph and its :meth:`WeightedGraph.copy` clones.
    """

    __slots__ = ("_data", "_hash")

    def __init__(self, data: tuple) -> None:
        self._data = data
        self._hash = hash(data)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, GraphFingerprint):
            return NotImplemented
        return self._hash == other._hash and self._data == other._data

    def __repr__(self) -> str:
        costs, edges = self._data
        return f"GraphFingerprint(nodes={len(costs)}, edges={len(edges)})"


class WeightedGraph:
    """Undirected graph with non-negative node costs and positive edge weights.

    The graph rejects self-loops and parallel edges (adding an existing edge
    *accumulates* its weight, which is the semantics the BCC(2) reduction
    needs when several queries map to the same classifier pair).
    """

    def __init__(self) -> None:
        self._cost: Dict[Node, float] = {}
        self._adj: Dict[Node, Dict[Node, float]] = {}
        # Cached edges() snapshot; dropped whenever the edge set changes.
        self._edge_list: Optional[List[Tuple[Node, Node, float]]] = None
        # Cached total weighted degrees; entries drop on incident change.
        self._wdeg: Dict[Node, float] = {}
        # Cached structural fingerprint; dropped on any mutation.
        self._fingerprint: Optional["GraphFingerprint"] = None
        # Cached indexed-adjacency snapshot (dense_view); dropped on any
        # structural mutation.
        self._dense_view: Optional[tuple] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node: Node, cost: float = 0.0) -> None:
        """Add ``node`` with the given cost; re-adding overwrites the cost."""
        if cost < 0:
            raise ValueError(f"node cost must be non-negative, got {cost}")
        self._cost[node] = float(cost)
        self._adj.setdefault(node, {})
        self._fingerprint = None
        self._dense_view = None

    def add_edge(self, u: Node, v: Node, weight: float = 1.0) -> None:
        """Add the undirected edge ``{u, v}``, accumulating weight if present.

        Endpoints missing from the graph are created with cost 0.
        """
        if weight <= 0:
            raise ValueError(f"edge weight must be positive, got {weight}")
        if u == v:
            raise ValueError(f"self-loops are not allowed: {u!r}")
        for node in (u, v):
            if node not in self._cost:
                self.add_node(node)
        self._adj[u][v] = self._adj[u].get(v, 0.0) + float(weight)
        self._adj[v][u] = self._adj[v].get(u, 0.0) + float(weight)
        self._edge_list = None
        self._fingerprint = None
        self._dense_view = None
        self._wdeg.pop(u, None)
        self._wdeg.pop(v, None)

    def add_edges(self, edges: Iterable[Tuple[Node, Node, float]]) -> None:
        """Bulk :meth:`add_edge` with identical semantics per triple.

        Validation, weight accumulation, auto-created endpoints and
        insertion order all match a per-edge :meth:`add_edge` loop; the
        difference is one cache invalidation and no per-edge method
        dispatch, which is what the QK graph builders (blow-up,
        bipartition, cost scaling) need when emitting tens of thousands
        of copy edges per round.
        """
        cost = self._cost
        adj = self._adj
        wdeg = self._wdeg
        # Invalidate up front: a mid-batch validation error must not
        # leave caches describing the pre-batch structure.
        self._edge_list = None
        self._fingerprint = None
        self._dense_view = None
        for u, v, weight in edges:
            if weight <= 0:
                raise ValueError(f"edge weight must be positive, got {weight}")
            if u == v:
                raise ValueError(f"self-loops are not allowed: {u!r}")
            if u not in cost:
                cost[u] = 0.0
                adj[u] = {}
            if v not in cost:
                cost[v] = 0.0
                adj[v] = {}
            w = float(weight)
            row = adj[u]
            row[v] = row.get(v, 0.0) + w
            row = adj[v]
            row[u] = row.get(u, 0.0) + w
            wdeg.pop(u, None)
            wdeg.pop(v, None)

    def remove_node(self, node: Node) -> None:
        """Remove ``node`` and all incident edges."""
        for neighbor in list(self._adj[node]):
            del self._adj[neighbor][node]
            self._wdeg.pop(neighbor, None)
        del self._adj[node]
        del self._cost[node]
        self._edge_list = None
        self._fingerprint = None
        self._dense_view = None
        self._wdeg.pop(node, None)

    def copy(self) -> "WeightedGraph":
        """Deep copy (costs and adjacency are independent of the original)."""
        clone = WeightedGraph()
        clone._cost = dict(self._cost)
        clone._adj = {u: dict(nbrs) for u, nbrs in self._adj.items()}
        # Structure is identical, so the (immutable) fingerprint and the
        # read-only dense view carry over; the clone drops both on its
        # first mutation like any other.
        clone._fingerprint = self._fingerprint
        clone._dense_view = self._dense_view
        return clone

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __contains__(self, node: Node) -> bool:
        return node in self._cost

    def __len__(self) -> int:
        return len(self._cost)

    @property
    def nodes(self) -> Iterable[Node]:
        """View of all nodes (insertion order)."""
        return self._cost.keys()

    def cost(self, node: Node) -> float:
        """The cost of ``node``."""
        return self._cost[node]

    def set_cost(self, node: Node, cost: float) -> None:
        """Overwrite the cost of an existing node."""
        if node not in self._cost:
            raise KeyError(node)
        if cost < 0:
            raise ValueError(f"node cost must be non-negative, got {cost}")
        self._cost[node] = float(cost)
        self._fingerprint = None
        self._dense_view = None

    def neighbors(self, node: Node) -> Dict[Node, float]:
        """Mapping neighbor -> edge weight for ``node``."""
        return self._adj[node]

    def has_edge(self, u: Node, v: Node) -> bool:
        """Whether the undirected edge ``{u, v}`` exists."""
        return u in self._adj and v in self._adj[u]

    def weight(self, u: Node, v: Node) -> float:
        """The weight of the edge ``{u, v}``."""
        return self._adj[u][v]

    def edges(self) -> Iterator[Tuple[Node, Node, float]]:
        """Iterate each undirected edge once as ``(u, v, weight)``.

        Each edge appears at its first directed encounter (the node whose
        adjacency row comes first), canonically oriented — the same
        sequence the historical seen-set produced.  The snapshot is
        cached until the edge set changes, so repeated full sweeps (the
        DkS inner loops) skip the :func:`edge_key` canonicalization.
        """
        cached = self._edge_list
        if cached is None:
            cached = []
            append = cached.append
            visited = set()
            for u, nbrs in self._adj.items():
                visited.add(u)
                for v, w in nbrs.items():
                    if v not in visited:
                        # Inline edge_key's orientation rule (same
                        # comparisons, same fallback) — the snapshot is
                        # the canonicalization cache here, so routing
                        # every edge through the keyed cache only adds
                        # dict traffic to the one-time build.
                        try:
                            append((u, v, w) if u <= v else (v, u, w))
                        except TypeError:
                            key = edge_key(u, v)
                            append((key[0], key[1], w))
            self._edge_list = cached
        return iter(cached)

    def fingerprint(self) -> GraphFingerprint:
        """Structural fingerprint: node costs + canonical edge snapshot.

        Exact — two graphs with the same nodes/costs and the same edges
        *in the same insertion order* share a fingerprint (``copy()``
        preserves order, so clones always match).  Cached until the next
        mutation; the expensive hash is computed once per structure, so
        memo layers (:class:`repro.dks.portfolio.HksPortfolio`) can key
        on it without paying O(E) hashing per lookup.
        """
        fp = self._fingerprint
        if fp is None:
            fp = GraphFingerprint(
                (tuple(self._cost.items()), tuple(self.edges()))
            )
            self._fingerprint = fp
        return fp

    def dense_view(self) -> Tuple[List[Node], Dict[Node, int], List[str], List[List[Tuple[int, float]]]]:
        """Indexed-adjacency snapshot ``(nodes, index_of, reprs, adj)``.

        ``nodes`` is the insertion-order node list, ``index_of`` its
        inverse, ``reprs`` the memoized tiebreak strings, and ``adj[i]``
        the ``(neighbor_index, weight)`` pairs in adjacency-row order —
        exactly the arrays the dense DkS kernels (swap local search)
        build.  Cached until the next structural mutation, because one
        portfolio solve polishes several candidate selections against
        the *same* graph and the O(n + m) build dominates the polish.
        Callers must treat the returned arrays as read-only.
        """
        view = self._dense_view
        if view is None:
            nodes = list(self._cost)
            index_of = {u: i for i, u in enumerate(nodes)}
            reprs = [node_repr(u) for u in nodes]
            adj_rows = self._adj
            adj = [
                [(index_of[v], w) for v, w in adj_rows[u].items()]
                for u in nodes
            ]
            view = self._dense_view = (nodes, index_of, reprs, adj)
        return view

    def num_edges(self) -> int:
        """Number of undirected edges."""
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    def degree(self, node: Node) -> int:
        """Number of neighbors of ``node``."""
        return len(self._adj[node])

    def weighted_degree(self, node: Node, within: Optional[set] = None) -> float:
        """Sum of incident edge weights, optionally restricted to ``within``.

        The unrestricted total is cached per node (the DkS heuristics ask
        for it inside tiebreak keys, millions of times per solve on a
        graph that never changes mid-solve).
        """
        nbrs = self._adj[node]
        if within is None:
            total = self._wdeg.get(node)
            if total is None:
                total = self._wdeg[node] = sum(nbrs.values())
            return total
        return sum(w for v, w in nbrs.items() if v in within)

    # ------------------------------------------------------------------
    # subgraph measures
    # ------------------------------------------------------------------
    def induced_weight(self, nodes: Iterable[Node]) -> float:
        """Total edge weight of the subgraph induced by ``nodes``."""
        selected = set(nodes)
        total = 0.0
        for u in selected:
            for v, w in self._adj[u].items():
                if v in selected:
                    total += w
        return total / 2.0

    def induced_cost(self, nodes: Iterable[Node]) -> float:
        """Total node cost of ``nodes``."""
        return sum(self._cost[u] for u in nodes)

    def subgraph(self, nodes: Iterable[Node]) -> "WeightedGraph":
        """New graph induced by ``nodes`` (costs and weights preserved)."""
        selected = set(nodes)
        sub = WeightedGraph()
        for u in selected:
            sub.add_node(u, self._cost[u])
        for u in selected:
            for v, w in self._adj[u].items():
                if v in selected and not sub.has_edge(u, v):
                    sub.add_edge(u, v, w)
        return sub

    def total_edge_weight(self) -> float:
        """Sum of all edge weights."""
        return sum(w for _, _, w in self.edges())

    def connected_components(self) -> Iterator[set]:
        """Yield node sets of connected components (iterative DFS)."""
        unvisited = set(self._cost)
        while unvisited:
            root = next(iter(unvisited))
            component = {root}
            stack = [root]
            unvisited.discard(root)
            while stack:
                u = stack.pop()
                for v in self._adj[u]:
                    if v in unvisited:
                        unvisited.discard(v)
                        component.add(v)
                        stack.append(v)
            yield component

    def __repr__(self) -> str:
        return f"WeightedGraph(n={len(self)}, m={self.num_edges()})"
