"""Undirected weighted graph with node costs and edge weights.

This is the shared data structure for the Quadratic Knapsack (QK) instances
produced by the BCC(2) reduction (Observation 4.4 in the paper): nodes are
singleton classifiers with costs, edges are length-2 queries with utilities.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, Optional, Tuple

Node = Hashable
Edge = Tuple[Node, Node]


def edge_key(u: Node, v: Node) -> Edge:
    """Canonical (order-independent) key for the undirected edge ``{u, v}``.

    Nodes of mixed, non-comparable types are ordered by ``repr`` as a
    deterministic tiebreak.
    """
    if u == v:
        raise ValueError(f"self-loops are not allowed: {u!r}")
    try:
        return (u, v) if u <= v else (v, u)  # type: ignore[operator]
    except TypeError:
        return (u, v) if repr(u) <= repr(v) else (v, u)


class WeightedGraph:
    """Undirected graph with non-negative node costs and positive edge weights.

    The graph rejects self-loops and parallel edges (adding an existing edge
    *accumulates* its weight, which is the semantics the BCC(2) reduction
    needs when several queries map to the same classifier pair).
    """

    def __init__(self) -> None:
        self._cost: Dict[Node, float] = {}
        self._adj: Dict[Node, Dict[Node, float]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node: Node, cost: float = 0.0) -> None:
        """Add ``node`` with the given cost; re-adding overwrites the cost."""
        if cost < 0:
            raise ValueError(f"node cost must be non-negative, got {cost}")
        self._cost[node] = float(cost)
        self._adj.setdefault(node, {})

    def add_edge(self, u: Node, v: Node, weight: float = 1.0) -> None:
        """Add the undirected edge ``{u, v}``, accumulating weight if present.

        Endpoints missing from the graph are created with cost 0.
        """
        if weight <= 0:
            raise ValueError(f"edge weight must be positive, got {weight}")
        if u == v:
            raise ValueError(f"self-loops are not allowed: {u!r}")
        for node in (u, v):
            if node not in self._cost:
                self.add_node(node)
        self._adj[u][v] = self._adj[u].get(v, 0.0) + float(weight)
        self._adj[v][u] = self._adj[v].get(u, 0.0) + float(weight)

    def remove_node(self, node: Node) -> None:
        """Remove ``node`` and all incident edges."""
        for neighbor in list(self._adj[node]):
            del self._adj[neighbor][node]
        del self._adj[node]
        del self._cost[node]

    def copy(self) -> "WeightedGraph":
        """Deep copy (costs and adjacency are independent of the original)."""
        clone = WeightedGraph()
        clone._cost = dict(self._cost)
        clone._adj = {u: dict(nbrs) for u, nbrs in self._adj.items()}
        return clone

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __contains__(self, node: Node) -> bool:
        return node in self._cost

    def __len__(self) -> int:
        return len(self._cost)

    @property
    def nodes(self) -> Iterable[Node]:
        """View of all nodes (insertion order)."""
        return self._cost.keys()

    def cost(self, node: Node) -> float:
        """The cost of ``node``."""
        return self._cost[node]

    def set_cost(self, node: Node, cost: float) -> None:
        """Overwrite the cost of an existing node."""
        if node not in self._cost:
            raise KeyError(node)
        if cost < 0:
            raise ValueError(f"node cost must be non-negative, got {cost}")
        self._cost[node] = float(cost)

    def neighbors(self, node: Node) -> Dict[Node, float]:
        """Mapping neighbor -> edge weight for ``node``."""
        return self._adj[node]

    def has_edge(self, u: Node, v: Node) -> bool:
        """Whether the undirected edge ``{u, v}`` exists."""
        return u in self._adj and v in self._adj[u]

    def weight(self, u: Node, v: Node) -> float:
        """The weight of the edge ``{u, v}``."""
        return self._adj[u][v]

    def edges(self) -> Iterator[Tuple[Node, Node, float]]:
        """Iterate each undirected edge once as ``(u, v, weight)``."""
        seen = set()
        for u, nbrs in self._adj.items():
            for v, w in nbrs.items():
                key = edge_key(u, v)
                if key not in seen:
                    seen.add(key)
                    yield key[0], key[1], w

    def num_edges(self) -> int:
        """Number of undirected edges."""
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    def degree(self, node: Node) -> int:
        """Number of neighbors of ``node``."""
        return len(self._adj[node])

    def weighted_degree(self, node: Node, within: Optional[set] = None) -> float:
        """Sum of incident edge weights, optionally restricted to ``within``."""
        nbrs = self._adj[node]
        if within is None:
            return sum(nbrs.values())
        return sum(w for v, w in nbrs.items() if v in within)

    # ------------------------------------------------------------------
    # subgraph measures
    # ------------------------------------------------------------------
    def induced_weight(self, nodes: Iterable[Node]) -> float:
        """Total edge weight of the subgraph induced by ``nodes``."""
        selected = set(nodes)
        total = 0.0
        for u in selected:
            for v, w in self._adj[u].items():
                if v in selected:
                    total += w
        return total / 2.0

    def induced_cost(self, nodes: Iterable[Node]) -> float:
        """Total node cost of ``nodes``."""
        return sum(self._cost[u] for u in nodes)

    def subgraph(self, nodes: Iterable[Node]) -> "WeightedGraph":
        """New graph induced by ``nodes`` (costs and weights preserved)."""
        selected = set(nodes)
        sub = WeightedGraph()
        for u in selected:
            sub.add_node(u, self._cost[u])
        for u in selected:
            for v, w in self._adj[u].items():
                if v in selected and not sub.has_edge(u, v):
                    sub.add_edge(u, v, w)
        return sub

    def total_edge_weight(self) -> float:
        """Sum of all edge weights."""
        return sum(w for _, _, w in self.edges())

    def connected_components(self) -> Iterator[set]:
        """Yield node sets of connected components (iterative DFS)."""
        unvisited = set(self._cost)
        while unvisited:
            root = next(iter(unvisited))
            component = {root}
            stack = [root]
            unvisited.discard(root)
            while stack:
                u = stack.pop()
                for v in self._adj[u]:
                    if v in unvisited:
                        unvisited.discard(v)
                        component.add(v)
                        stack.append(v)
            yield component

    def __repr__(self) -> str:
        return f"WeightedGraph(n={len(self)}, m={self.num_edges()})"
