"""Bipartite views and the randomized bipartition step of ``A_H^QK``.

The heuristic QK algorithm (Section 4.1) first randomly partitions the node
set into two sides, keeping only the crossing edges.  With probability at
least ``1 - 1/n`` over ``log n`` independent repetitions, some repetition
retains at least half of the optimal solution's induced weight.
"""

from __future__ import annotations

import math
import random
from typing import FrozenSet, List

from repro.graphs.graph import Node, WeightedGraph


class BipartiteGraph:
    """A :class:`WeightedGraph` together with a left/right node partition.

    Only crossing edges are retained; edges internal to a side are dropped
    at construction time.
    """

    def __init__(self, graph: WeightedGraph, left: FrozenSet[Node], right: FrozenSet[Node]) -> None:
        overlap = left & right
        if overlap:
            raise ValueError(f"left/right sides overlap: {sorted(map(repr, overlap))[:3]}")
        self.left = left
        self.right = right
        self.graph = WeightedGraph()
        for node in left | right:
            if node in graph:
                self.graph.add_node(node, graph.cost(node))
        self.graph.add_edges(
            (u, v, w)
            for u, v, w in graph.edges()
            if (u in left and v in right) or (u in right and v in left)
        )

    def side(self, node: Node) -> str:
        """Which side ("L" or "R") holds ``node``."""
        if node in self.left:
            return "L"
        if node in self.right:
            return "R"
        raise KeyError(node)

    def __repr__(self) -> str:
        return (
            f"BipartiteGraph(|L|={len(self.left)}, |R|={len(self.right)}, "
            f"m={self.graph.num_edges()})"
        )


def random_bipartition(
    graph: WeightedGraph, rng: random.Random
) -> BipartiteGraph:
    """One uniformly random left/right split of ``graph``'s nodes."""
    left, right = set(), set()
    for node in graph.nodes:
        (left if rng.random() < 0.5 else right).add(node)
    return BipartiteGraph(graph, frozenset(left), frozenset(right))


def bipartition_rounds(n_nodes: int) -> int:
    """Number of independent bipartition rounds: ``ceil(log2 n)``, min 1.

    Matches the paper's ``log n`` repetitions that drive the per-instance
    failure probability below ``1/n``.
    """
    if n_nodes <= 1:
        return 1
    return max(1, math.ceil(math.log2(n_nodes)))


def all_bipartitions(
    graph: WeightedGraph, rng: random.Random, rounds: int = 0
) -> List[BipartiteGraph]:
    """``rounds`` independent random bipartitions (default: ``log2 n``)."""
    if rounds <= 0:
        rounds = bipartition_rounds(len(graph))
    return [random_bipartition(graph, rng) for _ in range(rounds)]
