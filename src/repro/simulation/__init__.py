"""End-to-end e-commerce simulation (paper Section 6.2, "Preliminary
end-to-end results").

The paper closes its evaluation with findings from the production system
the BCC model serves: analyst cost estimates were ~6% below actual
training costs, constructed classifiers exceeded 90-95% accuracy, and the
result sets of newly covered queries grew by more than 200%.  Those
findings need a live catalog, search engine and classifier-training
pipeline — all proprietary — so this package builds a synthetic
equivalent that exercises the same path:

- :mod:`repro.simulation.catalog` — items with *latent* properties of
  which sellers only list a fraction (the metadata gap that motivates
  classifier construction in the first place);
- :mod:`repro.simulation.training` — a labeled-data learning-curve model:
  estimated label counts to reach a target accuracy, noisy actual costs,
  and realized accuracy after training;
- :mod:`repro.simulation.search` — a conjunctive search engine over
  listed metadata, optionally augmented with deployed classifiers'
  (imperfect) predictions;
- :mod:`repro.simulation.endtoend` — the full loop: derive a BCC workload
  from a catalog, plan with ``A^BCC``, train, deploy, and measure cost
  estimation error, classifier accuracy and result-set growth.
"""

from repro.simulation.catalog import Catalog, CatalogConfig, Item, generate_catalog
from repro.simulation.endtoend import EndToEndReport, run_end_to_end
from repro.simulation.search import SearchEngine
from repro.simulation.training import LearningCurve, TrainedClassifier, TrainingLab

__all__ = [
    "Item",
    "Catalog",
    "CatalogConfig",
    "generate_catalog",
    "SearchEngine",
    "LearningCurve",
    "TrainedClassifier",
    "TrainingLab",
    "EndToEndReport",
    "run_end_to_end",
]
