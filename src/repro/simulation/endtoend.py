"""The full loop: catalog -> BCC workload -> A^BCC plan -> train -> deploy.

Reproduces the paper's "Preliminary end-to-end results" (Section 6.2):

1. build a catalog with a metadata gap and derive a demand workload;
2. price every relevant classifier by the analyst's *estimated* label
   count (the BCC costs) and plan under a budget with ``A^BCC``;
3. "construct" the selected classifiers, paying the *actual* label
   counts, and audit the estimation error (paper: ~6% underestimation);
4. deploy and measure, per newly covered query, the result-set growth
   against the baseline (paper: >200% on the targeted queries) and the
   realized classifier accuracy (paper: estimates almost always
   sufficient to exceed 90%).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional

from repro.algorithms import AbccConfig, solve_bcc
from repro.core.model import BCCInstance
from repro.simulation.catalog import Catalog, CatalogConfig, generate_catalog, workload_from_catalog
from repro.simulation.search import SearchEngine
from repro.simulation.training import TrainingLab


@dataclass
class EndToEndReport:
    """Aggregate findings of one simulated deployment."""

    budget: float
    planned_cost_estimated: float
    actual_cost: float
    mean_estimation_error: float
    classifiers_built: int
    mean_accuracy: float
    min_accuracy: float
    covered_queries: int
    mean_result_growth: float
    median_result_growth: float
    mean_precision: float
    per_query: List[Dict[str, float]] = field(default_factory=list)

    def summary(self) -> str:
        """Multi-line human-readable report."""
        return "\n".join(
            [
                f"budget {self.budget:g}: built {self.classifiers_built} classifiers",
                f"  estimated cost {self.planned_cost_estimated:.0f}, actual "
                f"{self.actual_cost:.0f} "
                f"({100 * self.mean_estimation_error:+.1f}% estimation error)",
                f"  accuracy: mean {self.mean_accuracy:.3f}, min {self.min_accuracy:.3f}",
                f"  newly covered queries: {self.covered_queries}",
                f"  result-set growth: mean {100 * self.mean_result_growth:.0f}%, "
                f"median {100 * self.median_result_growth:.0f}%",
                f"  result-set precision: {self.mean_precision:.3f}",
            ]
        )


def build_bcc_instance(
    catalog: Catalog,
    n_queries: int,
    budget: float,
    lab: TrainingLab,
    seed: int = 0,
) -> BCCInstance:
    """Price a catalog-derived workload with the lab's estimates."""
    queries, utilities = workload_from_catalog(catalog, n_queries, seed=seed)
    costs: Dict[FrozenSet[str], float] = {}
    probe = BCCInstance(queries, utilities, None, budget=budget)
    for classifier in probe.relevant_classifiers():
        costs[classifier] = round(lab.estimated_labels(classifier), 1)
    return BCCInstance(queries, utilities, costs, budget=budget)


def run_end_to_end(
    catalog_config: Optional[CatalogConfig] = None,
    n_queries: int = 60,
    budget_fraction: float = 0.25,
    seed: int = 0,
    bcc_config: Optional[AbccConfig] = None,
) -> EndToEndReport:
    """Run the whole pipeline and return the audit report."""
    catalog = generate_catalog(catalog_config or CatalogConfig(), seed=seed)
    lab = TrainingLab(seed=seed)

    # Budget: a fraction of the total estimated cost of all singleton
    # classifiers (a rough full-coverage proxy, like the paper's analysts
    # allocating a quarter of what full coverage would take).
    probe = build_bcc_instance(catalog, n_queries, budget=1.0, lab=lab, seed=seed)
    singleton_total = sum(
        probe.cost(c) for c in probe.relevant_classifiers() if len(c) == 1
    )
    budget = max(1.0, round(singleton_total * budget_fraction))
    instance = build_bcc_instance(catalog, n_queries, budget=budget, lab=lab, seed=seed)

    solution = solve_bcc(instance, bcc_config)

    # Construct: pay actual costs, train to the actual label counts.
    trained = []
    estimated_total = 0.0
    actual_total = 0.0
    errors = []
    for classifier in solution.classifiers:
        estimated = instance.cost(classifier)
        actual = lab.actual_labels(classifier)
        estimated_total += estimated
        actual_total += actual
        errors.append((actual - estimated) / estimated if estimated > 0 else 0.0)
        trained.append(lab.train(classifier, labels=actual))

    engine = SearchEngine(catalog, seed=seed)
    engine.deploy(trained)

    per_query: List[Dict[str, float]] = []
    for query in solution.covered:
        metrics = engine.evaluate_query(query)
        metrics["query_size"] = float(len(query))
        per_query.append(metrics)

    growths = sorted(m["growth"] for m in per_query) or [0.0]
    precisions = [m["precision"] for m in per_query] or [1.0]
    accuracies = [t.accuracy for t in trained] or [1.0]
    return EndToEndReport(
        budget=budget,
        planned_cost_estimated=estimated_total,
        actual_cost=actual_total,
        mean_estimation_error=(sum(errors) / len(errors)) if errors else 0.0,
        classifiers_built=len(trained),
        mean_accuracy=sum(accuracies) / len(accuracies),
        min_accuracy=min(accuracies),
        covered_queries=len(per_query),
        mean_result_growth=sum(growths) / len(growths),
        median_result_growth=growths[len(growths) // 2],
        mean_precision=sum(precisions) / len(precisions),
        per_query=per_query,
    )
