"""Conjunctive search engine over listed metadata plus deployed classifiers.

Baseline retrieval returns items whose *listed* properties contain the
query — the incomplete result sets the paper's introduction describes.
Deployed classifiers annotate items with derived properties: an item is
annotated with a classifier's property set when the (imperfect) classifier
predicts positive on it.  A query is *answerable* when some subset of the
deployed classifiers' property sets unions to exactly the query's missing
information — the same covering semantics as the BCC model.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Set, Tuple

from repro.core.coverage import is_covered
from repro.core.properties import PropertySet
from repro.simulation.catalog import Catalog, Item
from repro.simulation.training import TrainedClassifier


class SearchEngine:
    """Retrieval over a catalog, optionally augmented with classifiers."""

    def __init__(self, catalog: Catalog, seed: int = 0) -> None:
        self.catalog = catalog
        self._seed = seed
        self._classifiers: List[TrainedClassifier] = []
        self._annotations: Dict[int, Set[PropertySet]] = {}

    @property
    def classifiers(self) -> Tuple[TrainedClassifier, ...]:
        """The deployed classifiers, in deployment order."""
        return tuple(self._classifiers)

    def deploy(self, classifiers: Iterable[TrainedClassifier]) -> None:
        """Run the classifiers over the whole catalog and store annotations."""
        for classifier in classifiers:
            rng = random.Random(f"{self._seed}:{sorted(classifier.properties)}")
            self._classifiers.append(classifier)
            for item in self.catalog.items:
                truly = classifier.properties <= item.latent
                if classifier.predict(truly, rng):
                    self._annotations.setdefault(item.item_id, set()).add(
                        classifier.properties
                    )

    def covers(self, query: PropertySet) -> bool:
        """Whether the deployed classifier set covers ``query`` (BCC sense)."""
        return is_covered(query, [c.properties for c in self._classifiers])

    def result_set(self, query: PropertySet) -> List[Item]:
        """Items matching the query through listed metadata + annotations.

        An item matches when every query property is either listed or
        supplied by an annotation that is a subset of the query.
        """
        results = []
        for item in self.catalog.items:
            known: Set[str] = set(item.listed & query)
            for annotation in self._annotations.get(item.item_id, ()):
                if annotation <= query:
                    known |= annotation
            if known >= query:
                results.append(item)
        return results

    def evaluate_query(self, query: PropertySet) -> Dict[str, float]:
        """Retrieval quality before/after deployment for one query.

        Returns baseline/current result-set sizes, growth, and the
        precision and recall of the current result set against the latent
        ground truth.
        """
        truth = {item.item_id for item in self.catalog.true_result_set(query)}
        baseline = {item.item_id for item in self.catalog.listed_result_set(query)}
        current = {item.item_id for item in self.result_set(query)}
        true_positives = len(current & truth)
        return {
            "baseline_size": float(len(baseline)),
            "current_size": float(len(current)),
            "growth": (
                (len(current) - len(baseline)) / len(baseline)
                if baseline
                else float(len(current))
            ),
            "precision": true_positives / len(current) if current else 1.0,
            "recall": true_positives / len(truth) if truth else 1.0,
        }
