"""Classifier training economics: learning curves, estimates, actuals.

The paper's costs are "the estimated number of training examples domain
experts must label to train the corresponding classifier to the required
precision".  This module makes that concrete with a standard power-law
learning curve

    accuracy(n) = ceiling - amplitude * n^(-exponent)

per classifier (harder concepts have higher amplitude / lower ceiling).
Analysts *estimate* the labels needed for a target accuracy from the
curve; the *actual* requirement differs by a noise factor calibrated to
the paper's reported ~6% average underestimation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.properties import PropertySet


@dataclass(frozen=True)
class LearningCurve:
    """``accuracy(n) = ceiling - amplitude * n^(-exponent)`` for n >= 1."""

    ceiling: float = 0.99
    amplitude: float = 0.9
    exponent: float = 0.45

    def __post_init__(self) -> None:
        if not 0.5 < self.ceiling <= 1.0:
            raise ValueError(f"ceiling must be in (0.5, 1], got {self.ceiling}")
        if self.amplitude <= 0 or self.exponent <= 0:
            raise ValueError("amplitude and exponent must be positive")

    def accuracy(self, labels: float) -> float:
        """Accuracy after training on ``labels`` examples (floor 0.5)."""
        if labels < 1:
            return max(0.5, self.ceiling - self.amplitude)
        return max(0.5, self.ceiling - self.amplitude * labels ** (-self.exponent))

    def labels_for(self, accuracy: float) -> float:
        """Labels needed to reach ``accuracy`` (inverse of the curve).

        Raises:
            ValueError: if the target is at or above the curve's ceiling.
        """
        if accuracy >= self.ceiling:
            raise ValueError(
                f"target accuracy {accuracy} unreachable (ceiling {self.ceiling})"
            )
        gap = self.ceiling - accuracy
        return (self.amplitude / gap) ** (1.0 / self.exponent)


@dataclass(frozen=True)
class TrainedClassifier:
    """A deployed binary classifier with its realized quality.

    Production classifiers are tuned for precision (the paper deploys
    only above 95% accuracy and reports improved precision), so the
    false-positive rate is a fraction of the miss rate: positives are
    rare in a large catalog and a symmetric error would flood result
    sets with false positives.
    """

    properties: PropertySet
    accuracy: float
    labels_used: float
    false_positive_fraction: float = 0.2

    @property
    def recall_rate(self) -> float:
        """Probability a true positive is recognized."""
        return self.accuracy

    @property
    def false_positive_rate(self) -> float:
        """Probability a true negative is annotated anyway."""
        return (1.0 - self.accuracy) * self.false_positive_fraction

    def predict(self, truly_positive: bool, rng: random.Random) -> bool:
        """Noisy conjunction test with asymmetric error rates."""
        if truly_positive:
            return rng.random() < self.recall_rate
        return rng.random() < self.false_positive_rate


class TrainingLab:
    """Estimates, trains and audits classifiers over a fixed concept pool.

    Each classifier concept gets a difficulty-dependent learning curve
    seeded deterministically from its property set, so estimates are
    reproducible across runs of the same lab.
    """

    def __init__(
        self,
        target_accuracy: float = 0.95,
        estimation_bias: float = 0.06,
        estimation_noise: float = 0.10,
        seed: int = 0,
    ) -> None:
        if not 0.5 < target_accuracy < 1.0:
            raise ValueError("target accuracy must be in (0.5, 1)")
        if estimation_bias < 0 or estimation_noise < 0:
            raise ValueError("bias and noise must be non-negative")
        self.target_accuracy = target_accuracy
        self.estimation_bias = estimation_bias
        self.estimation_noise = estimation_noise
        self._seed = seed
        self._curves: Dict[PropertySet, LearningCurve] = {}

    def _rng_for(self, properties: PropertySet) -> random.Random:
        # String seeding is process-stable (unlike hash() of a tuple).
        return random.Random(f"{self._seed}:{sorted(properties)}")

    def curve_for(self, properties: PropertySet) -> LearningCurve:
        """The concept's learning curve.

        More specific concepts (more properties) have *less* feature
        variability and learn faster — the paper's observation that the
        "wooden table" classifier needs fewer examples than "wooden".
        """
        if properties not in self._curves:
            rng = self._rng_for(properties)
            specificity = 0.85 ** (len(properties) - 1)
            amplitude = (0.6 + 0.8 * rng.random()) * specificity
            ceiling = 0.965 + 0.03 * rng.random()
            self._curves[properties] = LearningCurve(
                ceiling=ceiling, amplitude=amplitude, exponent=0.45
            )
        return self._curves[properties]

    def estimated_labels(self, properties: PropertySet) -> float:
        """The analyst's estimate for reaching the target accuracy."""
        curve = self.curve_for(properties)
        target = min(self.target_accuracy, curve.ceiling - 1e-3)
        return curve.labels_for(target)

    def actual_labels(self, properties: PropertySet) -> float:
        """What training actually takes: estimate x noisy factor.

        Calibrated to the paper's audit: on average ~``estimation_bias``
        more labels than estimated.
        """
        rng = self._rng_for(properties)
        rng.random()  # decorrelate from the curve draw
        factor = 1.0 + self.estimation_bias + self.estimation_noise * (
            2.0 * rng.random() - 1.0
        )
        return self.estimated_labels(properties) * max(0.5, factor)

    def train(
        self, properties: PropertySet, labels: Optional[float] = None
    ) -> TrainedClassifier:
        """Train with ``labels`` examples (default: the actual requirement)."""
        if labels is None:
            labels = self.actual_labels(properties)
        curve = self.curve_for(properties)
        return TrainedClassifier(
            properties=frozenset(properties),
            accuracy=curve.accuracy(labels),
            labels_used=float(labels),
        )
