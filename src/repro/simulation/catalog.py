"""Synthetic item catalog with a metadata gap.

Every item has a set of *latent* properties (what the item truly is) and
a set of *listed* properties (what the seller typed in).  Sellers omit
properties that are "evident from the image" — exactly the paper's
wooden-table example — so listed is a random subset of latent.  Search
over listed metadata therefore misses items, which is what classifier
construction repairs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.properties import PropertySet


@dataclass(frozen=True)
class Item:
    """A catalog item: identifier, latent truth and listed metadata."""

    item_id: int
    latent: PropertySet
    listed: PropertySet

    def truly_matches(self, query: PropertySet) -> bool:
        """Ground truth: the latent properties satisfy ``query``."""
        return query <= self.latent

    def listed_matches(self, query: PropertySet) -> bool:
        """Baseline retrieval: the listed metadata satisfies ``query``."""
        return query <= self.listed


@dataclass
class CatalogConfig:
    """Generator knobs.

    Attributes:
        n_items: catalog size.
        n_properties: property vocabulary size.
        properties_per_item: (min, max) latent properties per item.
        disclosure: probability a latent property is also listed.
        popularity_exponent: Zipf exponent of property prevalence.
    """

    n_items: int = 2000
    n_properties: int = 60
    properties_per_item: Tuple[int, int] = (2, 6)
    disclosure: float = 0.6
    popularity_exponent: float = 1.0


class Catalog:
    """An immutable collection of items with query helpers."""

    def __init__(self, items: Sequence[Item], properties: Sequence[str]) -> None:
        self.items: Tuple[Item, ...] = tuple(items)
        self.properties: Tuple[str, ...] = tuple(properties)

    def __len__(self) -> int:
        return len(self.items)

    def true_result_set(self, query: PropertySet) -> List[Item]:
        """Ground truth: items whose latent properties satisfy the query."""
        return [item for item in self.items if item.truly_matches(query)]

    def listed_result_set(self, query: PropertySet) -> List[Item]:
        """Baseline retrieval over listed metadata only."""
        return [item for item in self.items if item.listed_matches(query)]

    def property_prevalence(self) -> Dict[str, int]:
        """How many items latently carry each property."""
        counts: Dict[str, int] = {p: 0 for p in self.properties}
        for item in self.items:
            for prop in item.latent:
                counts[prop] += 1
        return counts


def generate_catalog(config: CatalogConfig = CatalogConfig(), seed: int = 0) -> Catalog:
    """Generate a catalog with Zipf property prevalence and partial listing."""
    if config.n_items <= 0:
        raise ValueError("n_items must be positive")
    lo, hi = config.properties_per_item
    if not 1 <= lo <= hi <= config.n_properties:
        raise ValueError("invalid properties_per_item range")
    if not 0.0 <= config.disclosure <= 1.0:
        raise ValueError("disclosure must be in [0, 1]")

    rng = random.Random(seed)
    properties = [f"attr{i}" for i in range(config.n_properties)]
    weights = [
        1.0 / (rank**config.popularity_exponent)
        for rank in range(1, config.n_properties + 1)
    ]

    items: List[Item] = []
    for item_id in range(config.n_items):
        size = rng.randint(lo, hi)
        latent = set()
        while len(latent) < size:
            latent.add(rng.choices(properties, weights=weights, k=1)[0])
        listed = {p for p in latent if rng.random() < config.disclosure}
        items.append(
            Item(item_id=item_id, latent=frozenset(latent), listed=frozenset(listed))
        )
    return Catalog(items, properties)


def workload_from_catalog(
    catalog: Catalog,
    n_queries: int,
    max_length: int = 3,
    seed: int = 0,
):
    """Derive a search workload from catalog demand.

    Queries are conjunctions of co-occurring latent properties (sampled
    from actual items so result sets are non-empty); utility is the
    number of truly matching items (demand proxy).

    Returns ``(queries, utilities)``.
    """
    rng = random.Random(seed)
    queries = set()
    attempts = 0
    while len(queries) < n_queries and attempts < n_queries * 50:
        attempts += 1
        item = rng.choice(catalog.items)
        length = rng.randint(1, min(max_length, len(item.latent)))
        query = frozenset(rng.sample(sorted(item.latent), length))
        queries.add(query)
    utilities = {
        q: float(max(1, len(catalog.true_result_set(q)))) for q in queries
    }
    return sorted(queries, key=sorted), utilities
