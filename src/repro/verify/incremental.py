"""Delta-vs-cold differential harness for the incremental engine.

The incremental engine's contract is absolute: after any sequence of
deltas, the warm re-plan must be *identical* to solving the mutated
instance cold through the same pipeline — same classifiers, bit-equal
utility and cost — and the maintained partition must equal a cold
:func:`~repro.decompose.partition.partition_workload` run.
:func:`check_delta_stream` drives one
:class:`~repro.incremental.engine.IncrementalSolver` through a stream of
deltas, re-solving a pristine clone cold at every step, and raises
:class:`~repro.core.errors.DifferentialError` on the first divergence;
every warm solution is also certificate-verified from first principles.
"""

from __future__ import annotations

from random import Random
from typing import Dict, List, Optional, Sequence

from repro.core.errors import DifferentialError
from repro.core.model import BCCInstance
from repro.incremental.delta import WorkloadDelta, random_delta
from repro.incremental.engine import IncrementalConfig, IncrementalSolver
from repro.verify.certificate import verify_solution


def check_delta_stream(
    instance: BCCInstance,
    deltas: Sequence[WorkloadDelta],
    config: Optional[IncrementalConfig] = None,
    seed: Optional[int] = None,
) -> Dict[str, object]:
    """Drive ``instance`` through ``deltas`` warm, cross-checking cold.

    At every step the warm solver applies the next delta and re-plans;
    an independent cold solver (same config, pristine clone of the
    mutated instance) re-solves from scratch.  Divergence in the selected
    classifiers, utility or cost — bit-equal, no tolerance — raises
    :class:`DifferentialError`, as does a maintained partition that
    disagrees with the cold partitioner or a warm solution failing
    first-principles certificate verification.  Returns a report dict
    with per-step reuse telemetry.
    """
    config = config or IncrementalConfig()
    solver = IncrementalSolver(instance, config=config, seed=seed)
    steps: List[Dict[str, object]] = []
    solution = solver.solve()
    _check_step(solver, solution, config, seed, step=0)
    for index, delta in enumerate(deltas, start=1):
        solution = solver.resolve_delta(delta)
        solver._partition.check()
        _check_step(solver, solution, config, seed, step=index)
        info = dict(solution.meta["incremental"])
        steps.append(info)
    return {
        "steps": len(deltas),
        "final_version": getattr(solver.instance, "version", 0),
        "final_utility": solution.utility,
        "telemetry": steps,
    }


def _check_step(
    solver: IncrementalSolver,
    warm,
    config: IncrementalConfig,
    seed: Optional[int],
    step: int,
) -> None:
    verify_solution(
        solver.instance, warm, budget=solver.instance.budget
    )
    cold = IncrementalSolver(
        solver.instance.clone(), config=config, seed=seed
    ).solve()
    if warm.classifiers != cold.classifiers:
        raise DifferentialError(
            f"step {step}: warm selection diverged from cold "
            f"({sorted(map(sorted, warm.classifiers ^ cold.classifiers))})"
        )
    if warm.utility != cold.utility or warm.cost != cold.cost:
        raise DifferentialError(
            f"step {step}: warm totals (u={warm.utility}, c={warm.cost}) != "
            f"cold (u={cold.utility}, c={cold.cost})"
        )


def random_delta_stream(
    instance: BCCInstance,
    steps: int,
    rng: Random,
    fraction: float = 0.02,
) -> List[WorkloadDelta]:
    """A valid stream of ``steps`` random deltas (each applied in turn).

    Deltas are generated against a scratch clone that applies them as it
    goes, so every delta in the stream validates against the instance
    state it will actually meet.
    """
    scratch = instance.clone()
    stream: List[WorkloadDelta] = []
    for _ in range(steps):
        delta = random_delta(scratch, rng, fraction=fraction)
        scratch.apply_delta(delta)
        stream.append(delta)
    return stream
