"""Solution certificates: independently checkable evidence of a solution.

A :class:`SolutionCertificate` records, for every query the solution claims
to cover, a *witness* subset ``T ⊆ S`` with ``⋃T = q`` and every member a
subset of ``q`` — exactly the coverage condition of Section 2.1 — plus the
itemised classifier costs and per-query utilities the totals were derived
from.  :func:`verify_solution` re-derives coverage, cost and utility from
first principles (no :class:`~repro.core.coverage.CoverageTracker`, no
solver code; only the workload's ``cost``/``utility`` accessors and raw
set algebra) and raises a typed :class:`~repro.core.errors.CertificateError`
on any disagreement, so a bookkeeping bug in a solver — or a rollback bug
in the incremental engine it leans on — cannot survive certification.

Certificates serialize to JSON (:meth:`SolutionCertificate.to_json`) so
sweeps can archive them next to results and re-check them offline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.core.errors import (
    BudgetCertificateError,
    CostCertificateError,
    CoverageCertificateError,
    TargetCertificateError,
    UtilityCertificateError,
    WitnessCertificateError,
)
from repro.core.model import Classifier, ClassifierWorkload, Query
from repro.core.solution import Solution

#: Relative + absolute tolerance for floating-point total comparisons.
_TOL = 1e-9

CERTIFICATE_VERSION = 1


def _close(a: float, b: float) -> bool:
    if math.isinf(a) or math.isinf(b):
        return a == b
    return abs(a - b) <= _TOL * max(1.0, abs(a), abs(b))


def _sorted_props(props: Iterable[object]) -> Tuple[str, ...]:
    return tuple(sorted(str(p) for p in props))


def _canon(classifier: Classifier) -> Tuple[str, ...]:
    """A canonical, JSON-able, orderable key for a property set."""
    return _sorted_props(classifier)


@dataclass(frozen=True)
class SolutionCertificate:
    """Independently checkable evidence for a :class:`Solution`.

    Attributes:
        classifiers: the selected classifiers, canonically ordered.
        item_costs: construction cost per classifier, aligned with
            ``classifiers``.
        total_cost: sum of ``item_costs``.
        witnesses: covered query -> witness tuple ``T`` with ``⋃T = q``,
            every member selected and a subset of the query.
        query_utilities: covered query -> utility credited for it.
        total_utility: sum of ``query_utilities``.
        version: certificate schema version.
    """

    classifiers: Tuple[Classifier, ...]
    item_costs: Tuple[float, ...]
    total_cost: float
    witnesses: Mapping[Query, Tuple[Classifier, ...]]
    query_utilities: Mapping[Query, float]
    total_utility: float
    version: int = CERTIFICATE_VERSION

    def to_json(self) -> dict:
        """A JSON-serializable dict (property sets become sorted lists)."""
        return {
            "version": self.version,
            "classifiers": [list(_canon(c)) for c in self.classifiers],
            "item_costs": list(self.item_costs),
            "total_cost": self.total_cost,
            "witnesses": [
                {
                    "query": list(_canon(q)),
                    "witness": [list(_canon(c)) for c in witness],
                    "utility": self.query_utilities[q],
                }
                for q, witness in sorted(
                    self.witnesses.items(), key=lambda kv: _canon(kv[0])
                )
            ],
            "total_utility": self.total_utility,
        }

    @classmethod
    def from_json(cls, payload: Mapping[str, object]) -> "SolutionCertificate":
        """Rebuild a certificate emitted by :meth:`to_json`."""
        witnesses: Dict[Query, Tuple[Classifier, ...]] = {}
        utilities: Dict[Query, float] = {}
        for entry in payload["witnesses"]:  # type: ignore[index]
            query = frozenset(entry["query"])
            witnesses[query] = tuple(frozenset(c) for c in entry["witness"])
            utilities[query] = float(entry["utility"])
        return cls(
            classifiers=tuple(frozenset(c) for c in payload["classifiers"]),  # type: ignore[union-attr]
            item_costs=tuple(float(c) for c in payload["item_costs"]),  # type: ignore[union-attr]
            total_cost=float(payload["total_cost"]),  # type: ignore[arg-type]
            witnesses=witnesses,
            query_utilities=utilities,
            total_utility=float(payload["total_utility"]),  # type: ignore[arg-type]
            version=int(payload.get("version", CERTIFICATE_VERSION)),  # type: ignore[union-attr]
        )


def _witness_for(query: Query, subset_members: List[Classifier]) -> Optional[Tuple[Classifier, ...]]:
    """A small witness ``T`` with ``⋃T = q`` from the subset members, or None.

    Greedy set cover over the query's properties (largest marginal
    contribution first, canonical tie-break): not guaranteed minimum, but
    every returned member contributes a property no earlier member did.
    """
    missing = set(query)
    witness: List[Classifier] = []
    pool = sorted(subset_members, key=_canon)
    while missing:
        best = None
        best_gain = 0
        for classifier in pool:
            if classifier in witness:
                continue
            gain = len(classifier & missing)
            if gain > best_gain:
                best, best_gain = classifier, gain
        if best is None:
            return None
        witness.append(best)
        missing -= best
    return tuple(sorted(witness, key=_canon))


def build_certificate(
    workload: ClassifierWorkload, solution: Solution
) -> SolutionCertificate:
    """Derive a certificate for ``solution`` from first principles.

    Coverage is recomputed with raw set algebra — the producing solver's
    claimed ``covered`` set is *not* consulted, so the certificate is
    evidence about the classifier selection, not about the solver's
    bookkeeping.  Verification then compares the two.
    """
    selected = sorted(solution.classifiers, key=_canon)
    witnesses: Dict[Query, Tuple[Classifier, ...]] = {}
    utilities: Dict[Query, float] = {}
    total_utility = 0.0
    for query in workload.queries:
        members = [c for c in selected if c <= query]
        union: set = set()
        for member in members:
            union |= member
        if union != set(query):
            continue
        witness = _witness_for(query, members)
        assert witness is not None  # union == query guarantees one exists
        witnesses[query] = witness
        utility = workload.utility(query)
        utilities[query] = utility
        total_utility += utility
    item_costs = tuple(workload.cost(c) for c in selected)
    return SolutionCertificate(
        classifiers=tuple(selected),
        item_costs=item_costs,
        total_cost=sum(item_costs),
        witnesses=witnesses,
        query_utilities=utilities,
        total_utility=total_utility,
    )


def verify_solution(
    workload: ClassifierWorkload,
    solution: Solution,
    certificate: Optional[SolutionCertificate] = None,
    budget: Optional[float] = None,
    target: Optional[float] = None,
) -> SolutionCertificate:
    """Check ``solution`` against ``workload`` from first principles.

    Re-derives the covered set, cost and utility with raw set algebra and
    compares them to the solution's claims; with a ``certificate`` also
    validates every witness (membership, subset-of-query, union equality)
    and the itemised costs.  ``budget``/``target`` add the BCC feasibility
    and GMC3 attainment checks.

    Returns the (validated) certificate, building one when none was given.

    Raises:
        CoverageCertificateError: claimed covered set is wrong.
        CostCertificateError: claimed or itemised costs are wrong, or an
            infinite-cost classifier was selected.
        UtilityCertificateError: claimed or itemised utilities are wrong.
        WitnessCertificateError: a witness fails ``T ⊆ S``, ``c ⊆ q`` or
            ``⋃T = q``, or the witnessed query set mismatches coverage.
        BudgetCertificateError: cost exceeds ``budget``.
        TargetCertificateError: utility falls short of ``target``.
    """
    selected = frozenset(solution.classifiers)

    # --- coverage, from raw set algebra -------------------------------
    derived_covered = set()
    derived_utility = 0.0
    for query in workload.queries:
        union: set = set()
        for classifier in selected:
            if classifier <= query:
                union |= classifier
        if union == set(query):
            derived_covered.add(query)
            derived_utility += workload.utility(query)
    if derived_covered != set(solution.covered):
        missing = derived_covered - set(solution.covered)
        extra = set(solution.covered) - derived_covered
        raise CoverageCertificateError(
            f"claimed covered set disagrees with first-principles coverage "
            f"(unclaimed-but-covered: {len(missing)}, claimed-but-uncovered: {len(extra)})"
        )

    # --- cost ---------------------------------------------------------
    derived_cost = sum(workload.cost(c) for c in selected)
    if not _close(derived_cost, solution.cost):
        raise CostCertificateError(
            f"claimed cost {solution.cost} != re-derived cost {derived_cost}"
        )
    if budget is not None and math.isinf(derived_cost):
        raise CostCertificateError("an infinite-cost classifier was selected")

    # --- utility ------------------------------------------------------
    if not _close(derived_utility, solution.utility):
        raise UtilityCertificateError(
            f"claimed utility {solution.utility} != re-derived utility {derived_utility}"
        )

    # --- budget / target ----------------------------------------------
    if budget is not None and derived_cost > budget * (1.0 + _TOL) + _TOL:
        raise BudgetCertificateError(
            f"certified cost {derived_cost} exceeds budget {budget}"
        )
    if target is not None and derived_utility < target - _TOL * max(1.0, target):
        raise TargetCertificateError(
            f"certified utility {derived_utility} falls short of target {target}"
        )

    # --- the certificate itself ---------------------------------------
    if certificate is None:
        certificate = build_certificate(workload, solution)
    _verify_certificate(workload, selected, derived_covered, certificate)
    return certificate


def _verify_certificate(
    workload: ClassifierWorkload,
    selected: frozenset,
    derived_covered: set,
    certificate: SolutionCertificate,
) -> None:
    if frozenset(certificate.classifiers) != selected:
        raise WitnessCertificateError(
            "certificate classifier list disagrees with the solution's selection"
        )
    if len(certificate.classifiers) != len(certificate.item_costs):
        raise CostCertificateError("itemised costs misaligned with classifiers")
    for classifier, cost in zip(certificate.classifiers, certificate.item_costs):
        true_cost = workload.cost(classifier)
        if not _close(cost, true_cost):
            raise CostCertificateError(
                f"itemised cost {cost} != workload cost {true_cost} "
                f"for {sorted(map(str, classifier))}"
            )
    if not _close(sum(certificate.item_costs), certificate.total_cost):
        raise CostCertificateError("certificate total_cost != sum of item costs")

    if set(certificate.witnesses) != derived_covered:
        raise WitnessCertificateError(
            "witnessed query set disagrees with first-principles coverage"
        )
    total_utility = 0.0
    for query, witness in certificate.witnesses.items():
        if not workload.has_query(query):
            raise WitnessCertificateError(f"witness for unknown query {sorted(query)}")
        union: set = set()
        for member in witness:
            if member not in selected:
                raise WitnessCertificateError(
                    f"witness member {sorted(map(str, member))} is not selected"
                )
            if not member <= query:
                raise WitnessCertificateError(
                    f"witness member {sorted(map(str, member))} is not a subset "
                    f"of query {sorted(map(str, query))}"
                )
            union |= member
        if union != set(query):
            raise WitnessCertificateError(
                f"witness union does not equal query {sorted(map(str, query))}"
            )
        claimed = certificate.query_utilities.get(query)
        true_utility = workload.utility(query)
        if claimed is None or not _close(claimed, true_utility):
            raise UtilityCertificateError(
                f"certificate utility {claimed} != workload utility {true_utility} "
                f"for query {sorted(map(str, query))}"
            )
        total_utility += true_utility
    if not _close(total_utility, certificate.total_utility):
        raise UtilityCertificateError(
            "certificate total_utility != sum of witnessed utilities"
        )


def compose_certificates(
    workload: ClassifierWorkload,
    certificates: Iterable[SolutionCertificate],
) -> SolutionCertificate:
    """Merge per-shard certificates into one workload-level certificate.

    The shards of a workload decomposition select disjoint classifier
    sets and witness disjoint query sets, so composition is a union:
    classifiers re-sorted canonically with their itemised costs
    re-aligned, witness and utility maps merged, totals summed.  The
    result is an ordinary :class:`SolutionCertificate` — it passes
    :func:`verify_solution` against the undecomposed workload unchanged.

    Raises :class:`WitnessCertificateError` if two certificates witness
    the same query or disagree on a shared classifier's cost — either
    means the inputs did not come from a true decomposition.
    """
    costs: Dict[Classifier, float] = {}
    witnesses: Dict[Query, Tuple[Classifier, ...]] = {}
    utilities: Dict[Query, float] = {}
    for certificate in certificates:
        for classifier, cost in zip(certificate.classifiers, certificate.item_costs):
            known = costs.get(classifier)
            if known is not None and not _close(known, cost):
                raise WitnessCertificateError(
                    f"shard certificates disagree on the cost of "
                    f"{sorted(map(str, classifier))}: {known} vs {cost}"
                )
            costs[classifier] = cost
        for query, witness in certificate.witnesses.items():
            if query in witnesses:
                raise WitnessCertificateError(
                    f"query {sorted(map(str, query))} witnessed by two shard "
                    f"certificates — shards are not independent"
                )
            witnesses[query] = witness
            utilities[query] = certificate.query_utilities[query]
    ordered = tuple(sorted(costs, key=_canon))
    item_costs = tuple(costs[classifier] for classifier in ordered)
    return SolutionCertificate(
        classifiers=ordered,
        item_costs=item_costs,
        total_cost=sum(item_costs),
        witnesses=witnesses,
        query_utilities=utilities,
        total_utility=sum(utilities.values()),
    )


def attach_certificate(
    workload: ClassifierWorkload,
    solution: Solution,
    budget: Optional[float] = None,
    target: Optional[float] = None,
) -> Solution:
    """Certify ``solution`` and record the certificate in ``meta``.

    The certificate lands in ``solution.meta["certificate"]`` (the meta
    mapping is a plain dict on an otherwise frozen dataclass, so solvers
    can opt in after evaluation without rebuilding the solution).
    """
    certificate = verify_solution(workload, solution, budget=budget, target=target)
    if isinstance(solution.meta, dict):
        solution.meta["certificate"] = certificate
    return solution
