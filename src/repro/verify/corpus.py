"""The seeded instance corpus the differential harness sweeps.

Small, shape-diverse BCC instances: pure ``l = 1`` workloads (the Knapsack
reduction regime), ``l <= 2`` (the DkS regime), mixed lengths up to 4,
zero-cost-heavy and infinite-cost-heavy cost maps, and the paper's own
Figure 1 running example.  Every instance is deterministic in its seed and
small enough for the brute-force oracle, so cross-solver invariants are
checkable exactly.
"""

from __future__ import annotations

import math
import random
import zlib
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set

from repro.core.model import BCCInstance, powerset_classifiers


@dataclass(frozen=True)
class CorpusCase:
    """One corpus entry: a named, seeded instance plus its shape tag."""

    name: str
    shape: str
    seed: int
    instance: BCCInstance


def _random_instance(
    rng: random.Random,
    n_properties: int,
    n_queries: int,
    min_length: int = 1,
    max_length: int = 3,
    zero_cost_rate: float = 0.1,
    inf_cost_rate: float = 0.0,
    max_cost: int = 9,
    budget_fraction: float = 0.4,
) -> BCCInstance:
    properties = [f"p{i}" for i in range(n_properties)]
    queries: Set[FrozenSet[str]] = set()
    attempts = 0
    while len(queries) < n_queries and attempts < 50 * n_queries:
        attempts += 1
        length = rng.randint(min_length, max_length)
        queries.add(frozenset(rng.sample(properties, length)))
    ordered = sorted(queries, key=sorted)
    utilities = {q: float(rng.randint(1, 10)) for q in ordered}
    classifiers: Set[FrozenSet[str]] = set()
    for query in ordered:
        classifiers.update(powerset_classifiers(query))
    costs: Dict[FrozenSet[str], float] = {}
    finite_total = 0.0
    for classifier in sorted(classifiers, key=sorted):
        roll = rng.random()
        if roll < inf_cost_rate and len(classifier) > 1:
            # Only multi-property classifiers go infinite, so every query
            # keeps a finite cover through its singletons.
            costs[classifier] = math.inf
            continue
        if roll < inf_cost_rate + zero_cost_rate:
            costs[classifier] = 0.0
        else:
            costs[classifier] = float(rng.randint(1, max_cost))
        finite_total += costs[classifier]
    budget = max(1.0, round(finite_total * budget_fraction))
    return BCCInstance(ordered, utilities, costs, budget=budget)


def _figure1() -> BCCInstance:
    from repro.core.properties import from_letters as fs

    queries = [fs("xyz"), fs("xz"), fs("xy")]
    utilities = {fs("xyz"): 8.0, fs("xz"): 1.0, fs("xy"): 2.0}
    costs = {
        fs("x"): 5.0,
        fs("y"): 3.0,
        fs("z"): 3.0,
        fs("xyz"): 3.0,
        fs("xz"): 4.0,
        fs("yz"): 0.0,
        fs("xy"): math.inf,
    }
    return BCCInstance(queries, utilities, costs, budget=4.0)


#: shape tag -> generator kwargs; every seed instantiates every shape.
_SHAPES: Dict[str, dict] = {
    "l1-knapsack": dict(n_properties=8, n_queries=7, min_length=1, max_length=1),
    "l2-dks": dict(n_properties=6, n_queries=6, min_length=1, max_length=2),
    "mixed-l3": dict(n_properties=6, n_queries=6, max_length=3),
    "zero-heavy": dict(n_properties=6, n_queries=6, max_length=3, zero_cost_rate=0.4),
    "inf-heavy": dict(n_properties=6, n_queries=5, max_length=3, inf_cost_rate=0.35),
    "deep-l4": dict(n_properties=7, n_queries=4, min_length=3, max_length=4),
}


def corpus_cases(
    seeds: Sequence[int] = range(6), shapes: Optional[Sequence[str]] = None
) -> Iterator[CorpusCase]:
    """Yield the corpus: the Figure 1 example plus every (shape, seed) pair."""
    yield CorpusCase(name="figure-1", shape="paper", seed=0, instance=_figure1())
    selected = list(shapes) if shapes is not None else list(_SHAPES)
    for shape in selected:
        if shape not in _SHAPES:
            raise KeyError(f"unknown corpus shape {shape!r}; known: {sorted(_SHAPES)}")
        shape_salt = zlib.crc32(shape.encode("utf-8"))
        for seed in seeds:
            rng = random.Random(shape_salt * 100_003 + seed)
            instance = _random_instance(rng, **_SHAPES[shape])
            yield CorpusCase(
                name=f"{shape}-s{seed}", shape=shape, seed=seed, instance=instance
            )


def corpus(seeds: Sequence[int] = range(6)) -> List[CorpusCase]:
    """The default corpus as a list (convenience for the CLI and tests)."""
    return list(corpus_cases(seeds))
