"""Incumbent-dominance verification for the anytime meta-solver.

An anytime solver's defining promise is monotone progress: every
incumbent it holds is at least as good as every earlier one, and each is
independently certified — so interrupting it at *any* point yields a
verified answer no worse than interrupting it earlier.
:func:`check_incumbent_trace` re-checks that promise from first
principles, in the same no-trust spirit as the rest of this package:
every trace entry is re-verified against the instance
(:func:`~repro.verify.certificate.verify_solution`), then the sequence
is checked for dominance.  Any violation raises the typed
:class:`~repro.core.errors.IncumbentCertificateError`.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.errors import IncumbentCertificateError
from repro.core.model import BCCInstance
from repro.core.solution import Solution
from repro.verify.certificate import verify_solution

#: Float slack for utility/cost comparisons between incumbents.
_TOL = 1e-9


def check_incumbent_trace(
    instance: BCCInstance, trace: Sequence[Solution]
) -> None:
    """Verify an incumbent trace: certified entries, monotone progress.

    Checks, in order:

    - the trace is non-empty (an anytime solver always holds *some*
      incumbent, the certified empty solution at worst);
    - every entry passes first-principles verification against
      ``instance`` (coverage, cost, utility, budget feasibility);
    - utilities never decrease along the trace;
    - at (tolerance-)equal utility, cost never increases — a later
      incumbent may not pay more for the same coverage.

    Raises:
        IncumbentCertificateError: any of the above fails.
    """
    if not trace:
        raise IncumbentCertificateError(
            "empty incumbent trace — an anytime solver must always hold one"
        )
    for position, solution in enumerate(trace):
        try:
            verify_solution(instance, solution, budget=instance.budget)
        except Exception as error:
            raise IncumbentCertificateError(
                f"incumbent {position} failed verification: {error}"
            ) from error
    for position in range(1, len(trace)):
        earlier, later = trace[position - 1], trace[position]
        if later.utility < earlier.utility - _TOL:
            raise IncumbentCertificateError(
                f"incumbent {position} regressed: utility {later.utility} "
                f"< earlier {earlier.utility}"
            )
        if (
            abs(later.utility - earlier.utility) <= _TOL
            and later.cost > earlier.cost + _TOL
        ):
            raise IncumbentCertificateError(
                f"incumbent {position} regressed: equal utility but cost "
                f"{later.cost} > earlier {earlier.cost}"
            )
