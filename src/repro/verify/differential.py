"""Differential verification: all solver arms, cross-checked on a corpus.

Every registered arm runs on every corpus instance; each output is
certified with :func:`~repro.verify.certificate.verify_solution`, and the
arms are then cross-checked against one another:

- the brute-force oracle dominates every heuristic at the same budget;
- on ``l = 1`` instances the oracle must match the Knapsack-reduction DP
  exactly (Theorem 3.1 — two independent exact solvers, one answer);
- on ``l <= 2`` instances ``A^BCC`` must stay within the paper's
  ``7*alpha`` bound of the optimum (``analysis/bounds.bcc_l2_ratio``,
  Theorem 4.7 with the DkS-derived HkS engine at ``alpha = 1``);
- a certified GMC3 answer reaches its target, costs no more than the MC3
  full cover, and the *exact* BCC solver at the implied budget (the GMC3
  answer's own cost) re-attains the target;
- a certified ECC answer is dominated by exact BCC at its implied budget;
- MC3's full cover, given to exact BCC as the budget, covers everything.

Failures are collected as :class:`Finding`s, not raised mid-sweep, so one
broken arm cannot mask another; :meth:`DifferentialReport.raise_on_failure`
turns a non-empty report into a :class:`DifferentialError` for CI.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis.bounds import bcc_l2_ratio
from repro.core.errors import CertificateError, DifferentialError
from repro.core.model import BCCInstance, ECCInstance, GMC3Instance
from repro.core.solution import Solution, evaluate
from repro.verify.certificate import verify_solution
from repro.verify.corpus import CorpusCase, corpus

_TOL = 1e-9
#: The brute-force oracle refuses above this many feasible classifiers.
_ORACLE_LIMIT = 24

BccSolver = Callable[[BCCInstance], Solution]


@dataclass(frozen=True)
class SolverArm:
    """A registered solver entry point.

    Attributes:
        name: display name (unique within its kind).
        kind: which instance view the arm consumes: ``bcc``, ``gmc3``
            or ``ecc``.
        run: ``instance -> Solution``.
        oracle: True for provably exact arms (they define dominance).
    """

    name: str
    kind: str
    run: Callable
    oracle: bool = False


@dataclass(frozen=True)
class Finding:
    """One cross-check failure on one corpus case."""

    case: str
    arm: str
    check: str
    message: str

    def __str__(self) -> str:
        return f"[{self.case}] {self.arm} / {self.check}: {self.message}"


@dataclass
class DifferentialReport:
    """Outcome of a differential sweep."""

    cases: int = 0
    solutions_certified: int = 0
    checks_run: int = 0
    elapsed_sec: float = 0.0
    findings: List[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def raise_on_failure(self) -> None:
        if self.findings:
            summary = "\n".join(str(f) for f in self.findings[:20])
            more = len(self.findings) - 20
            if more > 0:
                summary += f"\n... and {more} more"
            raise DifferentialError(
                f"{len(self.findings)} differential finding(s):\n{summary}"
            )


# ----------------------------------------------------------------------
# the arm registry
# ----------------------------------------------------------------------
def _shared_cost_degenerate(instance: BCCInstance) -> Solution:
    """Shared-costs solver with zero property costs == the base model."""
    from repro.extensions.shared_costs import SharedCostModel, solve_shared_cost_bcc

    model = SharedCostModel(instance, property_costs={}, default_property_cost=0.0)
    selection = solve_shared_cost_bcc(model)
    return evaluate(instance, selection, meta={"algorithm": "shared-costs[d=0]"})


def _partial_cover_degenerate(instance: BCCInstance) -> Solution:
    """Partial-cover solver with a step credit == the base model."""
    from repro.extensions.partial_cover import (
        PartialCoverModel,
        solve_partial_bcc,
        step_credit,
    )

    model = PartialCoverModel(instance, credit=step_credit)
    selection = solve_partial_bcc(model, warm_start=False)
    return evaluate(instance, selection, meta={"algorithm": "partial-cover[step]"})


def _abcc(instance: BCCInstance) -> Solution:
    from repro.algorithms.bcc import solve_bcc

    return solve_bcc(instance)


def _brute(instance: BCCInstance) -> Solution:
    from repro.algorithms.brute_force import solve_bcc_exact

    return solve_bcc_exact(instance)


def _abcc_sharded(instance: BCCInstance) -> Solution:
    """Decompose-solve-recombine arm (jobs=1: the harness may itself run
    inside a pool worker)."""
    from repro.decompose import ShardedConfig, solve_bcc_sharded

    return solve_bcc_sharded(instance, ShardedConfig(jobs=1))


def default_arms() -> List[SolverArm]:
    """Every registered solver arm, across all three objectives."""
    from repro.algorithms.ecc import solve_ecc
    from repro.algorithms.gmc3 import solve_gmc3
    from repro.baselines import runners

    return [
        SolverArm("A^BCC", "bcc", _abcc),
        SolverArm("A^BCC-sharded", "bcc", _abcc_sharded),
        SolverArm("brute-force", "bcc", _brute, oracle=True),
        SolverArm("RAND", "bcc", lambda i: runners.rand_bcc(i, seed=0)),
        SolverArm("IG1", "bcc", runners.ig1_bcc),
        SolverArm("IG2", "bcc", runners.ig2_bcc),
        SolverArm("shared-costs[d=0]", "bcc", _shared_cost_degenerate),
        SolverArm("partial-cover[step]", "bcc", _partial_cover_degenerate),
        SolverArm("A^GMC3", "gmc3", solve_gmc3),
        SolverArm("RAND(G)", "gmc3", lambda i: runners.rand_gmc3(i, seed=0)),
        SolverArm("IG1(G)", "gmc3", runners.ig1_gmc3),
        SolverArm("IG2(G)", "gmc3", runners.ig2_gmc3),
        SolverArm("A^ECC", "ecc", solve_ecc),
        SolverArm("RAND(E)", "ecc", lambda i: runners.rand_ecc(i, seed=0)),
        SolverArm("IG1(E)", "ecc", runners.ig1_ecc),
        SolverArm("IG2(E)", "ecc", runners.ig2_ecc),
    ]


def dishonest_arm(inflate: float = 1.5) -> SolverArm:
    """A deliberately broken solver: overstates its utility by ``inflate``.

    Mutation-style fixture for the harness's own tests: it runs a real
    greedy, then reports ``utility * inflate + 1`` without covering
    anything extra.  Certification must flag it on every instance.
    """

    def run(instance: BCCInstance) -> Solution:
        from repro.baselines.runners import ig2_bcc

        honest = ig2_bcc(instance)
        return Solution(
            classifiers=honest.classifiers,
            cost=honest.cost,
            utility=honest.utility * inflate + 1.0,
            covered=honest.covered,
            meta={"algorithm": "dishonest"},
        )

    return SolverArm("dishonest", "bcc", run)


# ----------------------------------------------------------------------
# the sweep
# ----------------------------------------------------------------------
def _oracle_feasible(instance: BCCInstance) -> bool:
    count = 0
    for classifier in instance.relevant_classifiers():
        cost = instance.cost(classifier)
        if not math.isinf(cost) and cost <= instance.budget:
            count += 1
            if count > _ORACLE_LIMIT:
                return False
    return True


def _gmc3_view(instance: BCCInstance, fraction: float = 0.55) -> GMC3Instance:
    """The corpus instance re-read as a GMC3 problem at a mid-range target."""
    total = sum(instance.utility(q) for q in instance.queries)
    return GMC3Instance(
        instance.queries,
        {q: instance.utility(q) for q in instance.queries},
        {c: instance.cost(c) for c in instance.relevant_classifiers()},
        target=round(total * fraction, 6),
        default_utility=instance.default_utility,
        default_cost=instance.default_cost,
    )


def _ecc_view(instance: BCCInstance) -> ECCInstance:
    return ECCInstance(
        instance.queries,
        {q: instance.utility(q) for q in instance.queries},
        {c: instance.cost(c) for c in instance.relevant_classifiers()},
        default_utility=instance.default_utility,
        default_cost=instance.default_cost,
    )


def _has_finite_full_cover(instance: BCCInstance) -> bool:
    """Every query coverable at finite cost (GMC3/MC3 arms need this)."""
    for query in instance.queries:
        if math.isinf(
            min(instance.cost(frozenset({p})) for p in query)
        ) and math.isinf(instance.cost(query)):
            # Cheap necessary check only; singletons finite is the corpus
            # convention, so this is effectively "no query fully walled off".
            return False
    return True


class _CaseRunner:
    """Runs every arm and cross-check on one corpus case."""

    def __init__(self, case: CorpusCase, arms: Sequence[SolverArm], report: DifferentialReport):
        self.case = case
        self.arms = arms
        self.report = report

    def fail(self, arm: str, check: str, message: str) -> None:
        self.report.findings.append(
            Finding(case=self.case.name, arm=arm, check=check, message=message)
        )

    def check(self) -> None:
        self.report.checks_run += 1

    # -- BCC ------------------------------------------------------------
    def run_bcc(self) -> None:
        instance = self.case.instance
        utilities: Dict[str, float] = {}
        oracle_utility: Optional[float] = None
        oracle_ok = _oracle_feasible(instance)
        for arm in (a for a in self.arms if a.kind == "bcc"):
            if arm.oracle and not oracle_ok:
                continue
            try:
                solution = arm.run(instance)
            except Exception as exc:  # a crash is a finding, not an abort
                self.fail(arm.name, "run", f"{type(exc).__name__}: {exc}")
                continue
            try:
                verify_solution(instance, solution, budget=instance.budget)
                self.report.solutions_certified += 1
            except CertificateError as exc:
                self.fail(arm.name, "certificate", str(exc))
                continue
            utilities[arm.name] = solution.utility
            if arm.oracle:
                oracle_utility = solution.utility

        if oracle_utility is not None:
            for name, utility in utilities.items():
                self.check()
                if utility > oracle_utility + _TOL:
                    self.fail(
                        name,
                        "oracle-dominance",
                        f"heuristic utility {utility} exceeds the exact "
                        f"optimum {oracle_utility}",
                    )
            self._check_knapsack_reduction(oracle_utility)
            self._check_l2_bound(oracle_utility, utilities.get("A^BCC"))
            self._check_mc3_full_cover()

    def _check_knapsack_reduction(self, oracle_utility: float) -> None:
        instance = self.case.instance
        if instance.length != 1:
            return
        from repro.knapsack.solvers import solve_knapsack_dp
        from repro.reductions.knapsack import bcc_l1_to_knapsack

        items, capacity = bcc_l1_to_knapsack(instance)
        finite = [item for item in items if not math.isinf(item.weight)]
        try:
            value, _ = solve_knapsack_dp(finite, capacity)
        except ValueError:
            return  # non-integral weights: the DP oracle does not apply
        self.check()
        if abs(value - oracle_utility) > _TOL * max(1.0, value):
            self.fail(
                "brute-force",
                "knapsack-reduction",
                f"exact BCC_l=1 utility {oracle_utility} != knapsack DP "
                f"optimum {value} (Theorem 3.1)",
            )

    def _check_l2_bound(
        self, oracle_utility: float, abcc_utility: Optional[float]
    ) -> None:
        instance = self.case.instance
        if instance.length > 2 or abcc_utility is None or oracle_utility <= 0:
            return
        bound = bcc_l2_ratio(1.0)
        self.check()
        if oracle_utility > bound * abcc_utility + _TOL:
            self.fail(
                "A^BCC",
                "l2-approximation-bound",
                f"optimum {oracle_utility} exceeds {bound} x A^BCC utility "
                f"{abcc_utility} (Theorem 4.7 at alpha=1)",
            )

    def _check_mc3_full_cover(self) -> None:
        instance = self.case.instance
        if not _has_finite_full_cover(instance):
            return
        from repro.algorithms.brute_force import solve_bcc_exact
        from repro.mc3 import InfeasibleCoverError, solve_mc3

        try:
            cover = solve_mc3(instance, certify=True)
        except InfeasibleCoverError:
            return
        except CertificateError as exc:
            self.fail("MC3", "certificate", str(exc))
            return
        self.report.solutions_certified += 1
        cover_cost = sum(instance.cost(c) for c in cover)
        total = sum(instance.utility(q) for q in instance.queries)
        budget = cover_cost * (1.0 + _TOL) + _TOL
        refunded = instance.with_budget(budget)
        if not _oracle_feasible(refunded):
            return
        exact = solve_bcc_exact(refunded)
        self.check()
        if exact.utility < total - _TOL * max(1.0, total):
            self.fail(
                "MC3",
                "full-cover-vs-exact-bcc",
                f"exact BCC at the MC3 full-cover budget {cover_cost} reaches "
                f"utility {exact.utility} < total {total}",
            )

    # -- GMC3 -----------------------------------------------------------
    def run_gmc3(self) -> None:
        instance = self.case.instance
        if not _has_finite_full_cover(instance):
            return
        view = _gmc3_view(instance)
        if view.target <= 0:
            return
        for arm in (a for a in self.arms if a.kind == "gmc3"):
            try:
                solution = arm.run(view)
            except Exception as exc:
                self.fail(arm.name, "run", f"{type(exc).__name__}: {exc}")
                continue
            try:
                verify_solution(view, solution, target=view.target)
                self.report.solutions_certified += 1
            except CertificateError as exc:
                self.fail(arm.name, "certificate", str(exc))
                continue
            if arm.name == "A^GMC3":
                self._check_gmc3_cross(view, solution)

    def _check_gmc3_cross(self, view: GMC3Instance, solution: Solution) -> None:
        from repro.algorithms.brute_force import solve_bcc_exact
        from repro.mc3 import full_cover_cost

        full_cost = full_cover_cost(view)
        self.check()
        if solution.cost > full_cost * (1.0 + _TOL) + _TOL:
            self.fail(
                "A^GMC3",
                "full-cover-ceiling",
                f"GMC3 cost {solution.cost} exceeds the MC3 full-cover "
                f"cost {full_cost}",
            )
        implied = view.as_bcc(solution.cost * (1.0 + _TOL) + _TOL)
        if not _oracle_feasible(implied):
            return
        exact = solve_bcc_exact(implied)
        self.check()
        if exact.utility < view.target - _TOL * max(1.0, view.target):
            self.fail(
                "A^GMC3",
                "implied-budget-vs-exact-bcc",
                f"exact BCC at the implied budget {implied.budget} reaches "
                f"{exact.utility} < target {view.target} although the GMC3 "
                f"answer itself is feasible there",
            )

    # -- ECC ------------------------------------------------------------
    def run_ecc(self) -> None:
        instance = self.case.instance
        view = _ecc_view(instance)
        for arm in (a for a in self.arms if a.kind == "ecc"):
            try:
                solution = arm.run(view)
            except Exception as exc:
                self.fail(arm.name, "run", f"{type(exc).__name__}: {exc}")
                continue
            try:
                verify_solution(view, solution)
                self.report.solutions_certified += 1
            except CertificateError as exc:
                self.fail(arm.name, "certificate", str(exc))
                continue
            if arm.name == "A^ECC" and solution.classifiers:
                self._check_ecc_cross(view, solution)

    def _check_ecc_cross(self, view: ECCInstance, solution: Solution) -> None:
        from repro.algorithms.brute_force import solve_bcc_exact

        if math.isinf(solution.cost):
            self.fail("A^ECC", "finite-cost", "ECC selected an infinite-cost classifier")
            return
        implied = view.as_bcc(solution.cost * (1.0 + _TOL) + _TOL)
        if not _oracle_feasible(implied):
            return
        exact = solve_bcc_exact(implied)
        self.check()
        if solution.utility > exact.utility + _TOL:
            self.fail(
                "A^ECC",
                "implied-budget-vs-exact-bcc",
                f"ECC utility {solution.utility} exceeds the exact BCC "
                f"optimum {exact.utility} at budget {implied.budget}",
            )


def run_differential(
    cases: Optional[Sequence[CorpusCase]] = None,
    arms: Optional[Sequence[SolverArm]] = None,
    objectives: Sequence[str] = ("bcc", "gmc3", "ecc"),
) -> DifferentialReport:
    """Sweep ``arms`` over ``cases`` and cross-check; never raises mid-run."""
    if cases is None:
        cases = corpus()
    if arms is None:
        arms = default_arms()
    report = DifferentialReport()
    started = time.perf_counter()
    for case in cases:
        report.cases += 1
        runner = _CaseRunner(case, arms, report)
        if "bcc" in objectives:
            runner.run_bcc()
        if "gmc3" in objectives:
            runner.run_gmc3()
        if "ecc" in objectives:
            runner.run_ecc()
    report.elapsed_sec = time.perf_counter() - started
    return report


def self_test() -> DifferentialReport:
    """Plant the dishonest solver and confirm the harness flags it everywhere.

    Returns the report of the planted run.  Raises
    :class:`DifferentialError` if any dishonest answer slipped through
    uncertified — i.e. if the harness itself is broken.
    """
    cases = corpus(seeds=range(2))
    arms = [dishonest_arm()]
    report = run_differential(cases, arms, objectives=("bcc",))
    flagged = {
        f.case for f in report.findings if f.arm == "dishonest" and f.check == "certificate"
    }
    missed = [c.name for c in cases if c.name not in flagged]
    if missed:
        raise DifferentialError(
            f"harness self-test failed: the dishonest solver went unflagged "
            f"on {missed}"
        )
    return report
