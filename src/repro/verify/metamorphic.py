"""Metamorphic checks: semantics-preserving transforms must not move answers.

Each check transforms an instance in a way with a provable effect on the
*optimal* answer — budget growth never loses utility, scaling every
utility by ``f`` scales the optimum by ``f``, renaming properties through
an order-preserving bijection relabels the optimum verbatim, and merging
duplicate raw query entries (summing utilities) is the identity on the
canonical instance — then runs a solver on both sides and compares
certified results.

The default solver is the brute-force oracle, for which every relation is
exact (its search order is fully deterministic and invariant under the
transforms).  Heuristic solvers iterate hash-ordered sets, so renaming can
legitimately change their tie-breaks; use the oracle for the invariance
relations and plain certification for heuristics on transformed inputs.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterable, List, Tuple

from repro.algorithms.brute_force import solve_bcc_exact
from repro.core.errors import MetamorphicError
from repro.core.model import BCCInstance, Query
from repro.core.solution import Solution
from repro.verify.certificate import verify_solution

Solver = Callable[[BCCInstance], Solution]

_TOL = 1e-9


def merge_duplicate_queries(
    entries: Iterable[Tuple[Query, float]]
) -> Tuple[List[Query], Dict[Query, float]]:
    """Canonicalize a raw (query, utility) stream: duplicates merge by summing.

    The model rejects duplicate queries outright; real workload logs
    contain them (the same filter requested twice is twice as useful).
    This is the canonicalization layer generators and loaders share.
    """
    utilities: Dict[Query, float] = {}
    for query, utility in entries:
        utilities[query] = utilities.get(query, 0.0) + float(utility)
    queries = sorted(utilities, key=sorted)
    return queries, utilities


def _certified(instance: BCCInstance, solver: Solver) -> Solution:
    solution = solver(instance)
    verify_solution(instance, solution, budget=instance.budget)
    return solution


def check_budget_monotonicity(
    instance: BCCInstance,
    solver: Solver = solve_bcc_exact,
    factors: Tuple[float, ...] = (0.5, 1.0, 1.5),
) -> None:
    """Certified utility must be non-decreasing in the budget (oracle-exact)."""
    previous = -math.inf
    previous_budget = None
    for factor in sorted(factors):
        scaled = instance.with_budget(instance.budget * factor)
        solution = _certified(scaled, solver)
        if solution.utility < previous - _TOL:
            raise MetamorphicError(
                f"budget monotonicity violated: utility {previous} at budget "
                f"{previous_budget} but {solution.utility} at larger budget "
                f"{scaled.budget}"
            )
        previous, previous_budget = solution.utility, scaled.budget


def check_utility_rescaling(
    instance: BCCInstance, solver: Solver = solve_bcc_exact, factor: float = 2.0
) -> None:
    """Scaling every utility by ``factor`` scales the certified utility by ``factor``.

    Powers of two keep the scaling bit-exact through float arithmetic, so
    the comparison needs no slack beyond the usual tolerance.
    """
    base = _certified(instance, solver)
    scaled_instance = BCCInstance(
        instance.queries,
        {q: instance.utility(q) * factor for q in instance.queries},
        {c: instance.cost(c) for c in instance.relevant_classifiers()},
        budget=instance.budget,
        default_utility=instance.default_utility * factor,
        default_cost=instance.default_cost,
    )
    scaled = _certified(scaled_instance, solver)
    expected = base.utility * factor
    if abs(scaled.utility - expected) > _TOL * max(1.0, abs(expected)):
        raise MetamorphicError(
            f"utility rescaling violated: base utility {base.utility} x {factor} "
            f"= {expected}, but the scaled instance certified {scaled.utility}"
        )


def check_property_renaming(
    instance: BCCInstance, solver: Solver = solve_bcc_exact
) -> None:
    """An order-preserving property bijection relabels the answer verbatim.

    The rename maps the sorted property universe to zero-padded fresh
    names, preserving lexicographic order, so every deterministic sort in
    the solver sees the same structure; the certified utility, cost and
    (mapped) classifier set must be identical.
    """
    ordered = sorted(instance.properties)
    mapping = {p: f"r{i:04d}" for i, p in enumerate(ordered)}

    def rename(props: Query) -> Query:
        return frozenset(mapping[p] for p in props)

    base = _certified(instance, solver)
    renamed_instance = BCCInstance(
        [rename(q) for q in instance.queries],
        {rename(q): instance.utility(q) for q in instance.queries},
        {rename(c): instance.cost(c) for c in instance.relevant_classifiers()},
        budget=instance.budget,
        default_utility=instance.default_utility,
        default_cost=instance.default_cost,
    )
    renamed = _certified(renamed_instance, solver)
    if abs(renamed.utility - base.utility) > _TOL or not _cost_close(
        renamed.cost, base.cost
    ):
        raise MetamorphicError(
            f"property renaming moved the answer: utility {base.utility} -> "
            f"{renamed.utility}, cost {base.cost} -> {renamed.cost}"
        )
    if frozenset(rename(c) for c in base.classifiers) != renamed.classifiers:
        raise MetamorphicError(
            "property renaming changed the selected classifier set"
        )


def check_duplicate_merge(
    instance: BCCInstance, solver: Solver = solve_bcc_exact
) -> None:
    """Splitting each query into duplicate half-utility entries and merging
    them back is the identity on the instance and on the certified answer.

    Halving a float and summing the halves is bit-exact, so the round-trip
    admits no drift; the merge must also be insensitive to stream order.
    """
    raw: List[Tuple[Query, float]] = []
    for query in instance.queries:
        half = instance.utility(query) / 2.0
        raw.append((query, half))
        raw.append((query, half))
    queries_fwd, utilities_fwd = merge_duplicate_queries(raw)
    queries_rev, utilities_rev = merge_duplicate_queries(reversed(raw))
    if queries_fwd != queries_rev or any(
        abs(utilities_fwd[q] - utilities_rev[q]) > _TOL for q in queries_fwd
    ):
        raise MetamorphicError("duplicate merge is order-sensitive")
    if set(queries_fwd) != set(instance.queries) or any(
        utilities_fwd[q] != instance.utility(q) for q in queries_fwd
    ):
        raise MetamorphicError(
            "merging the duplicated stream did not reproduce the instance"
        )
    merged = BCCInstance(
        queries_fwd,
        utilities_fwd,
        {c: instance.cost(c) for c in instance.relevant_classifiers()},
        budget=instance.budget,
        default_utility=instance.default_utility,
        default_cost=instance.default_cost,
    )
    merged_solution = _certified(merged, solver)
    base_solution = _certified(instance, solver)
    if abs(merged_solution.utility - base_solution.utility) > _TOL:
        raise MetamorphicError(
            f"duplicate-merge canonicalization moved the answer: "
            f"{merged_solution.utility} != {base_solution.utility}"
        )


def _cost_close(a: float, b: float) -> bool:
    if math.isinf(a) or math.isinf(b):
        return a == b
    return abs(a - b) <= _TOL * max(1.0, abs(a), abs(b))


def run_metamorphic(
    instance: BCCInstance, solver: Solver = solve_bcc_exact
) -> List[str]:
    """Run every applicable metamorphic check; return the names that ran.

    Raises :class:`MetamorphicError` (or any certificate error from the
    per-run verification) on the first violation.
    """
    ran = []
    check_budget_monotonicity(instance, solver)
    ran.append("budget-monotonicity")
    check_utility_rescaling(instance, solver)
    ran.append("utility-rescaling")
    check_property_renaming(instance, solver)
    ran.append("property-renaming")
    check_duplicate_merge(instance, solver)
    ran.append("duplicate-merge")
    return ran
