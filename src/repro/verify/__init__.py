"""Solution certificates and the differential verification harness.

Nothing in this package trusts solver code: coverage, cost and utility are
re-derived from raw set algebra and the workload's accessors, so a
bookkeeping bug anywhere in a solver (or in the shared incremental
coverage engine) surfaces as a typed
:class:`~repro.core.errors.CertificateError` instead of a silently wrong
number.

Entry points:

- :func:`verify_solution` / :func:`build_certificate` — certify one
  solution against one instance;
- :func:`run_differential` — sweep every registered solver arm over the
  seeded corpus and cross-check invariants (oracle dominance, the
  Knapsack/DkS reduction oracles, GMC3/ECC consistency with BCC at the
  implied budget);
- :mod:`repro.verify.metamorphic` — semantics-preserving transforms that
  must leave certified answers invariant;
- ``python -m repro.verify`` — the corpus sweep as a command.
"""

from repro.verify.anytime import check_incumbent_trace
from repro.verify.certificate import (
    SolutionCertificate,
    attach_certificate,
    build_certificate,
    compose_certificates,
    verify_solution,
)
from repro.verify.corpus import CorpusCase, corpus, corpus_cases
from repro.verify.incremental import check_delta_stream, random_delta_stream
from repro.verify.differential import (
    DifferentialReport,
    Finding,
    SolverArm,
    default_arms,
    dishonest_arm,
    run_differential,
    self_test,
)
from repro.verify.metamorphic import (
    check_budget_monotonicity,
    check_duplicate_merge,
    check_property_renaming,
    check_utility_rescaling,
    merge_duplicate_queries,
    run_metamorphic,
)

__all__ = [
    "check_incumbent_trace",
    "SolutionCertificate",
    "build_certificate",
    "verify_solution",
    "attach_certificate",
    "compose_certificates",
    "CorpusCase",
    "corpus",
    "corpus_cases",
    "check_delta_stream",
    "random_delta_stream",
    "SolverArm",
    "Finding",
    "DifferentialReport",
    "default_arms",
    "dishonest_arm",
    "run_differential",
    "self_test",
    "merge_duplicate_queries",
    "check_budget_monotonicity",
    "check_utility_rescaling",
    "check_property_renaming",
    "check_duplicate_merge",
    "run_metamorphic",
]
