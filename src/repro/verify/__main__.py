"""``python -m repro.verify`` — the differential corpus sweep as a command.

Runs, in order: the harness self-test (a planted dishonest solver must be
flagged on every instance), the differential sweep of all registered arms
over the seeded corpus, and the metamorphic layer on a corpus sample.
Exits non-zero on any finding, so CI can gate on it directly.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.core.errors import CertificateError
from repro.verify.corpus import corpus
from repro.verify.differential import run_differential, self_test
from repro.verify.metamorphic import run_metamorphic


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="Differential verification sweep over the seeded corpus.",
    )
    parser.add_argument(
        "--seeds", type=int, default=6, help="seeds per corpus shape (default 6)"
    )
    parser.add_argument(
        "--quick", action="store_true", help="2 seeds per shape, 2 metamorphic cases"
    )
    parser.add_argument(
        "--skip-self-test", action="store_true", help="skip the planted-bug self-test"
    )
    parser.add_argument(
        "--skip-metamorphic", action="store_true", help="skip the metamorphic layer"
    )
    parser.add_argument(
        "--json", metavar="PATH", help="also write a machine-readable report"
    )
    args = parser.parse_args(argv)
    n_seeds = 2 if args.quick else args.seeds

    # 1. the harness must catch a planted bug before its pass means anything
    if not args.skip_self_test:
        try:
            planted = self_test()
        except CertificateError as exc:
            print(f"SELF-TEST FAILED: {exc}", file=sys.stderr)
            return 2
        print(
            f"self-test: dishonest solver flagged on all "
            f"{planted.cases} instances ({len(planted.findings)} findings)"
        )

    # 2. the sweep proper
    cases = corpus(seeds=range(n_seeds))
    report = run_differential(cases)
    print(
        f"differential: {report.cases} instances, "
        f"{report.solutions_certified} solutions certified, "
        f"{report.checks_run} cross-checks, "
        f"{report.elapsed_sec:.1f}s"
    )
    for finding in report.findings:
        print(f"  FAIL {finding}", file=sys.stderr)

    # 3. metamorphic layer on the oracle-sized sample
    metamorphic_failures = []
    if not args.skip_metamorphic:
        sample = [c for c in cases if c.shape in ("paper", "l1-knapsack", "l2-dks")]
        if args.quick:
            sample = sample[:2]
        ran = 0
        for case in sample:
            try:
                ran += len(run_metamorphic(case.instance))
            except CertificateError as exc:
                metamorphic_failures.append(f"{case.name}: {exc}")
        print(f"metamorphic: {len(sample)} instances, {ran} relations checked")
        for failure in metamorphic_failures:
            print(f"  FAIL {failure}", file=sys.stderr)

    if args.json:
        payload = {
            "cases": report.cases,
            "solutions_certified": report.solutions_certified,
            "checks_run": report.checks_run,
            "elapsed_sec": report.elapsed_sec,
            "findings": [
                {
                    "case": f.case,
                    "arm": f.arm,
                    "check": f.check,
                    "message": f.message,
                }
                for f in report.findings
            ],
            "metamorphic_failures": metamorphic_failures,
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")

    if report.findings or metamorphic_failures:
        total = len(report.findings) + len(metamorphic_failures)
        print(f"VERIFICATION FAILED: {total} finding(s)", file=sys.stderr)
        return 1
    print("verification OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
