"""Continuous-relaxation HkS heuristic in the spirit of Konar & Sidiropoulos.

The induced-weight set function ``f(S) = sum_{uv in E, u,v in S} w_uv`` is
supermodular; its natural continuous surrogate is the quadratic
``F(x) = 0.5 x^T W x`` over the capped simplex ``{x in [0,1]^n, sum x = k}``
(on integral points ``F`` coincides with ``f``, and the maximum of ``F`` over
the polytope is attained at a vertex, i.e. an integral selection).  We run
projected supergradient ascent ``x <- Proj(x + eta * W x)`` from several
random starts, round each stationary point to its top-``k`` coordinates, and
polish with swap local search.  This mirrors the Lovász-extension /
Frank-Wolfe scheme of [41] while remaining dependency-light.
"""

from __future__ import annotations

import random
from typing import FrozenSet, List, Optional

import numpy as np

from repro.dks.local_search import improve_by_swaps
from repro.dks.projection import project_capped_simplex, top_k_indices
from repro.graphs.graph import Node, WeightedGraph


def _adjacency(graph: WeightedGraph) -> "tuple[list, dict, object]":
    """Index nodes and build a sparse adjacency operator."""
    from scipy.sparse import coo_matrix

    nodes = list(graph.nodes)
    index = {u: i for i, u in enumerate(nodes)}
    rows: List[int] = []
    cols: List[int] = []
    vals: List[float] = []
    for u, v, w in graph.edges():
        iu, iv = index[u], index[v]
        rows.extend((iu, iv))
        cols.extend((iv, iu))
        vals.extend((w, w))
    n = len(nodes)
    matrix = coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsr()
    return nodes, index, matrix


def solve_lovasz(
    graph: WeightedGraph,
    k: int,
    rng: Optional[random.Random] = None,
    restarts: int = 3,
    max_iters: int = 120,
    tol: float = 1e-7,
) -> FrozenSet[Node]:
    """HkS via projected supergradient ascent on the quadratic relaxation."""
    if k <= 0:
        return frozenset()
    nodes = list(graph.nodes)
    n = len(nodes)
    if n <= k:
        return frozenset(nodes)
    if graph.num_edges() == 0:
        return frozenset(nodes[:k])
    rng = rng or random.Random(0)

    node_list, _, W = _adjacency(graph)
    npr = np.random.RandomState(rng.randrange(2**31 - 1))

    # Lipschitz-style step size from the largest row sum of W.
    row_sums = np.asarray(np.abs(W).sum(axis=1)).ravel()
    lip = float(row_sums.max()) or 1.0
    eta = 1.0 / lip

    best_set: FrozenSet[Node] = frozenset()
    best_weight = -1.0
    for restart in range(max(1, restarts)):
        if restart == 0:
            # Warm start from degrees: informative and deterministic.
            x = row_sums / row_sums.sum() * k
            x = project_capped_simplex(x, k)
        else:
            x = project_capped_simplex(npr.rand(n), k)
        prev_value = -np.inf
        for _ in range(max_iters):
            grad = W.dot(x)
            x = project_capped_simplex(x + eta * grad, k)
            value = 0.5 * float(x @ W.dot(x))
            if value - prev_value < tol * max(1.0, abs(prev_value)):
                break
            prev_value = value
        chosen = frozenset(node_list[i] for i in top_k_indices(x, k))
        chosen = improve_by_swaps(graph, chosen)
        weight = graph.induced_weight(chosen)
        if weight > best_weight:
            best_weight = weight
            best_set = chosen
    return best_set
