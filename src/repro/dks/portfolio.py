"""Best-of portfolio HkS solver — the default engine for ``A_H^QK``.

Runs a configurable set of heuristics (peeling, expansion, Lovász-style
relaxation, spectral rounding), polishes each with swap local search, and
returns the heaviest selection found.  The paper reports that the heuristic
of [41] typically recovers 65%–80%+ of the optimum; the portfolio plays the
same role here and is what "close to optimal in practice" rests on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Optional, Sequence

from repro.dks.expansion import solve_expansion
from repro.dks.local_search import improve_by_swaps
from repro.dks.lovasz import solve_lovasz
from repro.dks.peeling import solve_peeling
from repro.dks.spectral import solve_spectral
from repro.graphs.graph import Node, WeightedGraph

Solver = Callable[[WeightedGraph, int, Optional[random.Random]], FrozenSet[Node]]

ENGINES: Dict[str, Solver] = {
    "peeling": solve_peeling,
    "expansion": solve_expansion,
    "lovasz": solve_lovasz,
    "spectral": solve_spectral,
}

# Above this node count the continuous engines (eigen/relaxation) are skipped;
# the combinatorial engines remain.
_LARGE_GRAPH_NODES = 4_000


@dataclass
class HksPortfolio:
    """Composite HkS solver.

    Attributes:
        engines: names from :data:`ENGINES` to run.
        polish: whether to run swap local search on each candidate.
        seed: RNG seed for the randomized engines.
    """

    engines: Sequence[str] = ("peeling", "expansion", "lovasz", "spectral")
    polish: bool = True
    seed: int = 0

    def solve(self, graph: WeightedGraph, k: int) -> FrozenSet[Node]:
        """Run every configured engine and return the heaviest selection."""
        if k <= 0:
            return frozenset()
        nodes_count = len(graph)
        if nodes_count <= k:
            return frozenset(graph.nodes)
        rng = random.Random(self.seed)
        best_set: FrozenSet[Node] = frozenset()
        best_weight = -1.0
        for name in self.engines:
            if name not in ENGINES:
                raise ValueError(f"unknown HkS engine {name!r}; options: {sorted(ENGINES)}")
            if nodes_count > _LARGE_GRAPH_NODES and name in ("lovasz", "spectral"):
                continue
            candidate = ENGINES[name](graph, k, rng)
            if self.polish and name in ("peeling", "expansion"):
                candidate = improve_by_swaps(graph, candidate)
            weight = graph.induced_weight(candidate)
            if weight > best_weight:
                best_weight = weight
                best_set = candidate
        return best_set


def solve_hks(
    graph: WeightedGraph,
    k: int,
    engines: Sequence[str] = ("peeling", "expansion", "lovasz", "spectral"),
    seed: int = 0,
) -> FrozenSet[Node]:
    """One-shot helper around :class:`HksPortfolio`."""
    return HksPortfolio(engines=engines, seed=seed).solve(graph, k)
