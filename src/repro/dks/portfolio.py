"""Best-of portfolio HkS solver — the default engine for ``A_H^QK``.

Runs a configurable set of heuristics (peeling, expansion, Lovász-style
relaxation, spectral rounding), polishes each with swap local search, and
returns the heaviest selection found.  The paper reports that the heuristic
of [41] typically recovers 65%–80%+ of the optimum; the portfolio plays the
same role here and is what "close to optimal in practice" rests on.

Arms are independent: every engine receives its *own* freshly seeded RNG
(``random.Random(seed)``), so no arm observes another's draws and the
arms can run out of order — or in parallel (``jobs > 1``) — with results
bit-identical to the sequential sweep.  (This also matches the historical
serial behavior: no engine ahead of the Lovász arm consumed randomness
from the formerly shared RNG.)  The winner is reduced in configured
engine order with a strict improvement rule, so ties resolve identically
on every path.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, Optional, Sequence, Tuple

from repro.dks.expansion import solve_expansion
from repro.dks.local_search import improve_by_swaps
from repro.dks.lovasz import solve_lovasz
from repro.dks.peeling import solve_peeling
from repro.dks.spectral import solve_spectral
from repro.graphs.graph import Node, WeightedGraph

Solver = Callable[[WeightedGraph, int, Optional[random.Random]], FrozenSet[Node]]

ENGINES: Dict[str, Solver] = {
    "peeling": solve_peeling,
    "expansion": solve_expansion,
    "lovasz": solve_lovasz,
    "spectral": solve_spectral,
}

#: Engines polished with swap local search (the combinatorial ones; the
#: continuous engines polish internally).
_POLISHED = ("peeling", "expansion")

# Above this node count the continuous engines (eigen/relaxation) are skipped;
# the combinatorial engines remain.
_LARGE_GRAPH_NODES = 4_000


def _solve_arm(args: Tuple[str, WeightedGraph, int, int, bool]) -> FrozenSet[Node]:
    """One portfolio arm (module-level so the process pool can pickle it)."""
    name, graph, k, seed, polish = args
    candidate = ENGINES[name](graph, k, random.Random(seed))
    if polish and name in _POLISHED:
        candidate = improve_by_swaps(graph, candidate)
    return candidate


@dataclass
class HksPortfolio:
    """Composite HkS solver.

    Attributes:
        engines: names from :data:`ENGINES` to run.
        polish: whether to run swap local search on each candidate.
        seed: RNG seed; every arm derives an independent RNG from it.
        jobs: worker processes for the arms (1 = sequential, the
            default; ``None`` defers to ``REPRO_JOBS``).  Results are
            identical for every value.
    """

    engines: Sequence[str] = ("peeling", "expansion", "lovasz", "spectral")
    polish: bool = True
    seed: int = 0
    jobs: Optional[int] = 1
    #: Structural solve memo: the A^BCC picks loop re-solves the same
    #: bipartition/blow-up subgraph for the same ``k`` across budget
    #: iterations, and every arm is a pure function of ``(graph
    #: structure, k, seed)`` — so an exact structural key (the graph's
    #: cached :meth:`~repro.graphs.graph.WeightedGraph.fingerprint`, no
    #: lossy hashing shortcuts) returns the identical frozenset object
    #: without re-running the arms.  Excluded from equality/repr and
    #: dropped on pickle (configs ride into pool workers; each process
    #: re-warms its own memo).
    _memo: Dict[Any, FrozenSet[Node]] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    #: Memo entry cap; hitting it clears wholesale (the repo's bounded-
    #: cache idiom — no LRU bookkeeping on the hot path).
    _MEMO_MAX = 256

    def __getstate__(self) -> Dict[str, Any]:
        state = dict(self.__dict__)
        state["_memo"] = {}
        return state

    def _memo_key(self, graph: WeightedGraph, k: int) -> Any:
        return (
            k,
            tuple(self.engines),
            self.polish,
            self.seed,
            graph.fingerprint(),
        )

    def solve(self, graph: WeightedGraph, k: int) -> FrozenSet[Node]:
        """Run every configured engine and return the heaviest selection."""
        for name in self.engines:
            if name not in ENGINES:
                raise ValueError(f"unknown HkS engine {name!r}; options: {sorted(ENGINES)}")
        if k <= 0:
            return frozenset()
        nodes_count = len(graph)
        if nodes_count <= k:
            return frozenset(graph.nodes)
        from repro.profile import add_count, phase

        key = self._memo_key(graph, k)
        hit = self._memo.get(key)
        if hit is not None:
            add_count("hks_memo_hits")
            return hit
        add_count("hks_memo_misses")
        runnable = [
            name
            for name in self.engines
            if not (nodes_count > _LARGE_GRAPH_NODES and name in ("lovasz", "spectral"))
        ]
        arm_args = [(name, graph, k, self.seed, self.polish) for name in runnable]

        from repro.parallel.pool import pmap, resolve_jobs

        jobs = resolve_jobs(self.jobs)
        with phase("hks_arms"):
            candidates = pmap(
                _solve_arm, arm_args, jobs=min(jobs, max(1, len(arm_args)))
            )

        # Reduce in configured engine order with strict improvement, so the
        # winner is independent of arm completion order.
        best_set: FrozenSet[Node] = frozenset()
        best_weight = -1.0
        for candidate in candidates:
            weight = graph.induced_weight(candidate)
            if weight > best_weight:
                best_weight = weight
                best_set = candidate
        if len(self._memo) >= self._MEMO_MAX:
            self._memo.clear()
        self._memo[key] = best_set
        return best_set


def solve_hks(
    graph: WeightedGraph,
    k: int,
    engines: Sequence[str] = ("peeling", "expansion", "lovasz", "spectral"),
    seed: int = 0,
    jobs: Optional[int] = 1,
) -> FrozenSet[Node]:
    """One-shot helper around :class:`HksPortfolio`."""
    return HksPortfolio(engines=engines, seed=seed, jobs=jobs).solve(graph, k)
