"""Spectral (low-rank bilinear) HkS heuristic in the spirit of [53].

Papailiopoulos et al. approximate DkS by optimizing over a low-rank
approximation of the adjacency matrix.  We take the top eigenvectors of the
weighted adjacency, generate candidate selections from the top-``k``
coordinates of each (both sign orientations), and polish the best candidate
with swap local search.
"""

from __future__ import annotations

import random
from typing import FrozenSet, Optional

import numpy as np

from repro.dks.local_search import improve_by_swaps
from repro.dks.lovasz import _adjacency
from repro.dks.projection import top_k_indices
from repro.graphs.graph import Node, WeightedGraph


def solve_spectral(
    graph: WeightedGraph,
    k: int,
    rng: Optional[random.Random] = None,
    rank: int = 3,
) -> FrozenSet[Node]:
    """HkS from the top-``rank`` eigenvectors of the adjacency matrix."""
    if k <= 0:
        return frozenset()
    nodes = list(graph.nodes)
    n = len(nodes)
    if n <= k:
        return frozenset(nodes)
    if graph.num_edges() == 0:
        return frozenset(nodes[:k])

    node_list, _, W = _adjacency(graph)
    rank = max(1, min(rank, n - 2))
    try:
        from scipy.sparse.linalg import eigsh

        # Fixed ARPACK start vector: the default draws from numpy's global
        # RNG, which both advances shared state and makes near-tie
        # selections vary between otherwise identical runs.
        v0 = np.random.RandomState(0).uniform(-1.0, 1.0, n)
        _, vectors = eigsh(W.asfptype(), k=rank, which="LA", v0=v0)
    except Exception:
        dense = W.toarray()
        eigenvalues, all_vectors = np.linalg.eigh(dense)
        order = np.argsort(-eigenvalues)[:rank]
        vectors = all_vectors[:, order]

    best_set: FrozenSet[Node] = frozenset()
    best_weight = -1.0
    for col in range(vectors.shape[1]):
        for sign in (1.0, -1.0):
            scores = sign * vectors[:, col]
            chosen = frozenset(node_list[i] for i in top_k_indices(scores, k))
            weight = graph.induced_weight(chosen)
            if weight > best_weight:
                best_weight = weight
                best_set = chosen
    return improve_by_swaps(graph, best_set)
