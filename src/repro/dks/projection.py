"""Euclidean projection onto the capped simplex ``{x in [0,1]^n : sum x = k}``.

The feasible set of the continuous HkS relaxation.  The projection of ``y``
has the form ``x_i = clip(y_i - tau, 0, 1)`` for the unique shift ``tau``
making the coordinates sum to ``k``; we find ``tau`` by bisection on the
monotone function ``tau -> sum_i clip(y_i - tau, 0, 1)``.
"""

from __future__ import annotations

import numpy as np


def project_capped_simplex(y: np.ndarray, k: float, tol: float = 1e-10) -> np.ndarray:
    """Project ``y`` onto ``{x in [0,1]^n : sum(x) = k}``.

    Raises:
        ValueError: if ``k`` is outside ``[0, n]`` (the set is empty).
    """
    y = np.asarray(y, dtype=float)
    n = y.size
    if not 0.0 <= k <= n:
        raise ValueError(f"k={k} outside [0, {n}]: capped simplex is empty")
    if k == 0.0:
        return np.zeros(n)
    if k == float(n):
        return np.ones(n)

    def mass(tau: float) -> float:
        return float(np.clip(y - tau, 0.0, 1.0).sum())

    # sum is non-increasing in tau; bracket the root.
    lo = float(y.min()) - 1.0  # mass(lo) >= ... >= k eventually: mass(lo)=n>=k
    hi = float(y.max())        # mass(hi) = 0 <= k
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if mass(mid) > k:
            lo = mid
        else:
            hi = mid
        if hi - lo < tol:
            break
    x = np.clip(y - 0.5 * (lo + hi), 0.0, 1.0)
    # Final mass correction: distribute any residual over interior coords.
    residual = k - float(x.sum())
    if abs(residual) > 0:
        interior = (x > 0.0) & (x < 1.0)
        if interior.any():
            x[interior] += residual / int(interior.sum())
            x = np.clip(x, 0.0, 1.0)
    return x


def top_k_indices(x: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` largest entries of ``x`` (deterministic ties)."""
    if k <= 0:
        return np.empty(0, dtype=int)
    k = min(k, x.size)
    order = np.argsort(-x, kind="stable")
    return order[:k]
