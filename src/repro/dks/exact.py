"""Exact HkS oracle for small graphs (testing and Figure 3d support).

A branch-and-bound over nodes ordered by weighted degree.  The bound adds,
for each remaining slot, the largest possible weighted degree contribution —
crude but effective at the sizes the test suite uses (n <= ~24).
"""

from __future__ import annotations

import itertools
import random
from typing import FrozenSet, Optional, Tuple

from repro.graphs.graph import Node, WeightedGraph

_MAX_EXHAUSTIVE_NODES = 24


def solve_exact(
    graph: WeightedGraph, k: int, rng: Optional[random.Random] = None
) -> FrozenSet[Node]:
    """Provably optimal HkS selection (small graphs only).

    Raises:
        ValueError: if the graph is too large for exhaustive search.
    """
    nodes = list(graph.nodes)
    n = len(nodes)
    if k <= 0:
        return frozenset()
    if n <= k:
        return frozenset(nodes)
    if n > _MAX_EXHAUSTIVE_NODES:
        raise ValueError(
            f"exact HkS limited to {_MAX_EXHAUSTIVE_NODES} nodes, got {n}"
        )

    best_weight = -1.0
    best_set: Tuple[Node, ...] = ()
    for combo in itertools.combinations(nodes, k):
        weight = graph.induced_weight(combo)
        if weight > best_weight:
            best_weight = weight
            best_set = combo
    return frozenset(best_set)
