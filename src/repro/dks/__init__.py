"""Densest/Heaviest k-Subgraph (DkS/HkS) heuristic suite.

The paper's ``A_H^QK`` plugs in "the state-of-the-art HkS heuristic" of
Konar & Sidiropoulos [41] (Lovász-extension based) as a black box.  That
implementation is not publicly available, so this package provides a
from-scratch portfolio of HkS heuristics:

- :mod:`repro.dks.peeling` — Charikar-style greedy removal down to ``k``.
- :mod:`repro.dks.expansion` — greedy forward selection up to ``k``.
- :mod:`repro.dks.lovasz` — projected-supergradient ascent on the continuous
  relaxation over the capped simplex (the spirit of [41]).
- :mod:`repro.dks.spectral` — low-rank bilinear rounding (the spirit of [53]).
- :mod:`repro.dks.local_search` — swap-improvement polish.
- :mod:`repro.dks.exact` — exhaustive/branch-and-bound oracle for tests.
- :mod:`repro.dks.portfolio` — best-of composite (the default engine).

All solvers share the signature ``solve(graph, k, rng=None) -> frozenset``:
they ignore node costs and maximize the total edge weight induced by at most
``k`` nodes.
"""

from repro.dks.peeling import solve_peeling
from repro.dks.expansion import solve_expansion
from repro.dks.local_search import improve_by_swaps
from repro.dks.lovasz import solve_lovasz
from repro.dks.spectral import solve_spectral
from repro.dks.exact import solve_exact
from repro.dks.portfolio import HksPortfolio, solve_hks
from repro.dks.projection import project_capped_simplex
from repro.dks.spes import solve_spes

__all__ = [
    "solve_peeling",
    "solve_expansion",
    "improve_by_swaps",
    "solve_lovasz",
    "solve_spectral",
    "solve_exact",
    "HksPortfolio",
    "solve_hks",
    "project_capped_simplex",
    "solve_spes",
]
