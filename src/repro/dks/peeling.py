"""Greedy peeling heuristic for HkS.

Repeatedly remove the node of minimum weighted degree until exactly ``k``
nodes remain.  This is the classic Asahiro/Charikar-style "remove the worst"
strategy; with a lazy heap the running time is ``O(m log n)``.

Because the induced weight is monotone under adding nodes, the heaviest
subgraph on *at most* ``k`` nodes can be assumed to have exactly
``min(k, n)`` nodes, so peeling down to ``k`` is the natural stopping rule.

The queue is int-indexed: nodes are ranked once by :func:`node_repr`, so
heap entries are plain ``(degree, rank)`` pairs whose comparisons resolve
ties exactly like the historical ``(degree, repr, node)`` tuples — the
rank order *is* the repr order — while every push/pop compares two
machine ints instead of two Python strings.
"""

from __future__ import annotations

import heapq
import random
from typing import FrozenSet, Optional

from repro.graphs.graph import Node, WeightedGraph, node_repr


def solve_peeling(
    graph: WeightedGraph, k: int, rng: Optional[random.Random] = None
) -> FrozenSet[Node]:
    """Heaviest-k-subgraph by greedy min-weighted-degree peeling."""
    if k <= 0:
        return frozenset()
    n = len(graph)
    if n <= k:
        return frozenset(graph.nodes)

    # Rank nodes by repr once; from here on the heap sees only ints.
    ranked = sorted(graph.nodes, key=node_repr)
    index_of = {u: i for i, u in enumerate(ranked)}
    # Cached unrestricted totals: same per-node accumulation order as the
    # adjacency rows, so every float matches the dict-based version.
    degree = [graph.weighted_degree(u) for u in ranked]
    adj = [
        [(index_of[v], w) for v, w in graph.neighbors(u).items()]
        for u in ranked
    ]
    alive = [True] * n
    alive_count = n
    heap = [(degree[i], i) for i in range(n)]
    heapq.heapify(heap)

    while alive_count > k:
        d, i = heapq.heappop(heap)
        if not alive[i] or d > degree[i] + 1e-12:
            continue  # stale heap entry
        alive[i] = False
        alive_count -= 1
        for j, w in adj[i]:
            if alive[j]:
                degree[j] -= w
                heapq.heappush(heap, (degree[j], j))
    return frozenset(u for i, u in enumerate(ranked) if alive[i])
