"""Greedy peeling heuristic for HkS.

Repeatedly remove the node of minimum weighted degree until exactly ``k``
nodes remain.  This is the classic Asahiro/Charikar-style "remove the worst"
strategy; with a lazy heap the running time is ``O(m log n)``.

Because the induced weight is monotone under adding nodes, the heaviest
subgraph on *at most* ``k`` nodes can be assumed to have exactly
``min(k, n)`` nodes, so peeling down to ``k`` is the natural stopping rule.
"""

from __future__ import annotations

import heapq
import random
from typing import FrozenSet, Optional

from repro.graphs.graph import Node, WeightedGraph, node_repr


def solve_peeling(
    graph: WeightedGraph, k: int, rng: Optional[random.Random] = None
) -> FrozenSet[Node]:
    """Heaviest-k-subgraph by greedy min-weighted-degree peeling."""
    if k <= 0:
        return frozenset()
    alive = set(graph.nodes)
    if len(alive) <= k:
        return frozenset(alive)

    degree = {u: graph.weighted_degree(u) for u in alive}
    heap = [(d, node_repr(u), u) for u, d in degree.items()]
    heapq.heapify(heap)

    while len(alive) > k:
        d, _, u = heapq.heappop(heap)
        if u not in alive or d > degree[u] + 1e-12:
            continue  # stale heap entry
        alive.discard(u)
        for v, w in graph.neighbors(u).items():
            if v in alive:
                degree[v] -= w
                heapq.heappush(heap, (degree[v], node_repr(v), v))
    return frozenset(alive)
