"""Smallest p-Edge Subgraph (SpES) heuristic.

SpES is the complement of DkS used in the GMC3 hardness analysis
(Theorem 5.3): find the *fewest* nodes whose induced subgraph contains at
least ``p`` edges (or total edge weight ``p`` in the weighted variant).

Heuristic: grow greedily by best marginal induced weight (seeded by the
heaviest edge), then trim nodes whose removal keeps the target.  The
best known approximation is ``Õ(n^0.17)`` [15]; this greedy is the
practical stand-in the GMC3 reduction tests exercise.
"""

from __future__ import annotations

from typing import FrozenSet, Optional, Set

from repro.graphs.graph import Node, WeightedGraph


def solve_spes(graph: WeightedGraph, p: float) -> Optional[FrozenSet[Node]]:
    """Smallest node set inducing total edge weight at least ``p``.

    Returns ``None`` when even the full graph has weight below ``p``.
    """
    if p <= 0:
        return frozenset()
    total = graph.total_edge_weight()
    if total < p - 1e-12:
        return None

    # Seed with the heaviest edge, then grow by marginal induced weight.
    best_edge = max(graph.edges(), key=lambda e: (e[2], repr((e[0], e[1]))))
    selection: Set[Node] = {best_edge[0], best_edge[1]}
    weight = best_edge[2]
    while weight < p - 1e-12:
        best_node = None
        best_gain = -1.0
        for node in graph.nodes:
            if node in selection:
                continue
            gain = graph.weighted_degree(node, within=selection)
            if gain > best_gain:
                best_gain = gain
                best_node = node
        if best_node is None:
            return None
        selection.add(best_node)
        weight += best_gain

    # Trim: drop nodes whose removal keeps the induced weight >= p.
    improved = True
    while improved:
        improved = False
        for node in sorted(selection, key=repr):
            contribution = graph.weighted_degree(node, within=selection)
            if weight - contribution >= p - 1e-12:
                selection.discard(node)
                weight -= contribution
                improved = True
                break
    return frozenset(selection)
