"""Swap-based local search polish for HkS solutions.

Given a k-node selection, repeatedly swap the selected node with the lowest
weighted degree into the selection for the unselected node with the highest,
as long as the induced weight strictly improves.  Each pass is ``O(m)``;
the number of passes is capped to keep worst-case time bounded.

Inside-degrees are maintained *incrementally*: a swap only touches the two
swapped nodes' neighborhoods, so each pass re-reads dense float arrays
instead of recomputing ``weighted_degree(·, within=...)`` from scratch, and
the departing node's edge weights are scattered into a dense row so the
candidate scan does array reads instead of per-node hash lookups.  The
scan itself still walks every node in insertion order with the same
sequential-record ``> best + 1e-12`` rule, so the chosen swap — and every
accumulated float — is bit-identical to the dict-based version.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable

from repro.graphs.graph import Node, WeightedGraph


def improve_by_swaps(
    graph: WeightedGraph,
    selection: Iterable[Node],
    max_passes: int = 50,
) -> FrozenSet[Node]:
    """Improve ``selection`` by single-node swaps until a local optimum."""
    chosen = set(selection)
    if not chosen or len(chosen) >= len(graph):
        return frozenset(chosen)

    # Shared indexed snapshot: every polish against this graph (portfolio
    # arms, Lovász restarts) reuses one O(n + m) build.
    nodes, _, reprs, adj = graph.dense_view()
    n = len(nodes)
    in_selected = [u in chosen for u in nodes]
    selected_idx = {i for i in range(n) if in_selected[i]}
    # Per-node gather in adjacency-row order: the accumulation order (and
    # so every float) matches weighted_degree(u, within=selected).
    inside = [0.0] * n
    for i in range(n):
        total = 0.0
        for j, w in adj[i]:
            if in_selected[j]:
                total += w
        inside[i] = total

    scatter = [0.0] * n  # dense row of the departing node's edge weights

    for _ in range(max_passes):
        worst = min(selected_idx, key=lambda i: (inside[i], reprs[i]))
        # Gain of bringing v in after removing `worst`: its degree into the
        # selection minus any edge it has to `worst` (which leaves).
        best_gain = inside[worst]
        best_candidate = -1
        worst_adj = adj[worst]
        for j, w in worst_adj:
            scatter[j] = w
        for j in range(n):
            if in_selected[j]:
                continue
            gain = inside[j] - scatter[j]
            if gain > best_gain + 1e-12:
                best_gain = gain
                best_candidate = j
        for j, _ in worst_adj:
            scatter[j] = 0.0
        if best_candidate < 0:
            break
        # Perform the swap and update inside-degrees incrementally.
        in_selected[worst] = False
        selected_idx.discard(worst)
        for j, w in worst_adj:
            inside[j] -= w
        in_selected[best_candidate] = True
        selected_idx.add(best_candidate)
        for j, w in adj[best_candidate]:
            inside[j] += w
    return frozenset(nodes[i] for i in selected_idx)
