"""Swap-based local search polish for HkS solutions.

Given a k-node selection, repeatedly swap the selected node with the lowest
weighted degree into the selection for the unselected node with the highest,
as long as the induced weight strictly improves.  Each pass is ``O(m)``;
the number of passes is capped to keep worst-case time bounded.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable

from repro.graphs.graph import Node, WeightedGraph, node_repr


def improve_by_swaps(
    graph: WeightedGraph,
    selection: Iterable[Node],
    max_passes: int = 50,
) -> FrozenSet[Node]:
    """Improve ``selection`` by single-node swaps until a local optimum."""
    selected = set(selection)
    if not selected or len(selected) >= len(graph):
        return frozenset(selected)

    inside_degree = {u: graph.weighted_degree(u, within=selected) for u in graph.nodes}

    for _ in range(max_passes):
        worst = min(
            selected, key=lambda u: (inside_degree[u], node_repr(u))
        )
        # Gain of bringing v in after removing `worst`: its degree into the
        # selection minus any edge it has to `worst` (which leaves).
        best_gain = inside_degree[worst]
        best_candidate = None
        worst_nbrs = graph.neighbors(worst)
        for v in graph.nodes:
            if v in selected:
                continue
            gain = inside_degree[v] - worst_nbrs.get(v, 0.0)
            if gain > best_gain + 1e-12:
                best_gain = gain
                best_candidate = v
        if best_candidate is None:
            break
        # Perform the swap and update inside-degrees incrementally.
        selected.discard(worst)
        for v, w in worst_nbrs.items():
            inside_degree[v] -= w
        selected.add(best_candidate)
        for v, w in graph.neighbors(best_candidate).items():
            inside_degree[v] += w
    return frozenset(selected)
