"""Greedy forward-expansion heuristic for HkS.

Seed the solution with the heaviest edge, then repeatedly add the node with
the largest weighted degree *into the current selection*, breaking ties by
overall weighted degree so early picks prefer well-connected nodes.
"""

from __future__ import annotations

import random
from typing import FrozenSet, Optional

from repro.graphs.graph import Node, WeightedGraph, node_repr


def solve_expansion(
    graph: WeightedGraph, k: int, rng: Optional[random.Random] = None
) -> FrozenSet[Node]:
    """Heaviest-k-subgraph by greedy node addition from the heaviest edge."""
    if k <= 0:
        return frozenset()
    nodes = list(graph.nodes)
    if len(nodes) <= k:
        return frozenset(nodes)

    best_edge = None
    best_weight = -1.0
    for u, v, w in graph.edges():
        if w > best_weight:
            best_weight = w
            best_edge = (u, v)

    if best_edge is None:
        # Edgeless graph: any k nodes induce weight 0.
        return frozenset(nodes[:k])

    # Tiebreak table, built once: the selection loop compares
    # (gain, weighted degree, repr) up to O(n) times per pick, and the
    # nested (gain[u], tie[u]) key orders identically to the historical
    # flat (gain[u], weighted_degree(u), node_repr(u)) tuple while
    # costing two dict lookups instead of a degree probe and a repr.
    tie = {u: (graph.weighted_degree(u), node_repr(u)) for u in nodes}

    if k == 1:
        # A single node induces no edges; pick the max-degree node anyway so
        # downstream local search has a sensible start.
        return frozenset({max(nodes, key=tie.__getitem__)})

    selected = set(best_edge)
    # gain[u] = weighted degree of u into `selected`
    gain = {}
    for u in selected:
        for v, w in graph.neighbors(u).items():
            if v not in selected:
                gain[v] = gain.get(v, 0.0) + w

    while len(selected) < k:
        if gain:
            candidate = max(gain, key=lambda u: (gain[u], tie[u]))
        else:
            outside = [u for u in nodes if u not in selected]
            candidate = max(outside, key=tie.__getitem__)
        selected.add(candidate)
        gain.pop(candidate, None)
        for v, w in graph.neighbors(candidate).items():
            if v not in selected:
                gain[v] = gain.get(v, 0.0) + w
    return frozenset(selected)
