"""Dynamically maintained workload partition for the delta engine.

:func:`repro.decompose.partition.partition_workload` recomputes the
shared-usable-property components from scratch — linear, but linear *per
delta* adds up when re-planning after every workload edit.
:class:`DynamicPartition` maintains the same components incrementally:

- **adds** are classic incremental union-find edge insertions — the new
  query's component unions with every component sharing a usable
  property, cost proportional to the query size;
- **deletes** trigger a *local* rebuild of the removed query's component
  only (union-find cannot un-union), a mini connected-components pass
  over that component's members;
- **cost reprices** that may flip a property's usability merge (newly
  finite) or locally rebuild (newly infinite) the components touching
  the classifier's properties, and always dirty the components of the
  queries the classifier could help cover;
- **utility reprices** just dirty the owning component.

Components touched by any of the above are tracked in a *dirty* set so
the engine knows which shard solutions are stale; :meth:`materialize`
freezes the current components into the same canonical
:class:`~repro.decompose.partition.WorkloadPartition` shape the cold
partitioner produces (shards ordered by first-member workload position,
members in workload order), and :meth:`check` asserts equality against a
cold :func:`partition_workload` run — the debugging backstop for the
maintenance logic.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.model import Classifier, ClassifierWorkload, Query
from repro.decompose.partition import (
    WorkloadPartition,
    _property_usable,
    partition_workload,
)


class DynamicPartition:
    """Incrementally maintained connected components of a mutable workload."""

    def __init__(self, workload: ClassifierWorkload) -> None:
        self.workload = workload
        #: query → component id
        self._member: Dict[Query, int] = {}
        #: component id → member queries
        self._components: Dict[int, Set[Query]] = {}
        #: property → queries containing it (maintained across mutations)
        self._prop_queries: Dict[str, Set[Query]] = {}
        #: component ids whose shard solution is stale
        self._dirty: Set[int] = set()
        self._next_id = 0
        cold = partition_workload(workload)
        for shard in cold.shards:
            cid = self._fresh_id()
            members = set(shard)
            self._components[cid] = members
            for query in members:
                self._member[query] = cid
        for query in workload.queries:
            for prop in query:
                self._prop_queries.setdefault(prop, set()).add(query)
        # A fresh partition starts fully dirty: nothing is solved yet.
        self._dirty = set(self._components)

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def _fresh_id(self) -> int:
        cid = self._next_id
        self._next_id += 1
        return cid

    @property
    def num_components(self) -> int:
        return len(self._components)

    @property
    def num_dirty(self) -> int:
        return len(self._dirty)

    def component_of(self, query: Query) -> int:
        return self._member[query]

    def mark_clean(self) -> None:
        """All current components have up-to-date solutions."""
        self._dirty.clear()

    def _merge(self, cids: Iterable[int]) -> int:
        """Union several components into the largest one; result is dirty."""
        distinct = sorted(set(cids))
        target = max(distinct, key=lambda cid: (len(self._components[cid]), -cid))
        for cid in distinct:
            if cid == target:
                continue
            members = self._components.pop(cid)
            self._dirty.discard(cid)
            for query in members:
                self._member[query] = target
            self._components[target].update(members)
        self._dirty.add(target)
        return target

    def _rebuild_local(self, members: Set[Query]) -> None:
        """Re-split ``members`` into components (post-deletion / cost kill).

        A mini connected-components pass over just these queries, using
        only usable properties — the rest of the partition is untouched.
        All resulting components are fresh ids and dirty.
        """
        for query in members:
            old = self._member.pop(query)
            component = self._components.get(old)
            if component is not None:
                component.discard(query)
                if not component:
                    del self._components[old]
                    self._dirty.discard(old)
                else:
                    self._dirty.add(old)
        usable_cache: Dict[str, bool] = {}
        remaining = set(members)
        while remaining:
            seed = remaining.pop()
            group = {seed}
            frontier = [seed]
            while frontier:
                query = frontier.pop()
                for prop in query:
                    usable = usable_cache.get(prop)
                    if usable is None:
                        usable = usable_cache[prop] = _property_usable(
                            self.workload, prop
                        )
                    if not usable:
                        continue
                    for other in self._prop_queries.get(prop, ()):
                        if other in remaining:
                            remaining.discard(other)
                            group.add(other)
                            frontier.append(other)
            cid = self._fresh_id()
            self._components[cid] = group
            for query in group:
                self._member[query] = cid
            self._dirty.add(cid)

    # ------------------------------------------------------------------
    # mutation notifications (call *after* the workload mutated)
    # ------------------------------------------------------------------
    def note_added(self, query: Query) -> int:
        """Incremental edge insertion for a freshly added query."""
        cid = self._fresh_id()
        self._components[cid] = {query}
        self._member[query] = cid
        self._dirty.add(cid)
        for prop in query:
            self._prop_queries.setdefault(prop, set()).add(query)
        neighbours = {cid}
        for prop in query:
            peers = self._prop_queries[prop]
            if len(peers) < 2 or not _property_usable(self.workload, prop):
                continue
            neighbours.update(self._member[other] for other in peers)
        if len(neighbours) > 1:
            return self._merge(neighbours)
        return cid

    def note_removed(self, query: Query) -> None:
        """Deletion: rebuild the removed query's component locally."""
        for prop in query:
            peers = self._prop_queries.get(prop)
            if peers is not None:
                peers.discard(query)
                if not peers:
                    del self._prop_queries[prop]
        cid = self._member.pop(query)
        members = self._components.pop(cid)
        self._dirty.discard(cid)
        members.discard(query)
        if members:
            self._rebuild_local(members)

    def note_utility(self, query: Query) -> None:
        """Utility reprice: the owning shard's solution is stale."""
        self._dirty.add(self._member[query])

    def note_cost(self, classifier: Classifier, old_cost: float, new_cost: float) -> None:
        """Cost reprice: dirty affected shards, fix connectivity if usability flipped.

        ``old_cost``/``new_cost`` are the *effective* prices before and
        after the mutation.  A price drop can only merge (a property may
        become usable), a price rise can only split (a usable property
        may die) — both restricted to the components touching the
        classifier's properties.
        """
        for query in self.workload.queries_containing(classifier):
            self._dirty.add(self._member[query])
        if new_cost == old_cost:
            return
        touched: Set[Query] = set()
        for prop in classifier:
            touched.update(self._prop_queries.get(prop, ()))
        if not touched:
            return
        if new_cost < old_cost:
            # Possibly newly-usable properties: union per shared property.
            for prop in classifier:
                peers = self._prop_queries.get(prop, ())
                if len(peers) < 2 or not _property_usable(self.workload, prop):
                    continue
                cids = {self._member[other] for other in peers}
                if len(cids) > 1:
                    self._merge(cids)
        else:
            # Possibly newly-dead properties: if any shared property of the
            # classifier lost usability, re-split the touched components.
            died = [
                prop
                for prop in classifier
                if len(self._prop_queries.get(prop, ())) > 1
                and not _property_usable(self.workload, prop)
            ]
            if died:
                members: Set[Query] = set()
                for query in touched:
                    members.update(self._components[self._member[query]])
                self._rebuild_local(members)

    # ------------------------------------------------------------------
    # materialization
    # ------------------------------------------------------------------
    def materialize(self) -> Tuple[WorkloadPartition, Tuple[int, ...]]:
        """Freeze into a canonical partition; returns ``(partition, dirty)``.

        The partition is byte-for-byte what :func:`partition_workload`
        would produce on the current workload (shards by first-member
        position, members in workload order); ``dirty`` holds the shard
        indexes whose solutions are stale since the last
        :meth:`mark_clean`.
        """
        position = {query: i for i, query in enumerate(self.workload.queries)}
        ordered = sorted(
            self._components.items(),
            key=lambda item: min(position[q] for q in item[1]),
        )
        shards = tuple(
            tuple(sorted(members, key=position.__getitem__))
            for _, members in ordered
        )
        query_to_shard = {
            query: index for index, shard in enumerate(shards) for query in shard
        }
        dirty = tuple(
            index for index, (cid, _) in enumerate(ordered) if cid in self._dirty
        )
        partition = WorkloadPartition(
            workload=self.workload,
            shards=shards,
            query_to_shard=query_to_shard,
            dead_properties=(),
        )
        return partition, dirty

    def check(self) -> None:
        """Assert equality with a cold :func:`partition_workload` run."""
        cold = partition_workload(self.workload)
        warm, _ = self.materialize()
        if warm.shards != cold.shards:
            raise AssertionError(
                f"dynamic partition diverged: {len(warm.shards)} warm shards "
                f"vs {len(cold.shards)} cold — {warm.shards} != {cold.shards}"
            )
