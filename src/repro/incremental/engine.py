"""The delta re-solve engine: warm-start BCC planning after workload edits.

:class:`IncrementalSolver` owns a mutable :class:`BCCInstance` and keeps,
between solves, everything a cold :func:`repro.decompose.solve_bcc_sharded`
run would recompute from scratch:

- the shard partition, maintained incrementally by
  :class:`~repro.incremental.partition.DynamicPartition`;
- solved per-shard pareto profiles, stored *content-addressed* under the
  shard's budget-free :func:`~repro.parallel.fingerprint.workload_fingerprint`
  — a shard untouched by a delta re-keys to the same fingerprint no
  matter how the other shards merged or split, so its profile (and every
  inner solve behind it) is reused verbatim.

``resolve_delta`` applies a :class:`~repro.incremental.delta.WorkloadDelta`,
patches the partition, re-solves only the shards whose fingerprints
missed, re-runs the grouped-knapsack recombination over the (mostly
cached) profiles, and re-scores the union selection from first
principles.  The result is *identical* to a cold solve of the mutated
instance — same pipeline, same profiles, same allocator — and with
``certify`` every warm solution carries a first-principles
:class:`~repro.verify.certificate.SolutionCertificate`.

The selection union is additionally replayed through a fresh
:class:`~repro.core.coverage.CoverageTracker` using the checkpoint /
rollback undo log: clean-shard classifiers first, checkpoint, dirty-shard
classifiers, rollback, re-apply — asserting that the patched coverage
state is bit-identical to the straight-through replay.  That exercises
the tracker's undo machinery on every re-plan, so a drifting rollback
cannot hide behind the evaluator.
"""

from __future__ import annotations

import math
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.coverage import CoverageTracker
from repro.core.errors import DecompositionError
from repro.core.model import BCCInstance, Classifier
from repro.core.solution import Solution, evaluate
from repro.decompose.allocator import ProfilePoint, allocate, budget_grid
from repro.decompose.solver import (
    _TOL,
    _check_composition,
    _finite_costs,
    _shard_finite_total,
    effective_jobs,
)
from repro.incremental.delta import WorkloadDelta
from repro.incremental.partition import DynamicPartition
from repro.parallel.cache import ResultCache
from repro.parallel.clock import Clock
from repro.parallel.fingerprint import shard_fingerprints, workload_fingerprint
from repro.parallel.pool import ParallelConfig, SolveTask, run_tasks
from repro.parallel.seeding import seed_for

#: Shard profiles kept in the content-addressed store (LRU beyond this).
MAX_STORED_PROFILES = 256


@dataclass
class IncrementalConfig:
    """Tuning knobs for :class:`IncrementalSolver`.

    Attributes:
        inner_solver: registry name of the per-shard solver.
        max_grid_points: per-shard budget-grid cap under a binding budget.
        jobs: worker processes for dirty-shard fan-out (``None`` defers to
            ``REPRO_JOBS``; tiny batches run serially either way).
        cache: optional :class:`ResultCache` shared with the task layer.
        certify: attach a first-principles certificate to every result.
        check_partition: run :meth:`DynamicPartition.check` after every
            delta (debug backstop; quadratic-ish, keep off in production).
        clock: injected time for the dirty-shard task batches (``None``
            uses the system clock).  A virtual clock forces the batches
            serial and charges simulated seconds, which is what lets the
            serving façade replay re-plans on a deterministic timeline.
    """

    inner_solver: str = "abcc"
    max_grid_points: int = 12
    jobs: Optional[int] = None
    cache: Optional[ResultCache] = field(default=None, repr=False)
    certify: bool = True
    check_partition: bool = False
    clock: Optional[Clock] = field(default=None, repr=False)


@dataclass
class ShardProfile:
    """Everything solved about one shard, keyed by its content fingerprint."""

    fingerprint: str
    total: float  #: saturation budget (sum of finite relevant costs)
    grid: Tuple[float, ...]
    points: Tuple[ProfilePoint, ...]
    solutions: Dict[str, Solution]  #: profile-point key → shard solution


class IncrementalSolver:
    """Stateful warm re-solver for a mutable BCC instance."""

    def __init__(
        self,
        instance: BCCInstance,
        config: Optional[IncrementalConfig] = None,
        seed: Optional[int] = None,
    ) -> None:
        self.instance = instance
        self.config = config or IncrementalConfig()
        self.seed = seed
        self._partition: Optional[DynamicPartition] = None
        self._profiles: "OrderedDict[str, ShardProfile]" = OrderedDict()
        self._max_profiles = MAX_STORED_PROFILES
        self._adopted: Dict[str, Tuple[Classifier, ...]] = {}
        self.last_solution: Optional[Solution] = None
        self.deltas_applied = 0

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def solve(self) -> Solution:
        """Cold solve of the current instance (also primes the warm state)."""
        self._partition = DynamicPartition(self.instance)
        return self._resolve(delta=None)

    def resolve_delta(self, delta: WorkloadDelta) -> Solution:
        """Apply ``delta`` and re-plan, reusing every untouched shard.

        The delta is validated against the current instance before any
        mutation; the workload mutates in place (bumping its version, so
        stale compiled views and trackers fail loudly), the partition is
        patched incrementally, and only fingerprint-missing shards are
        re-solved.
        """
        delta.validate(self.instance)
        if self._partition is None:
            self._partition = DynamicPartition(self.instance)
        old_costs = [
            (classifier, self.instance.cost(classifier))
            for classifier, _ in delta.costs
        ]
        self.instance.apply_delta(delta)
        partition = self._partition
        for query in delta.remove:
            partition.note_removed(query)
        for query, _ in delta.add:
            partition.note_added(query)
        for query, _ in delta.utilities:
            partition.note_utility(query)
        for (classifier, old), (_, _new) in zip(old_costs, delta.costs):
            partition.note_cost(classifier, old, self.instance.cost(classifier))
        if self.config.check_partition:
            partition.check()
        self.deltas_applied += 1
        return self._resolve(delta=delta)

    def adopt(self, solution: Solution) -> int:
        """Warm-start from a previous solution's per-shard selections.

        Splits ``solution.classifiers`` by current shard and records each
        shard's sub-selection; on the next non-binding re-plan a shard
        whose profile is missing re-scores its adopted selection instead
        of running the inner solver (exact when the adopting solve is the
        one that produced ``solution``, since a saturated shard's
        selection is budget-independent).  Returns the number of shards
        seeded.  Binding-budget re-plans ignore adoptions — a grid point
        cannot be reconstructed from a single selection.
        """
        if self._partition is None:
            self._partition = DynamicPartition(self.instance)
        partition, _ = self._partition.materialize()
        per_shard: Dict[int, List[Classifier]] = {}
        for classifier in solution.classifiers:
            for query in self.instance.queries_containing(classifier):
                per_shard.setdefault(
                    partition.query_to_shard[query], []
                ).append(classifier)
                break
        seeded = 0
        for index, classifiers in per_shard.items():
            fingerprint = workload_fingerprint(partition.shard_workload(index))
            self._adopted[fingerprint] = tuple(
                sorted(set(classifiers), key=sorted)
            )
            seeded += 1
        return seeded

    # ------------------------------------------------------------------
    # the re-plan pipeline
    # ------------------------------------------------------------------
    def _resolve(self, delta: Optional[WorkloadDelta]) -> Solution:
        started = time.perf_counter()
        config = self.config
        instance = self.instance
        budget = instance.budget
        partition, dirty_indexes = self._partition.materialize()
        # Every live shard's profile must survive the whole re-plan: the
        # LRU floor tracks the partition width (evicting a live profile
        # mid-resolve would fault when the allocation is assembled).
        self._max_profiles = max(MAX_STORED_PROFILES, 2 * partition.num_shards)

        # Fingerprints are computed in one pass over the parent workload;
        # shard instances are only materialized for shards that actually
        # need solving (a clean re-plan touches none of them).
        fingerprints = shard_fingerprints(instance, partition.shards)
        shard_cache: Dict[int, BCCInstance] = {}

        def shard_at(index: int) -> BCCInstance:
            if index not in shard_cache:
                shard_cache[index] = partition.shard_instance(index, 0.0)
            return shard_cache[index]

        reused = [fp in self._profiles for fp in fingerprints]
        totals = [
            self._profiles[fp].total if hit else _shard_finite_total(shard_at(index))
            for index, (fp, hit) in enumerate(zip(fingerprints, reused))
        ]

        non_binding = sum(totals) <= budget + _TOL
        if non_binding:
            # Solve saturated shards at the *global* budget (mirroring the
            # cold sharded solver): the surplus slack keeps the inner
            # solver on its cheap large-budget paths instead of the hard
            # mid-k HkS regime a budget pinned at the saturation total
            # forces.
            point = budget if math.isfinite(budget) else None
            grids: List[List[float]] = [
                [total if point is None else point] for total in totals
            ]
            adopted = self._adopt_missing(partition, fingerprints, totals, grids)
        else:
            # Grids are recomputed from shard content every time (cheap next
            # to a solve, and a profile stored on the non-binding path holds
            # only the saturation point) so warm grids always equal cold ones.
            grids = [
                budget_grid(
                    _finite_costs(shard_at(index)),
                    budget,
                    max_points=config.max_grid_points,
                )
                for index in range(partition.num_shards)
            ]
            adopted = 0

        solved = self._solve_missing(shard_at, fingerprints, grids, totals)

        profiles: List[List[ProfilePoint]] = []
        by_key: Dict[str, Solution] = {}
        for index, fp in enumerate(fingerprints):
            profile = self._profiles[fp]
            wanted = [f"b={point!r}" for point in grids[index]]
            # Points are re-keyed under the *current* shard index so
            # allocator keys stay batch-unique after re-partitioning.
            points = []
            for key in wanted:
                if key not in profile.solutions:
                    raise DecompositionError(
                        f"shard {index} missing solved point {key} "
                        f"(fingerprint {fp[:12]})"
                    )
                solution = profile.solutions[key]
                points.append(
                    ProfilePoint(
                        cost=solution.cost,
                        utility=solution.utility,
                        key=f"s{index}/{key}",
                    )
                )
                by_key[f"s{index}/{key}"] = solution
            profiles.append(points)

        if non_binding:
            # Trivial allocation: every shard takes its single saturation
            # point, so the grouped-knapsack DP is skipped entirely.
            chosen: List[Optional[ProfilePoint]] = [
                points[0] if points else None for points in profiles
            ]
            allocated_utility = sum(
                point.utility for point in chosen if point is not None
            )
            path = "non-binding"
        else:
            allocated_utility, chosen, path = allocate(profiles, budget)

        selection: Set[Classifier] = set()
        shard_spends: List[float] = []
        dirty_set = set(dirty_indexes)
        clean_selection: List[Classifier] = []
        dirty_selection: List[Classifier] = []
        for index, point in enumerate(chosen):
            if point is None:
                shard_spends.append(0.0)
                continue
            solution = by_key[point.key]
            selection.update(solution.classifiers)
            shard_spends.append(solution.cost)
            bucket = dirty_selection if index in dirty_set else clean_selection
            bucket.extend(sorted(solution.classifiers, key=sorted))

        self._patch_and_check(clean_selection, dirty_selection)

        result = evaluate(
            instance,
            selection,
            meta={
                "algorithm": "A^BCC[incremental]",
                "inner_solver": config.inner_solver,
                "incremental": {
                    "version": getattr(instance, "version", 0),
                    "deltas_applied": self.deltas_applied,
                    "delta_edits": 0 if delta is None else delta.num_edits,
                    "shards": partition.num_shards,
                    "dirty_shards": len(dirty_indexes),
                    "reused_profiles": sum(reused),
                    "solved_tasks": solved,
                    "adopted_shards": adopted,
                    "path": path,
                    "grid_sizes": [len(grid) for grid in grids],
                },
                "runtime_sec": time.perf_counter() - started,
            },
        )
        _check_composition(result, allocated_utility, shard_spends, list(chosen))
        if config.certify:
            from repro.verify.certificate import attach_certificate

            result = attach_certificate(instance, result, budget=budget)
        self._partition.mark_clean()
        self.last_solution = result
        return result

    # ------------------------------------------------------------------
    # shard-profile store
    # ------------------------------------------------------------------
    def _store(self, profile: ShardProfile) -> None:
        self._profiles[profile.fingerprint] = profile
        self._profiles.move_to_end(profile.fingerprint)
        while len(self._profiles) > self._max_profiles:
            self._profiles.popitem(last=False)

    def _adopt_missing(
        self,
        partition,
        fingerprints: Sequence[str],
        totals: Sequence[float],
        grids: Sequence[Sequence[float]],
    ) -> int:
        """Materialize adopted selections into saturation-point profiles."""
        adopted = 0
        for index, (fp, total) in enumerate(zip(fingerprints, totals)):
            if fp in self._profiles or fp not in self._adopted:
                continue
            selection = self._adopted.pop(fp)
            point = grids[index][0]
            shard_solution = evaluate(
                partition.shard_instance(index, point),
                selection,
                meta={"algorithm": f"{self.config.inner_solver}[adopted]"},
            )
            self._store(
                ShardProfile(
                    fingerprint=fp,
                    total=total,
                    grid=(point,),
                    points=(
                        ProfilePoint(
                            cost=shard_solution.cost,
                            utility=shard_solution.utility,
                            key=f"b={point!r}",
                        ),
                    ),
                    solutions={f"b={point!r}": shard_solution},
                )
            )
            adopted += 1
        return adopted

    def _solve_missing(
        self,
        shard_at,
        fingerprints: Sequence[str],
        grids: Sequence[Sequence[float]],
        totals: Sequence[float],
    ) -> int:
        """Run the inner solver for every (shard, point) not in the store.

        Tasks are keyed and seeded by the shard *fingerprint*, not its
        index, so a shard keeps its derived seeds (and its cache rows)
        across re-partitionings.
        """
        config = self.config
        tasks: List[SolveTask] = []
        owners: List[Tuple[str, float]] = []
        for index, (fp, grid) in enumerate(zip(fingerprints, grids)):
            profile = self._profiles.get(fp)
            for point in grid:
                key = f"b={point!r}"
                if profile is not None and key in profile.solutions:
                    continue
                tasks.append(
                    SolveTask(
                        key=f"{fp[:16]}/{key}",
                        solver=config.inner_solver,
                        instance=shard_at(index).with_budget(point),
                        seed=seed_for(
                            "incremental", config.inner_solver, self.seed, fp, float(point)
                        ),
                        certify=False,
                    )
                )
                owners.append((fp, point))
        if tasks:
            jobs = effective_jobs(config.jobs, tasks)
            results = run_tasks(
                tasks,
                ParallelConfig(jobs=jobs, cache=config.cache, clock=config.clock),
            )
            for (fp, point), result in zip(owners, results):
                profile = self._profiles.get(fp)
                if profile is None:
                    index = fingerprints.index(fp)
                    profile = ShardProfile(
                        fingerprint=fp,
                        total=totals[index],
                        grid=tuple(grids[index]),
                        points=(),
                        solutions={},
                    )
                profile.solutions[f"b={point!r}"] = result.solution
                profile.grid = tuple(
                    sorted(set(profile.grid) | {point})
                )
                self._store(profile)
        return len(tasks)

    # ------------------------------------------------------------------
    # tracker patching: checkpoint / rollback integrity on every re-plan
    # ------------------------------------------------------------------
    def _patch_and_check(
        self,
        clean_selection: Sequence[Classifier],
        dirty_selection: Sequence[Classifier],
    ) -> None:
        """Patch coverage in place and prove the undo log drift-free.

        Replays the union selection on a fresh tracker as clean-shard
        classifiers + checkpoint + dirty-shard classifiers, rolls the
        dirty patch back, re-applies it, and requires the totals after
        the rollback round-trip to equal the straight-through totals
        bit-for-bit.  A tracker whose rollback leaks utility, cost or
        coverage state fails every re-plan immediately.
        """
        tracker = CoverageTracker(self.instance)
        tracker.add_all(clean_selection)
        tracker.checkpoint()
        tracker.add_all(dirty_selection)
        utility, spent = tracker.utility, tracker.spent
        covered = tracker.covered
        tracker.rollback()
        tracker.checkpoint()
        tracker.add_all(dirty_selection)
        if (
            tracker.utility != utility
            or tracker.spent != spent
            or tracker.covered != covered
        ):
            raise DecompositionError(
                "coverage patch is not idempotent: rollback + re-apply gave "
                f"(utility={tracker.utility}, spent={tracker.spent}) vs "
                f"(utility={utility}, spent={spent})"
            )


def resolve_delta(
    instance: BCCInstance,
    prev_solution: Optional[Solution],
    delta: WorkloadDelta,
    config: Optional[IncrementalConfig] = None,
    seed: Optional[int] = None,
) -> Solution:
    """One-shot warm re-plan: apply ``delta`` to ``instance`` and re-solve.

    Functional wrapper over :class:`IncrementalSolver` for callers that
    do not keep a solver alive: ``prev_solution`` (when given) seeds the
    per-shard profile store via :meth:`IncrementalSolver.adopt`, so under
    a non-binding budget only the shards the delta touches run the inner
    solver.  ``instance`` is mutated in place; the returned solution is
    identical to a cold solve of the mutated instance.
    """
    solver = IncrementalSolver(instance, config=config, seed=seed)
    if prev_solution is not None:
        solver.adopt(prev_solution)
    return solver.resolve_delta(delta)
