"""Dynamic BCC: workload deltas and warm-started re-solving.

Workloads evolve — queries arrive and retire, utilities drift,
classifier prices change — and re-planning from scratch after every edit
throws away almost everything the previous solve computed.  This package
makes BCC planning *incremental*:

- :class:`~repro.incremental.delta.WorkloadDelta` describes one atomic
  batch of edits, validated up front and invertible
  (:meth:`~repro.incremental.delta.WorkloadDelta.inverse`);
- :class:`~repro.incremental.partition.DynamicPartition` maintains the
  shard decomposition across edits (incremental union for adds, local
  rebuilds for deletes and usability flips);
- :class:`~repro.incremental.engine.IncrementalSolver` /
  :func:`~repro.incremental.engine.resolve_delta` re-solve only the
  shards a delta touches, reusing solved pareto profiles through a
  content-addressed store, and return a solution identical to — and
  certified like — a cold solve of the mutated instance.

See the "Incremental re-solve" section of ``docs/ALGORITHMS.md``.
"""

from repro.incremental.delta import WorkloadDelta, random_delta
from repro.incremental.engine import (
    IncrementalConfig,
    IncrementalSolver,
    ShardProfile,
    resolve_delta,
)
from repro.incremental.partition import DynamicPartition

__all__ = [
    "WorkloadDelta",
    "random_delta",
    "DynamicPartition",
    "IncrementalConfig",
    "IncrementalSolver",
    "ShardProfile",
    "resolve_delta",
]
