"""``WorkloadDelta`` — a validated batch of workload mutations.

A delta is the unit of change of the dynamic-BCC layer: a frozen record
of query additions and removals, utility reprices and classifier cost
reprices, applied atomically by
:meth:`repro.core.model.ClassifierWorkload.apply_delta` in the fixed
order *removals → additions → utilities → costs*.  Everything the
incremental engine does — partition maintenance, shard invalidation,
profile reuse — is driven by the delta's content, so the class carries
its own validation (:meth:`WorkloadDelta.validate` simulates the full
application before the first mutation happens) and its own inverse
(:meth:`WorkloadDelta.inverse`, computed against the pre-application
workload so a delta followed by its inverse restores the exact original
instance, explicit/default splits included).

``None`` values mean "revert to the workload default": an added query
with utility ``None`` uses ``default_utility``, a cost entry ``(c,
None)`` deletes the explicit price of ``c``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from random import Random
from typing import Iterable, Mapping, Optional, Set, Tuple, Union

from repro.core.errors import InvalidDeltaError
from repro.core.model import Classifier, ClassifierWorkload, Query

_QueryEntry = Tuple[Query, Optional[float]]
_CostEntry = Tuple[Classifier, Optional[float]]


def _as_query(value: Iterable[str]) -> Query:
    query = frozenset(value)
    if not query or not all(isinstance(p, str) for p in query):
        raise InvalidDeltaError(f"queries must be non-empty property sets, got {value!r}")
    return query


def _entries(
    source: Union[None, Mapping, Iterable], kind: str
) -> Tuple[Tuple[frozenset, Optional[float]], ...]:
    """Normalize a mapping / pair-iterable / bare-key-iterable to entry tuples."""
    if source is None:
        return ()
    if isinstance(source, Mapping):
        pairs = source.items()
    else:
        pairs = []
        for item in source:
            if isinstance(item, tuple) and len(item) == 2 and not isinstance(item[0], str):
                pairs.append(item)
            else:
                pairs.append((item, None))
    out = []
    for key, value in pairs:
        out.append((_as_query(key), None if value is None else float(value)))
    seen: Set[frozenset] = set()
    for key, _ in out:
        if key in seen:
            raise InvalidDeltaError(f"duplicate {kind} entry {sorted(key)}")
        seen.add(key)
    return tuple(out)


@dataclass(frozen=True)
class WorkloadDelta:
    """One atomic batch of workload mutations (all fields normalized tuples).

    Attributes:
        add: ``(query, explicit utility or None)`` pairs to append.
        remove: queries to drop.
        utilities: ``(query, utility or None)`` reprices; ``None`` reverts
            to the default utility.
        costs: ``(classifier, cost or None)`` reprices; ``None`` reverts
            to the default cost.
    """

    add: Tuple[_QueryEntry, ...] = field(default=())
    remove: Tuple[Query, ...] = field(default=())
    utilities: Tuple[_QueryEntry, ...] = field(default=())
    costs: Tuple[_CostEntry, ...] = field(default=())

    @classmethod
    def of(
        cls,
        add: Union[None, Mapping, Iterable] = None,
        remove: Optional[Iterable[Iterable[str]]] = None,
        utilities: Union[None, Mapping, Iterable] = None,
        costs: Union[None, Mapping, Iterable] = None,
    ) -> "WorkloadDelta":
        """Build a delta from loose inputs (mappings, pair lists, bare sets)."""
        removed = tuple(_as_query(q) for q in (remove or ()))
        seen: Set[Query] = set()
        for query in removed:
            if query in seen:
                raise InvalidDeltaError(f"duplicate removal of {sorted(query)}")
            seen.add(query)
        return cls(
            add=_entries(add, "add"),
            remove=removed,
            utilities=_entries(utilities, "utility"),
            costs=_entries(costs, "cost"),
        )

    @property
    def is_empty(self) -> bool:
        return not (self.add or self.remove or self.utilities or self.costs)

    @property
    def num_edits(self) -> int:
        """Individual mutations this delta performs when applied."""
        return len(self.add) + len(self.remove) + len(self.utilities) + len(self.costs)

    def validate(self, workload: ClassifierWorkload) -> None:
        """Simulate the full application; raise before any real mutation.

        Checks exactly what :meth:`ClassifierWorkload.apply_delta` would
        hit mid-flight — unknown removals, duplicate additions, reprices
        of absent queries, invalid values, an emptied query set — so a
        delta either applies completely or not at all.
        """
        present = set(workload.queries)
        for query in self.remove:
            if query not in present:
                raise InvalidDeltaError(f"remove of unknown query {sorted(query)}")
            present.discard(query)
        if not present and not self.add:
            raise InvalidDeltaError("delta would leave an empty query set")
        for query, utility in self.add:
            if query in present:
                raise InvalidDeltaError(f"add of duplicate query {sorted(query)}")
            present.add(query)
            _check_utility(query, utility)
        for query, utility in self.utilities:
            if query not in present:
                raise InvalidDeltaError(
                    f"utility reprice of absent query {sorted(query)}"
                )
            _check_utility(query, utility)
        for classifier, cost in self.costs:
            if not classifier:
                raise InvalidDeltaError("cost reprice of the empty classifier")
            if cost is not None and (math.isnan(cost) or cost < 0):
                raise InvalidDeltaError(
                    f"costs must be >= 0 (math.inf allowed), got {cost}"
                )

    def inverse(self, workload: ClassifierWorkload) -> "WorkloadDelta":
        """The delta undoing this one, captured *before* application.

        Removed queries come back with their prior explicit utility (or
        none), added queries are removed, reprices revert to the prior
        explicit value or to the default — so ``w.apply_delta(d)`` then
        ``w.apply_delta(inv)`` restores the original instance exactly,
        fingerprint token stream included.  Queries this delta adds or
        removes need no utility reverts (the add/remove pair carries the
        explicit split), so those entries are dropped.
        """
        self.validate(workload)
        moved = {query for query, _ in self.add} | set(self.remove)
        return WorkloadDelta(
            add=tuple(
                (query, workload._utilities.get(query)) for query in self.remove
            ),
            remove=tuple(query for query, _ in self.add),
            utilities=tuple(
                (query, workload._utilities.get(query))
                for query, _ in self.utilities
                if query not in moved
            ),
            costs=tuple(
                (classifier, workload._costs.get(classifier))
                for classifier, _ in self.costs
            ),
        )

    def to_json(self) -> dict:
        """A JSON-compatible dict round-tripping through :meth:`from_json`.

        Property sets become sorted lists and infinite costs the string
        ``"inf"`` (mirroring :mod:`repro.datasets.schema`), so serialized
        traffic traces stay human-readable and diff-stable.
        """

        def encode(entries):
            return [
                {
                    "props": sorted(key),
                    "value": "inf"
                    if value is not None and math.isinf(value)
                    else value,
                }
                for key, value in entries
            ]

        return {
            "add": encode(self.add),
            "remove": [sorted(query) for query in self.remove],
            "utilities": encode(self.utilities),
            "costs": encode(self.costs),
        }

    @classmethod
    def from_json(cls, payload: Mapping) -> "WorkloadDelta":
        """Rebuild the delta stored by :meth:`to_json`."""

        def decode(entries):
            return [
                (
                    frozenset(entry["props"]),
                    math.inf
                    if entry["value"] == "inf"
                    else entry["value"],
                )
                for entry in entries
            ]

        return cls.of(
            add=decode(payload.get("add", ())),
            remove=[frozenset(props) for props in payload.get("remove", ())],
            utilities=decode(payload.get("utilities", ())),
            costs=decode(payload.get("costs", ())),
        )

    def touched_queries(self, workload: ClassifierWorkload) -> Set[Query]:
        """Queries whose shard must be re-solved, against the *post*-delta
        workload (cost entries touch every query containing the classifier)."""
        touched: Set[Query] = {query for query, _ in self.add}
        touched.update(self.remove)
        touched.update(query for query, _ in self.utilities)
        for classifier, _ in self.costs:
            touched.update(workload.queries_containing(classifier))
        return touched


def _check_utility(query: Query, utility: Optional[float]) -> None:
    if utility is not None and not (utility > 0 and not math.isinf(utility)):
        raise InvalidDeltaError(
            f"utilities must be finite and positive, got {utility} for {sorted(query)}"
        )


def random_delta(
    workload: ClassifierWorkload,
    rng: Random,
    fraction: float = 0.01,
    reprice: bool = True,
) -> WorkloadDelta:
    """A valid random delta touching about ``fraction`` of the queries.

    The bench / fuzz workhorse: picks ``max(1, round(fraction · m))``
    distinct existing queries and for each (deterministically from
    ``rng``) removes it, reprices its utility, or replaces it with a
    fresh query over the same property vocabulary; with ``reprice`` one
    singleton classifier cost reprice rides along.  The result always
    passes :meth:`WorkloadDelta.validate` on ``workload``.
    """
    queries = list(workload.queries)
    k = max(1, round(fraction * len(queries)))
    k = min(k, len(queries) - 1)  # never empty the workload
    picked = rng.sample(queries, k) if k else []
    properties = sorted({prop for query in queries for prop in query})
    existing = set(queries)

    add = []
    remove = []
    utilities = []
    for query in picked:
        roll = rng.random()
        if roll < 0.4:
            remove.append(query)
        elif roll < 0.7 and reprice:
            utilities.append((query, round(workload.utility(query) * (1 + rng.random()), 6)))
        else:
            remove.append(query)
            for _ in range(8):
                size = rng.randint(1, min(4, len(properties)))
                fresh = frozenset(rng.sample(properties, size))
                if fresh not in existing and fresh not in {q for q, _ in add}:
                    add.append((fresh, round(1.0 + rng.random(), 6)))
                    break
    costs = []
    if reprice and properties:
        prop = rng.choice(properties)
        singleton = frozenset({prop})
        costs.append((singleton, round(workload.cost(singleton) * (1 + rng.random()), 6)))
    return WorkloadDelta.of(add=add, remove=remove, utilities=utilities, costs=costs)
