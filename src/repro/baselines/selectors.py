"""Step selectors for the RAND / IG1 / IG2 baselines.

A selector owns a :class:`~repro.core.coverage.CoverageTracker` and exposes
``step(remaining)``: the next classifier set to add given the remaining
budget (``None`` = unconstrained), or ``None`` when no affordable move is
left.  The three stopping-mode drivers in :mod:`repro.baselines.runners`
share these selectors.
"""

from __future__ import annotations

import math
import random
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.core.bitset import MASK_ENGINES, active_engine
from repro.core.coverage import CoverageTracker
from repro.core.model import Classifier, ClassifierWorkload, Query
from repro.mc3.greedy import cheapest_residual_cover, cover_from_masked_usable


class BaseSelector:
    """Shared state: tracker, feasible classifier pool, cost lookup."""

    def __init__(self, workload: ClassifierWorkload) -> None:
        self.workload = workload
        self.tracker = CoverageTracker(workload)
        # Canonically ordered: selectors break score ties by pool position,
        # and set iteration order is not stable across a pickle round-trip
        # (process fan-out ships workloads to workers by pickling), so the
        # pool must not inherit frozenset layout.
        self.pool: List[Classifier] = sorted(
            (
                c
                for c in workload.relevant_classifiers()
                if not math.isinf(workload.cost(c))
            ),
            key=sorted,
        )

    @property
    def selected(self) -> FrozenSet[Classifier]:
        """The classifiers selected so far."""
        return self.tracker.selected

    @property
    def utility(self) -> float:
        """Total utility of the covered queries."""
        return self.tracker.utility

    def cost_of(self, classifier: Classifier) -> float:
        """Incremental cost of ``classifier`` (0 once selected)."""
        if self.tracker.is_selected(classifier):
            return 0.0
        return self.workload.cost(classifier)

    @property
    def spent(self) -> float:
        """Total cost paid so far (maintained incrementally by the tracker)."""
        return self.tracker.spent

    def add(self, classifiers: FrozenSet[Classifier]) -> float:
        """Select ``classifiers``; returns the incremental cost paid."""
        spent = 0.0
        for classifier in classifiers:
            spent += self.cost_of(classifier)
            self.tracker.add(classifier)
        return spent

    def all_covered(self) -> bool:
        """Whether every workload query is covered."""
        return len(self.tracker.covered) == self.workload.num_queries

    def step(self, remaining: Optional[float]) -> Optional[FrozenSet[Classifier]]:
        raise NotImplementedError


class RandomSelector(BaseSelector):
    """RAND: a uniformly random affordable unselected classifier."""

    def __init__(self, workload: ClassifierWorkload, seed: int = 0) -> None:
        super().__init__(workload)
        self._rng = random.Random(seed)
        self._order = sorted(self.pool, key=sorted)
        self._rng.shuffle(self._order)
        self._cursor = 0

    def step(self, remaining: Optional[float]) -> Optional[FrozenSet[Classifier]]:
        # A pre-shuffled order is a uniform random permutation; skipping
        # unaffordable entries preserves uniformity among affordable ones
        # closely enough for a baseline while staying O(1) amortized.
        skipped: List[Classifier] = []
        chosen: Optional[Classifier] = None
        while self._cursor < len(self._order):
            candidate = self._order[self._cursor]
            self._cursor += 1
            if self.tracker.is_selected(candidate):
                continue
            if remaining is not None and self.workload.cost(candidate) > remaining + 1e-9:
                skipped.append(candidate)
                continue
            chosen = candidate
            break
        # Unaffordable-now items go back behind the cursor: the remaining
        # budget only shrinks, but other stopping modes may still use them.
        self._order.extend(skipped)
        return frozenset({chosen}) if chosen is not None else None


class IG1Selector(BaseSelector):
    """IG1: per-query greedy by utility / cheapest-residual-cover cost."""

    def __init__(self, workload: ClassifierWorkload) -> None:
        super().__init__(workload)
        self._cover_cache: Dict[Query, Optional[Tuple[float, FrozenSet[Classifier]]]] = {}
        self._compiled = workload.compiled() if active_engine() in MASK_ENGINES else None
        # Per-query powerset with base costs; only the selected→0 cost
        # override changes between steps, so the enumeration is hoisted.
        self._static_candidates: Dict[Query, List[Tuple[Classifier, float]]] = {}
        # Bits engine: the same candidates as (classifier, mask, cost)
        # triples, both in powerset order and pre-sorted by (cost, powerset
        # position) — the per-step cover search then partitions instead of
        # translating and sorting.
        self._masked_candidates: Dict[
            Query,
            Tuple[
                List[Tuple[Classifier, int, float]],
                List[Tuple[Classifier, int, float]],
            ],
        ] = {}

    def _candidates(self, query: Query) -> List[Tuple[Classifier, float]]:
        from repro.core.model import powerset_classifiers

        static = self._static_candidates.get(query)
        if static is None:
            static = [
                (c, self.workload.cost(c)) for c in powerset_classifiers(query)
            ]
            self._static_candidates[query] = static
        is_selected = self.tracker.is_selected
        result = []
        for classifier, cost in static:
            if is_selected(classifier):
                result.append((classifier, 0.0))
            elif not math.isinf(cost):
                result.append((classifier, cost))
        return result

    def _masked(
        self, query: Query
    ) -> Tuple[
        List[Tuple[Classifier, int, float]], List[Tuple[Classifier, int, float]]
    ]:
        got = self._masked_candidates.get(query)
        if got is None:
            from repro.core.model import powerset_classifiers

            compiled = self._compiled
            clip = compiled.space.clip_mask
            by_pos: List[Tuple[Classifier, int, float]] = []
            for classifier in powerset_classifiers(query):
                cost = self.workload.cost(classifier)
                if math.isinf(cost):
                    continue
                mask = compiled.mask_of(classifier)
                if mask is None:
                    mask = clip(classifier)
                by_pos.append((classifier, mask, cost))
            # Stable, so ties keep powerset position — the same order the
            # reference path's per-call sort produces.
            by_cost = sorted(by_pos, key=lambda item: item[2])
            got = self._masked_candidates[query] = (by_pos, by_cost)
        return got

    def _cover(self, query: Query) -> Optional[Tuple[float, FrozenSet[Classifier]]]:
        if query not in self._cover_cache:
            if self._compiled is not None:
                # Bits: the tracker's residual mask feeds the kernel
                # directly — no property-set round trip, no per-call mask
                # translation or sort.  Selected classifiers cost 0, so
                # they join the zero-cost block (in powerset order) ahead
                # of the pre-sorted positive-cost remainder; the
                # concatenation is exactly the stable (cost, position)
                # sort of the reference candidate list.
                missing = self.tracker.missing_mask(query)
                by_pos, by_cost = self._masked(query)
                is_selected = self.tracker.is_selected
                zero = [
                    (classifier, mask, 0.0)
                    for classifier, mask, cost in by_pos
                    if (cost == 0.0 or is_selected(classifier)) and mask & missing
                ]
                rest = [
                    entry
                    for entry in by_cost
                    if entry[2] != 0.0
                    and entry[1] & missing
                    and not is_selected(entry[0])
                ]
                found = cover_from_masked_usable(missing, zero + rest)
            else:
                covered = set(query) - set(self.tracker.missing_properties(query))
                found = cheapest_residual_cover(
                    query, self._candidates(query), covered, self._compiled
                )
            self._cover_cache[query] = found
        return self._cover_cache[query]

    def _invalidate(self, classifiers: FrozenSet[Classifier]) -> None:
        touched = set()
        for classifier in classifiers:
            touched |= classifier
        stale = [
            q for q in self._cover_cache if touched & q
        ]
        for query in stale:
            del self._cover_cache[query]

    def step(self, remaining: Optional[float]) -> Optional[FrozenSet[Classifier]]:
        best_ratio = -1.0
        best_cover: Optional[FrozenSet[Classifier]] = None
        for query in self.workload.queries:
            if self.tracker.is_query_covered(query):
                continue
            found = self._cover(query)
            if found is None:
                continue
            cost, cover = found
            if remaining is not None and cost > remaining + 1e-9:
                continue
            utility = self.workload.utility(query)
            ratio = math.inf if cost == 0 else utility / cost
            if ratio > best_ratio:
                best_ratio = ratio
                best_cover = cover
        if best_cover is None:
            return None
        self._invalidate(best_cover)
        return best_cover


class IG2Selector(BaseSelector):
    """IG2: per-classifier greedy by contained-uncovered-utility / cost."""

    def __init__(self, workload: ClassifierWorkload) -> None:
        super().__init__(workload)
        # Bits engine: the compiled inverted index flattens into a CSR-style
        # (row starts, query-index columns) pair, so the whole pool scores
        # in one ``np.add.reduceat`` sweep per step.  Each row is in
        # ascending query-index (= workload) order and covered queries
        # contribute an exact 0.0, so every per-classifier sum accumulates
        # the same doubles in the same order as the reference loop.
        self._csr = None
        if active_engine() in MASK_ENGINES and self.pool:
            import numpy as np

            compiled = workload.compiled()
            rows = [
                compiled.containing(compiled.mask_of(classifier))
                for classifier in self.pool
            ]
            starts = np.cumsum([0] + [len(row) for row in rows[:-1]])
            cols = np.fromiter(
                (qidx for row in rows for qidx in row), dtype=np.intp
            )
            utilities = np.asarray(compiled.utilities, dtype=np.float64)
            costs = np.asarray(
                [workload.cost(c) for c in self.pool], dtype=np.float64
            )
            pos_of = {c: i for i, c in enumerate(self.pool)}
            self._csr = (np, compiled.query_pos, starts, cols, utilities, costs, pos_of)

    def _score(self, classifier: Classifier) -> float:
        # Delegated to the coverage engine: the bits backend sums straight
        # off the compiled inverted index and per-query missing masks.
        return self.tracker.uncovered_contained_utility(classifier)

    def _vector_step(self, remaining: Optional[float]) -> Optional[Classifier]:
        np, query_pos, starts, cols, utilities, costs, pos_of = self._csr
        uncovered = utilities.copy()
        covered = [query_pos[q] for q in self.tracker.covered]
        if covered:
            uncovered[covered] = 0.0
        scores = np.add.reduceat(uncovered[cols], starts)
        valid = scores > 0.0
        selected = [pos_of[c] for c in self.tracker.selected if c in pos_of]
        if selected:
            valid[selected] = False
        if remaining is not None:
            valid &= costs <= remaining + 1e-9
        if not valid.any():
            return None
        # invalid: 0/0 for zero-cost zero-score entries, masked below.
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.divide(scores, costs)
        ratio[costs == 0.0] = np.inf
        ratio = np.where(valid, ratio, -np.inf)
        # Lexicographic (ratio, utility) argmax; np.argmax takes the first
        # index of the max, matching the reference loop's strict-``>`` ties.
        best_ratio = ratio.max()
        return self.pool[
            int(np.argmax(np.where(ratio == best_ratio, scores, -np.inf)))
        ]

    def step(self, remaining: Optional[float]) -> Optional[FrozenSet[Classifier]]:
        if self._csr is not None:
            best = self._vector_step(remaining)
            return frozenset({best}) if best is not None else None
        best: Optional[Classifier] = None
        best_key: Tuple[float, float] = (-1.0, -1.0)
        for classifier in self.pool:
            if self.tracker.is_selected(classifier):
                continue
            cost = self.workload.cost(classifier)
            if remaining is not None and cost > remaining + 1e-9:
                continue
            utility_sum = self._score(classifier)
            if utility_sum <= 0:
                continue
            ratio = math.inf if cost == 0 else utility_sum / cost
            key = (ratio, utility_sum)
            if key > best_key:
                best_key = key
                best = classifier
        if best is None:
            return None
        return frozenset({best})
