"""Step selectors for the RAND / IG1 / IG2 baselines.

A selector owns a :class:`~repro.core.coverage.CoverageTracker` and exposes
``step(remaining)``: the next classifier set to add given the remaining
budget (``None`` = unconstrained), or ``None`` when no affordable move is
left.  The three stopping-mode drivers in :mod:`repro.baselines.runners`
share these selectors.
"""

from __future__ import annotations

import math
import random
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.core.coverage import CoverageTracker
from repro.core.model import Classifier, ClassifierWorkload, Query
from repro.mc3.greedy import cheapest_residual_cover


class BaseSelector:
    """Shared state: tracker, feasible classifier pool, cost lookup."""

    def __init__(self, workload: ClassifierWorkload) -> None:
        self.workload = workload
        self.tracker = CoverageTracker(workload)
        # Canonically ordered: selectors break score ties by pool position,
        # and set iteration order is not stable across a pickle round-trip
        # (process fan-out ships workloads to workers by pickling), so the
        # pool must not inherit frozenset layout.
        self.pool: List[Classifier] = sorted(
            (
                c
                for c in workload.relevant_classifiers()
                if not math.isinf(workload.cost(c))
            ),
            key=sorted,
        )

    @property
    def selected(self) -> FrozenSet[Classifier]:
        """The classifiers selected so far."""
        return self.tracker.selected

    @property
    def utility(self) -> float:
        """Total utility of the covered queries."""
        return self.tracker.utility

    def cost_of(self, classifier: Classifier) -> float:
        """Incremental cost of ``classifier`` (0 once selected)."""
        if self.tracker.is_selected(classifier):
            return 0.0
        return self.workload.cost(classifier)

    @property
    def spent(self) -> float:
        """Total cost paid so far (maintained incrementally by the tracker)."""
        return self.tracker.spent

    def add(self, classifiers: FrozenSet[Classifier]) -> float:
        """Select ``classifiers``; returns the incremental cost paid."""
        spent = 0.0
        for classifier in classifiers:
            spent += self.cost_of(classifier)
            self.tracker.add(classifier)
        return spent

    def all_covered(self) -> bool:
        """Whether every workload query is covered."""
        return len(self.tracker.covered) == self.workload.num_queries

    def step(self, remaining: Optional[float]) -> Optional[FrozenSet[Classifier]]:
        raise NotImplementedError


class RandomSelector(BaseSelector):
    """RAND: a uniformly random affordable unselected classifier."""

    def __init__(self, workload: ClassifierWorkload, seed: int = 0) -> None:
        super().__init__(workload)
        self._rng = random.Random(seed)
        self._order = sorted(self.pool, key=sorted)
        self._rng.shuffle(self._order)
        self._cursor = 0

    def step(self, remaining: Optional[float]) -> Optional[FrozenSet[Classifier]]:
        # A pre-shuffled order is a uniform random permutation; skipping
        # unaffordable entries preserves uniformity among affordable ones
        # closely enough for a baseline while staying O(1) amortized.
        skipped: List[Classifier] = []
        chosen: Optional[Classifier] = None
        while self._cursor < len(self._order):
            candidate = self._order[self._cursor]
            self._cursor += 1
            if self.tracker.is_selected(candidate):
                continue
            if remaining is not None and self.workload.cost(candidate) > remaining + 1e-9:
                skipped.append(candidate)
                continue
            chosen = candidate
            break
        # Unaffordable-now items go back behind the cursor: the remaining
        # budget only shrinks, but other stopping modes may still use them.
        self._order.extend(skipped)
        return frozenset({chosen}) if chosen is not None else None


class IG1Selector(BaseSelector):
    """IG1: per-query greedy by utility / cheapest-residual-cover cost."""

    def __init__(self, workload: ClassifierWorkload) -> None:
        super().__init__(workload)
        self._cover_cache: Dict[Query, Optional[Tuple[float, FrozenSet[Classifier]]]] = {}

    def _candidates(self, query: Query) -> List[Tuple[Classifier, float]]:
        from repro.core.model import powerset_classifiers

        result = []
        for classifier in powerset_classifiers(query):
            cost = self.cost_of(classifier)
            if not math.isinf(cost):
                result.append((classifier, cost))
        return result

    def _cover(self, query: Query) -> Optional[Tuple[float, FrozenSet[Classifier]]]:
        if query not in self._cover_cache:
            covered = set(query) - set(self.tracker.missing_properties(query))
            self._cover_cache[query] = cheapest_residual_cover(
                query, self._candidates(query), covered
            )
        return self._cover_cache[query]

    def _invalidate(self, classifiers: FrozenSet[Classifier]) -> None:
        touched = set()
        for classifier in classifiers:
            touched |= classifier
        stale = [
            q for q in self._cover_cache if touched & q
        ]
        for query in stale:
            del self._cover_cache[query]

    def step(self, remaining: Optional[float]) -> Optional[FrozenSet[Classifier]]:
        best_ratio = -1.0
        best_cover: Optional[FrozenSet[Classifier]] = None
        for query in self.workload.queries:
            if self.tracker.is_query_covered(query):
                continue
            found = self._cover(query)
            if found is None:
                continue
            cost, cover = found
            if remaining is not None and cost > remaining + 1e-9:
                continue
            utility = self.workload.utility(query)
            ratio = math.inf if cost == 0 else utility / cost
            if ratio > best_ratio:
                best_ratio = ratio
                best_cover = cover
        if best_cover is None:
            return None
        self._invalidate(best_cover)
        return best_cover


class IG2Selector(BaseSelector):
    """IG2: per-classifier greedy by contained-uncovered-utility / cost."""

    def _score(self, classifier: Classifier) -> float:
        total = 0.0
        for query in self.workload.queries_containing(classifier):
            if not self.tracker.is_query_covered(query):
                total += self.workload.utility(query)
        return total

    def step(self, remaining: Optional[float]) -> Optional[FrozenSet[Classifier]]:
        best: Optional[Classifier] = None
        best_key: Tuple[float, float] = (-1.0, -1.0)
        for classifier in self.pool:
            if self.tracker.is_selected(classifier):
                continue
            cost = self.workload.cost(classifier)
            if remaining is not None and cost > remaining + 1e-9:
                continue
            utility_sum = self._score(classifier)
            if utility_sum <= 0:
                continue
            ratio = math.inf if cost == 0 else utility_sum / cost
            key = (ratio, utility_sum)
            if key > best_key:
                best_key = key
                best = classifier
        if best is None:
            return None
        return frozenset({best})
