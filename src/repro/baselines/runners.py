"""Stopping-mode drivers wiring the selectors to BCC / GMC3 / ECC.

- *budget* mode (BCC): keep stepping while an affordable move exists.
- *target* mode (GMC3): unconstrained budget, stop at utility >= target.
- *cover* mode (ECC): unconstrained budget, run until everything coverable
  is covered, return the best utility/cost snapshot along the way.

Every entry point takes ``certify=``: when set, the returned solution is
independently verified (``repro.verify``) — budget feasibility in budget
mode, target attainment in target mode — and the witness certificate is
recorded in ``solution.meta["certificate"]``.
"""

from __future__ import annotations

import math

from repro.baselines.selectors import (
    BaseSelector,
    IG1Selector,
    IG2Selector,
    RandomSelector,
)
from repro.core.model import BCCInstance, ECCInstance, GMC3Instance
from repro.core.solution import Solution, evaluate


def _run_budget(
    selector: BaseSelector, instance: BCCInstance, name: str, certify: bool
) -> Solution:
    remaining = instance.budget
    steps = 0
    while True:
        move = selector.step(remaining)
        if move is None:
            break
        remaining -= selector.add(move)
        steps += 1
    solution = evaluate(
        instance, selector.selected, meta={"algorithm": name, "steps": steps}
    )
    if certify:
        from repro.verify.certificate import attach_certificate

        attach_certificate(instance, solution, budget=instance.budget)
    return solution


def _run_target(
    selector: BaseSelector, instance: GMC3Instance, name: str, certify: bool
) -> Solution:
    steps = 0
    while selector.utility < instance.target:
        move = selector.step(None)
        if move is None:
            break
        selector.add(move)
        steps += 1
    solution = evaluate(
        instance,
        selector.selected,
        meta={
            "algorithm": name,
            "steps": steps,
            "reached_target": selector.utility >= instance.target,
        },
    )
    if certify:
        from repro.verify.certificate import attach_certificate

        attach_certificate(instance, solution, target=instance.target)
    return solution


def _run_cover(
    selector: BaseSelector, instance: ECCInstance, name: str, certify: bool
) -> Solution:
    best_ratio = -math.inf
    best_selection = frozenset()
    spent = 0.0
    steps = 0
    while not selector.all_covered():
        move = selector.step(None)
        if move is None:
            break
        spent += selector.add(move)
        steps += 1
        utility = selector.utility
        ratio = math.inf if spent == 0 else utility / spent
        if utility > 0 and ratio > best_ratio:
            best_ratio = ratio
            best_selection = selector.selected
    solution = evaluate(
        instance, best_selection, meta={"algorithm": name, "steps": steps}
    )
    if certify:
        from repro.verify.certificate import attach_certificate

        attach_certificate(instance, solution)
    return solution


# ----------------------------------------------------------------------
# public entry points
# ----------------------------------------------------------------------
def rand_bcc(instance: BCCInstance, seed: int = 0, certify: bool = False) -> Solution:
    """RAND baseline under a budget (Section 6.1)."""
    return _run_budget(RandomSelector(instance, seed=seed), instance, "RAND", certify)


def ig1_bcc(instance: BCCInstance, certify: bool = False) -> Solution:
    """IG1 baseline under a budget (Section 6.1)."""
    return _run_budget(IG1Selector(instance), instance, "IG1", certify)


def ig2_bcc(instance: BCCInstance, certify: bool = False) -> Solution:
    """IG2 baseline under a budget (Section 6.1)."""
    return _run_budget(IG2Selector(instance), instance, "IG2", certify)


def rand_gmc3(instance: GMC3Instance, seed: int = 0, certify: bool = False) -> Solution:
    """RAND(G) baseline: random until the utility target is reached."""
    return _run_target(RandomSelector(instance, seed=seed), instance, "RAND(G)", certify)


def ig1_gmc3(instance: GMC3Instance, certify: bool = False) -> Solution:
    """IG1(G) baseline: per-query greedy until the target is reached."""
    return _run_target(IG1Selector(instance), instance, "IG1(G)", certify)


def ig2_gmc3(instance: GMC3Instance, certify: bool = False) -> Solution:
    """IG2(G) baseline: per-classifier greedy until the target is reached."""
    return _run_target(IG2Selector(instance), instance, "IG2(G)", certify)


def rand_ecc(instance: ECCInstance, seed: int = 0, certify: bool = False) -> Solution:
    """RAND(E) baseline: random until all covered; best-ratio snapshot."""
    return _run_cover(RandomSelector(instance, seed=seed), instance, "RAND(E)", certify)


def ig1_ecc(instance: ECCInstance, certify: bool = False) -> Solution:
    """IG1(E) baseline: per-query greedy; best-ratio snapshot."""
    return _run_cover(IG1Selector(instance), instance, "IG1(E)", certify)


def ig2_ecc(instance: ECCInstance, certify: bool = False) -> Solution:
    """IG2(E) baseline: per-classifier greedy; best-ratio snapshot."""
    return _run_cover(IG2Selector(instance), instance, "IG2(E)", certify)
