"""Evaluation baselines (Section 6.1 / 6.3 of the paper).

Since no prior algorithm exists for BCC, the paper compares against natural
baselines, each reproduced here in all three stopping modes:

- **RAND** — uniformly random affordable classifier per iteration.
- **IG1** — per-query greedy: each iteration selects the uncovered query
  whose cheapest residual cover maximizes utility / incremental cost.
- **IG2** — per-classifier greedy (the MC3-style Set Cover adaptation):
  each iteration selects the classifier maximizing the sum of utilities of
  the uncovered queries containing it divided by its cost.

Stopping modes: *budget* (BCC), *target utility* (GMC3), and *cover all,
return the best utility/cost snapshot* (ECC).
"""

from repro.baselines.runners import (
    ig1_bcc,
    ig1_ecc,
    ig1_gmc3,
    ig2_bcc,
    ig2_ecc,
    ig2_gmc3,
    rand_bcc,
    rand_ecc,
    rand_gmc3,
)
from repro.baselines.selectors import IG1Selector, IG2Selector, RandomSelector

__all__ = [
    "rand_bcc",
    "ig1_bcc",
    "ig2_bcc",
    "rand_gmc3",
    "ig1_gmc3",
    "ig2_gmc3",
    "rand_ecc",
    "ig1_ecc",
    "ig2_ecc",
    "RandomSelector",
    "IG1Selector",
    "IG2Selector",
]
