"""The textual insights the paper reports alongside Figure 3 (Section 6.2).

- *Diminishing returns*: utility grows sublinearly in the budget.
- A large utility fraction is reachable well below the MC3 full-cover
  budget (paper: 75% of P's utility at half the full-cover cost; 65% at
  the real quarterly budget of ~a quarter of it).
- Covered-utility split by query length at the "real" budget (paper:
  ~51% from length-2 queries, ~47% from singletons at B=2000 on P).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.algorithms import solve_bcc
from repro.core.model import BCCInstance
from repro.mc3 import full_cover_cost


def utility_curve(
    base: BCCInstance, fractions: Tuple[float, ...] = (0.25, 0.5, 0.75, 1.0)
) -> List[Tuple[float, float]]:
    """``(budget fraction of full-cover cost, utility fraction of total)``."""
    full_cost = full_cover_cost(base)
    total = base.total_utility()
    curve = []
    for fraction in fractions:
        instance = base.with_budget(max(1.0, round(full_cost * fraction)))
        solution = solve_bcc(instance)
        curve.append((fraction, solution.utility / total))
    return curve


def diminishing_returns(curve: List[Tuple[float, float]]) -> bool:
    """Whether marginal utility per budget unit is non-increasing.

    Allows a small tolerance: the solver is a heuristic, so tiny local
    inversions are possible.
    """
    rates = []
    prev_x, prev_y = 0.0, 0.0
    for x, y in curve:
        rates.append((y - prev_y) / max(x - prev_x, 1e-9))
        prev_x, prev_y = x, y
    return all(later <= earlier * 1.1 for earlier, later in zip(rates, rates[1:]))


def coverage_split_by_length(base: BCCInstance, budget: float) -> Dict[int, float]:
    """Fraction of covered utility per query length at ``budget``."""
    solution = solve_bcc(base.with_budget(budget))
    if solution.utility == 0:
        return {}
    split: Dict[int, float] = {}
    for query in solution.covered:
        split[len(query)] = split.get(len(query), 0.0) + base.utility(query)
    return {length: value / solution.utility for length, value in split.items()}
