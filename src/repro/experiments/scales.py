"""Experiment scales.

``PAPER`` mirrors the paper's dataset sizes (BestBuy 1000/725, Private
5K/2K, Synthetic 100K scaled to 20K for a laptop); ``SMALL`` is the
fast default used by the pytest benchmarks, preserving every comparison
and sweep shape at reduced size; ``TINY`` exists for smoke tests;
``MICRO`` is smaller still — every sweep keeps its shape but each cell
solves in milliseconds, which is what the serial-vs-parallel equality
suite runs all twelve figures at.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional, Tuple


@dataclass(frozen=True)
class Scale:
    name: str
    bb_queries: int
    bb_properties: int
    p_queries: int
    p_properties: int
    s_queries: int
    s_properties: int
    sweep_sizes: Tuple[int, ...]
    rand_repeats: int


MICRO = Scale(
    name="micro",
    bb_queries=60,
    bb_properties=80,
    p_queries=80,
    p_properties=130,
    s_queries=100,
    s_properties=80,
    sweep_sizes=(60, 120),
    rand_repeats=2,
)

TINY = Scale(
    name="tiny",
    bb_queries=120,
    bb_properties=150,
    p_queries=150,
    p_properties=240,
    s_queries=200,
    s_properties=140,
    sweep_sizes=(100, 200),
    rand_repeats=2,
)

SMALL = Scale(
    name="small",
    bb_queries=400,
    bb_properties=380,
    p_queries=800,
    p_properties=1100,
    s_queries=1500,
    s_properties=950,
    sweep_sizes=(400, 800, 1600),
    rand_repeats=3,
)

PAPER = Scale(
    name="paper",
    bb_queries=1000,
    bb_properties=725,
    p_queries=5000,
    p_properties=2000,
    s_queries=20_000,
    s_properties=12_500,
    sweep_sizes=(2000, 5000, 10_000, 20_000),
    rand_repeats=5,
)

SCALES = {scale.name: scale for scale in (MICRO, TINY, SMALL, PAPER)}


def scale_from_env(variable: str = "REPRO_BENCH_SCALE", default: str = "tiny") -> Scale:
    """The scale named by an environment variable (shared CLI/bench logic)."""
    name = os.environ.get(variable, default)
    if name not in SCALES:
        raise ValueError(f"{variable} must be one of {sorted(SCALES)}, got {name!r}")
    return SCALES[name]


def jobs_from_env(variable: str = "REPRO_BENCH_JOBS", default: int = 1) -> Optional[int]:
    """Worker count named by an environment variable (benchmark knob)."""
    raw = os.environ.get(variable)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        raise ValueError(f"{variable} must be an integer, got {raw!r}")
