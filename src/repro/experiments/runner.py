"""Shared experiment infrastructure: timing, result records, sweeps."""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.solution import Solution


@dataclass
class Row:
    """One (x-value, algorithm) cell of a figure."""

    x: Any
    algorithm: str
    value: float
    seconds: float
    extra: Dict[str, Any] = field(default_factory=dict)


@dataclass
class FigureResult:
    """All rows of one reproduced figure plus free-form notes."""

    figure: str
    title: str
    x_label: str
    value_label: str
    rows: List[Row] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add(self, x: Any, algorithm: str, value: float, seconds: float, **extra: Any) -> None:
        """Append one cell."""
        self.rows.append(Row(x, algorithm, value, seconds, extra))

    def series(self, algorithm: str) -> List[Tuple[Any, float]]:
        """The ``(x, value)`` series of one algorithm, in insertion order."""
        return [(row.x, row.value) for row in self.rows if row.algorithm == algorithm]

    def algorithms(self) -> List[str]:
        """Algorithm names in first-appearance order."""
        seen: List[str] = []
        for row in self.rows:
            if row.algorithm not in seen:
                seen.append(row.algorithm)
        return seen

    def x_values(self) -> List[Any]:
        """X values in first-appearance order."""
        seen: List[Any] = []
        for row in self.rows:
            if row.x not in seen:
                seen.append(row.x)
        return seen

    def value_at(self, x: Any, algorithm: str) -> Optional[float]:
        """The value of one cell, or ``None`` if absent."""
        for row in self.rows:
            if row.x == x and row.algorithm == algorithm:
                return row.value
        return None

    def canonical(self, include_seconds: bool = True) -> str:
        """A canonical serialization of the rows (stability comparisons).

        Rows serialize in insertion order with sorted keys; floats keep
        their exact shortest-round-trip form, ``Solution`` objects in the
        extras canonicalize through the cache payload encoding (sorted
        classifier lists, no iteration-order leakage).  Two runs of the
        same figure produced identical rows iff their canonical strings
        are byte-identical.  ``include_seconds=False`` drops everything
        wall-clock — the timing column *and* solver timing telemetry in
        solution metas — for comparisons across cold runs.
        """
        from repro.parallel.cache import solution_to_payload

        def encode(value: Any) -> Any:
            if isinstance(value, Solution):
                payload = solution_to_payload(value)
                if not include_seconds:
                    payload.pop("meta", None)
                return payload
            if isinstance(value, dict):
                return {str(k): encode(v) for k, v in value.items()}
            if isinstance(value, (list, tuple)):
                return [encode(v) for v in value]
            if isinstance(value, (str, int, float, bool)) or value is None:
                return value
            return repr(value)

        payload = [
            {
                "x": encode(row.x),
                "algorithm": row.algorithm,
                "value": encode(row.value),
                **({"seconds": encode(row.seconds)} if include_seconds else {}),
                "extra": encode(row.extra),
            }
            for row in self.rows
        ]
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    def digest(self, include_seconds: bool = True) -> str:
        """Hex SHA-256 of :meth:`canonical` — the row-stability fingerprint."""
        return hashlib.sha256(self.canonical(include_seconds).encode("utf-8")).hexdigest()


def timed(fn: Callable[[], Solution]) -> Tuple[Solution, float]:
    """Run ``fn`` and return ``(result, wall seconds)``."""
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


class _TimedTrial:
    """Picklable per-seed trial runner (module-level for the process pool)."""

    def __init__(self, run: Callable[[int], Solution]) -> None:
        self.run = run

    def __call__(self, seed: int) -> Tuple[Solution, float]:
        start = time.perf_counter()
        solution = self.run(seed)
        return solution, time.perf_counter() - start


def averaged_random(
    run: Callable[[int], Solution],
    repeats: int = 5,
    jobs: Optional[int] = 1,
) -> Tuple[float, float, Solution]:
    """Average a randomized baseline over ``repeats`` seeds (paper: 5).

    Every trial receives its own seed — the trial index, matching the
    paper's "5 seeds" convention — and ``run`` must be a *pure function of
    that seed*: no RNG state may be shared between trials, so trials can
    execute out of order or in parallel (``jobs > 1``; ``run`` must then
    be picklable) without changing the answer.  Values accumulate in
    trial-index order regardless of completion order, keeping the mean
    bit-identical across serial and parallel execution.

    Returns ``(mean value, total seconds, last solution)``; the caller
    decides whether value means utility, cost or ratio via ``run``.
    """
    from repro.parallel.pool import pmap

    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    outcomes = pmap(_TimedTrial(run), list(range(repeats)), jobs=jobs)
    total_value = 0.0
    total_seconds = 0.0
    last: Optional[Solution] = None
    for solution, seconds in outcomes:  # trial-index order, not completion order
        total_value += solution.utility
        total_seconds += seconds
        last = solution
    assert last is not None
    return total_value / repeats, total_seconds, last


def mean_in_order(values: List[float]) -> float:
    """The mean with left-to-right float accumulation.

    Float addition is not associative; every path that averages trial
    values uses this helper so serial, parallel and cache-served runs sum
    in the same order and agree to the last bit.
    """
    if not values:
        raise ValueError("mean_in_order requires at least one value")
    total = 0.0
    for value in values:
        total += value
    return total / len(values)


def budget_sweep(full_cost: float, fractions: Tuple[float, ...]) -> List[float]:
    """Budget values as fractions of the MC3 full-cover cost (Section 6.1)."""
    return [max(1.0, round(full_cost * fraction)) for fraction in fractions]
