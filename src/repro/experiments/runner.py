"""Shared experiment infrastructure: timing, result records, sweeps."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.solution import Solution


@dataclass
class Row:
    """One (x-value, algorithm) cell of a figure."""

    x: Any
    algorithm: str
    value: float
    seconds: float
    extra: Dict[str, Any] = field(default_factory=dict)


@dataclass
class FigureResult:
    """All rows of one reproduced figure plus free-form notes."""

    figure: str
    title: str
    x_label: str
    value_label: str
    rows: List[Row] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add(self, x: Any, algorithm: str, value: float, seconds: float, **extra: Any) -> None:
        """Append one cell."""
        self.rows.append(Row(x, algorithm, value, seconds, extra))

    def series(self, algorithm: str) -> List[Tuple[Any, float]]:
        """The ``(x, value)`` series of one algorithm, in insertion order."""
        return [(row.x, row.value) for row in self.rows if row.algorithm == algorithm]

    def algorithms(self) -> List[str]:
        """Algorithm names in first-appearance order."""
        seen: List[str] = []
        for row in self.rows:
            if row.algorithm not in seen:
                seen.append(row.algorithm)
        return seen

    def x_values(self) -> List[Any]:
        """X values in first-appearance order."""
        seen: List[Any] = []
        for row in self.rows:
            if row.x not in seen:
                seen.append(row.x)
        return seen

    def value_at(self, x: Any, algorithm: str) -> Optional[float]:
        """The value of one cell, or ``None`` if absent."""
        for row in self.rows:
            if row.x == x and row.algorithm == algorithm:
                return row.value
        return None


def timed(fn: Callable[[], Solution]) -> Tuple[Solution, float]:
    """Run ``fn`` and return ``(result, wall seconds)``."""
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def averaged_random(
    run: Callable[[int], Solution], repeats: int = 5
) -> Tuple[float, float, Solution]:
    """Average a randomized baseline over ``repeats`` seeds (paper: 5).

    Returns ``(mean value, total seconds, last solution)``; the caller
    decides whether value means utility, cost or ratio via ``run``.
    """
    total_value = 0.0
    total_seconds = 0.0
    last: Optional[Solution] = None
    for seed in range(repeats):
        start = time.perf_counter()
        solution = run(seed)
        total_seconds += time.perf_counter() - start
        total_value += solution.utility
        last = solution
    assert last is not None
    return total_value / repeats, total_seconds, last


def budget_sweep(full_cost: float, fractions: Tuple[float, ...]) -> List[float]:
    """Budget values as fractions of the MC3 full-cover cost (Section 6.1)."""
    return [max(1.0, round(full_cost * fraction)) for fraction in fractions]
