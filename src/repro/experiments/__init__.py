"""Experiment harness reproducing the paper's evaluation (Section 6).

One entry point per paper figure (3a-3f, 4a-4f) plus the textual insights
the paper reports alongside them.  Each figure function returns a
:class:`~repro.experiments.runner.FigureResult` whose rows mirror the
series the paper plots; ``python -m repro.experiments <figure>`` prints
them as tables, and ``benchmarks/bench_<figure>.py`` wraps them for
pytest-benchmark.
"""

from repro.experiments.runner import FigureResult, Row, timed
from repro.experiments import figures
from repro.experiments.report import render_bars, render_table

__all__ = ["FigureResult", "Row", "timed", "figures", "render_table", "render_bars"]
