"""Command line entry point: ``python -m repro.experiments <figure> [...]``.

Examples::

    python -m repro.experiments fig3a
    python -m repro.experiments fig3b --scale paper --seed 7
    python -m repro.experiments all --scale tiny
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.figures import ALL_FIGURES
from repro.experiments.report import render_bars, render_table, render_timings
from repro.experiments.scales import SCALES


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the paper's evaluation figures.",
    )
    parser.add_argument(
        "figure",
        choices=sorted(ALL_FIGURES) + ["all"],
        help="figure id from the paper, or 'all'",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default="small",
        help="experiment size (default: small)",
    )
    parser.add_argument("--seed", type=int, default=0, help="dataset seed")
    parser.add_argument(
        "--timings", action="store_true", help="also print per-cell runtimes"
    )
    parser.add_argument(
        "--bars", action="store_true", help="render ASCII bar charts too"
    )
    args = parser.parse_args(argv)

    names = sorted(ALL_FIGURES) if args.figure == "all" else [args.figure]
    scale = SCALES[args.scale]
    for name in names:
        result = ALL_FIGURES[name](scale=scale, seed=args.seed)
        print(render_table(result))
        if args.bars:
            print(render_bars(result))
        if args.timings:
            print(render_timings(result))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
