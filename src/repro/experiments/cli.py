"""Command line entry point: ``python -m repro.experiments <figure> [...]``.

Examples::

    python -m repro.experiments fig3a
    python -m repro.experiments fig3b --scale paper --seed 7
    python -m repro.experiments all --scale tiny
    python -m repro.experiments all --jobs 8 --cache

``--jobs N`` fans each figure's sweep out over N worker processes
(``REPRO_JOBS`` sets the default; results are bit-identical to serial).
``--cache`` reuses previously solved cells from ``.repro-cache/``
(``REPRO_CACHE_DIR`` overrides the location), so repeated sweeps replay
instantly.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.figures import ALL_FIGURES
from repro.experiments.report import render_bars, render_table, render_timings
from repro.experiments.scales import SCALES


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the paper's evaluation figures.",
    )
    parser.add_argument(
        "figure",
        choices=sorted(ALL_FIGURES) + ["all"],
        help="figure id from the paper, or 'all'",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default="small",
        help="experiment size (default: small)",
    )
    parser.add_argument("--seed", type=int, default=0, help="dataset seed")
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes per figure sweep (default: REPRO_JOBS or 1; "
        "0 = one per CPU; results are identical for every value)",
    )
    parser.add_argument(
        "--cache",
        action="store_true",
        help="reuse/store solved cells in the on-disk result cache",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="cache location (default: REPRO_CACHE_DIR or .repro-cache/)",
    )
    parser.add_argument(
        "--timings", action="store_true", help="also print per-cell runtimes"
    )
    parser.add_argument(
        "--bars", action="store_true", help="render ASCII bar charts too"
    )
    args = parser.parse_args(argv)

    from repro.parallel.cache import default_cache
    from repro.parallel.pool import ParallelConfig

    cache = default_cache(args.cache_dir) if args.cache else None
    parallel = ParallelConfig(jobs=args.jobs, cache=cache)

    names = sorted(ALL_FIGURES) if args.figure == "all" else [args.figure]
    scale = SCALES[args.scale]
    for name in names:
        result = ALL_FIGURES[name](scale=scale, seed=args.seed, parallel=parallel)
        print(render_table(result))
        if args.bars:
            print(render_bars(result))
        if args.timings:
            print(render_timings(result))
        print()
    if cache is not None:
        stats = cache.stats
        print(
            f"cache: {stats.hits} hits, {stats.misses} misses, "
            f"{stats.stores} stored, {stats.evictions} evicted "
            f"({cache.directory})"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
