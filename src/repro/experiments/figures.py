"""One runner per paper figure (Section 6).

Every function takes a :class:`~repro.experiments.scales.Scale` and a seed
and returns a :class:`~repro.experiments.runner.FigureResult` whose rows
mirror the series the paper plots.  Dataset sizes default to laptop scale;
pass ``PAPER`` to approach the paper's sizes.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List

from repro.algorithms import (
    AbccConfig,
    Gmc3Config,
    solve_bcc,
    solve_bcc_exact,
    solve_ecc,
    solve_gmc3,
)
from repro.algorithms.pruning import PruningConfig
from repro.baselines import (
    ig1_bcc,
    ig1_ecc,
    ig1_gmc3,
    ig2_bcc,
    ig2_ecc,
    ig2_gmc3,
    rand_bcc,
    rand_ecc,
    rand_gmc3,
)
from repro.core.model import BCCInstance, ECCInstance, GMC3Instance
from repro.datasets import generate_bestbuy, generate_private, generate_synthetic
from repro.experiments.runner import FigureResult, budget_sweep, timed
from repro.experiments.scales import SMALL, Scale
from repro.mc3 import full_cover_cost

BCC_FRACTIONS = (0.05, 0.15, 0.3, 0.6)
GMC3_FRACTIONS = (0.25, 0.5, 0.75)


def _dataset(scale: Scale, name: str, seed: int) -> BCCInstance:
    if name == "BB":
        return generate_bestbuy(scale.bb_queries, scale.bb_properties, seed=seed)
    if name == "P":
        return generate_private(scale.p_queries, scale.p_properties, seed=seed)
    if name == "S":
        return generate_synthetic(scale.s_queries, scale.s_properties, seed=seed)
    raise ValueError(f"unknown dataset {name!r}")


def _as_gmc3(instance: BCCInstance, target: float) -> GMC3Instance:
    return GMC3Instance(
        instance.queries,
        instance._utilities,
        instance._costs,
        target=target,
        default_utility=instance.default_utility,
        default_cost=instance.default_cost,
    )


def _as_ecc(instance: BCCInstance) -> ECCInstance:
    """ECC view of a dataset with zero costs clamped to 1.

    Synthetic costs are drawn from U{0..50}; a single already-built
    (zero-cost) classifier makes the best ratio infinite for *every*
    algorithm, collapsing the comparison.  The paper reports finite
    ratios, so for this figure the cheapest classifiers cost one unit.
    """
    costs = {
        c: max(1.0, v) if v == 0.0 else v
        for c, v in instance._costs.items()
    }
    return ECCInstance(
        instance.queries,
        instance._utilities,
        costs,
        default_utility=instance.default_utility,
        default_cost=max(1.0, instance.default_cost),
    )


def _bcc_figure(
    figure: str, dataset: str, scale: Scale, seed: int
) -> FigureResult:
    """Shared engine for Figures 3a/3b/3c: utility vs budget, 4 algorithms."""
    base = _dataset(scale, dataset, seed)
    full_cost = full_cover_cost(base)
    budgets = budget_sweep(full_cost, BCC_FRACTIONS)
    result = FigureResult(
        figure=figure,
        title=f"BCC utility by budget on the {dataset} dataset",
        x_label="budget",
        value_label="total covered utility",
    )
    result.notes.append(f"MC3 full-cover cost: {full_cost:.0f}")
    result.notes.append(f"total utility: {base.total_utility():.0f}")
    for budget in budgets:
        instance = base.with_budget(budget)
        rand_total = 0.0
        rand_seconds = 0.0
        for rand_seed in range(scale.rand_repeats):
            solution, seconds = timed(lambda s=rand_seed: rand_bcc(instance, seed=s))
            rand_total += solution.utility
            rand_seconds += seconds
        result.add(budget, "RAND", rand_total / scale.rand_repeats, rand_seconds)
        for name, algorithm in (
            ("IG1", ig1_bcc),
            ("IG2", ig2_bcc),
            ("A^BCC", solve_bcc),
        ):
            solution, seconds = timed(lambda a=algorithm: a(instance))
            result.add(budget, name, solution.utility, seconds)
    return result


def fig3a(scale: Scale = SMALL, seed: int = 0) -> FigureResult:
    """Figure 3a: utility by budget, BestBuy dataset."""
    return _bcc_figure("fig3a", "BB", scale, seed)


def fig3b(scale: Scale = SMALL, seed: int = 0) -> FigureResult:
    """Figure 3b: utility by budget, Private dataset."""
    return _bcc_figure("fig3b", "P", scale, seed)


def fig3c(scale: Scale = SMALL, seed: int = 0) -> FigureResult:
    """Figure 3c: utility by budget, Synthetic dataset."""
    return _bcc_figure("fig3c", "S", scale, seed)


def _small_subinstances(scale: Scale, seed: int, count: int = 4) -> List[BCCInstance]:
    """Small P-dataset subdomains on which brute force is tractable.

    Mirrors the paper's 'small query subsets pertaining to very specific
    subdomains (such as iPhones queries)': take the highest-utility queries
    of one category until the feasible classifier count nears the brute
    force limit.
    """
    base = generate_private(
        max(300, scale.p_queries // 4), max(400, scale.p_properties // 4), seed=seed
    )
    by_category: Dict[str, List] = {}
    for query in base.queries:
        category = next(iter(query)).split(":")[0]
        by_category.setdefault(category, []).append(query)
    instances = []
    for category in sorted(by_category)[:count]:
        queries = sorted(
            by_category[category], key=lambda q: -base.utility(q)
        )
        chosen: List = []
        import math as _math

        feasible = 0
        for query in queries:
            extra = 2 ** len(query) - 1
            if feasible + extra > 18:
                continue
            chosen.append(query)
            feasible += extra
            if len(chosen) >= 8:
                break
        if len(chosen) < 3:
            continue
        utilities = {q: base.utility(q) for q in chosen}
        costs = {
            c: base.cost(c)
            for q in chosen
            for c in BCCInstance([q], budget=0).relevant_classifiers()
        }
        instances.append(
            BCCInstance(chosen, utilities, costs, budget=0.0)
        )
    return instances


def fig3d(scale: Scale = SMALL, seed: int = 0) -> FigureResult:
    """Figure 3d: A^BCC vs brute force on small P subdomains.

    The paper reports the loss is always below 20% on these instances.
    """
    result = FigureResult(
        figure="fig3d",
        title="A^BCC vs exhaustive search on small P subdomains",
        x_label="subdomain",
        value_label="total covered utility",
    )
    worst_ratio = 1.0
    for index, sub in enumerate(_small_subinstances(scale, seed)):
        import math as _math

        total_cost = sum(
            sub.cost(c)
            for c in sub.relevant_classifiers()
            if not _math.isinf(sub.cost(c))
        )
        instance = sub.with_budget(max(1.0, round(total_cost * 0.4)))
        exact, exact_seconds = timed(lambda: solve_bcc_exact(instance))
        ours, our_seconds = timed(lambda: solve_bcc(instance))
        result.add(index, "BruteForce", exact.utility, exact_seconds)
        result.add(index, "A^BCC", ours.utility, our_seconds)
        if exact.utility > 0:
            worst_ratio = min(worst_ratio, ours.utility / exact.utility)
    result.notes.append(f"worst A^BCC/optimal ratio: {worst_ratio:.3f}")
    return result


def _preprocessing_sweep(
    scale: Scale, seed: int, value: str
) -> FigureResult:
    """Shared engine for Figures 3e (runtime) and 3f (utility)."""
    figure = "fig3e" if value == "seconds" else "fig3f"
    result = FigureResult(
        figure=figure,
        title="Effect of preprocessing on the synthetic dataset",
        x_label="num queries",
        value_label="runtime (s)" if value == "seconds" else "total covered utility",
    )
    for size in scale.sweep_sizes:
        instance = generate_synthetic(
            n_queries=size,
            n_properties=max(int(size * 0.62), 64),
            budget=max(50.0, size * 0.6),
            seed=seed + size,
        )
        with_pruning, seconds_with = timed(
            lambda: solve_bcc(instance, AbccConfig(pruning=PruningConfig.paper()))
        )
        without, seconds_without = timed(
            lambda: solve_bcc(instance, AbccConfig(pruning=None))
        )
        if value == "seconds":
            result.add(size, "with preprocessing", seconds_with, seconds_with)
            result.add(size, "without preprocessing", seconds_without, seconds_without)
        else:
            result.add(size, "with preprocessing", with_pruning.utility, seconds_with)
            result.add(size, "without preprocessing", without.utility, seconds_without)
    return result


def fig3e(scale: Scale = SMALL, seed: int = 0) -> FigureResult:
    """Figure 3e: runtime with/without preprocessing vs #queries (S)."""
    return _preprocessing_sweep(scale, seed, "seconds")


def fig3f(scale: Scale = SMALL, seed: int = 0) -> FigureResult:
    """Figure 3f: utility with/without preprocessing vs #queries (S)."""
    return _preprocessing_sweep(scale, seed, "utility")


def _gmc3_figure(figure: str, dataset: str, scale: Scale, seed: int) -> FigureResult:
    """Shared engine for Figures 4a/4b/4c: budget used vs utility target."""
    base = _dataset(scale, dataset, seed)
    total = base.total_utility()
    result = FigureResult(
        figure=figure,
        title=f"GMC3 cost by utility target on the {dataset} dataset",
        x_label="utility target",
        value_label="classifier cost used (lower is better)",
    )
    for fraction in GMC3_FRACTIONS:
        target = round(total * fraction)
        instance = _as_gmc3(base, target)
        rand_total = 0.0
        rand_seconds = 0.0
        for rand_seed in range(scale.rand_repeats):
            solution, seconds = timed(lambda s=rand_seed: rand_gmc3(instance, seed=s))
            rand_total += solution.cost
            rand_seconds += seconds
        result.add(target, "RAND(G)", rand_total / scale.rand_repeats, rand_seconds)
        for name, algorithm in (
            ("IG1(G)", ig1_gmc3),
            ("IG2(G)", ig2_gmc3),
            ("A^GMC3", solve_gmc3),
        ):
            solution, seconds = timed(lambda a=algorithm: a(instance))
            result.add(target, name, solution.cost, seconds, utility=solution.utility)
    return result


def fig4a(scale: Scale = SMALL, seed: int = 0) -> FigureResult:
    """Figure 4a: GMC3 budget used by target, BestBuy dataset."""
    return _gmc3_figure("fig4a", "BB", scale, seed)


def fig4b(scale: Scale = SMALL, seed: int = 0) -> FigureResult:
    """Figure 4b: GMC3 budget used by target, Private dataset."""
    return _gmc3_figure("fig4b", "P", scale, seed)


def fig4c(scale: Scale = SMALL, seed: int = 0) -> FigureResult:
    """Figure 4c: GMC3 budget used by target, Synthetic dataset."""
    return _gmc3_figure("fig4c", "S", scale, seed)


def fig4d(scale: Scale = SMALL, seed: int = 0) -> FigureResult:
    """Figure 4d: GMC3 running time over synthetic sizes.

    The paper uses a representative target; we use half the total utility.
    """
    result = FigureResult(
        figure="fig4d",
        title="GMC3 runtime over synthetic dataset sizes",
        x_label="num queries",
        value_label="runtime (s)",
    )
    for size in scale.sweep_sizes:
        base = generate_synthetic(
            n_queries=size,
            n_properties=max(int(size * 0.62), 64),
            seed=seed + size,
        )
        target = round(base.total_utility() * 0.5)
        instance = _as_gmc3(base, target)
        for name, algorithm in (
            ("IG1(G)", ig1_gmc3),
            ("IG2(G)", ig2_gmc3),
            ("A^GMC3", solve_gmc3),
        ):
            _, seconds = timed(lambda a=algorithm: a(instance))
            result.add(size, name, seconds, seconds)
    return result


def _ecc_figure(figure: str, dataset: str, scale: Scale, seed: int) -> FigureResult:
    """Shared engine for Figures 4e/4f: best utility/cost ratio."""
    base = _dataset(scale, dataset, seed)
    instance = _as_ecc(base)
    result = FigureResult(
        figure=figure,
        title=f"ECC best utility/cost ratio on the {dataset} dataset",
        x_label="dataset",
        value_label="utility / cost (higher is better)",
    )
    rand_best = 0.0
    rand_seconds = 0.0
    for rand_seed in range(scale.rand_repeats):
        solution, seconds = timed(lambda s=rand_seed: rand_ecc(instance, seed=s))
        rand_best += solution.ratio
        rand_seconds += seconds
    result.add(dataset, "RAND(E)", rand_best / scale.rand_repeats, rand_seconds)
    for name, algorithm in (
        ("IG1(E)", ig1_ecc),
        ("IG2(E)", ig2_ecc),
        ("A^ECC", solve_ecc),
    ):
        solution, seconds = timed(lambda a=algorithm: a(instance))
        result.add(dataset, name, solution.ratio, seconds, cost=solution.cost)
    return result


def fig4e(scale: Scale = SMALL, seed: int = 0) -> FigureResult:
    """Figure 4e: ECC best ratio, Private dataset."""
    return _ecc_figure("fig4e", "P", scale, seed)


def fig4f(scale: Scale = SMALL, seed: int = 0) -> FigureResult:
    """Figure 4f: ECC best ratio, Synthetic dataset."""
    return _ecc_figure("fig4f", "S", scale, seed)


ALL_FIGURES: Dict[str, Callable[..., FigureResult]] = {
    "fig3a": fig3a,
    "fig3b": fig3b,
    "fig3c": fig3c,
    "fig3d": fig3d,
    "fig3e": fig3e,
    "fig3f": fig3f,
    "fig4a": fig4a,
    "fig4b": fig4b,
    "fig4c": fig4c,
    "fig4d": fig4d,
    "fig4e": fig4e,
    "fig4f": fig4f,
}
