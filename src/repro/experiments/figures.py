"""One runner per paper figure (Section 6).

Every function takes a :class:`~repro.experiments.scales.Scale` and a seed
and returns a :class:`~repro.experiments.runner.FigureResult` whose rows
mirror the series the paper plots.  Dataset sizes default to laptop scale;
pass ``PAPER`` to approach the paper's sizes.

Execution goes through the task layer (:mod:`repro.parallel`): each
figure stages every cell of its sweep — budget points × algorithms ×
randomized trials — into one :class:`~repro.parallel.pool.TaskBatch` and
runs it in a single batch, so ``parallel=ParallelConfig(jobs=N)`` fans
the whole sweep out across workers while row assembly stays in the fixed
serial order.  Randomized arms take per-trial seeds (the trial index, the
paper's convention); no task shares RNG state, so results are
bit-identical for every ``jobs`` value.  Passing a cache-bearing config
replays previously solved cells, timings included.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.model import BCCInstance, ECCInstance, GMC3Instance
from repro.datasets import (
    generate_bestbuy,
    generate_fragmented,
    generate_private,
    generate_synthetic,
)
from repro.experiments.runner import (
    FigureResult,
    budget_sweep,
    mean_in_order,
)
from repro.experiments.scales import SMALL, Scale
from repro.mc3 import full_cover_cost
from repro.parallel.pool import ParallelConfig, TaskBatch

BCC_FRACTIONS = (0.05, 0.15, 0.3, 0.6)
GMC3_FRACTIONS = (0.25, 0.5, 0.75)

#: (display name, registry solver) per figure family, in row order.
_BCC_ARMS = (("IG1", "ig1-bcc"), ("IG2", "ig2-bcc"), ("A^BCC", "abcc"))
_GMC3_ARMS = (("IG1(G)", "ig1-gmc3"), ("IG2(G)", "ig2-gmc3"), ("A^GMC3", "agmc3"))
_ECC_ARMS = (("IG1(E)", "ig1-ecc"), ("IG2(E)", "ig2-ecc"), ("A^ECC", "aecc"))


def _dataset(scale: Scale, name: str, seed: int) -> BCCInstance:
    if name == "BB":
        return generate_bestbuy(scale.bb_queries, scale.bb_properties, seed=seed)
    if name == "P":
        return generate_private(scale.p_queries, scale.p_properties, seed=seed)
    if name == "S":
        return generate_synthetic(scale.s_queries, scale.s_properties, seed=seed)
    raise ValueError(f"unknown dataset {name!r}")


def _as_gmc3(instance: BCCInstance, target: float) -> GMC3Instance:
    return GMC3Instance(
        instance.queries,
        instance._utilities,
        instance._costs,
        target=target,
        default_utility=instance.default_utility,
        default_cost=instance.default_cost,
    )


def _as_ecc(instance: BCCInstance) -> ECCInstance:
    """ECC view of a dataset with zero costs clamped to 1.

    Synthetic costs are drawn from U{0..50}; a single already-built
    (zero-cost) classifier makes the best ratio infinite for *every*
    algorithm, collapsing the comparison.  The paper reports finite
    ratios, so for this figure the cheapest classifiers cost one unit.
    """
    costs = {
        c: max(1.0, v) if v == 0.0 else v
        for c, v in instance._costs.items()
    }
    return ECCInstance(
        instance.queries,
        instance._utilities,
        costs,
        default_utility=instance.default_utility,
        default_cost=max(1.0, instance.default_cost),
    )


def _add_rand_row(
    result: FigureResult,
    results,
    x,
    name: str,
    keys: List[str],
    value: Callable,
    **extra,
) -> None:
    """One averaged randomized-baseline row from the per-trial task results."""
    trials = [results[key] for key in keys]
    result.add(
        x,
        name,
        mean_in_order([value(t.solution) for t in trials]),
        sum(t.seconds for t in trials),
        solutions=[t.solution for t in trials],
        **extra,
    )


def _bcc_figure(
    figure: str,
    dataset: str,
    scale: Scale,
    seed: int,
    parallel: Optional[ParallelConfig] = None,
) -> FigureResult:
    """Shared engine for Figures 3a/3b/3c: utility vs budget, 4 algorithms."""
    base = _dataset(scale, dataset, seed)
    full_cost = full_cover_cost(base)
    budgets = budget_sweep(full_cost, BCC_FRACTIONS)
    result = FigureResult(
        figure=figure,
        title=f"BCC utility by budget on the {dataset} dataset",
        x_label="budget",
        value_label="total covered utility",
    )
    result.notes.append(f"MC3 full-cover cost: {full_cost:.0f}")
    result.notes.append(f"total utility: {base.total_utility():.0f}")

    batch = TaskBatch()
    for budget in budgets:
        instance = base.with_budget(budget)
        for trial in range(scale.rand_repeats):
            batch.add(f"B{budget:g}/RAND/{trial}", "rand-bcc", instance, seed=trial)
        for name, solver in _BCC_ARMS:
            batch.add(f"B{budget:g}/{name}", solver, instance)
    results = batch.run(parallel)

    for budget in budgets:
        _add_rand_row(
            result,
            results,
            budget,
            "RAND",
            [f"B{budget:g}/RAND/{t}" for t in range(scale.rand_repeats)],
            value=lambda s: s.utility,
        )
        for name, _ in _BCC_ARMS:
            arm = results[f"B{budget:g}/{name}"]
            result.add(budget, name, arm.solution.utility, arm.seconds, solution=arm.solution)
    return result


def fig3a(
    scale: Scale = SMALL, seed: int = 0, parallel: Optional[ParallelConfig] = None
) -> FigureResult:
    """Figure 3a: utility by budget, BestBuy dataset."""
    return _bcc_figure("fig3a", "BB", scale, seed, parallel)


def fig3b(
    scale: Scale = SMALL, seed: int = 0, parallel: Optional[ParallelConfig] = None
) -> FigureResult:
    """Figure 3b: utility by budget, Private dataset."""
    return _bcc_figure("fig3b", "P", scale, seed, parallel)


def fig3c(
    scale: Scale = SMALL, seed: int = 0, parallel: Optional[ParallelConfig] = None
) -> FigureResult:
    """Figure 3c: utility by budget, Synthetic dataset."""
    return _bcc_figure("fig3c", "S", scale, seed, parallel)


def _small_subinstances(scale: Scale, seed: int, count: int = 4) -> List[BCCInstance]:
    """Small P-dataset subdomains on which brute force is tractable.

    Mirrors the paper's 'small query subsets pertaining to very specific
    subdomains (such as iPhones queries)': take the highest-utility queries
    of one category until the feasible classifier count nears the brute
    force limit.
    """
    base = generate_private(
        max(300, scale.p_queries // 4), max(400, scale.p_properties // 4), seed=seed
    )
    by_category: Dict[str, List] = {}
    for query in base.queries:
        category = next(iter(query)).split(":")[0]
        by_category.setdefault(category, []).append(query)
    instances = []
    for category in sorted(by_category)[:count]:
        queries = sorted(
            by_category[category], key=lambda q: -base.utility(q)
        )
        chosen: List = []

        feasible = 0
        for query in queries:
            extra = 2 ** len(query) - 1
            if feasible + extra > 18:
                continue
            chosen.append(query)
            feasible += extra
            if len(chosen) >= 8:
                break
        if len(chosen) < 3:
            continue
        utilities = {q: base.utility(q) for q in chosen}
        costs = {
            c: base.cost(c)
            for q in chosen
            for c in BCCInstance([q], budget=0).relevant_classifiers()
        }
        instances.append(
            BCCInstance(chosen, utilities, costs, budget=0.0)
        )
    return instances


def fig3d(
    scale: Scale = SMALL, seed: int = 0, parallel: Optional[ParallelConfig] = None
) -> FigureResult:
    """Figure 3d: A^BCC vs brute force on small P subdomains.

    The paper reports the loss is always below 20% on these instances.
    """
    import math as _math

    result = FigureResult(
        figure="fig3d",
        title="A^BCC vs exhaustive search on small P subdomains",
        x_label="subdomain",
        value_label="total covered utility",
    )
    subinstances = []
    batch = TaskBatch()
    for index, sub in enumerate(_small_subinstances(scale, seed)):
        total_cost = sum(
            sub.cost(c)
            for c in sub.relevant_classifiers()
            if not _math.isinf(sub.cost(c))
        )
        instance = sub.with_budget(max(1.0, round(total_cost * 0.4)))
        subinstances.append(instance)
        batch.add(f"sub{index}/BruteForce", "bcc-exact", instance)
        batch.add(f"sub{index}/A^BCC", "abcc", instance)
    results = batch.run(parallel)

    worst_ratio = 1.0
    for index in range(len(subinstances)):
        exact = results[f"sub{index}/BruteForce"]
        ours = results[f"sub{index}/A^BCC"]
        result.add(
            index, "BruteForce", exact.solution.utility, exact.seconds,
            solution=exact.solution,
        )
        result.add(
            index, "A^BCC", ours.solution.utility, ours.seconds, solution=ours.solution
        )
        if exact.solution.utility > 0:
            worst_ratio = min(worst_ratio, ours.solution.utility / exact.solution.utility)
    result.notes.append(f"worst A^BCC/optimal ratio: {worst_ratio:.3f}")
    return result


def _preprocessing_sweep(
    scale: Scale,
    seed: int,
    value: str,
    parallel: Optional[ParallelConfig] = None,
) -> FigureResult:
    """Shared engine for Figures 3e (runtime) and 3f (utility)."""
    figure = "fig3e" if value == "seconds" else "fig3f"
    result = FigureResult(
        figure=figure,
        title="Effect of preprocessing on the synthetic dataset",
        x_label="num queries",
        value_label="runtime (s)" if value == "seconds" else "total covered utility",
    )
    batch = TaskBatch()
    for size in scale.sweep_sizes:
        instance = generate_synthetic(
            n_queries=size,
            n_properties=max(int(size * 0.62), 64),
            budget=max(50.0, size * 0.6),
            seed=seed + size,
        )
        batch.add(f"q{size}/with", "abcc-pruned", instance)
        batch.add(f"q{size}/without", "abcc-unpruned", instance)
    results = batch.run(parallel)

    for size in scale.sweep_sizes:
        for arm, name in (("with", "with preprocessing"), ("without", "without preprocessing")):
            outcome = results[f"q{size}/{arm}"]
            measured = outcome.seconds if value == "seconds" else outcome.solution.utility
            result.add(size, name, measured, outcome.seconds, solution=outcome.solution)
    return result


def fig3e(
    scale: Scale = SMALL, seed: int = 0, parallel: Optional[ParallelConfig] = None
) -> FigureResult:
    """Figure 3e: runtime with/without preprocessing vs #queries (S)."""
    return _preprocessing_sweep(scale, seed, "seconds", parallel)


def fig3f(
    scale: Scale = SMALL, seed: int = 0, parallel: Optional[ParallelConfig] = None
) -> FigureResult:
    """Figure 3f: utility with/without preprocessing vs #queries (S)."""
    return _preprocessing_sweep(scale, seed, "utility", parallel)


def _gmc3_figure(
    figure: str,
    dataset: str,
    scale: Scale,
    seed: int,
    parallel: Optional[ParallelConfig] = None,
) -> FigureResult:
    """Shared engine for Figures 4a/4b/4c: budget used vs utility target."""
    base = _dataset(scale, dataset, seed)
    total = base.total_utility()
    result = FigureResult(
        figure=figure,
        title=f"GMC3 cost by utility target on the {dataset} dataset",
        x_label="utility target",
        value_label="classifier cost used (lower is better)",
    )
    targets = [round(total * fraction) for fraction in GMC3_FRACTIONS]

    batch = TaskBatch()
    for target in targets:
        instance = _as_gmc3(base, target)
        for trial in range(scale.rand_repeats):
            batch.add(f"T{target:g}/RAND(G)/{trial}", "rand-gmc3", instance, seed=trial)
        for name, solver in _GMC3_ARMS:
            batch.add(f"T{target:g}/{name}", solver, instance)
    results = batch.run(parallel)

    for target in targets:
        _add_rand_row(
            result,
            results,
            target,
            "RAND(G)",
            [f"T{target:g}/RAND(G)/{t}" for t in range(scale.rand_repeats)],
            value=lambda s: s.cost,
        )
        for name, _ in _GMC3_ARMS:
            arm = results[f"T{target:g}/{name}"]
            result.add(
                target,
                name,
                arm.solution.cost,
                arm.seconds,
                utility=arm.solution.utility,
                solution=arm.solution,
            )
    return result


def fig4a(
    scale: Scale = SMALL, seed: int = 0, parallel: Optional[ParallelConfig] = None
) -> FigureResult:
    """Figure 4a: GMC3 budget used by target, BestBuy dataset."""
    return _gmc3_figure("fig4a", "BB", scale, seed, parallel)


def fig4b(
    scale: Scale = SMALL, seed: int = 0, parallel: Optional[ParallelConfig] = None
) -> FigureResult:
    """Figure 4b: GMC3 budget used by target, Private dataset."""
    return _gmc3_figure("fig4b", "P", scale, seed, parallel)


def fig4c(
    scale: Scale = SMALL, seed: int = 0, parallel: Optional[ParallelConfig] = None
) -> FigureResult:
    """Figure 4c: GMC3 budget used by target, Synthetic dataset."""
    return _gmc3_figure("fig4c", "S", scale, seed, parallel)


def fig4d(
    scale: Scale = SMALL, seed: int = 0, parallel: Optional[ParallelConfig] = None
) -> FigureResult:
    """Figure 4d: GMC3 running time over synthetic sizes.

    The paper uses a representative target; we use half the total utility.
    """
    result = FigureResult(
        figure="fig4d",
        title="GMC3 runtime over synthetic dataset sizes",
        x_label="num queries",
        value_label="runtime (s)",
    )
    batch = TaskBatch()
    for size in scale.sweep_sizes:
        base = generate_synthetic(
            n_queries=size,
            n_properties=max(int(size * 0.62), 64),
            seed=seed + size,
        )
        target = round(base.total_utility() * 0.5)
        instance = _as_gmc3(base, target)
        for name, solver in _GMC3_ARMS:
            batch.add(f"q{size}/{name}", solver, instance)
    results = batch.run(parallel)

    for size in scale.sweep_sizes:
        for name, _ in _GMC3_ARMS:
            arm = results[f"q{size}/{name}"]
            result.add(size, name, arm.seconds, arm.seconds, solution=arm.solution)
    return result


def _ecc_figure(
    figure: str,
    dataset: str,
    scale: Scale,
    seed: int,
    parallel: Optional[ParallelConfig] = None,
) -> FigureResult:
    """Shared engine for Figures 4e/4f: best utility/cost ratio."""
    base = _dataset(scale, dataset, seed)
    instance = _as_ecc(base)
    result = FigureResult(
        figure=figure,
        title=f"ECC best utility/cost ratio on the {dataset} dataset",
        x_label="dataset",
        value_label="utility / cost (higher is better)",
    )
    batch = TaskBatch()
    for trial in range(scale.rand_repeats):
        batch.add(f"RAND(E)/{trial}", "rand-ecc", instance, seed=trial)
    for name, solver in _ECC_ARMS:
        batch.add(name, solver, instance)
    results = batch.run(parallel)

    _add_rand_row(
        result,
        results,
        dataset,
        "RAND(E)",
        [f"RAND(E)/{t}" for t in range(scale.rand_repeats)],
        value=lambda s: s.ratio,
    )
    for name, _ in _ECC_ARMS:
        arm = results[name]
        result.add(
            dataset,
            name,
            arm.solution.ratio,
            arm.seconds,
            cost=arm.solution.cost,
            solution=arm.solution,
        )
    return result


def fig4e(
    scale: Scale = SMALL, seed: int = 0, parallel: Optional[ParallelConfig] = None
) -> FigureResult:
    """Figure 4e: ECC best ratio, Private dataset."""
    return _ecc_figure("fig4e", "P", scale, seed, parallel)


def fig4f(
    scale: Scale = SMALL, seed: int = 0, parallel: Optional[ParallelConfig] = None
) -> FigureResult:
    """Figure 4f: ECC best ratio, Synthetic dataset."""
    return _ecc_figure("fig4f", "S", scale, seed, parallel)


def figfrag(
    scale: Scale = SMALL, seed: int = 0, parallel: Optional[ParallelConfig] = None
) -> FigureResult:
    """Decomposition figure: utility by budget on a fragmented workload.

    Not a paper figure — it exercises :mod:`repro.decompose` on a
    workload with ≥8 independent components, comparing ``A^BCC`` against
    ``A^BCC[sharded]`` (plus the greedy baselines).  The sharded arm must
    match the monolithic arm wherever the budget is non-binding and stay
    within allocator-grid resolution elsewhere.
    """
    per_component = {"micro": 6, "tiny": 10, "small": 40}.get(scale.name, 80)
    base = generate_fragmented(
        n_components=8, queries_per_component=per_component, seed=seed
    )
    full_cost = full_cover_cost(base)
    budgets = budget_sweep(full_cost, BCC_FRACTIONS)
    result = FigureResult(
        figure="figfrag",
        title="BCC utility by budget on a fragmented (8-component) workload",
        x_label="budget",
        value_label="total covered utility",
    )
    result.notes.append(f"MC3 full-cover cost: {full_cost:.0f}")
    result.notes.append(f"total utility: {base.total_utility():.0f}")

    arms = _BCC_ARMS + (("A^BCC-sharded", "abcc-sharded"),)
    batch = TaskBatch()
    for budget in budgets:
        instance = base.with_budget(budget)
        for name, solver in arms:
            batch.add(f"B{budget:g}/{name}", solver, instance)
    results = batch.run(parallel)

    for budget in budgets:
        for name, _ in arms:
            arm = results[f"B{budget:g}/{name}"]
            result.add(budget, name, arm.solution.utility, arm.seconds, solution=arm.solution)
    return result


def figdrift(
    scale: Scale = SMALL, seed: int = 0, parallel: Optional[ParallelConfig] = None
) -> FigureResult:
    """Dynamic-BCC figure: warm re-plan speedup vs workload delta size.

    Not a paper figure — it drives :mod:`repro.incremental` through
    random deltas of growing size on a fragmented workload and reports
    how much faster the warm re-plan is than re-solving the mutated
    instance from scratch (cold monolithic ``A^BCC``, and a cold run of
    the incremental pipeline itself).  The warm solution is checked
    bit-identical to the cold incremental one at every point.  The value
    column is a wall-clock ratio, so the determinism harness compares
    solutions, not values.
    """
    import random as _random
    import time as _time

    from repro.algorithms.bcc import solve_bcc
    from repro.incremental import IncrementalConfig, IncrementalSolver, random_delta

    components = {"micro": 10, "tiny": 20, "small": 30}.get(scale.name, 60)
    base = generate_fragmented(
        n_components=components,
        queries_per_component=10,
        budget=1_000_000.0,
        seed=seed,
    )
    config = IncrementalConfig(
        certify=True, jobs=None if parallel is None else parallel.jobs
    )
    result = FigureResult(
        figure="figdrift",
        title="Warm re-plan speedup by delta size (dynamic BCC)",
        x_label="delta size (fraction of queries edited)",
        value_label="cold / warm re-plan time (higher is better)",
    )
    result.notes.append(f"workload: {components} components x 10 queries")
    for fraction in (0.01, 0.05, 0.10, 0.25):
        solver = IncrementalSolver(base.clone(), config, seed=seed)
        solver.solve()
        delta = random_delta(
            solver.instance,
            _random.Random(seed + round(fraction * 100)),
            fraction=fraction,
        )
        started = _time.perf_counter()
        warm = solver.resolve_delta(delta)
        warm_sec = _time.perf_counter() - started

        mutated = solver.instance
        started = _time.perf_counter()
        solve_bcc(mutated.clone())
        mono_sec = _time.perf_counter() - started

        started = _time.perf_counter()
        cold = IncrementalSolver(mutated.clone(), config, seed=seed).solve()
        cold_sec = _time.perf_counter() - started
        if (warm.classifiers, warm.utility, warm.cost) != (
            cold.classifiers,
            cold.utility,
            cold.cost,
        ):
            raise AssertionError(
                f"figdrift: warm re-plan diverged from cold at delta {fraction}"
            )
        result.add(
            fraction,
            "vs cold monolithic",
            mono_sec / warm_sec,
            warm_sec + mono_sec,
            solution=warm,
        )
        result.add(
            fraction,
            "vs cold incremental",
            cold_sec / warm_sec,
            warm_sec + cold_sec,
        )
    return result


def figslo(
    scale: Scale = SMALL, seed: int = 0, parallel: Optional[ParallelConfig] = None
) -> FigureResult:
    """SLO figure: certified incumbent utility vs deadline (virtual clock).

    Not a paper figure — delegates to :func:`repro.slo.figure.figslo`
    (imported lazily to keep ``repro.experiments`` import-light).  The
    run simulates time on a virtual clock, so rows are a pure function
    of scale and seed and the serial-vs-parallel harness can compare
    them bit for bit.
    """
    from repro.slo.figure import figslo as _figslo

    return _figslo(scale, seed, parallel)


ALL_FIGURES: Dict[str, Callable[..., FigureResult]] = {
    "fig3a": fig3a,
    "fig3b": fig3b,
    "fig3c": fig3c,
    "fig3d": fig3d,
    "fig3e": fig3e,
    "fig3f": fig3f,
    "fig4a": fig4a,
    "fig4b": fig4b,
    "fig4c": fig4c,
    "fig4d": fig4d,
    "fig4e": fig4e,
    "fig4f": fig4f,
    "figfrag": figfrag,
    "figdrift": figdrift,
    "figslo": figslo,
}
