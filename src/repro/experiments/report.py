"""ASCII rendering of figure results (the paper's bar charts as tables)."""

from __future__ import annotations

from typing import List

from repro.experiments.runner import FigureResult


def render_table(result: FigureResult, precision: int = 1) -> str:
    """A table with one row per x-value and one column per algorithm."""
    algorithms = result.algorithms()
    header = [result.x_label] + algorithms
    lines: List[List[str]] = [header]
    for x in result.x_values():
        line = [str(x)]
        for algorithm in algorithms:
            value = result.value_at(x, algorithm)
            line.append("-" if value is None else f"{value:.{precision}f}")
        lines.append(line)

    widths = [max(len(row[i]) for row in lines) for i in range(len(header))]

    def fmt(row: List[str]) -> str:
        return " | ".join(cell.rjust(width) for cell, width in zip(row, widths))

    separator = "-+-".join("-" * width for width in widths)
    out = [
        f"== {result.figure}: {result.title} ==",
        f"   ({result.value_label})",
        fmt(lines[0]),
        separator,
    ]
    out.extend(fmt(line) for line in lines[1:])
    for note in result.notes:
        out.append(f"note: {note}")
    return "\n".join(out)


def render_bars(result: FigureResult, width: int = 40) -> str:
    """ASCII bar chart: one bar per (x, algorithm) cell, paper-figure style."""
    finite = [row.value for row in result.rows if row.value == row.value and row.value != float("inf")]
    if not finite:
        return f"== {result.figure}: (no finite values) =="
    peak = max(finite) or 1.0
    label_width = max(
        len(f"{x} {name}") for x in result.x_values() for name in result.algorithms()
    )
    lines = [f"== {result.figure}: {result.title} =="]
    for x in result.x_values():
        for name in result.algorithms():
            value = result.value_at(x, name)
            if value is None:
                continue
            if value == float("inf"):
                bar, shown = "∞", "inf"
            else:
                bar = "#" * max(1, int(round(width * value / peak))) if value > 0 else ""
                shown = f"{value:.1f}"
            lines.append(f"{f'{x} {name}':>{label_width}} | {bar} {shown}")
        lines.append("")
    return "\n".join(lines).rstrip()


def render_timings(result: FigureResult, precision: int = 2) -> str:
    """Same layout but showing wall-clock seconds per cell."""
    algorithms = result.algorithms()
    lines = [[result.x_label] + algorithms]
    for x in result.x_values():
        line = [str(x)]
        for algorithm in algorithms:
            cells = [
                row.seconds
                for row in result.rows
                if row.x == x and row.algorithm == algorithm
            ]
            line.append("-" if not cells else f"{cells[0]:.{precision}f}s")
        lines.append(line)
    widths = [max(len(row[i]) for row in lines) for i in range(len(lines[0]))]

    def fmt(row):
        return " | ".join(cell.rjust(width) for cell, width in zip(row, widths))

    out = [f"== {result.figure}: timings ==", fmt(lines[0])]
    out.extend(fmt(line) for line in lines[1:])
    return "\n".join(out)
