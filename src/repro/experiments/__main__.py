"""Module entry point for ``python -m repro.experiments``."""

import sys

from repro.experiments.cli import main

sys.exit(main())
