"""Exact weighted densest subgraph via parametric min-cut.

For a guess ``lam`` of the optimal ratio, the question "is there a set
``S`` with ``w(S) - lam * c(S) > 0``?" is a project-selection instance
(edges are projects with their weight as revenue; nodes are machines with
cost ``lam * c(v)``).  Binary search on ``lam`` converges to the optimum;
the selection at the highest feasible ``lam`` is returned.

Zero-cost nodes are handled exactly: a positive-weight subgraph of zero
total cost has infinite ratio and is returned directly.
"""

from __future__ import annotations

import math
from typing import FrozenSet, Set, Tuple

from repro.flow import ProjectSelection
from repro.graphs.graph import Node, WeightedGraph


def _free_positive_subgraph(graph: WeightedGraph) -> FrozenSet[Node]:
    """Zero-cost nodes carrying positive induced weight, if any."""
    free = {v for v in graph.nodes if graph.cost(v) == 0.0}
    if graph.induced_weight(free) > 0:
        return frozenset(free)
    return frozenset()


def _best_for_ratio(
    graph: WeightedGraph, lam: float
) -> Tuple[float, Set[Node]]:
    """Max of ``w(S) - lam * c(S)`` and an argmax set (may be empty)."""
    instance = ProjectSelection()
    for v in graph.nodes:
        instance.add_machine(v, lam * graph.cost(v))
    for index, (u, v, w) in enumerate(graph.edges()):
        instance.add_project(index, w, (u, v))
    profit, _, machines = instance.solve()
    return profit, machines


def solve_densest_exact(
    graph: WeightedGraph, tolerance: float = 1e-7, max_iters: int = 80
) -> Tuple[float, FrozenSet[Node]]:
    """Return ``(best ratio, node set)`` maximizing induced weight / cost.

    The empty set has ratio 0 by convention; a positive-weight zero-cost
    subgraph yields ``(inf, that set)``.
    """
    if graph.num_edges() == 0:
        return 0.0, frozenset()
    free = _free_positive_subgraph(graph)
    if free:
        return math.inf, free

    total_weight = graph.total_edge_weight()
    positive_costs = [graph.cost(v) for v in graph.nodes if graph.cost(v) > 0]
    lo, hi = 0.0, total_weight / min(positive_costs)
    best_set: Set[Node] = set()
    for _ in range(max_iters):
        lam = 0.5 * (lo + hi)
        profit, selection = _best_for_ratio(graph, lam)
        if profit > tolerance and selection:
            lo = lam
            best_set = selection
        else:
            hi = lam
        if hi - lo <= tolerance * max(1.0, hi):
            break
    if not best_set:
        # Ratio below the first midpoint: fall back to the best single edge.
        best_edge = max(graph.edges(), key=lambda e: e[2] / max(
            graph.cost(e[0]) + graph.cost(e[1]), 1e-12
        ))
        best_set = {best_edge[0], best_edge[1]}
    cost = graph.induced_cost(best_set)
    weight = graph.induced_weight(best_set)
    ratio = math.inf if cost == 0 else weight / cost
    return ratio, frozenset(best_set)
