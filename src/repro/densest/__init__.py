"""Densest-subgraph (DS) solvers — the substrate of ``A^ECC``.

DS here is the *ratio* version used in Section 5: maximize the sum of edge
(or hyperedge) weights fully inside ``S`` divided by the sum of node costs
of ``S``.  The graph case is solved exactly (binary search on the ratio +
project-selection min-cut, polynomial time as [35] promises); weighted
hypergraphs get the classical greedy peeling ``r``-approximation, which is
also what the paper itself used in its experiments.
"""

from repro.densest.exact_flow import solve_densest_exact
from repro.densest.peeling import solve_densest_peeling

__all__ = ["solve_densest_exact", "solve_densest_peeling"]
