"""Greedy peeling for weighted densest subhypergraphs.

The classical ``r``-approximation (``r`` = max hyperedge cardinality):
repeatedly remove the positive-cost node minimizing weighted-degree / cost
and keep the best weight/cost snapshot.  This is the algorithm from [35]
the paper itself used in its ECC experiments (it lacked the exact one).

Zero-cost nodes are never peeled: keeping them can only improve the ratio.
"""

from __future__ import annotations

import math
from typing import FrozenSet, Tuple

from repro.graphs.hypergraph import Hypergraph, Node


def solve_densest_peeling(hypergraph: Hypergraph) -> Tuple[float, FrozenSet[Node]]:
    """Return ``(best ratio, node set)`` by greedy peeling.

    The empty set has ratio 0; a positive-weight zero-cost configuration
    returns ``(inf, set)``.
    """
    work = hypergraph.subhypergraph(hypergraph.nodes)
    total_weight = sum(w for _, w in work.edges())
    total_cost = sum(work.cost(v) for v in work.nodes)

    def ratio(weight: float, cost: float) -> float:
        if weight <= 0:
            return 0.0
        return math.inf if cost == 0 else weight / cost

    best_ratio = ratio(total_weight, total_cost)
    best_set = frozenset(work.nodes)
    if best_ratio == math.inf:
        free = {v for v in work.nodes if work.cost(v) == 0.0}
        return math.inf, frozenset(free)

    weight, cost = total_weight, total_cost
    while True:
        candidates = [v for v in work.nodes if work.cost(v) > 0]
        if not candidates:
            break
        victim = min(
            candidates,
            key=lambda v: (work.weighted_degree(v) / work.cost(v), repr(v)),
        )
        weight -= work.weighted_degree(victim)
        cost -= work.cost(victim)
        work.remove_node(victim)
        current = ratio(weight, cost)
        if current > best_ratio:
            best_ratio = current
            best_set = frozenset(work.nodes)
            if best_ratio == math.inf:
                break
    # Drop nodes not participating in any induced hyperedge: the weight is
    # unchanged and the cost can only shrink, so the ratio never worsens.
    trimmed = {
        v
        for v in best_set
        if any(edge <= best_set for edge in hypergraph.incident_edges(v))
    }
    final = trimmed if trimmed else best_set
    final_cost = hypergraph.induced_cost(final)
    final_weight = hypergraph.induced_weight(final)
    return ratio(final_weight, final_cost), frozenset(final)
