"""Benchmark for the workload decomposition engine on a fragmented corpus.

Arms, all solving the same fragmented workload (disjoint topical
components, ≥8 by construction):

- **monolithic**: plain ``solve_bcc`` on the whole instance — the
  reference wall-clock and the reference utility;
- **sharded cold**: ``solve_bcc_sharded`` at ``jobs=4`` into an empty
  shard cache — decompose, fan out, recombine from scratch;
- **re-plan**: the same workload at a *different* global budget —
  monolithic must re-solve from scratch, while the sharded solver's
  per-shard tasks are budget-invariant (saturated shards don't change
  when the global budget moves) and serve from the shard cache;
- **fallback**: a single-component workload, where the sharded solver
  must degrade to the monolithic path with bounded overhead.

Correctness gates: the sharded utility must equal the monolithic utility
on every arm (the budgets here are non-binding, where recombination is
provably tension-free), and the fallback overhead must stay within
``TARGET_FALLBACK_OVERHEAD``.

The headline ``speedup`` is monolithic vs. **warm** sharded on the
re-plan arm — the speedup decomposition delivers on recurring workloads,
which a monolithic cache can never serve (its fingerprint includes the
budget).  ``speedup_cold`` reports the cold decompose-and-solve path,
which on a single-CPU box pays the per-shard fixed costs with no pool
fan-out to offset them; ``cpu_count`` is recorded so the two numbers
read honestly on any box.

Run directly::

    PYTHONPATH=src python benchmarks/bench_decompose.py [--quick]

or through pytest (``pytest benchmarks/bench_decompose.py``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from repro.algorithms.bcc import solve_bcc
from repro.datasets import generate_fragmented
from repro.decompose import ShardedConfig, partition_workload, solve_bcc_sharded
from repro.parallel.cache import ResultCache

RESULT_PATH = Path(__file__).parent / "BENCH_decompose.json"

#: The acceptance target: re-planning at jobs=4 at least 2x faster.
TARGET_SPEEDUP = 2.0
#: Single-component instances must stay within 5% of the direct solve.
TARGET_FALLBACK_OVERHEAD = 0.05
JOBS = 4
SEED = 3
_TOL = 1e-9


def _fragmented(quick: bool):
    # The quick shape must still leave the monolithic re-solve well above
    # the sharded solver's fixed warm-path costs, or the smoke run would
    # measure overhead, not the cache.
    components = 6 if quick else 8
    per_component = 30 if quick else 40
    return generate_fragmented(
        n_components=components,
        queries_per_component=per_component,
        budget=1_000_000.0,
        seed=SEED,
    )


def _single_component(quick: bool):
    # A dense pool (few properties, many queries) stays one connected
    # component; the assertion below keeps the arm honest.
    instance = generate_fragmented(
        n_components=1,
        queries_per_component=15 if quick else 40,
        properties_per_component=6,
        budget=1_000_000.0,
        seed=SEED,
    )
    assert partition_workload(instance).num_shards == 1, (
        "fallback arm instance unexpectedly fragmented; pick another seed"
    )
    return instance


def _timed(fn, *args, **kwargs):
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start


def run_bench(quick: bool = False, repeats: int = 2) -> dict:
    """All four arms; utilities must agree across every arm."""
    instance = _fragmented(quick)
    partition = partition_workload(instance)
    assert partition.num_shards >= (4 if quick else 8), (
        f"fragmented corpus produced only {partition.num_shards} shards"
    )
    replanned = instance.with_budget(800_000.0)

    mono_secs, cold_secs, replan_mono_secs, warm_secs = [], [], [], []
    with tempfile.TemporaryDirectory(prefix="repro-bench-decompose-") as tmp:
        cache = ResultCache(directory=Path(tmp))
        config = ShardedConfig(jobs=JOBS, cache=cache)

        mono, seconds = _timed(solve_bcc, instance)
        mono_secs.append(seconds)
        for _ in range(repeats - 1):
            mono_secs.append(_timed(solve_bcc, instance)[1])

        for _ in range(repeats):
            cache.clear()
            sharded, seconds = _timed(
                solve_bcc_sharded, instance, config, seed=SEED
            )
            cold_secs.append(seconds)
            assert sharded.utility == mono.utility, (
                f"sharded cold utility {sharded.utility} != monolithic {mono.utility}"
            )

        replan_mono, seconds = _timed(solve_bcc, replanned)
        replan_mono_secs.append(seconds)
        for _ in range(repeats - 1):
            replan_mono_secs.append(_timed(solve_bcc, replanned)[1])

        warm = None
        for _ in range(repeats):
            warm, seconds = _timed(
                solve_bcc_sharded, replanned, config, seed=SEED
            )
            warm_secs.append(seconds)
            assert warm.utility == replan_mono.utility, (
                f"sharded warm utility {warm.utility} != monolithic {replan_mono.utility}"
            )
        hits, misses = cache.stats.hits, cache.stats.misses

    # Fallback arm: single component, sharded must track the direct solve.
    # One warmup solve, then interleaved repeats — the first solve of a
    # fresh instance pays one-off compilation costs that would otherwise
    # land entirely on whichever arm runs first.
    single = _single_component(quick)
    solve_bcc(single)
    direct_secs, fallback_secs = [], []
    for _ in range(max(repeats, 3)):
        direct, seconds = _timed(solve_bcc, single)
        direct_secs.append(seconds)
        fallback, seconds = _timed(
            solve_bcc_sharded, single, ShardedConfig(jobs=1), seed=SEED
        )
        fallback_secs.append(seconds)
        assert fallback.utility == direct.utility, (
            f"fallback utility {fallback.utility} != direct {direct.utility}"
        )
        assert fallback.meta["decompose"]["path"] == "monolithic-fallback"

    mono_sec = min(mono_secs)
    cold_sec = min(cold_secs)
    replan_mono_sec = min(replan_mono_secs)
    warm_sec = min(warm_secs)
    direct_sec = min(direct_secs)
    fallback_sec = min(fallback_secs)
    overhead = (fallback_sec - direct_sec) / direct_sec

    return {
        "workload": f"fragmented @ {'quick' if quick else 'full'} (seed {SEED})",
        "queries": len(instance.queries),
        "shards": partition.num_shards,
        "jobs": JOBS,
        "repeats": repeats,
        "cpu_count": os.cpu_count(),
        "timer": "perf_counter wall seconds, min over repeats",
        "monolithic_sec": mono_sec,
        "sharded_cold_sec": cold_sec,
        "speedup_cold": mono_sec / cold_sec if cold_sec > 0 else float("inf"),
        "replan_monolithic_sec": replan_mono_sec,
        "replan_sharded_warm_sec": warm_sec,
        "speedup": replan_mono_sec / warm_sec if warm_sec > 0 else float("inf"),
        "target_speedup": TARGET_SPEEDUP,
        "cache": {"hits": hits, "misses": misses},
        "warm_cache_hits": warm.meta["decompose"]["cache_hits"],
        "warm_tasks": warm.meta["decompose"]["tasks"],
        "fallback": {
            "direct_sec": direct_sec,
            "sharded_sec": fallback_sec,
            "overhead_frac": overhead,
            "target_overhead_frac": TARGET_FALLBACK_OVERHEAD,
        },
        "identical_utilities": True,
    }


def write_result(result: dict, path: Path = RESULT_PATH) -> None:
    path.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")


def test_decompose_speedup(benchmark, scale):
    """Pytest entry: the four-arm comparison (quick shape under tiny/micro)."""
    from conftest import run_once

    quick = scale.name in ("micro", "tiny")
    result = run_once(benchmark, run_bench, quick=quick, repeats=2)
    assert result["identical_utilities"]
    assert result["speedup"] >= TARGET_SPEEDUP
    assert result["fallback"]["overhead_frac"] <= TARGET_FALLBACK_OVERHEAD
    write_result(result)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="small workload, CI smoke"
    )
    parser.add_argument("--out", type=Path, default=RESULT_PATH, help="result JSON path")
    args = parser.parse_args(argv)
    result = run_bench(quick=args.quick, repeats=2)
    write_result(result, args.out)
    print(
        f"{result['workload']}: {result['shards']} shards / {result['queries']} queries; "
        f"monolithic {result['monolithic_sec']:.2f}s, "
        f"sharded cold {result['sharded_cold_sec']:.2f}s "
        f"({result['speedup_cold']:.2f}x), "
        f"re-plan monolithic {result['replan_monolithic_sec']:.2f}s vs "
        f"warm {result['replan_sharded_warm_sec']:.3f}s ({result['speedup']:.1f}x), "
        f"fallback overhead {result['fallback']['overhead_frac']:+.1%}, "
        f"utilities identical on all arms"
    )
    if result["speedup"] < TARGET_SPEEDUP:
        print(f"WARNING: re-plan speedup below target {TARGET_SPEEDUP}x")
        return 1
    if result["fallback"]["overhead_frac"] > TARGET_FALLBACK_OVERHEAD:
        print(
            f"WARNING: fallback overhead above target {TARGET_FALLBACK_OVERHEAD:.0%}"
        )
        return 1
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
