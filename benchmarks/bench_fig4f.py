"""Figure 4f: ECC best utility/cost ratio on the Synthetic dataset.

Paper shape: A^ECC attains the best ratio of all four algorithms.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from shape import assert_best_per_point

from conftest import run_once
from repro.experiments.figures import fig4f


def test_fig4f(benchmark, scale, parallel):
    result = run_once(benchmark, fig4f, scale=scale, parallel=parallel)
    assert_best_per_point(result, "A^ECC")
