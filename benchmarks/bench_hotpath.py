"""Hot-path benchmark: incremental transpose + portfolio kernels vs legacy.

Times this PR's two measured hot paths against faithful re-creations of
the pre-PR code, asserting byte-identical answers on every compared arm:

- ``micro_probe`` — the gain-probe kernel under *interleaved mutations*:
  the solver-loop pattern of checkpoint/add/probe/rollback/commit on the
  ``bits`` tracker.  The legacy arm reinstates invalidate-on-mutation
  (``_t_by_prop = None`` after every add/undo/remove, exactly where the
  old code set ``_transposed = None``), so each first probe after a
  mutation pays the full transpose rebuild walk the incremental
  maintenance now avoids.  Identical gain sequences and final rebuild
  counters are recorded for both arms.
- ``end_to_end`` — ``solve_bcc`` on the wide 950-property shape PR 4
  recorded at 0.97x.  The legacy arm stacks every pre-PR behavior: the
  invalidate-always tracker, the string-tuple peeling heap, the
  per-comparison expansion tiebreaks, the dict-based swap local search,
  an always-miss portfolio memo, and the per-edge QK graph builds.
  Solutions must be byte-identical per seed; the current arm's
  ``transpose_rebuilds`` telemetry (the A^BCC picks loop) is recorded —
  the perf-smoke CI job gates on that counter, not on wall-clock.
  Every timed current-arm solve is also appended to ``arm_observations``
  (arm/engine/features/seconds/utility), the rows
  ``repro.slo.stats.seed_store_from_bench`` replays into the arm-stats
  store so SLO schedules track post-optimization runtimes.

Measurement methodology follows ``bench_bitset``: process CPU seconds
with the garbage collector disabled in timed regions, arms interleaved
within every repeat, minimum over repeats reported.

Run directly::

    PYTHONPATH=src python benchmarks/bench_hotpath.py [--quick]

or through pytest (``pytest benchmarks/bench_hotpath.py``), where the
TINY scale maps to the quick spec and the rebuild-counter assertions
(not wall-clock ratios) gate the run.
"""

from __future__ import annotations

import argparse
import gc
import heapq
import json
import random
import sys
import time
from contextlib import contextmanager
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import repro.dks.lovasz as lovasz_mod
import repro.dks.portfolio as portfolio_mod
import repro.dks.spectral as spectral_mod
from repro.algorithms.bcc import AbccConfig, solve_bcc
from repro.core.bitset import use_engine
from repro.core.coverage import BitsetCoverageTracker, CoverageTracker
from repro.datasets.synthetic import generate_synthetic
from repro.dks.portfolio import HksPortfolio
from repro.graphs.graph import WeightedGraph, edge_key, node_repr
from repro.qk import QKConfig
from repro.slo.features import instance_features

RESULT_PATH = Path(__file__).parent / "BENCH_hotpath.json"

QUICK_SPEC = {
    "micro_probe": {
        "n_queries": 1200,
        "n_properties": 60,
        "budget": 400.0,
        "seed": 0,
        "pool": 80,
        "slates": 24,
        "slate_size": 12,
        "commits": 12,
        "probes_per_mutation": 3,
        "repeats": 2,
    },
    "end_to_end": {
        "n_queries": 300,
        "n_properties": 240,
        "budget": 600.0,
        "seeds": [0, 1],
        "repeats": 2,
    },
}
MEDIUM_SPEC = {
    "micro_probe": {
        "n_queries": 4000,
        "n_properties": 80,
        "budget": 400.0,
        "seed": 0,
        "pool": 120,
        "slates": 50,
        "slate_size": 16,
        "commits": 30,
        "probes_per_mutation": 4,
        "repeats": 3,
    },
    # The wide shape PR 4 recorded at 0.97x: many properties, so the
    # transpose is expensive to rebuild and the QK/DkS portfolio carries
    # most of the end-to-end time.
    "end_to_end": {
        "n_queries": 1500,
        "n_properties": 950,
        "budget": 2500.0,
        "seeds": [0, 1, 2],
        "repeats": 2,
    },
}


def _timed(fn):
    """CPU-time ``fn()`` with the collector off; returns (result, seconds)."""
    gc.collect()
    gc.disable()
    try:
        started = time.process_time()
        result = fn()
        elapsed = time.process_time() - started
    finally:
        gc.enable()
    return result, elapsed


# ----------------------------------------------------------------------
# legacy arms: faithful re-creations of the pre-PR code paths
# ----------------------------------------------------------------------
@contextmanager
def legacy_invalidate_always():
    """Reinstate the pre-incremental tracker: drop the transpose on mutation.

    Wraps the ``bits`` mutation methods to null ``_t_by_prop`` exactly
    where the old code nulled ``_transposed`` — *before* delegating, so
    the incremental maintenance sees a cold transpose and skips itself;
    the legacy arm pays neither maintenance nor stale state.
    """
    cls = BitsetCoverageTracker
    orig_add, orig_undo, orig_remove = cls.add, cls._undo_one, cls.remove

    def add(self, classifier):
        if classifier not in self._selected and self._compiled.mask_of(classifier):
            self._t_by_prop = None
        return orig_add(self, classifier)

    def _undo_one(self):
        if self._undo and self._undo[-1][2]:
            self._t_by_prop = None
        return orig_undo(self)

    def remove(self, classifier):
        if not self._checkpoints and self._selected_masks.get(classifier):
            self._t_by_prop = None
        return orig_remove(self, classifier)

    cls.add, cls._undo_one, cls.remove = add, _undo_one, remove
    try:
        yield
    finally:
        cls.add, cls._undo_one, cls.remove = orig_add, orig_undo, orig_remove


def _legacy_solve_peeling(graph, k, rng=None):
    """The pre-PR peeling kernel: string-tuple lazy heap over node dicts."""
    if k <= 0:
        return frozenset()
    alive = set(graph.nodes)
    if len(alive) <= k:
        return frozenset(alive)
    degree = {u: graph.weighted_degree(u) for u in alive}
    heap = [(d, node_repr(u), u) for u, d in degree.items()]
    heapq.heapify(heap)
    while len(alive) > k:
        d, _, u = heapq.heappop(heap)
        if u not in alive or d > degree[u] + 1e-12:
            continue
        alive.discard(u)
        for v, w in graph.neighbors(u).items():
            if v in alive:
                degree[v] -= w
                heapq.heappush(heap, (degree[v], node_repr(v), v))
    return frozenset(alive)


def _legacy_improve_by_swaps(graph, selection, max_passes=50):
    """The pre-PR swap polish: per-pass dict scans, no dense gain rows."""
    selected = set(selection)
    if not selected or len(selected) >= len(graph):
        return frozenset(selected)
    inside_degree = {
        u: graph.weighted_degree(u, within=selected) for u in graph.nodes
    }
    for _ in range(max_passes):
        worst = min(selected, key=lambda u: (inside_degree[u], node_repr(u)))
        best_gain = inside_degree[worst]
        best_candidate = None
        worst_nbrs = graph.neighbors(worst)
        for v in graph.nodes:
            if v in selected:
                continue
            gain = inside_degree[v] - worst_nbrs.get(v, 0.0)
            if gain > best_gain + 1e-12:
                best_gain = gain
                best_candidate = v
        if best_candidate is None:
            break
        selected.discard(worst)
        for v, w in worst_nbrs.items():
            inside_degree[v] -= w
        selected.add(best_candidate)
        for v, w in graph.neighbors(best_candidate).items():
            inside_degree[v] += w
    return frozenset(selected)


def _legacy_solve_expansion(graph, k, rng=None):
    """The pre-PR expansion kernel: per-comparison degree/repr tiebreaks."""
    if k <= 0:
        return frozenset()
    nodes = list(graph.nodes)
    if len(nodes) <= k:
        return frozenset(nodes)
    best_edge = None
    best_weight = -1.0
    for u, v, w in graph.edges():
        if w > best_weight:
            best_weight = w
            best_edge = (u, v)
    if best_edge is None:
        return frozenset(nodes[:k])
    if k == 1:
        top = max(nodes, key=lambda u: (graph.weighted_degree(u), node_repr(u)))
        return frozenset({top})
    selected = set(best_edge)
    gain = {}
    for u in selected:
        for v, w in graph.neighbors(u).items():
            if v not in selected:
                gain[v] = gain.get(v, 0.0) + w
    while len(selected) < k:
        if gain:
            candidate = max(
                gain,
                key=lambda u: (gain[u], graph.weighted_degree(u), node_repr(u)),
            )
        else:
            outside = [u for u in nodes if u not in selected]
            candidate = max(
                outside, key=lambda u: (graph.weighted_degree(u), node_repr(u))
            )
        selected.add(candidate)
        gain.pop(candidate, None)
        for v, w in graph.neighbors(candidate).items():
            if v not in selected:
                gain[v] = gain.get(v, 0.0) + w
    return frozenset(selected)


def _never_memo_key(self, graph, k):
    """Always-miss memo key: each call returns a fresh, unequal object."""
    return object()


def _legacy_edges(self):
    """The pre-PR edges() snapshot build: edge_key per encountered edge."""
    cached = self._edge_list
    if cached is None:
        cached = []
        visited = set()
        for u, nbrs in self._adj.items():
            visited.add(u)
            for v, w in nbrs.items():
                if v not in visited:
                    key = edge_key(u, v)
                    cached.append((key[0], key[1], w))
        self._edge_list = cached
    return iter(cached)


def _legacy_add_edges(self, edges):
    """Pre-PR bulk insert: one add_edge call (full dispatch) per edge."""
    for u, v, w in edges:
        self.add_edge(u, v, w)


@contextmanager
def legacy_graph_construction():
    """Swap the pre-PR graph-build paths (per-edge add_edge, keyed edges)."""
    saved = (WeightedGraph.edges, WeightedGraph.add_edges)
    WeightedGraph.edges = _legacy_edges
    WeightedGraph.add_edges = _legacy_add_edges
    try:
        yield
    finally:
        WeightedGraph.edges, WeightedGraph.add_edges = saved


@contextmanager
def legacy_kernels():
    """Swap the pre-PR DkS kernels and memo-less portfolio back in."""
    saved = (
        portfolio_mod.ENGINES["peeling"],
        portfolio_mod.ENGINES["expansion"],
        portfolio_mod.improve_by_swaps,
        spectral_mod.improve_by_swaps,
        lovasz_mod.improve_by_swaps,
        HksPortfolio._memo_key,
    )
    portfolio_mod.ENGINES["peeling"] = _legacy_solve_peeling
    portfolio_mod.ENGINES["expansion"] = _legacy_solve_expansion
    portfolio_mod.improve_by_swaps = _legacy_improve_by_swaps
    spectral_mod.improve_by_swaps = _legacy_improve_by_swaps
    lovasz_mod.improve_by_swaps = _legacy_improve_by_swaps
    HksPortfolio._memo_key = _never_memo_key
    try:
        yield
    finally:
        (
            portfolio_mod.ENGINES["peeling"],
            portfolio_mod.ENGINES["expansion"],
            portfolio_mod.improve_by_swaps,
            spectral_mod.improve_by_swaps,
            lovasz_mod.improve_by_swaps,
            HksPortfolio._memo_key,
        ) = saved


@contextmanager
def _current():
    yield


@contextmanager
def _legacy_all():
    with legacy_invalidate_always(), legacy_kernels(), legacy_graph_construction():
        yield


ARMS = ("current", "legacy")
_ARM_CONTEXT = {"current": _current, "legacy": _legacy_all}


# ----------------------------------------------------------------------
# micro: gain probes under interleaved mutations
# ----------------------------------------------------------------------
def _dense_pool(instance, size: int):
    relevant = sorted(instance.relevant_classifiers(), key=sorted)
    return sorted(
        relevant,
        key=lambda c: (-len(instance.queries_containing(c)), sorted(c)),
    )[:size]


def _probe_micro(spec: dict) -> dict:
    with use_engine("bits"):
        instance = generate_synthetic(
            n_queries=spec["n_queries"],
            n_properties=spec["n_properties"],
            budget=spec["budget"],
            seed=spec["seed"],
        )
        pool = _dense_pool(instance, spec["pool"])
        rng = random.Random(spec["seed"])
        slates = [
            rng.sample(pool, spec["slate_size"]) for _ in range(spec["slates"])
        ]
        commits = pool[: spec["commits"]]

        def run(tracker):
            # The solver-loop shape: trial mutations probed under a
            # checkpoint, rolled back, then a committed add — probes
            # always land on a just-mutated tracker.
            gains = []
            si = 0
            for classifier in commits:
                tracker.checkpoint()
                tracker.add(classifier)
                for _ in range(spec["probes_per_mutation"]):
                    gains.append(tracker.probe_gain(slates[si % len(slates)]))
                    si += 1
                tracker.rollback()
                tracker.add(classifier)
                gains.append(tracker.probe_gain(slates[si % len(slates)]))
                si += 1
            return gains

        best = dict.fromkeys(ARMS)
        rebuilds = dict.fromkeys(ARMS)
        for _ in range(spec["repeats"]):
            outputs = {}
            finals = {}
            for arm in ARMS:
                with _ARM_CONTEXT[arm]():
                    tracker = CoverageTracker(instance)
                    tracker._transpose()  # both arms start warm
                    result, seconds = _timed(lambda: run(tracker))
                outputs[arm] = result
                finals[arm] = (list(tracker._missing), tracker.spent)
                rebuilds[arm] = tracker.transpose_rebuilds
                if best[arm] is None or seconds < best[arm]:
                    best[arm] = seconds
            assert outputs["current"] == outputs["legacy"], "probe gains diverged"
            assert finals["current"] == finals["legacy"], "tracker state diverged"
    return {
        "workload": {
            k: spec[k] for k in ("n_queries", "n_properties", "budget", "seed")
        },
        "slates": spec["slates"],
        "slate_size": spec["slate_size"],
        "commits": spec["commits"],
        "probes_per_mutation": spec["probes_per_mutation"],
        "legacy_sec": best["legacy"],
        "current_sec": best["current"],
        "speedup": (
            best["legacy"] / best["current"] if best["current"] > 0 else float("inf")
        ),
        "rebuild_count": {arm: rebuilds[arm] for arm in ARMS},
        "identical_gains": True,
    }


# ----------------------------------------------------------------------
# end-to-end: solve_bcc on the wide shape, current vs legacy-everything
# ----------------------------------------------------------------------
def _e2e_bench(spec: dict) -> dict:
    runs = {arm: [] for arm in ARMS}
    observations = []
    for seed in spec["seeds"]:
        best = dict.fromkeys(ARMS)
        for _ in range(spec["repeats"]):
            for arm in ARMS:
                with use_engine("bits"), _ARM_CONTEXT[arm]():
                    instance = generate_synthetic(
                        n_queries=spec["n_queries"],
                        n_properties=spec["n_properties"],
                        budget=spec["budget"],
                        seed=seed,
                    )
                    features = instance_features(instance)
                    solution, elapsed = _timed(
                        lambda: solve_bcc(instance, AbccConfig(qk=QKConfig(rounds=2)))
                    )
                run = {
                    "seed": seed,
                    "utility": solution.utility,
                    "cost": solution.cost,
                    "classifiers": solution.classifiers,
                    "seconds": elapsed,
                    "transpose_rebuilds": solution.meta["engine"][
                        "transpose_rebuilds"
                    ],
                }
                if arm == "current":
                    observations.append(
                        {
                            "arm": "abcc",
                            "engine": "bits",
                            "features": list(features),
                            "seconds": elapsed,
                            "utility": solution.utility,
                        }
                    )
                if best[arm] is None or run["seconds"] < best[arm]["seconds"]:
                    best[arm] = run
        assert best["current"]["classifiers"] == best["legacy"]["classifiers"], (
            f"seed {seed}: current and legacy selected different classifiers"
        )
        assert best["current"]["utility"] == best["legacy"]["utility"]
        assert best["current"]["cost"] == best["legacy"]["cost"]
        for arm in ARMS:
            record = dict(best[arm])
            record["classifiers"] = len(record.pop("classifiers"))
            runs[arm].append(record)
    totals = {arm: sum(r["seconds"] for r in runs[arm]) for arm in ARMS}
    return {
        "workload": {k: spec[k] for k in ("n_queries", "n_properties", "budget")},
        "seeds": list(spec["seeds"]),
        "repeats": spec["repeats"],
        "runs": runs,
        "legacy_total_sec": totals["legacy"],
        "current_total_sec": totals["current"],
        "speedup": (
            totals["legacy"] / totals["current"]
            if totals["current"] > 0
            else float("inf")
        ),
        "picks_loop_rebuilds": {
            arm: max(r["transpose_rebuilds"] for r in runs[arm]) for arm in ARMS
        },
        "identical_solutions": True,
    }, observations


def run_bench(spec: dict) -> dict:
    e2e, observations = _e2e_bench(spec["end_to_end"])
    return {
        "timer": "process_time, gc disabled (CPU seconds, min over repeats)",
        "baseline": (
            "legacy arm = pre-PR code: invalidate-always transpose, "
            "string-tuple peeling heap, per-comparison expansion tiebreaks, "
            "dict swap search, memo-less portfolio, per-edge graph builds"
        ),
        "micro_probe": _probe_micro(spec["micro_probe"]),
        "end_to_end": e2e,
        "arm_observations": observations,
    }


def check_rebuild_telemetry(result: dict) -> None:
    """The perf-smoke gate: counters, not wall-clock (runner-stable).

    The incremental tracker must stay at the one cold build per tracker
    in the probe loop, and per-solve rebuilds in the A^BCC picks loop
    must stay in low single digits — a regression to invalidate-always
    behavior puts both counters at one-per-mutation magnitudes.
    """
    micro = result["micro_probe"]
    assert micro["rebuild_count"]["current"] <= 1, (
        f"incremental transpose rebuilt {micro['rebuild_count']['current']} "
        "times in the probe loop; expected at most the one cold build"
    )
    assert micro["rebuild_count"]["legacy"] > micro["rebuild_count"]["current"], (
        "legacy arm did not rebuild more than the incremental arm — the "
        "baseline is not exercising invalidate-always behavior"
    )
    picks = result["end_to_end"]["picks_loop_rebuilds"]
    assert picks["current"] <= 5, (
        f"solve_bcc performed {picks['current']} transpose rebuilds; "
        "expected ~0 (at most one cold build per tracker epoch)"
    )
    assert micro["identical_gains"] and result["end_to_end"]["identical_solutions"]


def write_result(result: dict, path: Path = RESULT_PATH) -> None:
    path.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")


def test_hotpath_kernels(benchmark, scale):
    """Pytest entry: quick spec at tiny scale, medium otherwise.

    Gates on answer identity and the rebuild-count telemetry — never on
    wall-clock ratios; the recorded JSON is the performance artifact.
    """
    from conftest import run_once

    spec = QUICK_SPEC if scale.name == "tiny" else MEDIUM_SPEC
    result = run_once(benchmark, run_bench, spec=spec)
    check_rebuild_telemetry(result)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="small workload (CI smoke mode)"
    )
    parser.add_argument(
        "--out", type=Path, default=RESULT_PATH, help="result JSON path"
    )
    args = parser.parse_args(argv)
    spec = QUICK_SPEC if args.quick else MEDIUM_SPEC
    result = run_bench(spec)
    check_rebuild_telemetry(result)
    write_result(result, args.out)
    micro = result["micro_probe"]
    e2e = result["end_to_end"]
    print(
        f"micro_probe {micro['workload']['n_queries']}q/"
        f"{micro['workload']['n_properties']}p, {micro['commits']} commits x "
        f"{micro['probes_per_mutation']} probes: "
        f"legacy {micro['legacy_sec']:.3f}s -> current {micro['current_sec']:.3f}s "
        f"({micro['speedup']:.2f}x), rebuilds {micro['rebuild_count']['legacy']} -> "
        f"{micro['rebuild_count']['current']}"
    )
    print(
        f"solve_bcc {e2e['workload']['n_queries']}q/"
        f"{e2e['workload']['n_properties']}p x {len(e2e['seeds'])} seeds: "
        f"legacy {e2e['legacy_total_sec']:.2f}s -> "
        f"current {e2e['current_total_sec']:.2f}s ({e2e['speedup']:.2f}x), "
        f"identical solutions, picks-loop rebuilds "
        f"{e2e['picks_loop_rebuilds']['legacy']} -> "
        f"{e2e['picks_loop_rebuilds']['current']}"
    )
    print(f"recorded {len(result['arm_observations'])} arm observation(s)")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
