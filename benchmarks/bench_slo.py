"""Benchmark for the anytime latency-SLO meta-solver.

Measures, on a fragmented workload under the real system clock:

- **incumbent quality vs deadline**: the certified incumbent's utility at
  each point of a deadline grid, as a fraction of the full-portfolio
  best (the unbounded solve);
- **cost-model accuracy**: mean absolute error between predicted and
  actual arm runtimes, after a warm-up pass has populated the (in-memory)
  arm-stats store;
- **honest overruns**: every deadline overrun the scheduler incurred —
  per-task timeouts are advisory (CPython cannot preempt a solver), so
  the benchmark records them instead of pretending they cannot happen.

Correctness gates: the incumbent at *every* deadline — 0ms included —
carries a verified first-principles certificate, the incumbent trace
passes the dominance verifier, and the unbounded incumbent matches the
full-portfolio best exactly.

Run directly::

    PYTHONPATH=src python benchmarks/bench_slo.py [--quick]

or through pytest (``pytest benchmarks/bench_slo.py``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from repro.datasets import generate_fragmented
from repro.slo import AnytimeMetaSolver, ArmStatsStore, SloConfig
from repro.verify import check_incumbent_trace

RESULT_PATH = Path(__file__).parent / "BENCH_slo.json"

DEADLINES_MS = (0.0, 1.0, 5.0, 20.0, 100.0, 500.0, None)
WARMUP_PASSES = 2
SEED = 3


def _instance(quick: bool):
    components = 5 if quick else 16
    return generate_fragmented(
        n_components=components,
        queries_per_component=6 if quick else 8,
        budget=150.0 * components,
        seed=SEED,
    )


def run_bench(quick: bool = False) -> dict:
    instance = _instance(quick)
    stats = ArmStatsStore(path=None)
    solver = AnytimeMetaSolver(SloConfig(stats=stats, record=True))

    # Warm-up: unbounded solves teach the store what each arm costs here.
    for _ in range(WARMUP_PASSES):
        solver.solve(instance, deadline_ms=None)

    curve = []
    errors_ms = []
    overruns = []
    best_utility = None
    for deadline_ms in DEADLINES_MS:
        solution = solver.solve(instance, deadline_ms=deadline_ms)
        assert "certificate" in solution.meta, "incumbent not certified"
        check_incumbent_trace(instance, solver.last_trace)
        slo = solution.meta["slo"]
        if deadline_ms is None:
            best_utility = solution.utility
        for entry in slo["arms_tried"]:
            errors_ms.append(abs(entry["predicted_ms"] - entry["actual_ms"]))
        if slo["overrun_ms"] > 0.0:
            overruns.append(
                {"deadline_ms": deadline_ms, "overrun_ms": slo["overrun_ms"]}
            )
        curve.append(
            {
                "deadline_ms": deadline_ms,
                "utility": solution.utility,
                "cost": solution.cost,
                "elapsed_ms": slo["elapsed_ms"],
                "overrun_ms": slo["overrun_ms"],
                "arms_tried": len(slo["arms_tried"]),
                "arms_skipped": len(slo["arms_skipped"]),
                "incumbent_updates": slo["incumbent_updates"],
            }
        )
    assert best_utility is not None
    for row in curve:
        row["quality_fraction"] = (
            row["utility"] / best_utility if best_utility > 0 else 1.0
        )

    unbounded = [row for row in curve if row["deadline_ms"] is None][0]
    zero = [row for row in curve if row["deadline_ms"] == 0.0][0]
    return {
        "workload": f"fragmented @ {'quick' if quick else 'full'} (seed {SEED})",
        "queries": len(instance.queries),
        "warmup_passes": WARMUP_PASSES,
        "cpu_count": os.cpu_count(),
        "timer": "injected SystemClock (perf_counter) wall seconds",
        "curve": curve,
        "predicted_vs_actual_mae_ms": (
            sum(errors_ms) / len(errors_ms) if errors_ms else None
        ),
        "prediction_samples": len(errors_ms),
        "observations_recorded": stats.total_observations(),
        "overruns": overruns,
        "max_overrun_ms": max((o["overrun_ms"] for o in overruns), default=0.0),
        "zero_deadline_quality": zero["quality_fraction"],
        "unbounded_quality": unbounded["quality_fraction"],
        "certified": True,
    }


def write_result(result: dict, path: Path = RESULT_PATH) -> None:
    path.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")


def test_slo_anytime(benchmark, scale):
    """Pytest entry: the deadline curve (quick shape under tiny/micro)."""
    from conftest import run_once

    quick = scale.name in ("micro", "tiny")
    result = run_once(benchmark, run_bench, quick=quick)
    assert result["certified"]
    assert result["unbounded_quality"] == 1.0
    # per-arm seeds are deterministic, so the unbounded solve dominates
    # every deadline-limited subset of the portfolio
    assert all(row["quality_fraction"] <= 1.0 + 1e-9 for row in result["curve"])
    write_result(result)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="small workload, CI smoke"
    )
    parser.add_argument("--out", type=Path, default=RESULT_PATH, help="result JSON path")
    args = parser.parse_args(argv)
    result = run_bench(quick=args.quick)
    write_result(result, args.out)
    mae = result["predicted_vs_actual_mae_ms"]
    print(
        f"{result['workload']}: {result['queries']} queries; "
        f"0ms quality {result['zero_deadline_quality']:.3f}, "
        f"unbounded 1.000; predicted-vs-actual MAE "
        f"{mae:.2f}ms over {result['prediction_samples']} arms; "
        f"{len(result['overruns'])} overrun(s), worst "
        f"{result['max_overrun_ms']:.1f}ms; every incumbent certified"
    )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
