"""Ablation: HkS engine choice inside A^BCC (DESIGN.md section 5).

The paper plugs the heuristic of Konar & Sidiropoulos into ``A_H^QK`` as a
black box and notes any HkS solver can be substituted.  This ablation
compares the portfolio default against single-engine variants on one
Private-like instance.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import pytest

from repro.algorithms import AbccConfig, solve_bcc
from repro.datasets import generate_private
from repro.dks.portfolio import HksPortfolio
from repro.mc3 import full_cover_cost
from repro.qk import QKConfig

ENGINE_SETS = {
    "portfolio": ("peeling", "expansion", "lovasz", "spectral"),
    "peeling-only": ("peeling",),
    "expansion-only": ("expansion",),
    "lovasz-only": ("lovasz",),
}


@pytest.fixture(scope="module")
def instance(scale):
    base = generate_private(
        max(200, scale.p_queries // 4), max(300, scale.p_properties // 4), seed=11
    )
    budget = round(full_cover_cost(base) * 0.25)
    return base.with_budget(budget)


@pytest.mark.parametrize("engines_name", sorted(ENGINE_SETS))
def test_hks_engine(benchmark, instance, engines_name):
    config = AbccConfig(
        qk=QKConfig(hks=HksPortfolio(engines=ENGINE_SETS[engines_name]))
    )
    solution = benchmark.pedantic(
        solve_bcc, args=(instance, config), rounds=1, iterations=1
    )
    assert solution.cost <= instance.budget + 1e-9
    assert solution.utility > 0
    benchmark.extra_info["utility"] = solution.utility
