"""Load benchmark for the multi-tenant serving façade.

Replays a seeded Zipf traffic trace (10k requests over 8 tenants at full
scale) through :class:`~repro.serving.facade.ServingFacade` and measures:

- **throughput**: requests/second on the system clock (the wall leg);
- **latency**: p50/p99 request latency, on both the wall leg (real
  seconds) and the virtual leg (simulated tier-prior seconds);
- **cache effectiveness**: hit rate over cache-consulting requests —
  Zipf tenant popularity must push it past 50%;
- **SLO overruns**: cold solves whose anytime schedule overran the
  request deadline (advisory timeouts — recorded, never hidden).

Correctness gates, asserted on every run:

- the virtual-clock replay is **byte-identical** across two independent
  façades (fresh caches, fresh stats) and across the ``sets`` / ``bits``
  / ``matrix`` coverage engines — canonical response sequences compared
  position by position;
- **every** successful response carries a certificate consistent with
  its solution, and no request errors;
- the cache hit rate clears the 50% floor.

Run directly::

    PYTHONPATH=src python benchmarks/bench_serving.py [--quick]

or through pytest (``pytest benchmarks/bench_serving.py``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from repro.core.bitset import ENGINES, use_engine
from repro.parallel.cache import ResultCache
from repro.serving import (
    ServingConfig,
    ServingFacade,
    generate_trace,
    tier_prior_clock,
)

RESULT_PATH = Path(__file__).parent / "BENCH_serving.json"

SEED = 0
DEADLINE_MS = 20.0
N_TENANTS = 8


def _trace(quick: bool):
    # Low workload churn keeps the fingerprint universe small, so the
    # Zipf head serves warm — the regime the façade is built for.
    return generate_trace(
        n_requests=600 if quick else 10_000,
        n_tenants=N_TENANTS,
        seed=SEED,
        deadline_ms=DEADLINE_MS,
        replan_fraction=0.005,
        what_if_fraction=0.10,
        budget_levels=2,
    )


def _replay(trace, clock):
    """One fresh façade + fresh cache serving ``trace`` end to end."""
    with tempfile.TemporaryDirectory(prefix="repro-serving-bench-") as scratch:
        facade = ServingFacade(
            ServingConfig(
                clock=clock,
                cache=ResultCache(directory=Path(scratch), max_entries=8192),
            )
        )
        responses = facade.replay(trace)
        return responses, facade.counters


def _percentile(values, q):
    if not values:
        return 0.0
    ranked = sorted(values)
    return ranked[min(len(ranked) - 1, max(0, round(q * (len(ranked) - 1))))]


def _check_certified(responses) -> int:
    """Every ok response carries a self-consistent certificate; count errors."""
    errors = 0
    for response in responses:
        if not response.ok:
            errors += 1
            continue
        certificate = response.solution.meta.get("certificate")
        assert certificate is not None, f"request {response.request_id} uncertified"
        assert frozenset(certificate.classifiers) == response.solution.classifiers
    return errors


def _overruns(responses):
    """Deadline overruns among the responses that actually ran the solver."""
    rows = []
    for response in responses:
        if not response.ok or response.telemetry.get("cache") == "hit":
            continue
        slo = response.telemetry.get("slo")
        if isinstance(slo, dict) and slo.get("overrun_ms", 0.0) > 0.0:
            rows.append(
                {
                    "request_id": response.request_id,
                    "overrun_ms": slo["overrun_ms"],
                }
            )
    return rows


def run_bench(quick: bool = False) -> dict:
    trace = _trace(quick)

    # Virtual legs: determinism gates (byte-identity across runs/engines).
    baseline, counters = _replay(trace, tier_prior_clock())
    canonical = [response.canonical() for response in baseline]
    rerun, _ = _replay(trace, tier_prior_clock())
    assert [r.canonical() for r in rerun] == canonical, "replay is not deterministic"
    for engine in ENGINES:
        if engine == "sets":
            continue
        with use_engine(engine):
            replayed, _ = _replay(trace, tier_prior_clock())
        assert (
            [r.canonical() for r in replayed] == canonical
        ), f"engine {engine} diverged from sets"

    assert _check_certified(baseline) == 0, "trace produced error responses"
    hit_rate = counters.hit_rate()
    assert hit_rate >= 0.5, f"cache hit rate {hit_rate:.3f} below the 50% floor"

    virtual_latencies = [
        r.telemetry["finish_s"] - r.telemetry["arrival_s"] for r in baseline
    ]
    overruns = _overruns(baseline)

    # Wall leg: the same trace on the system clock, for throughput.
    start = time.perf_counter()
    wall_responses, wall_counters = _replay(trace, None)
    wall_seconds = time.perf_counter() - start
    assert _check_certified(wall_responses) == 0
    wall_latencies = [
        r.telemetry["finish_s"] - r.telemetry["arrival_s"] for r in wall_responses
    ]

    return {
        "trace": {
            "requests": len(trace),
            "tenants": N_TENANTS,
            "seed": SEED,
            "deadline_ms": DEADLINE_MS,
            "kinds": trace.kind_counts(),
            "scale": "quick" if quick else "full",
        },
        "cpu_count": os.cpu_count(),
        "deterministic": {
            "runs_identical": True,
            "engines_identical": list(ENGINES),
            "clock": "tier-prior virtual",
        },
        "throughput_rps": len(trace) / wall_seconds if wall_seconds > 0 else None,
        "wall_seconds": wall_seconds,
        "latency_wall_s": {
            "p50": _percentile(wall_latencies, 0.50),
            "p99": _percentile(wall_latencies, 0.99),
        },
        "latency_virtual_s": {
            "p50": _percentile(virtual_latencies, 0.50),
            "p99": _percentile(virtual_latencies, 0.99),
        },
        "cache": {
            "hits": counters.cache_hits,
            "misses": counters.cache_misses,
            "rejected": counters.cache_rejected,
            "hit_rate": hit_rate,
        },
        "counters": counters.snapshot(),
        "wall_counters": wall_counters.snapshot(),
        "slo_overruns": len(overruns),
        "max_overrun_ms": max((o["overrun_ms"] for o in overruns), default=0.0),
        "certified": True,
    }


def write_result(result: dict, path: Path = RESULT_PATH) -> None:
    path.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")


def test_serving_load(benchmark, scale):
    """Pytest entry: the serving loop under load (quick shape in CI)."""
    from conftest import run_once

    quick = scale.name in ("micro", "tiny")
    result = run_once(benchmark, run_bench, quick=quick)
    assert result["certified"]
    assert result["deterministic"]["runs_identical"]
    assert result["cache"]["hit_rate"] >= 0.5
    assert result["counters"]["errors"] == 0
    write_result(result)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small trace, CI smoke")
    parser.add_argument("--out", type=Path, default=RESULT_PATH, help="result JSON path")
    args = parser.parse_args(argv)
    result = run_bench(quick=args.quick)
    write_result(result, args.out)
    print(
        f"{result['trace']['requests']} requests / {result['trace']['tenants']} tenants: "
        f"{result['throughput_rps']:.0f} req/s wall; "
        f"wall p50 {result['latency_wall_s']['p50'] * 1000.0:.2f}ms "
        f"p99 {result['latency_wall_s']['p99'] * 1000.0:.2f}ms; "
        f"hit rate {result['cache']['hit_rate']:.3f}; "
        f"{result['slo_overruns']} overrun(s); byte-identical across "
        f"2 runs and {len(result['deterministic']['engines_identical'])} engines; "
        f"every response certified"
    )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
