"""Benchmark for the incremental delta re-solve engine.

Arms, all over the same fragmented workload (disjoint topical
components) at a non-binding budget:

- **cold monolithic**: plain ``solve_bcc`` on the mutated instance — the
  reference wall-clock for re-planning from scratch;
- **cold incremental**: ``IncrementalSolver.solve()`` on a pristine
  clone of the mutated instance — what the warm path must match
  bit-for-bit;
- **warm resolve_delta**: the engine re-plans after a ~1% workload delta,
  reusing every untouched shard's solved profile.

Correctness gates on every repeat: the warm selection, utility and cost
must equal the cold incremental solve exactly (no tolerance), the warm
utility must equal the monolithic utility (non-binding budgets make the
decomposition exact), and every warm result carries a verified
first-principles certificate.  The headline ``speedup`` is cold
monolithic vs. warm re-plan at ``DELTA_FRACTION``; a sweep over larger
delta fractions records how the advantage drains as deltas grow (the
``figdrift`` figure plots the same curve).

Run directly::

    PYTHONPATH=src python benchmarks/bench_incremental.py [--quick]

or through pytest (``pytest benchmarks/bench_incremental.py``).
"""

from __future__ import annotations

import argparse
import json
import math
import os
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from repro.algorithms.bcc import solve_bcc
from repro.datasets import generate_fragmented
from repro.incremental import IncrementalConfig, IncrementalSolver, random_delta

RESULT_PATH = Path(__file__).parent / "BENCH_incremental.json"

#: The acceptance target: re-planning after a 1% delta at least 10x
#: faster than a cold monolithic solve of the mutated instance.
TARGET_SPEEDUP = 10.0
DELTA_FRACTION = 0.01
SWEEP_FRACTIONS = (0.01, 0.05, 0.10, 0.25)
SEED = 3


def _instance(quick: bool):
    # Many medium components: a 1% delta touches a handful of shards
    # while the cold monolithic solve pays for the whole workload.
    return generate_fragmented(
        n_components=30 if quick else 60,
        queries_per_component=10,
        budget=1_000_000.0,
        seed=SEED,
    )


def _timed(fn, *args, **kwargs):
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start


def _measure_fraction(instance, fraction: float, repeats: int) -> dict:
    """Warm re-plan vs both cold arms at one delta fraction."""
    config = IncrementalConfig(certify=True)
    warm_secs, mono_secs, cold_secs = [], [], []
    telemetry = {}
    for repeat in range(repeats):
        solver = IncrementalSolver(instance.clone(), config)
        solver.solve()
        delta = random_delta(
            solver.instance, random.Random(SEED + repeat), fraction=fraction
        )
        warm, seconds = _timed(solver.resolve_delta, delta)
        warm_secs.append(seconds)
        assert "certificate" in warm.meta, "warm result not certified"

        mutated = solver.instance
        mono, seconds = _timed(solve_bcc, mutated.clone())
        mono_secs.append(seconds)
        # Cross-algorithm check: equal up to float association (utilities
        # accumulate in selection order, which differs between pipelines).
        # The bit-exact contract is warm vs. cold *incremental*, below.
        assert math.isclose(warm.utility, mono.utility, rel_tol=1e-12), (
            f"warm utility {warm.utility} != monolithic {mono.utility}"
        )

        cold, seconds = _timed(
            lambda: IncrementalSolver(mutated.clone(), config).solve()
        )
        cold_secs.append(seconds)
        assert warm.classifiers == cold.classifiers, "warm selection != cold"
        assert (warm.utility, warm.cost) == (cold.utility, cold.cost), (
            "warm totals != cold totals"
        )
        telemetry = dict(warm.meta["incremental"])
    warm_sec, mono_sec, cold_sec = min(warm_secs), min(mono_secs), min(cold_secs)
    return {
        "delta_fraction": fraction,
        "delta_edits": telemetry.get("delta_edits"),
        "warm_sec": warm_sec,
        "cold_monolithic_sec": mono_sec,
        "cold_incremental_sec": cold_sec,
        "speedup_vs_monolithic": mono_sec / warm_sec if warm_sec > 0 else float("inf"),
        "speedup_vs_cold_incremental": (
            cold_sec / warm_sec if warm_sec > 0 else float("inf")
        ),
        "shards": telemetry.get("shards"),
        "dirty_shards": telemetry.get("dirty_shards"),
        "reused_profiles": telemetry.get("reused_profiles"),
        "identical_to_cold": True,
    }


def run_bench(quick: bool = False, repeats: int = 2) -> dict:
    instance = _instance(quick)
    headline = _measure_fraction(instance, DELTA_FRACTION, repeats)
    sweep = [headline]
    for fraction in SWEEP_FRACTIONS[1:]:
        sweep.append(_measure_fraction(instance, fraction, repeats=1))
    return {
        "workload": f"fragmented @ {'quick' if quick else 'full'} (seed {SEED})",
        "queries": len(instance.queries),
        "repeats": repeats,
        "cpu_count": os.cpu_count(),
        "timer": "perf_counter wall seconds, min over repeats",
        "delta_fraction": DELTA_FRACTION,
        "warm_sec": headline["warm_sec"],
        "cold_monolithic_sec": headline["cold_monolithic_sec"],
        "cold_incremental_sec": headline["cold_incremental_sec"],
        "speedup": headline["speedup_vs_monolithic"],
        "speedup_vs_cold_incremental": headline["speedup_vs_cold_incremental"],
        "target_speedup": TARGET_SPEEDUP,
        "shards": headline["shards"],
        "dirty_shards": headline["dirty_shards"],
        "reused_profiles": headline["reused_profiles"],
        "sweep": sweep,
        "identical_to_cold": all(row["identical_to_cold"] for row in sweep),
        "certified": True,
    }


def write_result(result: dict, path: Path = RESULT_PATH) -> None:
    path.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")


def test_incremental_speedup(benchmark, scale):
    """Pytest entry: warm re-plan vs cold solves (quick shape under tiny/micro)."""
    from conftest import run_once

    quick = scale.name in ("micro", "tiny")
    result = run_once(benchmark, run_bench, quick=quick, repeats=2)
    assert result["identical_to_cold"]
    assert result["speedup"] >= TARGET_SPEEDUP
    write_result(result)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="small workload, CI smoke"
    )
    parser.add_argument("--out", type=Path, default=RESULT_PATH, help="result JSON path")
    args = parser.parse_args(argv)
    result = run_bench(quick=args.quick, repeats=2)
    write_result(result, args.out)
    print(
        f"{result['workload']}: {result['shards']} shards / {result['queries']} queries; "
        f"1% delta warm {result['warm_sec']:.3f}s vs cold monolithic "
        f"{result['cold_monolithic_sec']:.2f}s ({result['speedup']:.1f}x) and "
        f"cold incremental {result['cold_incremental_sec']:.2f}s "
        f"({result['speedup_vs_cold_incremental']:.1f}x); "
        f"{result['reused_profiles']}/{result['shards']} profiles reused; "
        f"warm identical to cold, certificate-verified"
    )
    if result["speedup"] < TARGET_SPEEDUP:
        print(f"WARNING: warm re-plan speedup below target {TARGET_SPEEDUP}x")
        return 1
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
