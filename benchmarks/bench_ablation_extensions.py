"""Ablation: the future-work extensions against the base model.

Measures what the base (step-credit, independent-cost) solution leaves on
the table when the richer models apply: partial-cover credit turns wasted
near-misses into utility, and shared data-collection costs stretch the
same budget further.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import pytest

from repro.datasets import generate_private
from repro.extensions import (
    PartialCoverModel,
    SharedCostModel,
    linear_credit,
    solve_partial_bcc,
    solve_shared_cost_bcc,
    step_credit,
)
from repro.mc3 import full_cover_cost


@pytest.fixture(scope="module")
def instance(scale):
    base = generate_private(
        max(150, scale.p_queries // 6), max(240, scale.p_properties // 6), seed=23
    )
    return base.with_budget(round(full_cover_cost(base) * 0.15))


@pytest.mark.parametrize("credit_name", ["step", "linear"])
def test_partial_cover(benchmark, instance, credit_name):
    credit = step_credit if credit_name == "step" else linear_credit
    model = PartialCoverModel(instance, credit)
    selection = benchmark.pedantic(
        solve_partial_bcc, args=(model,), rounds=1, iterations=1
    )
    assert model.cost_of(selection) <= instance.budget + 1e-9
    benchmark.extra_info["credited_utility"] = model.utility_of(selection)


def test_partial_credit_dominates_step_scoring(instance):
    """Under linear credit, the credit-aware solution scores at least as
    well as the base solution re-scored with credit."""
    linear_model = PartialCoverModel(instance, linear_credit)
    base = solve_partial_bcc(PartialCoverModel(instance, step_credit))
    aware = solve_partial_bcc(linear_model)
    assert linear_model.utility_of(aware) >= linear_model.utility_of(base) - 1e-9


def test_shared_costs(benchmark, instance):
    model = SharedCostModel(instance, default_property_cost=2.0)
    selection = benchmark.pedantic(
        solve_shared_cost_bcc, args=(model,), rounds=1, iterations=1
    )
    assert model.cost_of(selection) <= instance.budget + 1e-9
    benchmark.extra_info["utility"] = model.utility_of(selection)
