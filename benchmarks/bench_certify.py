"""Certification-overhead benchmark: ``solve_bcc`` with and without
``certify=True``.

Runs ``solve_bcc`` end-to-end on the BENCH_coverage synthetic workloads
twice per seed — plain and with certificate emission — asserts the two
arms select identical solutions (certification must never change the
answer), and records both wall-clocks plus the relative overhead to
``BENCH_certify.json`` next to this file.  The acceptance target is a
certification overhead of at most 10% of solve time.

Measurement choices mirror ``bench_coverage_engine.py``: process CPU
seconds with the garbage collector disabled, arms interleaved within
every repeat, minimum over repeats reported.

Run directly::

    PYTHONPATH=src python benchmarks/bench_certify.py [--quick]

or through pytest (``pytest benchmarks/bench_certify.py``), where the
TINY scale maps to the quick spec.
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from repro.algorithms.bcc import solve_bcc
from repro.datasets.synthetic import generate_synthetic
from repro.verify.certificate import SolutionCertificate

RESULT_PATH = Path(__file__).parent / "BENCH_certify.json"

QUICK_SPEC = {
    "n_queries": 300,
    "n_properties": 240,
    "budget": 600.0,
    "seeds": [0, 1],
    "repeats": 2,
}
MEDIUM_SPEC = {
    "n_queries": 1500,
    "n_properties": 950,
    "budget": 2500.0,
    "seeds": [0, 1, 2],
    "repeats": 4,
}

#: The acceptance ceiling: certification may add at most this fraction.
OVERHEAD_CEILING = 0.10


def _make_instance(spec: dict, seed: int):
    return generate_synthetic(
        n_queries=spec["n_queries"],
        n_properties=spec["n_properties"],
        budget=spec["budget"],
        seed=seed,
    )


def _single_run(spec: dict, seed: int, certify: bool) -> dict:
    """One end-to-end ``solve_bcc`` run, fresh instance per run so the
    workload's memoized indexes cannot leak warm-cache time across arms."""
    instance = _make_instance(spec, seed)
    gc.collect()
    gc.disable()
    try:
        started = time.process_time()
        solution = solve_bcc(instance, certify=certify)
        elapsed = time.process_time() - started
    finally:
        gc.enable()
    if certify:
        assert isinstance(solution.meta["certificate"], SolutionCertificate)
    return {
        "seed": seed,
        "utility": solution.utility,
        "cost": solution.cost,
        "classifiers": len(solution.classifiers),
        "seconds": elapsed,
    }


def _run_seed(spec: dict, seed: int) -> tuple:
    """Both arms on one seed, interleaved, min-over-repeats per arm."""
    plain = None
    certified = None
    for _ in range(spec["repeats"]):
        run_plain = _single_run(spec, seed, certify=False)
        run_certified = _single_run(spec, seed, certify=True)
        if plain is None or run_plain["seconds"] < plain["seconds"]:
            plain = run_plain
        if certified is None or run_certified["seconds"] < certified["seconds"]:
            certified = run_certified
    return plain, certified


def run_bench(spec: dict) -> dict:
    """Both arms on every seed; solutions must match exactly per seed."""
    plain_runs, certified_runs = [], []
    for seed in spec["seeds"]:
        plain, certified = _run_seed(spec, seed)
        plain_runs.append(plain)
        certified_runs.append(certified)
        assert plain["utility"] == certified["utility"], (
            f"seed {seed}: certification changed the utility "
            f"({plain['utility']} != {certified['utility']})"
        )
        assert plain["cost"] == certified["cost"], (
            f"seed {seed}: certification changed the cost"
        )
    plain_total = sum(r["seconds"] for r in plain_runs)
    certified_total = sum(r["seconds"] for r in certified_runs)
    overhead = (
        (certified_total - plain_total) / plain_total if plain_total > 0 else 0.0
    )
    return {
        "workload": {k: spec[k] for k in ("n_queries", "n_properties", "budget")},
        "seeds": list(spec["seeds"]),
        "repeats": spec["repeats"],
        "timer": "process_time, gc disabled (CPU seconds, min over repeats)",
        "plain": plain_runs,
        "certified": certified_runs,
        "plain_total_sec": plain_total,
        "certified_total_sec": certified_total,
        "overhead_fraction": overhead,
        "overhead_ceiling": OVERHEAD_CEILING,
        "identical_solutions": True,
    }


def write_result(result: dict, path: Path = RESULT_PATH) -> None:
    path.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")


def test_certify_overhead(benchmark, scale):
    """Pytest entry: quick spec at tiny scale, medium otherwise."""
    from conftest import run_once

    spec = QUICK_SPEC if scale.name == "tiny" else MEDIUM_SPEC
    result = run_once(benchmark, run_bench, spec=spec)
    assert result["identical_solutions"]
    assert result["overhead_fraction"] <= OVERHEAD_CEILING
    write_result(result)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="small workload (CI smoke mode)"
    )
    parser.add_argument(
        "--out", type=Path, default=RESULT_PATH, help="result JSON path"
    )
    args = parser.parse_args(argv)
    spec = QUICK_SPEC if args.quick else MEDIUM_SPEC
    result = run_bench(spec)
    write_result(result, args.out)
    print(
        f"solve_bcc on {spec['n_queries']}q/{spec['n_properties']}p x "
        f"{len(spec['seeds'])} seeds (min of {spec['repeats']}): "
        f"plain {result['plain_total_sec']:.2f}s -> "
        f"certify=True {result['certified_total_sec']:.2f}s "
        f"({result['overhead_fraction'] * 100:.2f}% overhead, "
        f"ceiling {OVERHEAD_CEILING * 100:.0f}%), solutions identical"
    )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
