"""Before/after benchmark for the incremental coverage engine.

Runs ``solve_bcc`` end-to-end on the medium synthetic workload twice per
seed — once with the seed's from-scratch coverage kernel (rebuild-per-
candidate gain evaluation via ``ResidualProblem._rebuild_evaluate_gain``
plus the power-set-enumerating swap polish kept below as the legacy
reference) and once with the engine's checkpoint/rollback path — asserts
the selected utility is identical on every seed, and records both
wall-clocks plus the engine counters to ``BENCH_coverage.json`` next to
this file.

Three measurement choices keep the end-to-end numbers honest:

- timings are process CPU seconds (``time.process_time``) with the
  garbage collector disabled during the timed region, so co-tenant
  scheduling and allocation-triggered GC pauses (~30% of runtime here,
  and the largest noise source) cannot charge one arm for the other's
  work;
- each arm runs ``repeats`` times per seed, the two arms interleaved
  within every repeat, and reports the *minimum* (the standard way to
  suppress frequency-scaling noise);
- both arms run A^BCC with ``QKConfig(rounds=2)``.  The QK bipartition
  portfolio is identical in the two arms and dominates the default
  configuration's runtime (~75% of it), burying the coverage kernel under
  its run-to-run variance; two rounds keep the full algorithm — all three
  arms, MC3, polish — while letting the kernel difference show.

A ``micro`` section additionally times the two replaced kernels head to
head on the same instance (single-classifier gain probes and one polish
pass), where the engine's advantage is not diluted by the QK share.

Run directly::

    PYTHONPATH=src python benchmarks/bench_coverage_engine.py [--quick]

or through pytest (``pytest benchmarks/bench_coverage_engine.py``), where
the TINY scale maps to the quick spec.
"""

from __future__ import annotations

import argparse
import gc
import json
import math
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import repro.algorithms.bcc as bcc_module
from repro.algorithms.bcc import AbccConfig, solve_bcc
from repro.algorithms.residual import ResidualProblem
from repro.core.coverage import CoverageTracker
from repro.datasets.synthetic import generate_synthetic
from repro.qk import QKConfig

RESULT_PATH = Path(__file__).parent / "BENCH_coverage.json"


def _legacy_swap_polish(instance, selection, allowed, eval_cap):
    """The seed's swap polish: re-enumerates ``2^q`` per query per trial.

    Kept verbatim as the benchmark's "before" arm; the solver now uses the
    engine's contributor-index version in ``repro.algorithms.bcc``.
    """
    from repro.core.model import powerset_classifiers

    def is_covered(query, chosen):
        remaining = set(query)
        for c in powerset_classifiers(query):
            if c in chosen:
                remaining -= c
                if not remaining:
                    return True
        return not remaining

    current = set(selection)
    spent = sum(instance.cost(c) for c in current)

    def swap_delta(out, incoming):
        affected = set(instance.queries_containing(incoming))
        if out is not None:
            affected |= set(instance.queries_containing(out))
        trial = (current - {out}) | {incoming} if out else current | {incoming}
        delta = 0.0
        for query in affected:
            before = is_covered(query, current)
            after = is_covered(query, trial)
            if before != after:
                delta += instance.utility(query) * (1.0 if after else -1.0)
        return delta

    gain_hint = {}
    for query in instance.queries:
        utility = instance.utility(query)
        for c in powerset_classifiers(query):
            if c in allowed and c not in current:
                gain_hint[c] = gain_hint.get(c, 0.0) + utility
    candidates = sorted(
        gain_hint,
        key=lambda c: (-gain_hint[c] / max(instance.cost(c), 1e-12), sorted(c)),
    )[:60]

    trials = 0
    improved = True
    while improved and trials < eval_cap:
        improved = False
        marginal = {}
        for out in current:
            if instance.cost(out) <= 0:
                continue
            loss = 0.0
            for query in instance.queries_containing(out):
                if is_covered(query, current) and not is_covered(query, current - {out}):
                    loss += instance.utility(query)
            marginal[out] = loss
        removable = sorted(
            marginal,
            key=lambda c: (marginal[c] / max(instance.cost(c), 1e-12), sorted(c)),
        )[:10]
        for out in removable:
            refund = instance.cost(out)
            for incoming in candidates:
                if incoming in current:
                    continue
                cost_in = instance.cost(incoming)
                if spent - refund + cost_in > instance.budget + 1e-9:
                    continue
                if trials >= eval_cap:
                    break
                trials += 1
                delta = swap_delta(out, incoming)
                if delta > 1e-9:
                    current = (current - {out}) | {incoming}
                    spent = spent - refund + cost_in
                    improved = True
                    break
            if improved:
                break
    return current


QUICK_SPEC = {
    "n_queries": 300,
    "n_properties": 240,
    "budget": 600.0,
    "seeds": [0, 1],
    "repeats": 2,
}
MEDIUM_SPEC = {
    "n_queries": 1500,
    "n_properties": 950,
    "budget": 2500.0,
    "seeds": [0, 1, 2],
    "repeats": 4,
}


def _bench_config() -> AbccConfig:
    """The A^BCC configuration both arms run (see module docstring)."""
    return AbccConfig(qk=QKConfig(rounds=2))


def _make_instance(spec: dict, seed: int):
    return generate_synthetic(
        n_queries=spec["n_queries"],
        n_properties=spec["n_properties"],
        budget=spec["budget"],
        seed=seed,
    )


def _single_run(spec: dict, seed: int, legacy: bool) -> dict:
    """One end-to-end ``solve_bcc`` run under the requested kernel.

    A fresh instance per run so the workload's memoized indexes cannot
    leak warm-cache time across arms or repeats.
    """
    instance = _make_instance(spec, seed)
    constructed_before = CoverageTracker.constructed
    original_gain = ResidualProblem.evaluate_gain
    original_polish = bcc_module._swap_polish
    if legacy:
        ResidualProblem.evaluate_gain = ResidualProblem._rebuild_evaluate_gain
        bcc_module._swap_polish = _legacy_swap_polish
    gc.collect()
    gc.disable()
    try:
        started = time.process_time()
        solution = solve_bcc(instance, _bench_config())
        elapsed = time.process_time() - started
    finally:
        gc.enable()
        ResidualProblem.evaluate_gain = original_gain
        bcc_module._swap_polish = original_polish
    return {
        "seed": seed,
        "utility": solution.utility,
        "cost": solution.cost,
        "seconds": elapsed,
        "trackers_constructed": CoverageTracker.constructed - constructed_before,
        "engine": solution.meta["engine"],
    }


def _run_seed(spec: dict, seed: int) -> tuple:
    """Both arms on one seed, arms interleaved within every repeat.

    Interleaving matters: CPU frequency drift is time-correlated, so
    running all of one arm's repeats back to back before the other's
    would bias whichever arm lands in the faster window.  The reported
    ``seconds`` per arm is the minimum over its repeats.
    """
    incremental = None
    legacy = None
    for _ in range(spec["repeats"]):
        run_incremental = _single_run(spec, seed, legacy=False)
        run_legacy = _single_run(spec, seed, legacy=True)
        if incremental is None or run_incremental["seconds"] < incremental["seconds"]:
            incremental = run_incremental
        if legacy is None or run_legacy["seconds"] < legacy["seconds"]:
            legacy = run_legacy
    return incremental, legacy


def _micro_bench(spec: dict, gain_calls: int = 300) -> dict:
    """Head-to-head kernel timings on the first seed's instance.

    Measures (a) ``gain_calls`` single-classifier gain probes through the
    checkpoint/rollback path vs. the legacy rebuild path, and (b) one full
    swap-polish pass vs. the legacy power-set polish, asserting both pairs
    produce identical results.
    """
    seed = spec["seeds"][0]
    instance = _make_instance(spec, seed)
    config = _bench_config()
    solution = solve_bcc(instance, config)
    selection = set(solution.classifiers)
    allowed = frozenset(
        c for c in instance.relevant_classifiers() if not math.isinf(instance.cost(c))
    )

    gc.collect()
    gc.disable()
    try:
        started = time.process_time()
        polished_new = bcc_module._swap_polish(
            instance, set(selection), allowed, config.polish_eval_cap
        )
        polish_new_sec = time.process_time() - started
        started = time.process_time()
        polished_old = _legacy_swap_polish(
            instance, set(selection), allowed, config.polish_eval_cap
        )
        polish_old_sec = time.process_time() - started
    finally:
        gc.enable()
    assert polished_new == polished_old, "polish variants diverged"

    residual = ResidualProblem(instance, allowed=allowed)
    residual.select(selection)
    probes = sorted(
        (c for c in allowed if not residual.tracker.is_selected(c)), key=sorted
    )[:gain_calls]
    gc.collect()
    gc.disable()
    try:
        started = time.process_time()
        incremental = [residual.evaluate_gain([c]) for c in probes]
        gain_new_sec = time.process_time() - started
        started = time.process_time()
        rebuilt = [residual._rebuild_evaluate_gain([c]) for c in probes]
        gain_old_sec = time.process_time() - started
    finally:
        gc.enable()
    assert incremental == rebuilt, "gain variants diverged"

    return {
        "seed": seed,
        "gain_calls": len(probes),
        "gain_incremental_sec": gain_new_sec,
        "gain_rebuild_sec": gain_old_sec,
        "gain_speedup": gain_old_sec / gain_new_sec if gain_new_sec > 0 else math.inf,
        "polish_incremental_sec": polish_new_sec,
        "polish_legacy_sec": polish_old_sec,
        "polish_speedup": (
            polish_old_sec / polish_new_sec if polish_new_sec > 0 else math.inf
        ),
    }


def run_bench(spec: dict) -> dict:
    """Both arms on every seed; utilities must match exactly per seed."""
    before, after = [], []
    for seed in spec["seeds"]:
        run_incremental, run_legacy = _run_seed(spec, seed)
        after.append(run_incremental)
        before.append(run_legacy)
        assert after[-1]["utility"] == before[-1]["utility"], (
            f"seed {seed}: incremental utility {after[-1]['utility']} != "
            f"legacy utility {before[-1]['utility']}"
        )
    before_total = sum(r["seconds"] for r in before)
    after_total = sum(r["seconds"] for r in after)
    return {
        "workload": {k: spec[k] for k in ("n_queries", "n_properties", "budget")},
        "seeds": list(spec["seeds"]),
        "repeats": spec["repeats"],
        "timer": "process_time, gc disabled (CPU seconds, min over repeats)",
        "before": before,
        "after": after,
        "before_total_sec": before_total,
        "after_total_sec": after_total,
        "speedup": before_total / after_total if after_total > 0 else float("inf"),
        "identical_utilities": True,
        "micro": _micro_bench(spec),
    }


def write_result(result: dict, path: Path = RESULT_PATH) -> None:
    path.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")


def test_coverage_engine(benchmark, scale):
    """Pytest entry: quick spec at tiny scale, medium otherwise."""
    from conftest import run_once

    spec = QUICK_SPEC if scale.name == "tiny" else MEDIUM_SPEC
    result = run_once(benchmark, run_bench, spec=spec)
    assert result["identical_utilities"]
    # The engine must stay rebuild-free in the gain hot path: every gain
    # probe of the incremental arm is a rollback, not a tracker rebuild.
    for run in result["after"]:
        assert run["engine"]["rollbacks"] >= run["engine"]["rebuilds_avoided"]
    write_result(result)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="small workload (CI smoke mode)"
    )
    parser.add_argument(
        "--out", type=Path, default=RESULT_PATH, help="result JSON path"
    )
    args = parser.parse_args(argv)
    spec = QUICK_SPEC if args.quick else MEDIUM_SPEC
    result = run_bench(spec)
    write_result(result, args.out)
    micro = result["micro"]
    print(
        f"solve_bcc on {spec['n_queries']}q/{spec['n_properties']}p x "
        f"{len(spec['seeds'])} seeds (min of {spec['repeats']}): "
        f"legacy {result['before_total_sec']:.2f}s -> "
        f"incremental {result['after_total_sec']:.2f}s "
        f"({result['speedup']:.2f}x), utilities identical"
    )
    print(
        f"kernels: gain x{micro['gain_calls']} {micro['gain_rebuild_sec']:.3f}s -> "
        f"{micro['gain_incremental_sec']:.3f}s ({micro['gain_speedup']:.1f}x), "
        f"polish {micro['polish_legacy_sec']:.3f}s -> "
        f"{micro['polish_incremental_sec']:.3f}s ({micro['polish_speedup']:.1f}x)"
    )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
