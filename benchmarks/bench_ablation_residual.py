"""Ablation: residual iteration (lines 4-6 of Algorithm 1) on/off.

A single round spends only part of the budget on one subproblem family;
the residual loop is what lets A^BCC mix 1-covers and 2-covers and unlock
shorter covers of long queries (Example 4.8).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import pytest

from repro.algorithms import AbccConfig, solve_bcc
from repro.datasets import generate_private
from repro.mc3 import full_cover_cost


@pytest.fixture(scope="module")
def instance(scale):
    base = generate_private(
        max(200, scale.p_queries // 4), max(300, scale.p_properties // 4), seed=17
    )
    return base.with_budget(round(full_cover_cost(base) * 0.3))


@pytest.mark.parametrize("max_rounds", [1, 12], ids=["single-round", "full-loop"])
def test_residual_rounds(benchmark, instance, max_rounds):
    config = AbccConfig(max_rounds=max_rounds)
    solution = benchmark.pedantic(
        solve_bcc, args=(instance, config), rounds=1, iterations=1
    )
    assert solution.cost <= instance.budget + 1e-9
    benchmark.extra_info["utility"] = solution.utility


def test_residual_loop_improves(instance):
    single = solve_bcc(instance, AbccConfig(max_rounds=1, final_polish=False))
    full = solve_bcc(instance, AbccConfig(final_polish=False))
    assert full.utility >= single.utility - 1e-9
