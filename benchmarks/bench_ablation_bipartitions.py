"""Ablation: number of random bipartition rounds inside A_H^QK.

The paper repeats the randomized split log(n) times for the w.h.p. bound;
in practice a few rounds capture most of the value.  This ablation runs
the raw QK solver with 1, 4 and 8 rounds on a Private-derived QK graph.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import pytest

from repro.algorithms.residual import ResidualProblem
from repro.datasets import generate_private
from repro.mc3 import full_cover_cost
from repro.qk import QKConfig, solve_qk


@pytest.fixture(scope="module")
def qk_case(scale):
    base = generate_private(
        max(200, scale.p_queries // 4), max(300, scale.p_properties // 4), seed=19
    )
    budget = round(full_cover_cost(base) * 0.25)
    graph = ResidualProblem(base).qk_graph(budget)
    return graph, budget


@pytest.mark.parametrize("rounds", [1, 4, 8])
def test_bipartition_rounds(benchmark, qk_case, rounds):
    graph, budget = qk_case
    selection = benchmark.pedantic(
        solve_qk,
        args=(graph, budget, QKConfig(rounds=rounds)),
        rounds=1,
        iterations=1,
    )
    assert graph.induced_cost(selection) <= budget + 1e-9
    benchmark.extra_info["weight"] = graph.induced_weight(selection)


def test_more_rounds_weakly_better(qk_case):
    graph, budget = qk_case
    one = graph.induced_weight(solve_qk(graph, budget, QKConfig(rounds=1)))
    eight = graph.induced_weight(solve_qk(graph, budget, QKConfig(rounds=8)))
    assert eight >= one * 0.9  # more rounds should not collapse quality
