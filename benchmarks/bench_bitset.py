"""Sets-vs-bits benchmark for the bitset coverage kernels.

Times the ``bits`` engine (workloads compiled to integer bitmasks, see
``repro.core.bitset``) against the ``sets`` reference on the kernels the
compilation rewrote, asserting identical answers everywhere:

- ``micro.gain`` — the headline residual-gain kernel: repeated
  ``ResidualProblem.evaluate_gain`` slates over the densest classifiers
  of a dense workload (many queries per classifier), the shape the
  A^BCC knapsack/QK candidate loops produce.  Probes are fully warmed
  first so the timed region measures the checkpoint/add/rollback kernel,
  not one-time index construction that both engines amortize in real
  runs.
- ``micro.ig2_score`` — ``uncovered_contained_utility`` sweeps over the
  whole relevant pool (the IG2 selector's scoring loop).
- ``micro.residual_cover`` — ``cheapest_residual_cover`` branch-and-bound
  over figure-workload queries.
- ``micro.covered_queries`` — the full-workload coverage check.
- ``figure_run`` — the headline end-to-end arm: a full ``fig3c`` budget
  sweep (RAND / IG1 / IG2 / A^BCC at four budgets plus the MC3
  full-cover anchor) on a dense synthetic scale, byte-identical figure
  rows asserted via ``FigureResult.digest``.
- ``end_to_end`` — ``solve_bcc`` alone on the sparse figure-style
  workload, identical solutions asserted per seed.  Recorded honestly:
  this arm is dominated by the engine-independent QK/DkS machinery and
  the bits engine does not beat the reference on it.

Measurement methodology follows ``bench_coverage_engine``: process CPU
seconds with the garbage collector disabled in timed regions, arms
interleaved within every repeat, minimum over repeats reported.  All
speedups are recorded as measured — including any kernel where the bits
engine does not win.

Run directly::

    PYTHONPATH=src python benchmarks/bench_bitset.py [--quick]

or through pytest (``pytest benchmarks/bench_bitset.py``), where the
TINY scale maps to the quick spec.
"""

from __future__ import annotations

import argparse
import gc
import json
import math
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from repro.algorithms.bcc import AbccConfig, solve_bcc
from repro.algorithms.residual import ResidualProblem
from repro.core.bitset import use_engine
from repro.core.coverage import CoverageTracker, covered_queries
from repro.core.model import powerset_classifiers
from repro.datasets.synthetic import generate_synthetic
from repro.experiments.figures import fig3c
from repro.experiments.scales import Scale
from repro.mc3.greedy import cheapest_residual_cover
from repro.qk import QKConfig

RESULT_PATH = Path(__file__).parent / "BENCH_bitset.json"

ENGINES = ("sets", "bits")

QUICK_SPEC = {
    "figure_run": {
        "s_queries": 1000,
        "s_properties": 60,
        "seed": 0,
        "rand_repeats": 2,
        "repeats": 2,
    },
    "end_to_end": {
        "n_queries": 300,
        "n_properties": 240,
        "budget": 600.0,
        "seeds": [0, 1],
        "repeats": 2,
    },
    # Dense micro workload: few properties, so each classifier is
    # contained in many queries and gain probes touch long index rows.
    "micro": {
        "n_queries": 1200,
        "n_properties": 60,
        "budget": 400.0,
        "seed": 0,
        "pool": 80,
        "slates": 20,
        "slate_size": 12,
        "passes": 2,
        "repeats": 2,
        "cover_queries": 120,
    },
}
MEDIUM_SPEC = {
    "figure_run": {
        "s_queries": 4000,
        "s_properties": 80,
        "seed": 0,
        "rand_repeats": 2,
        "repeats": 2,
    },
    "end_to_end": {
        "n_queries": 1500,
        "n_properties": 950,
        "budget": 2500.0,
        "seeds": [0, 1, 2],
        "repeats": 3,
    },
    "micro": {
        "n_queries": 4000,
        "n_properties": 80,
        "budget": 400.0,
        "seed": 0,
        "pool": 120,
        "slates": 50,
        "slate_size": 16,
        "passes": 6,
        "repeats": 3,
        "cover_queries": 250,
    },
}


def _timed(fn):
    """CPU-time ``fn()`` with the collector off; returns (result, seconds)."""
    gc.collect()
    gc.disable()
    try:
        started = time.process_time()
        result = fn()
        elapsed = time.process_time() - started
    finally:
        gc.enable()
    return result, elapsed


def _dense_instance(spec: dict):
    return generate_synthetic(
        n_queries=spec["n_queries"],
        n_properties=spec["n_properties"],
        budget=spec["budget"],
        seed=spec["seed"],
    )


def _dense_pool(instance, size: int):
    """The ``size`` classifiers contained in the most queries (canonical order)."""
    relevant = sorted(instance.relevant_classifiers(), key=sorted)
    return sorted(
        relevant,
        key=lambda c: (-len(instance.queries_containing(c)), sorted(c)),
    )[:size]


def _micro_arms(spec: dict) -> dict:
    """Per-engine warmed state for the micro kernels.

    Each engine gets its own freshly generated (hence freshly compiled)
    instance; every probe is evaluated once before timing so both arms
    enter the timed region with warm containing/cost indexes — exactly
    the steady state the solvers run the kernels in.
    """
    arms = {}
    for engine in ENGINES:
        with use_engine(engine):
            instance = _dense_instance(spec)
            pool = _dense_pool(instance, spec["pool"])
            rng = random.Random(spec["seed"])
            slates = [
                rng.sample(pool, spec["slate_size"]) for _ in range(spec["slates"])
            ]
            residual = ResidualProblem(instance)
            residual.select(pool[:5])
            for slate in slates:
                residual.evaluate_gain(slate)
            scored = sorted(instance.relevant_classifiers(), key=sorted)
            for classifier in scored:
                residual.tracker.uncovered_contained_utility(classifier)
            arms[engine] = {
                "instance": instance,
                "residual": residual,
                "slates": slates,
                "scored": scored,
            }
    return arms


def _kernel_section(spec: dict, arms: dict, run) -> dict:
    """Time ``run(engine_state)`` per engine, interleaved, min over repeats.

    Asserts the two engines return equal results on every repeat.
    """
    best = dict.fromkeys(ENGINES)
    for _ in range(spec["repeats"]):
        outputs = {}
        for engine in ENGINES:
            with use_engine(engine):
                result, seconds = _timed(lambda: run(arms[engine]))
            outputs[engine] = result
            if best[engine] is None or seconds < best[engine]:
                best[engine] = seconds
        assert outputs["sets"] == outputs["bits"], "engines diverged"
    return {
        "sets_sec": best["sets"],
        "bits_sec": best["bits"],
        "speedup": best["sets"] / best["bits"] if best["bits"] > 0 else float("inf"),
    }


def _micro_bench(spec: dict) -> dict:
    arms = _micro_arms(spec)
    passes = range(spec["passes"])

    def gain(state):
        residual, slates = state["residual"], state["slates"]
        results = None
        for _ in passes:
            results = [residual.evaluate_gain(slate) for slate in slates]
        return results

    def ig2_score(state):
        tracker, scored = state["residual"].tracker, state["scored"]
        return [tracker.uncovered_contained_utility(c) for c in scored]

    section = {
        "workload": {
            k: spec[k] for k in ("n_queries", "n_properties", "budget", "seed")
        },
        "gain": {
            "slates": spec["slates"],
            "slate_size": spec["slate_size"],
            "passes": spec["passes"],
            **_kernel_section(spec, arms, gain),
        },
        "ig2_score": {
            "pool": len(arms["sets"]["scored"]),
            **_kernel_section(spec, arms, ig2_score),
        },
    }

    # Branch-and-bound covers and the full-workload coverage check run on
    # the figure-shaped instance (more properties, shorter index rows).
    cover_arms = {}
    for engine in ENGINES:
        with use_engine(engine):
            instance = generate_synthetic(
                n_queries=300, n_properties=240, budget=600.0, seed=spec["seed"]
            )
            queries = sorted(instance.queries, key=sorted)[: spec["cover_queries"]]
            candidates = {
                q: [
                    (c, instance.cost(c))
                    for c in powerset_classifiers(q)
                    if not math.isinf(instance.cost(c))
                ]
                for q in queries
            }
            chosen = _dense_pool(instance, 40)
            covered_queries(instance, chosen)  # warm the containing index
            cover_arms[engine] = {
                "instance": instance,
                "queries": queries,
                "candidates": candidates,
                "chosen": chosen,
            }

    def residual_cover(state):
        candidates = state["candidates"]
        return [
            cheapest_residual_cover(q, candidates[q], set())
            for q in state["queries"]
        ]

    def coverage_check(state):
        return covered_queries(state["instance"], state["chosen"])

    section["residual_cover"] = {
        "queries": spec["cover_queries"],
        **_kernel_section(spec, cover_arms, residual_cover),
    }
    section["covered_queries"] = _kernel_section(spec, cover_arms, coverage_check)
    return section


def _e2e_single(spec: dict, seed: int, engine: str) -> dict:
    """One ``solve_bcc`` run under ``engine`` on a fresh instance."""
    with use_engine(engine):
        instance = generate_synthetic(
            n_queries=spec["n_queries"],
            n_properties=spec["n_properties"],
            budget=spec["budget"],
            seed=seed,
        )
        constructed_before = CoverageTracker.constructed
        solution, elapsed = _timed(
            lambda: solve_bcc(instance, AbccConfig(qk=QKConfig(rounds=2)))
        )
    return {
        "seed": seed,
        "utility": solution.utility,
        "cost": solution.cost,
        "classifiers": solution.classifiers,
        "seconds": elapsed,
        "trackers_constructed": CoverageTracker.constructed - constructed_before,
        "kernel": solution.meta["engine"]["kernel"],
    }


def _e2e_bench(spec: dict) -> dict:
    runs = {engine: [] for engine in ENGINES}
    for seed in spec["seeds"]:
        best = dict.fromkeys(ENGINES)
        for _ in range(spec["repeats"]):
            for engine in ENGINES:
                run = _e2e_single(spec, seed, engine)
                if best[engine] is None or run["seconds"] < best[engine]["seconds"]:
                    best[engine] = run
        for left, right in zip(ENGINES, ENGINES[1:]):
            assert best[left]["classifiers"] == best[right]["classifiers"], (
                f"seed {seed}: {left} and {right} selected different classifiers"
            )
            assert best[left]["utility"] == best[right]["utility"]
            assert best[left]["cost"] == best[right]["cost"]
        for engine in ENGINES:
            record = dict(best[engine])
            record["classifiers"] = len(record.pop("classifiers"))
            runs[engine].append(record)
    totals = {
        engine: sum(r["seconds"] for r in runs[engine]) for engine in ENGINES
    }
    return {
        "workload": {k: spec[k] for k in ("n_queries", "n_properties", "budget")},
        "seeds": list(spec["seeds"]),
        "repeats": spec["repeats"],
        "runs": runs,
        "sets_total_sec": totals["sets"],
        "bits_total_sec": totals["bits"],
        "speedup": (
            totals["sets"] / totals["bits"] if totals["bits"] > 0 else float("inf")
        ),
        "identical_solutions": True,
    }


def _figure_bench(spec: dict) -> dict:
    """A complete figure-3c budget sweep per engine, byte-identity asserted.

    The sweep is the paper's utility-vs-budget experiment: four budget
    fractions x (RAND trials, IG1, IG2, A^BCC) plus the MC3 full-cover
    cost anchor, on a dense synthetic scale where classifiers sit in long
    inverted-index rows.  Engines are interleaved within each repeat and
    the minimum CPU total is reported; ``FigureResult.digest`` (timings
    excluded) must agree between the engines on every repeat.
    """
    scale = Scale(
        name="bench-dense",
        bb_queries=60,
        bb_properties=80,
        p_queries=80,
        p_properties=130,
        s_queries=spec["s_queries"],
        s_properties=spec["s_properties"],
        sweep_sizes=(60,),
        rand_repeats=spec["rand_repeats"],
    )
    best = dict.fromkeys(ENGINES)
    for _ in range(spec["repeats"]):
        digests = {}
        for engine in ENGINES:
            with use_engine(engine):
                result, seconds = _timed(lambda: fig3c(scale, seed=spec["seed"]))
            digests[engine] = result.digest(include_seconds=False)
            if best[engine] is None or seconds < best[engine]:
                best[engine] = seconds
        assert digests["sets"] == digests["bits"], "figure rows diverged"
    return {
        "figure": "fig3c",
        "scale": {
            "s_queries": spec["s_queries"],
            "s_properties": spec["s_properties"],
            "rand_repeats": spec["rand_repeats"],
        },
        "seed": spec["seed"],
        "repeats": spec["repeats"],
        "sets_sec": best["sets"],
        "bits_sec": best["bits"],
        "speedup": best["sets"] / best["bits"] if best["bits"] > 0 else float("inf"),
        "identical_rows": True,
    }


def run_bench(spec: dict) -> dict:
    return {
        "timer": "process_time, gc disabled (CPU seconds, min over repeats)",
        "micro": _micro_bench(spec["micro"]),
        "figure_run": _figure_bench(spec["figure_run"]),
        "end_to_end": _e2e_bench(spec["end_to_end"]),
    }


def write_result(result: dict, path: Path = RESULT_PATH) -> None:
    path.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")


def test_bitset_kernels(benchmark, scale):
    """Pytest entry: quick spec at tiny scale, medium otherwise.

    Asserts answer identity (the `_kernel_section` / `_e2e_bench`
    assertions), not speedups — CI machines are too noisy to gate on
    ratios; the recorded JSON is the performance artifact.
    """
    from conftest import run_once

    spec = QUICK_SPEC if scale.name == "tiny" else MEDIUM_SPEC
    result = run_once(benchmark, run_bench, spec=spec)
    assert result["end_to_end"]["identical_solutions"]
    assert result["figure_run"]["identical_rows"]
    write_result(result)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="small workload (CI smoke mode)"
    )
    parser.add_argument(
        "--out", type=Path, default=RESULT_PATH, help="result JSON path"
    )
    args = parser.parse_args(argv)
    spec = QUICK_SPEC if args.quick else MEDIUM_SPEC
    result = run_bench(spec)
    write_result(result, args.out)
    micro = result["micro"]
    e2e = result["end_to_end"]
    fig = result["figure_run"]
    for name in ("gain", "ig2_score", "residual_cover", "covered_queries"):
        entry = micro[name]
        print(
            f"micro.{name}: sets {entry['sets_sec']:.3f}s -> "
            f"bits {entry['bits_sec']:.3f}s ({entry['speedup']:.2f}x)"
        )
    print(
        f"{fig['figure']} {fig['scale']['s_queries']}q/"
        f"{fig['scale']['s_properties']}p sweep: "
        f"sets {fig['sets_sec']:.2f}s -> bits {fig['bits_sec']:.2f}s "
        f"({fig['speedup']:.2f}x), identical figure rows"
    )
    print(
        f"solve_bcc {e2e['workload']['n_queries']}q/"
        f"{e2e['workload']['n_properties']}p x {len(e2e['seeds'])} seeds: "
        f"sets {e2e['sets_total_sec']:.2f}s -> bits {e2e['bits_total_sec']:.2f}s "
        f"({e2e['speedup']:.2f}x), identical solutions"
    )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
