"""Figure 3a: BCC utility by budget on the BestBuy dataset.

Paper shape: A^BCC achieves the best utility at every budget; all
algorithms' utilities grow monotonically with the budget; RAND trails far
behind the greedy baselines.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from shape import assert_best_per_point, assert_monotone_in_x

from conftest import run_once
from repro.experiments.figures import fig3a


def test_fig3a(benchmark, scale, parallel):
    result = run_once(benchmark, fig3a, scale=scale, parallel=parallel)
    assert_best_per_point(result, "A^BCC")
    assert_monotone_in_x(result, "A^BCC")
    # RAND is qualitatively the worst baseline overall.
    totals = {
        name: sum(v for _, v in result.series(name))
        for name in result.algorithms()
    }
    assert totals["RAND"] <= min(totals["IG1"], totals["IG2"], totals["A^BCC"])
