"""Figure 3d: A^BCC vs exhaustive search on small P subdomains.

Paper shape: the loss against the (impractical) brute force optimum is
always below 20% on these small instances.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from conftest import run_once
from repro.experiments.figures import fig3d


def test_fig3d(benchmark, scale, parallel):
    result = run_once(benchmark, fig3d, scale=scale, parallel=parallel)
    for x in result.x_values():
        optimal = result.value_at(x, "BruteForce")
        ours = result.value_at(x, "A^BCC")
        assert optimal is not None and ours is not None
        assert ours <= optimal + 1e-9  # brute force is exact
        if optimal > 0:
            assert ours >= 0.8 * optimal, (
                f"subdomain {x}: loss above 20% ({ours} vs {optimal})"
            )
