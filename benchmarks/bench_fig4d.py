"""Figure 4d: GMC3 running time over synthetic dataset sizes.

Paper shape: A^GMC3's runtime is considerably higher than the greedy
baselines (it runs A^BCC repeatedly inside a budget search) but stays
affordable for an offline task; all series grow with the dataset.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from conftest import run_once
from repro.experiments.figures import fig4d


def test_fig4d(benchmark, scale, parallel):
    result = run_once(benchmark, fig4d, scale=scale, parallel=parallel)
    sizes = result.x_values()
    largest = sizes[-1]
    ours = result.value_at(largest, "A^GMC3")
    assert ours is not None and ours > 0
    # The expensive algorithm is the slowest of the three, as in the paper.
    for name in ("IG1(G)", "IG2(G)"):
        other = result.value_at(largest, name)
        assert other is not None
        assert ours >= other * 0.5  # it is never dramatically faster
