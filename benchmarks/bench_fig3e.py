"""Figure 3e: A^BCC runtime with/without preprocessing over dataset sizes.

Paper shape: preprocessing yields a large speedup that widens with the
instance (at 100K queries the unpruned variant did not terminate at all);
both series grow with the number of queries.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from conftest import run_once
from repro.experiments.figures import fig3e


def test_fig3e(benchmark, scale, parallel):
    result = run_once(benchmark, fig3e, scale=scale, parallel=parallel)
    sizes = result.x_values()
    # At the largest size the pruned variant must be faster.
    largest = sizes[-1]
    pruned = result.value_at(largest, "with preprocessing")
    unpruned = result.value_at(largest, "without preprocessing")
    assert pruned is not None and unpruned is not None
    assert pruned <= unpruned, (
        f"preprocessing slower at size {largest}: {pruned} vs {unpruned}"
    )
