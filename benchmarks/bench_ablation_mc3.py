"""Ablation: the MC3 local-search step (line 3 of Algorithm 1) on/off.

The MC3 step re-covers the same queries at lower cost, freeing budget for
the residual rounds — disabling it should never help.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import pytest

from repro.algorithms import AbccConfig, solve_bcc
from repro.datasets import generate_private
from repro.mc3 import full_cover_cost


@pytest.fixture(scope="module")
def instance(scale):
    base = generate_private(
        max(200, scale.p_queries // 4), max(300, scale.p_properties // 4), seed=13
    )
    return base.with_budget(round(full_cover_cost(base) * 0.2))


@pytest.mark.parametrize("use_mc3", [True, False], ids=["mc3-on", "mc3-off"])
def test_mc3_step(benchmark, instance, use_mc3):
    solution = benchmark.pedantic(
        solve_bcc, args=(instance, AbccConfig(use_mc3=use_mc3)), rounds=1, iterations=1
    )
    assert solution.cost <= instance.budget + 1e-9
    benchmark.extra_info["utility"] = solution.utility


def test_mc3_never_hurts(instance):
    with_mc3 = solve_bcc(instance, AbccConfig(use_mc3=True))
    without = solve_bcc(instance, AbccConfig(use_mc3=False))
    # Allow small heuristic noise, but MC3 should not collapse quality.
    assert with_mc3.utility >= without.utility * 0.95
