"""Three-engine benchmark for the matrix backend (``REPRO_ENGINE=matrix``).

Times ``sets`` / ``bits`` / ``matrix`` on the wide-property-space regime
the matrix engine targets (hundreds of properties, so per-query masks
span many 64-bit words), asserting identical answers everywhere:

- ``micro.probe_batch`` — the headline kernel: ``probe_gain_batch`` over
  batches of candidate slates on a wide workload.  ``sets``/``bits`` run
  the serial per-slate fallback, ``matrix`` the vectorized ``(S, Q, W)``
  AND-NOT/popcount sweep; per-slate gains must be float-identical.
- ``micro.probe_serial`` — single-slate ``probe_gain`` on the same
  state, isolating the one-slate sweep from the batch amortization.
- ``figure_run`` — a full ``fig3c`` budget sweep (RAND / IG1 / IG2 /
  A^BCC plus the MC3 anchor) on a wide synthetic scale;
  ``FigureResult.digest`` must be byte-identical across all engines.
- ``end_to_end`` — ``solve_bcc`` on the wide 950-property shape from
  ``bench_bitset`` (the shape where the bits engine recorded 0.97x
  against the sets reference), identical solutions asserted per seed.
  Recorded honestly: most of this arm is the engine-independent QK/DkS
  graph machinery, so coverage-backend speedups are bounded well below
  the kernel-level ratios (see ROADMAP).
- ``arms`` — every solver arm registered in ``default_arms()`` on the
  seeded corpus: utilities/costs/selections must agree across all three
  engines (recorded as a pass count, not a timing).

Measurement methodology follows ``bench_bitset``: process CPU seconds
with the garbage collector disabled in timed regions, arms interleaved
within every repeat, minimum over repeats reported.  All speedups are
recorded as measured — including any arm where the matrix engine does
not win.

Run directly::

    PYTHONPATH=src python benchmarks/bench_matrix.py [--quick]

or through pytest (``pytest benchmarks/bench_matrix.py``), where the
TINY scale maps to the quick spec.
"""

from __future__ import annotations

import argparse
import gc
import json
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from repro.algorithms.bcc import AbccConfig, solve_bcc
from repro.core.bitset import use_engine
from repro.core.coverage import CoverageTracker
from repro.datasets.synthetic import generate_synthetic
from repro.experiments.figures import fig3c
from repro.experiments.scales import Scale
from repro.qk import QKConfig

RESULT_PATH = Path(__file__).parent / "BENCH_matrix.json"

ENGINES = ("sets", "bits", "matrix")

QUICK_SPEC = {
    "probe": {
        "n_queries": 400,
        "n_properties": 300,
        "budget": 600.0,
        "seed": 0,
        "pool": 60,
        "slates": 60,
        "slate_size": 10,
        "passes": 2,
        "repeats": 2,
    },
    "figure_run": {
        "s_queries": 500,
        "s_properties": 300,
        "seed": 0,
        "rand_repeats": 2,
        "repeats": 2,
    },
    "end_to_end": {
        "n_queries": 300,
        "n_properties": 240,
        "budget": 600.0,
        "seeds": [0],
        "repeats": 2,
    },
    "arms": {"seeds": 1},
}
MEDIUM_SPEC = {
    # Wide probe workload: per-query masks span ~15 uint64 words, the
    # regime where big-int AND-NOT loops pay per-word Python overhead
    # and the packed matrix sweep amortizes it across the batch.
    "probe": {
        "n_queries": 1500,
        "n_properties": 950,
        "budget": 2500.0,
        "seed": 0,
        "pool": 120,
        "slates": 200,
        "slate_size": 12,
        "passes": 3,
        "repeats": 3,
    },
    "figure_run": {
        "s_queries": 1500,
        "s_properties": 600,
        "seed": 0,
        "rand_repeats": 2,
        "repeats": 2,
    },
    # The bench_bitset wide shape: solve_bcc where bits recorded 0.97x.
    "end_to_end": {
        "n_queries": 1500,
        "n_properties": 950,
        "budget": 2500.0,
        "seeds": [0, 1, 2],
        "repeats": 3,
    },
    "arms": {"seeds": 2},
}


def _timed(fn):
    """CPU-time ``fn()`` with the collector off; returns (result, seconds)."""
    gc.collect()
    gc.disable()
    try:
        started = time.process_time()
        result = fn()
        elapsed = time.process_time() - started
    finally:
        gc.enable()
    return result, elapsed


def _wide_instance(spec: dict):
    return generate_synthetic(
        n_queries=spec["n_queries"],
        n_properties=spec["n_properties"],
        budget=spec["budget"],
        seed=spec["seed"],
    )


def _dense_pool(instance, size: int):
    """The ``size`` classifiers contained in the most queries (canonical order)."""
    relevant = sorted(instance.relevant_classifiers(), key=sorted)
    return sorted(
        relevant,
        key=lambda c: (-len(instance.queries_containing(c)), sorted(c)),
    )[:size]


def _probe_arms(spec: dict) -> dict:
    """Per-engine warmed tracker state for the probe kernels.

    Each engine gets its own freshly generated (hence freshly compiled)
    instance; every slate is probed once before timing so all arms enter
    the timed region with warm pack/containing caches — the steady state
    the solver's candidate loops run the kernel in.
    """
    arms = {}
    for engine in ENGINES:
        with use_engine(engine):
            instance = _wide_instance(spec)
            pool = _dense_pool(instance, spec["pool"])
            rng = random.Random(spec["seed"])
            slates = [
                rng.sample(pool, spec["slate_size"]) for _ in range(spec["slates"])
            ]
            tracker = CoverageTracker(instance)
            tracker.add_all(pool[:5])
            tracker.probe_gain_batch(slates)
            arms[engine] = {"tracker": tracker, "slates": slates}
    return arms


def _kernel_section(spec: dict, arms: dict, run) -> dict:
    """Time ``run(engine_state)`` per engine, interleaved, min over repeats.

    Asserts all engines return equal results on every repeat.
    """
    best = dict.fromkeys(ENGINES)
    for _ in range(spec["repeats"]):
        outputs = {}
        for engine in ENGINES:
            with use_engine(engine):
                result, seconds = _timed(lambda: run(arms[engine]))
            outputs[engine] = result
            if best[engine] is None or seconds < best[engine]:
                best[engine] = seconds
        for engine in ENGINES[1:]:
            assert outputs[engine] == outputs["sets"], f"{engine} diverged"
    section = {f"{engine}_sec": best[engine] for engine in ENGINES}
    section["speedup_vs_sets"] = (
        best["sets"] / best["matrix"] if best["matrix"] > 0 else float("inf")
    )
    section["speedup_vs_bits"] = (
        best["bits"] / best["matrix"] if best["matrix"] > 0 else float("inf")
    )
    return section


def _probe_bench(spec: dict) -> dict:
    arms = _probe_arms(spec)
    passes = range(spec["passes"])

    def probe_batch(state):
        tracker, slates = state["tracker"], state["slates"]
        gains = None
        for _ in passes:
            gains = tracker.probe_gain_batch(slates)
        return gains

    def probe_serial(state):
        tracker, slates = state["tracker"], state["slates"]
        gains = None
        for _ in passes:
            gains = [tracker.probe_gain(slate) for slate in slates]
        return gains

    return {
        "workload": {
            k: spec[k] for k in ("n_queries", "n_properties", "budget", "seed")
        },
        "probe_batch": {
            "slates": spec["slates"],
            "slate_size": spec["slate_size"],
            "passes": spec["passes"],
            **_kernel_section(spec, arms, probe_batch),
        },
        "probe_serial": _kernel_section(spec, arms, probe_serial),
    }


def _figure_bench(spec: dict) -> dict:
    """A full figure-3c budget sweep per engine, byte-identity asserted."""
    scale = Scale(
        name="bench-wide",
        bb_queries=60,
        bb_properties=80,
        p_queries=80,
        p_properties=130,
        s_queries=spec["s_queries"],
        s_properties=spec["s_properties"],
        sweep_sizes=(60,),
        rand_repeats=spec["rand_repeats"],
    )
    best = dict.fromkeys(ENGINES)
    for _ in range(spec["repeats"]):
        digests = {}
        for engine in ENGINES:
            with use_engine(engine):
                result, seconds = _timed(lambda: fig3c(scale, seed=spec["seed"]))
            digests[engine] = result.digest(include_seconds=False)
            if best[engine] is None or seconds < best[engine]:
                best[engine] = seconds
        for engine in ENGINES[1:]:
            assert digests[engine] == digests["sets"], "figure rows diverged"
    return {
        "figure": "fig3c",
        "scale": {
            "s_queries": spec["s_queries"],
            "s_properties": spec["s_properties"],
            "rand_repeats": spec["rand_repeats"],
        },
        "seed": spec["seed"],
        "repeats": spec["repeats"],
        **{f"{engine}_sec": best[engine] for engine in ENGINES},
        "speedup_vs_bits": (
            best["bits"] / best["matrix"] if best["matrix"] > 0 else float("inf")
        ),
        "identical_rows": True,
    }


def _e2e_single(spec: dict, seed: int, engine: str) -> dict:
    """One ``solve_bcc`` run under ``engine`` on a fresh instance."""
    with use_engine(engine):
        instance = generate_synthetic(
            n_queries=spec["n_queries"],
            n_properties=spec["n_properties"],
            budget=spec["budget"],
            seed=seed,
        )
        solution, elapsed = _timed(
            lambda: solve_bcc(instance, AbccConfig(qk=QKConfig(rounds=2)))
        )
    return {
        "seed": seed,
        "utility": solution.utility,
        "cost": solution.cost,
        "classifiers": solution.classifiers,
        "seconds": elapsed,
        "kernel": solution.meta["engine"]["kernel"],
    }


def _e2e_bench(spec: dict) -> dict:
    runs = {engine: [] for engine in ENGINES}
    for seed in spec["seeds"]:
        best = dict.fromkeys(ENGINES)
        for _ in range(spec["repeats"]):
            for engine in ENGINES:
                run = _e2e_single(spec, seed, engine)
                if best[engine] is None or run["seconds"] < best[engine]["seconds"]:
                    best[engine] = run
        for engine in ENGINES[1:]:
            assert best[engine]["classifiers"] == best["sets"]["classifiers"], (
                f"seed {seed}: {engine} selected different classifiers"
            )
            assert best[engine]["utility"] == best["sets"]["utility"]
            assert best[engine]["cost"] == best["sets"]["cost"]
        for engine in ENGINES:
            record = dict(best[engine])
            record["classifiers"] = len(record.pop("classifiers"))
            runs[engine].append(record)
    totals = {
        engine: sum(r["seconds"] for r in runs[engine]) for engine in ENGINES
    }
    return {
        "workload": {k: spec[k] for k in ("n_queries", "n_properties", "budget")},
        "seeds": list(spec["seeds"]),
        "repeats": spec["repeats"],
        "runs": runs,
        **{f"{engine}_total_sec": totals[engine] for engine in ENGINES},
        "speedup_vs_sets": (
            totals["sets"] / totals["matrix"] if totals["matrix"] > 0 else float("inf")
        ),
        "speedup_vs_bits": (
            totals["bits"] / totals["matrix"] if totals["matrix"] > 0 else float("inf")
        ),
        "identical_solutions": True,
    }


def _arms_bench(spec: dict) -> dict:
    """Every registered solver arm on the corpus: tri-engine identity."""
    from repro.verify.corpus import corpus
    from repro.verify.differential import (
        _ecc_view,
        _gmc3_view,
        _has_finite_full_cover,
        _oracle_feasible,
        default_arms,
    )

    arms = default_arms()
    checked = 0
    skipped = 0
    for arm in arms:
        for case in corpus(seeds=range(spec["seeds"])):
            instance = case.instance
            if arm.kind == "gmc3":
                if not _has_finite_full_cover(instance):
                    skipped += 1
                    continue
                view = _gmc3_view(instance)
                if view.target <= 0:
                    skipped += 1
                    continue
            elif arm.kind == "ecc":
                view = _ecc_view(instance)
            elif arm.oracle and not _oracle_feasible(instance):
                skipped += 1
                continue
            else:
                view = instance
            outcomes = {}
            for engine in ENGINES:
                with use_engine(engine):
                    solution = arm.run(view)
                outcomes[engine] = (
                    solution.classifiers,
                    solution.cost,
                    solution.utility,
                )
            for engine in ENGINES[1:]:
                assert outcomes[engine] == outcomes["sets"], (
                    f"{arm.name} diverged under {engine} on {case.name}"
                )
            checked += 1
    return {
        "arms": len(arms),
        "cases_checked": checked,
        "cases_skipped": skipped,
        "engine_identical": True,
    }


def run_bench(spec: dict) -> dict:
    return {
        "timer": "process_time, gc disabled (CPU seconds, min over repeats)",
        "micro": _probe_bench(spec["probe"]),
        "figure_run": _figure_bench(spec["figure_run"]),
        "end_to_end": _e2e_bench(spec["end_to_end"]),
        "arms": _arms_bench(spec["arms"]),
    }


def write_result(result: dict, path: Path = RESULT_PATH) -> None:
    path.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")


def test_matrix_kernels(benchmark, scale):
    """Pytest entry: quick spec at tiny scale, medium otherwise.

    Asserts answer identity (the `_kernel_section` / `_e2e_bench` /
    `_arms_bench` assertions), not speedups — CI machines are too noisy
    to gate on ratios; the recorded JSON is the performance artifact.
    """
    from conftest import run_once

    spec = QUICK_SPEC if scale.name == "tiny" else MEDIUM_SPEC
    result = run_once(benchmark, run_bench, spec=spec)
    assert result["end_to_end"]["identical_solutions"]
    assert result["figure_run"]["identical_rows"]
    assert result["arms"]["engine_identical"]
    write_result(result)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="small workload (CI smoke mode)"
    )
    parser.add_argument(
        "--out", type=Path, default=RESULT_PATH, help="result JSON path"
    )
    args = parser.parse_args(argv)
    spec = QUICK_SPEC if args.quick else MEDIUM_SPEC
    result = run_bench(spec)
    write_result(result, args.out)
    micro = result["micro"]
    e2e = result["end_to_end"]
    fig = result["figure_run"]
    for name in ("probe_batch", "probe_serial"):
        entry = micro[name]
        print(
            f"micro.{name}: sets {entry['sets_sec']:.3f}s, "
            f"bits {entry['bits_sec']:.3f}s -> matrix {entry['matrix_sec']:.3f}s "
            f"({entry['speedup_vs_bits']:.2f}x vs bits)"
        )
    print(
        f"{fig['figure']} {fig['scale']['s_queries']}q/"
        f"{fig['scale']['s_properties']}p sweep: sets {fig['sets_sec']:.2f}s, "
        f"bits {fig['bits_sec']:.2f}s -> matrix {fig['matrix_sec']:.2f}s "
        f"({fig['speedup_vs_bits']:.2f}x vs bits), identical figure rows"
    )
    print(
        f"solve_bcc {e2e['workload']['n_queries']}q/"
        f"{e2e['workload']['n_properties']}p x {len(e2e['seeds'])} seeds: "
        f"sets {e2e['sets_total_sec']:.2f}s, bits {e2e['bits_total_sec']:.2f}s "
        f"-> matrix {e2e['matrix_total_sec']:.2f}s "
        f"({e2e['speedup_vs_bits']:.2f}x vs bits), identical solutions"
    )
    arms = result["arms"]
    print(
        f"arms: {arms['arms']} solver arms x corpus, "
        f"{arms['cases_checked']} cases engine-identical across {ENGINES}"
    )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
