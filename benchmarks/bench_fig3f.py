"""Figure 3f: A^BCC utility with/without preprocessing over dataset sizes.

Paper shape: the quality degradation caused by preprocessing is
negligible (we allow 15% at benchmark scale; the paper's plot shows the
two bars nearly equal).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from conftest import run_once
from repro.experiments.figures import fig3f


def test_fig3f(benchmark, scale, parallel):
    result = run_once(benchmark, fig3f, scale=scale, parallel=parallel)
    for size in result.x_values():
        pruned = result.value_at(size, "with preprocessing")
        unpruned = result.value_at(size, "without preprocessing")
        assert pruned is not None and unpruned is not None
        assert pruned >= 0.85 * unpruned, (
            f"preprocessing degraded utility too much at size {size}: "
            f"{pruned} vs {unpruned}"
        )
