"""Figure 4c: GMC3 budget used by utility target on the Synthetic dataset.

Paper shape: A^GMC3 reaches every target at the lowest cost (margins are
smaller than in the BCC comparison); RAND pays by far the most.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from shape import assert_best_per_point

from conftest import run_once
from repro.experiments.figures import fig4c


def test_fig4c(benchmark, scale, parallel):
    result = run_once(benchmark, fig4c, scale=scale, parallel=parallel)
    assert_best_per_point(result, "A^GMC3", lower_is_better=True)
    totals = {
        name: sum(v for _, v in result.series(name))
        for name in result.algorithms()
    }
    assert totals["RAND(G)"] >= max(
        totals["IG1(G)"], totals["IG2(G)"], totals["A^GMC3"]
    )
