"""Benchmark for the parallel execution layer on the fig3a workload.

Three arms, all running the full Figure 3a sweep (BCC utility by budget
on the BestBuy dataset) through the task layer:

- **serial**: ``jobs=1``, no cache — the reference wall-clock and the
  reference answers;
- **parallel cold**: ``jobs=4`` into an empty result cache — measures
  pool fan-out and populates the cache;
- **parallel warm**: ``jobs=4`` against the populated cache — measures
  the repeated-sweep path (every cell served from disk).

Correctness gates: the cold parallel run must reproduce the serial
answers exactly (canonical rows minus wall-clock), and the warm run must
reproduce the cold parallel rows *byte for byte, seconds included* —
that is the determinism contract of the cache.

The headline ``speedup`` is serial vs. **warm** — the speedup the layer
delivers on repeated sweeps and CI bench-smoke runs, which is the stated
use case for the deterministic cache.  ``speedup_cold_parallel`` reports
the pure pool fan-out, which can only exceed 1 on multi-core hardware;
``cpu_count`` is recorded so the two numbers read honestly on any box.

Run directly::

    PYTHONPATH=src python benchmarks/bench_parallel.py [--quick]

or through pytest (``pytest benchmarks/bench_parallel.py``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from repro.experiments.figures import fig3a
from repro.experiments.scales import SCALES
from repro.parallel.cache import ResultCache
from repro.parallel.pool import ParallelConfig

RESULT_PATH = Path(__file__).parent / "BENCH_parallel.json"

#: The acceptance target: repeated sweeps at jobs=4 at least 2x faster.
TARGET_SPEEDUP = 2.0
JOBS = 4


def _timed_run(scale, seed, parallel):
    start = time.perf_counter()
    result = fig3a(scale=scale, seed=seed, parallel=parallel)
    return result, time.perf_counter() - start


def run_bench(scale_name: str = "tiny", seed: int = 0, repeats: int = 2) -> dict:
    """All three arms; answers must agree across every run of every arm."""
    scale = SCALES[scale_name]
    serial_secs, cold_secs, warm_secs = [], [], []
    reference = None
    cold_rows = None
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp:
        cache = ResultCache(directory=Path(tmp))
        for _ in range(repeats):
            result, seconds = _timed_run(scale, seed, ParallelConfig(jobs=1))
            serial_secs.append(seconds)
            answers = result.canonical(include_seconds=False)
            assert reference is None or answers == reference, "serial runs disagree"
            reference = answers

        for _ in range(repeats):
            cache.clear()
            result, seconds = _timed_run(
                scale, seed, ParallelConfig(jobs=JOBS, cache=cache)
            )
            cold_secs.append(seconds)
            assert result.canonical(include_seconds=False) == reference, (
                "parallel cold answers differ from serial"
            )
            cold_rows = result.canonical(include_seconds=True)

        for _ in range(repeats):
            result, seconds = _timed_run(
                scale, seed, ParallelConfig(jobs=JOBS, cache=cache)
            )
            warm_secs.append(seconds)
            assert result.canonical(include_seconds=True) == cold_rows, (
                "warm rows are not byte-identical to the cold parallel rows"
            )

        hits, misses = cache.stats.hits, cache.stats.misses

    serial = min(serial_secs)
    cold = min(cold_secs)
    warm = min(warm_secs)
    return {
        "workload": f"fig3a @ {scale_name} (seed {seed})",
        "jobs": JOBS,
        "repeats": repeats,
        "cpu_count": os.cpu_count(),
        "timer": "perf_counter wall seconds, min over repeats",
        "serial_sec": serial,
        "parallel_cold_sec": cold,
        "parallel_warm_sec": warm,
        "speedup": serial / warm if warm > 0 else float("inf"),
        "speedup_cold_parallel": serial / cold if cold > 0 else float("inf"),
        "target_speedup": TARGET_SPEEDUP,
        "cache": {"hits": hits, "misses": misses},
        "identical_utilities": True,
        "warm_rows_byte_identical": True,
    }


def write_result(result: dict, path: Path = RESULT_PATH) -> None:
    path.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")


def test_parallel_speedup(benchmark, scale):
    """Pytest entry: the three-arm comparison at the session scale."""
    from conftest import run_once

    result = run_once(benchmark, run_bench, scale_name=scale.name, repeats=1)
    assert result["identical_utilities"]
    assert result["warm_rows_byte_identical"]
    assert result["speedup"] >= TARGET_SPEEDUP
    write_result(result)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="tiny workload, one repeat (CI smoke)"
    )
    parser.add_argument("--scale", default=None, choices=sorted(SCALES))
    parser.add_argument("--out", type=Path, default=RESULT_PATH, help="result JSON path")
    args = parser.parse_args(argv)
    scale_name = args.scale or ("tiny" if args.quick else "small")
    result = run_bench(scale_name=scale_name, repeats=1 if args.quick else 2)
    write_result(result, args.out)
    print(
        f"{result['workload']}: serial {result['serial_sec']:.2f}s, "
        f"jobs={JOBS} cold {result['parallel_cold_sec']:.2f}s "
        f"({result['speedup_cold_parallel']:.2f}x), "
        f"warm {result['parallel_warm_sec']:.3f}s ({result['speedup']:.1f}x), "
        f"answers identical on all arms"
    )
    if result["speedup"] < TARGET_SPEEDUP:
        print(f"WARNING: warm speedup below target {TARGET_SPEEDUP}x")
        return 1
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
