"""Shared shape assertions for the figure benchmarks.

We do not chase the paper's absolute numbers (different data, different
hardware); we assert the *shape*: which algorithm wins, by how much
roughly, and how series move along the sweep.
"""

from __future__ import annotations

from repro.experiments.runner import FigureResult

# Heuristics fluctuate a little at tiny scales; "wins" means within this
# relative slack of the best competitor at each point and strictly better
# in aggregate.
POINTWISE_SLACK = 0.97


def assert_best_per_point(
    result: FigureResult, ours: str, lower_is_better: bool = False
) -> None:
    """``ours`` is best (or within slack) at every x and best in total."""
    totals = {name: 0.0 for name in result.algorithms()}
    for x in result.x_values():
        our_value = result.value_at(x, ours)
        assert our_value is not None
        for name in result.algorithms():
            if name == ours:
                continue
            other = result.value_at(x, name)
            if other is None:
                continue
            if lower_is_better:
                assert our_value <= other / POINTWISE_SLACK + 1e-9, (
                    f"{ours}={our_value} worse than {name}={other} at x={x}"
                )
            else:
                assert our_value >= other * POINTWISE_SLACK - 1e-9, (
                    f"{ours}={our_value} worse than {name}={other} at x={x}"
                )
        for name in result.algorithms():
            value = result.value_at(x, name)
            if value is not None:
                totals[name] += value
    for name, total in totals.items():
        if name == ours:
            continue
        if lower_is_better:
            assert totals[ours] <= total + 1e-9, (
                f"{ours} total {totals[ours]} worse than {name} total {total}"
            )
        else:
            assert totals[ours] >= total - 1e-9, (
                f"{ours} total {totals[ours]} worse than {name} total {total}"
            )


def assert_monotone_in_x(result: FigureResult, algorithm: str) -> None:
    """Utility never decreases as the budget grows."""
    series = result.series(algorithm)
    values = [value for _, value in series]
    for earlier, later in zip(values, values[1:]):
        assert later >= earlier - 1e-9


def assert_same_answers(a: FigureResult, b: FigureResult) -> None:
    """Two runs of one figure produced the same answers, cell for cell.

    Compares the canonical serialization minus everything wall-clock
    (row seconds and solver timing telemetry) — the contract the parallel
    execution layer makes with the serial path.
    """
    assert a.figure == b.figure, f"different figures: {a.figure} vs {b.figure}"
    left = a.canonical(include_seconds=False)
    right = b.canonical(include_seconds=False)
    assert left == right, f"{a.figure}: runs disagree beyond wall-clock fields"
