"""Benchmark configuration.

Benchmarks default to the TINY scale so ``pytest benchmarks/
--benchmark-only`` completes in minutes; set ``REPRO_BENCH_SCALE=small``
(or ``paper``) for larger runs.  Every benchmark asserts the *shape* of
the paper's result (who wins, monotonicity) on top of timing the runner.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.scales import SCALES


@pytest.fixture(scope="session")
def scale():
    name = os.environ.get("REPRO_BENCH_SCALE", "tiny")
    if name not in SCALES:
        raise ValueError(f"REPRO_BENCH_SCALE must be one of {sorted(SCALES)}")
    return SCALES[name]


def run_once(benchmark, fn, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, kwargs=kwargs, rounds=1, iterations=1)
