"""Benchmark configuration.

Benchmarks default to the TINY scale so ``pytest benchmarks/
--benchmark-only`` completes in minutes; set ``REPRO_BENCH_SCALE=small``
(or ``paper``) for larger runs.  ``REPRO_BENCH_JOBS=N`` fans each figure
sweep over N worker processes (results are bit-identical to serial — the
shape assertions don't care, only the wall-clock does).  Every benchmark
asserts the *shape* of the paper's result (who wins, monotonicity) on
top of timing the runner.
"""

from __future__ import annotations

import pytest

from repro.experiments.scales import jobs_from_env, scale_from_env
from repro.parallel.pool import ParallelConfig


@pytest.fixture(scope="session")
def scale():
    return scale_from_env("REPRO_BENCH_SCALE", default="tiny")


@pytest.fixture(scope="session")
def parallel():
    """Execution policy for figure benchmarks: jobs knob, never cached.

    Caching is deliberately off here — a benchmark that replays stored
    results times the cache, not the solver.
    """
    return ParallelConfig(jobs=jobs_from_env("REPRO_BENCH_JOBS", default=1))


def run_once(benchmark, fn, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, kwargs=kwargs, rounds=1, iterations=1)
