"""Compare A^BCC against the paper's baselines on a search-log workload.

Reproduces the Figure 3a experiment end to end at example scale: a
BestBuy-like search log, a budget sweep derived from the MC3 full-cover
cost, and the RAND / IG1 / IG2 / A^BCC comparison printed as a table.

Run with::

    python examples/baseline_comparison.py
"""

from repro.algorithms import solve_bcc
from repro.baselines import ig1_bcc, ig2_bcc, rand_bcc
from repro.datasets import generate_bestbuy
from repro.mc3 import full_cover_cost

workload = generate_bestbuy(n_queries=250, n_properties=240, seed=3)
full_cost = full_cover_cost(workload)
budgets = [max(1, round(full_cost * fraction)) for fraction in (0.1, 0.25, 0.5)]

print(f"{'budget':>8} | {'RAND':>8} | {'IG1':>8} | {'IG2':>8} | {'A^BCC':>8}")
print("-" * 54)
for budget in budgets:
    instance = workload.with_budget(budget)
    rand_avg = sum(
        rand_bcc(instance, seed=s).utility for s in range(5)
    ) / 5.0
    ig1 = ig1_bcc(instance).utility
    ig2 = ig2_bcc(instance).utility
    ours = solve_bcc(instance).utility
    print(f"{budget:>8} | {rand_avg:>8.0f} | {ig1:>8.0f} | {ig2:>8.0f} | {ours:>8.0f}")

print("\n(A^BCC should lead every row; RAND should trail far behind.)")
