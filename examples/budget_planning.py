"""Flexible-budget planning with the complementary objectives (Section 5).

When the budget is negotiable, two other questions matter:

- **GMC3**: what is the *cheapest* classifier set reaching a utility
  target (e.g. "cover at least 60% of search demand")?
- **ECC**: which classifier set gives the best *bang for the buck*
  (maximum utility per unit of cost) — a natural pilot-project choice?

Run with::

    python examples/budget_planning.py
"""

from repro.algorithms import solve_ecc, solve_gmc3
from repro.core import ECCInstance, GMC3Instance
from repro.datasets import generate_bestbuy
from repro.mc3 import full_cover_cost

base = generate_bestbuy(n_queries=300, n_properties=280, seed=7)
total = base.total_utility()
full_cost = full_cover_cost(base)
print(f"Workload: {base.num_queries} queries, total utility {total:.0f}, "
      f"full-cover cost {full_cost:.0f}")

# ----------------------------------------------------------------------
# GMC3: cheapest way to reach 60% of the total utility.
# ----------------------------------------------------------------------
target = round(total * 0.6)
gmc3 = GMC3Instance(
    base.queries,
    {q: base.utility(q) for q in base.queries},
    {},
    target=target,
    default_cost=base.default_cost,
)
plan = solve_gmc3(gmc3)
print(f"\nGMC3: reach utility {target} as cheaply as possible")
print(f"  classifiers: {len(plan.classifiers)}")
print(f"  cost:        {plan.cost:.0f} "
      f"({100 * plan.cost / full_cost:.0f}% of the full-cover cost)")
print(f"  utility:     {plan.utility:.0f}")
assert plan.utility >= target

# ----------------------------------------------------------------------
# ECC: the best utility-per-cost starter pack.
# ----------------------------------------------------------------------
ecc = ECCInstance(
    base.queries,
    {q: base.utility(q) for q in base.queries},
    {},
    default_cost=base.default_cost,
)
pilot = solve_ecc(ecc)
print("\nECC: best bang-for-the-buck classifier set")
print(f"  classifiers: {len(pilot.classifiers)}")
print(f"  cost:        {pilot.cost:.0f}")
print(f"  utility:     {pilot.utility:.0f}")
print(f"  ratio:       {pilot.ratio:.2f} utility per unit cost")
print(f"  (covering everything yields {total / full_cost:.2f})")
