"""Quarterly classifier-construction planning for an e-commerce catalog.

Generates a Private-dataset-like workload (category blocks, analyst costs
and utilities), plans classifier construction under a quarterly budget
with ``A^BCC``, and reports the insights the paper highlights: how far
the budget goes compared to covering everything, the diminishing-returns
curve, and the covered-utility split by query length.

Run with::

    python examples/ecommerce_catalog.py
"""

from repro.algorithms import solve_bcc
from repro.datasets import dataset_stats, generate_private
from repro.experiments.insights import coverage_split_by_length, utility_curve
from repro.mc3 import full_cover_cost

# A laptop-sized version of the paper's P dataset.
workload = generate_private(n_queries=600, n_properties=900, seed=42)
stats = dataset_stats(workload)
print("Workload:")
print(f"  queries:            {stats['num_queries']}")
print(f"  properties:         {stats['num_properties']}")
print(f"  avg query length:   {stats['avg_length']:.2f}")
print(f"  avg analyst cost:   {stats['avg_finite_cost']:.1f}")

full_cost = full_cover_cost(workload)
total_utility = workload.total_utility()
print(f"  full-cover cost:    {full_cost:.0f}")
print(f"  total utility:      {total_utility:.0f}")

# The quarterly budget covers roughly a quarter of the full-cover cost —
# the regime the paper reports for the real dataset.
budget = round(full_cost * 0.25)
instance = workload.with_budget(budget)
solution = solve_bcc(instance)
print(f"\nQuarterly budget {budget}:")
print(f"  classifiers built:  {len(solution.classifiers)}")
print(f"  cost used:          {solution.cost:.0f}")
print(
    f"  utility covered:    {solution.utility:.0f} "
    f"({100 * solution.utility / total_utility:.0f}% of total)"
)

split = coverage_split_by_length(workload, budget)
print("  covered utility by query length:")
for length in sorted(split):
    print(f"    length {length}: {100 * split[length]:.0f}%")

print("\nDiminishing returns (budget fraction -> utility fraction):")
for budget_fraction, utility_fraction in utility_curve(workload):
    print(f"  {budget_fraction:4.2f} -> {utility_fraction:4.2f}")
