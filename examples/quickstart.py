"""Quickstart: the paper's running example as code.

An e-commerce platform wants better result sets for the queries
"wooden table", "round table" and "running shoes".  Analysts estimated a
construction cost for every candidate classifier and a utility for every
query; the budget does not cover everything.  Which classifiers should we
build?

Run with::

    python examples/quickstart.py
"""

import math

from repro import BCCInstance, from_phrase
from repro.algorithms import solve_bcc

# Queries are property sets.  "wooden table" must match items that are
# wooden AND tables.
wooden_table = from_phrase("wooden table")
round_table = from_phrase("round table")
running_shoes = from_phrase("running shoes")

queries = [wooden_table, round_table, running_shoes]

# How valuable is it to compute each query's result set?  (Search
# frequency, monetary impact, ... — the units don't matter, only ratios.)
utilities = {
    wooden_table: 6.0,
    round_table: 4.0,
    running_shoes: 9.0,
}

# Classifier costs, estimated from the labeled-data volume each needs.
# - "wooden table" is already cheap: tables have little visual variety;
# - a generic "wooden" classifier is costlier but reusable across queries;
# - "round wooden" without more context is impractical: cost infinity.
costs = {
    from_phrase("wooden table"): 3.0,
    from_phrase("round table"): 3.0,
    from_phrase("wooden"): 5.0,
    from_phrase("round"): 4.0,
    from_phrase("table"): 4.0,
    from_phrase("running shoes"): 8.0,
    from_phrase("running"): 7.0,
    from_phrase("shoes"): 5.0,
}

instance = BCCInstance(queries, utilities, costs, budget=12.0)

solution = solve_bcc(instance)

print("Budget:", instance.budget)
print("Selected classifiers:")
for classifier in sorted(solution.classifiers, key=sorted):
    cost = instance.cost(classifier)
    print(f"  {' & '.join(sorted(classifier)):24s} cost {cost:g}")
print(f"Total cost:    {solution.cost:g}")
print("Covered queries:")
for query in sorted(solution.covered, key=sorted):
    print(f"  {' '.join(sorted(query)):24s} utility {instance.utility(query):g}")
print(f"Total utility: {solution.utility:g} / {instance.total_utility():g}")

# Sanity: the solver never exceeds the budget.
assert solution.cost <= instance.budget + 1e-9
