"""End-to-end deployment simulation (paper Section 6.2).

Builds a synthetic catalog whose sellers under-list item properties,
derives a demand workload, plans classifier construction with ``A^BCC``
under a quarterly budget, trains the selected classifiers on a noisy
learning-curve model, deploys them into a search engine, and audits the
same quantities the paper's business collaborators reported:

- estimated vs actual training costs (paper: ~6% underestimation),
- realized classifier accuracy (paper: estimates almost always >90%),
- result-set growth on newly covered queries (paper: >200%).

Run with::

    python examples/end_to_end_simulation.py
"""

from repro.simulation import CatalogConfig, run_end_to_end

config = CatalogConfig(
    n_items=1500,
    n_properties=50,
    disclosure=0.55,  # sellers list ~55% of the true properties
)

print("Simulating a quarter of classifier construction...\n")
report = run_end_to_end(config, n_queries=50, budget_fraction=0.25, seed=11)
print(report.summary())

print("\nPer-query detail (first 8 newly covered queries):")
print(f"{'len':>4} | {'baseline':>8} | {'now':>6} | {'growth':>7} | {'precision':>9}")
for metrics in report.per_query[:8]:
    print(
        f"{int(metrics['query_size']):>4} | {metrics['baseline_size']:>8.0f} | "
        f"{metrics['current_size']:>6.0f} | {100 * metrics['growth']:>6.0f}% | "
        f"{metrics['precision']:>9.2f}"
    )
