"""The future-work extensions in action (paper Section 8).

1. *Partial covers*: when even incomplete filtering has value, how much
   utility does the all-or-nothing base model leave on the table?
2. *Shared costs*: when classifiers share labeled data per property, how
   much further does the same budget stretch?

Run with::

    python examples/extensions_demo.py
"""

from repro.algorithms import solve_bcc
from repro.datasets import generate_private
from repro.extensions import (
    PartialCoverModel,
    SharedCostModel,
    linear_credit,
    solve_partial_bcc,
    solve_shared_cost_bcc,
    step_credit,
)
from repro.mc3 import full_cover_cost

base = generate_private(n_queries=250, n_properties=400, seed=11)
budget = round(full_cover_cost(base) * 0.12)
instance = base.with_budget(budget)
print(f"Workload: {base.num_queries} queries, budget {budget}")

# ----------------------------------------------------------------------
# Partial-cover credit.
# ----------------------------------------------------------------------
step_model = PartialCoverModel(instance, step_credit)
linear_model = PartialCoverModel(instance, linear_credit)

base_selection = solve_partial_bcc(step_model)
aware_selection = solve_partial_bcc(linear_model)

print("\nPartial-cover extension (linear credit):")
print(f"  base solution, step-scored:    {step_model.utility_of(base_selection):8.0f}")
print(f"  base solution, credit-scored:  {linear_model.utility_of(base_selection):8.0f}")
print(f"  credit-aware solution:         {linear_model.utility_of(aware_selection):8.0f}")

# ----------------------------------------------------------------------
# Shared data-collection costs.
# ----------------------------------------------------------------------
shared = SharedCostModel(instance, default_property_cost=2.0)
shared_selection = solve_shared_cost_bcc(shared)
naive_selection = solve_bcc(instance).classifiers

print("\nShared-cost extension (2.0 data cost per property, paid once):")
print(f"  base-model solution cost under sharing: {shared.cost_of(naive_selection):8.0f}")
print(f"  shared-aware solution cost:             {shared.cost_of(shared_selection):8.0f}")
print(f"  shared-aware covered utility:           {shared.utility_of(shared_selection):8.0f}")
