"""Tests for the MC3 substrate (repro.mc3)."""

import itertools
import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BCCInstance, covered_queries, from_letters as fs
from repro.mc3 import (
    InfeasibleCoverError,
    full_cover_cost,
    solve_mc3,
    solve_mc3_greedy,
    solve_mc3_l2,
)
from repro.mc3.greedy import cheapest_residual_cover


def brute_force_mc3(workload, queries=None):
    """Optimal cover cost by enumerating classifier subsets."""
    targets = list(queries) if queries is not None else list(workload.queries)
    classifiers = sorted(
        (c for c in workload.relevant_classifiers() if not math.isinf(workload.cost(c))),
        key=sorted,
    )
    best = math.inf
    for r in range(len(classifiers) + 1):
        for combo in itertools.combinations(classifiers, r):
            cost = sum(workload.cost(c) for c in combo)
            if cost >= best:
                continue
            covered = covered_queries(workload, combo)
            if all(q in covered for q in targets):
                best = cost
    return best


def random_l2_instance(seed, n_props=5, n_queries=6):
    rng = random.Random(seed)
    properties = [f"p{i}" for i in range(n_props)]
    queries = set()
    while len(queries) < n_queries:
        length = rng.randint(1, 2)
        queries.add(frozenset(rng.sample(properties, length)))
    queries = sorted(queries, key=sorted)
    costs = {}
    for q in queries:
        from repro.core import powerset_classifiers

        for c in powerset_classifiers(q):
            if c not in costs:
                value = rng.randint(0, 9)
                costs[c] = math.inf if rng.random() < 0.1 and len(c) == 2 else float(value)
    # Make sure singletons are finite so feasibility always holds.
    for q in queries:
        for p in q:
            if math.isinf(costs.get(frozenset({p}), 1.0)):
                costs[frozenset({p})] = 1.0
    return BCCInstance(queries, costs=costs, budget=1.0)


class TestExactL2:
    def test_singleton_query(self):
        instance = BCCInstance([fs("x")], costs={fs("x"): 3.0}, budget=1.0)
        solution = solve_mc3_l2(instance)
        assert solution == {fs("x")}

    def test_pair_prefers_cheaper_option(self):
        costs = {fs("x"): 5.0, fs("y"): 5.0, fs("xy"): 3.0}
        instance = BCCInstance([fs("xy")], costs=costs, budget=1.0)
        assert solve_mc3_l2(instance) == {fs("xy")}

    def test_pair_prefers_singletons_when_shared(self):
        # Two pair queries sharing x: singletons win through sharing.
        costs = {
            fs("x"): 2.0,
            fs("y"): 2.0,
            fs("z"): 2.0,
            fs("xy"): 3.5,
            fs("xz"): 3.5,
        }
        instance = BCCInstance([fs("xy"), fs("xz")], costs=costs, budget=1.0)
        solution = solve_mc3_l2(instance)
        cost = sum(instance.cost(c) for c in solution)
        assert cost == pytest.approx(6.0)
        assert solution == {fs("x"), fs("y"), fs("z")}

    def test_impractical_pair_forces_singletons(self):
        costs = {fs("x"): 2.0, fs("y"): 2.0, fs("xy"): math.inf}
        instance = BCCInstance([fs("xy")], costs=costs, budget=1.0)
        assert solve_mc3_l2(instance) == {fs("x"), fs("y")}

    def test_impractical_singleton_forces_pair(self):
        costs = {fs("x"): math.inf, fs("y"): 2.0, fs("xy"): 9.0}
        instance = BCCInstance([fs("xy")], costs=costs, budget=1.0)
        assert solve_mc3_l2(instance) == {fs("xy")}

    def test_infeasible_singleton_query(self):
        instance = BCCInstance([fs("x")], costs={fs("x"): math.inf}, budget=1.0)
        with pytest.raises(InfeasibleCoverError):
            solve_mc3_l2(instance)

    def test_infeasible_pair_query(self):
        costs = {fs("x"): math.inf, fs("y"): 2.0, fs("xy"): math.inf}
        instance = BCCInstance([fs("xy")], costs=costs, budget=1.0)
        with pytest.raises(InfeasibleCoverError):
            solve_mc3_l2(instance)

    def test_long_query_rejected(self):
        instance = BCCInstance([fs("xyz")], budget=1.0)
        with pytest.raises(ValueError):
            solve_mc3_l2(instance)

    def test_preselected_are_free(self):
        costs = {fs("x"): 5.0, fs("y"): 5.0, fs("xy"): 3.0}
        instance = BCCInstance([fs("xy")], costs=costs, budget=1.0)
        solution = solve_mc3_l2(instance, preselected=frozenset({fs("x")}))
        # With X free, buying Y (5) loses to XY (3)? No: X free + Y 5 = 5 vs 3.
        cost = sum(
            0.0 if c == fs("x") else instance.cost(c) for c in solution
        )
        assert cost == pytest.approx(3.0)

    def test_restricted_availability(self):
        costs = {fs("x"): 2.0, fs("y"): 2.0, fs("xy"): 1.0}
        instance = BCCInstance([fs("xy")], costs=costs, budget=1.0)
        solution = solve_mc3_l2(instance, available=[fs("x"), fs("y")])
        assert solution == {fs("x"), fs("y")}

    @given(seed=st.integers(0, 3000))
    @settings(max_examples=50, deadline=None)
    def test_exact_matches_brute_force(self, seed):
        instance = random_l2_instance(seed)
        solution = solve_mc3_l2(instance)
        covered = covered_queries(instance, solution)
        assert all(q in covered for q in instance.queries)
        cost = sum(instance.cost(c) for c in solution)
        assert cost == pytest.approx(brute_force_mc3(instance))


class TestGreedy:
    def test_three_long_query(self):
        costs = {
            fs("x"): 1.0,
            fs("y"): 1.0,
            fs("z"): 1.0,
            fs("xy"): 1.5,
            fs("yz"): 1.5,
            fs("xz"): 1.5,
            fs("xyz"): 2.0,
        }
        instance = BCCInstance([fs("xyz")], costs=costs, budget=1.0)
        solution = solve_mc3_greedy(instance)
        assert covered_queries(instance, solution) == {fs("xyz")}
        assert sum(instance.cost(c) for c in solution) == pytest.approx(2.0)

    def test_infeasible_raises(self):
        instance = BCCInstance(
            [fs("xyz")],
            costs={c: math.inf for c in BCCInstance([fs("xyz")], budget=0).relevant_classifiers()},
            budget=1.0,
        )
        with pytest.raises(InfeasibleCoverError):
            solve_mc3_greedy(instance)

    def test_shared_classifier_reused_free(self):
        # After selecting X for query xy, covering xz should reuse it.
        costs = {
            fs("x"): 3.0,
            fs("y"): 1.0,
            fs("z"): 1.0,
            fs("xy"): 10.0,
            fs("xz"): 10.0,
        }
        instance = BCCInstance([fs("xy"), fs("xz")], costs=costs, budget=1.0)
        solution = solve_mc3_greedy(instance)
        assert sum(instance.cost(c) for c in solution) == pytest.approx(5.0)

    @given(seed=st.integers(0, 2000))
    @settings(max_examples=30, deadline=None)
    def test_greedy_always_covers(self, seed):
        rng = random.Random(seed)
        properties = list("abcde")
        queries = set()
        while len(queries) < 4:
            queries.add(frozenset(rng.sample(properties, rng.randint(1, 3))))
        instance = BCCInstance(sorted(queries, key=sorted), budget=1.0)
        solution = solve_mc3_greedy(instance)
        covered = covered_queries(instance, solution)
        assert all(q in covered for q in instance.queries)


class TestCheapestResidualCover:
    def test_free_when_covered(self):
        result = cheapest_residual_cover(fs("xy"), [], {"x", "y"})
        assert result == (0.0, frozenset())

    def test_picks_cheapest(self):
        candidates = [(fs("xy"), 3.0), (fs("x"), 1.0), (fs("y"), 1.5)]
        cost, cover = cheapest_residual_cover(fs("xy"), candidates, set())
        assert cost == pytest.approx(2.5)
        assert cover == {fs("x"), fs("y")}

    def test_residual_reduction(self):
        candidates = [(fs("xy"), 3.0), (fs("y"), 1.5)]
        cost, cover = cheapest_residual_cover(fs("xy"), candidates, {"x"})
        assert cost == pytest.approx(1.5)
        assert cover == {fs("y")}

    def test_uncoverable_returns_none(self):
        assert cheapest_residual_cover(fs("xy"), [(fs("x"), 1.0)], set()) is None


class TestDispatcherAndBound:
    def test_mixed_lengths(self):
        queries = [fs("x"), fs("xy"), fs("xyz")]
        instance = BCCInstance(queries, budget=1.0)
        solution = solve_mc3(instance)
        covered = covered_queries(instance, solution)
        assert all(q in covered for q in instance.queries)

    def test_full_cover_cost_fig1(self, fig1_b11):
        # Covering all three Figure 1 queries requires X, Y, Z (cost 11);
        # YZ is free and XY is impractical.
        assert full_cover_cost(fig1_b11) == pytest.approx(11.0)

    @given(seed=st.integers(0, 1500))
    @settings(max_examples=30, deadline=None)
    def test_hybrid_cost_close_to_optimal_l2(self, seed):
        instance = random_l2_instance(seed)
        cost = sum(instance.cost(c) for c in solve_mc3(instance))
        assert cost == pytest.approx(brute_force_mc3(instance))
