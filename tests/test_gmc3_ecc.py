"""Tests for A^GMC3, A^ECC and the densest-subgraph substrate."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import Gmc3Config, solve_ecc, solve_gmc3
from repro.core import (
    ECCInstance,
    GMC3Instance,
    InfeasibleTargetError,
    from_letters as fs,
)
from repro.densest import solve_densest_exact, solve_densest_peeling
from repro.graphs import Hypergraph, WeightedGraph


def triangle_plus_tail():
    """Dense triangle (ratio 3) with a poor tail edge."""
    g = WeightedGraph()
    for n in ("a", "b", "c"):
        g.add_node(n, 1.0)
    g.add_edge("a", "b", 3.0)
    g.add_edge("b", "c", 3.0)
    g.add_edge("a", "c", 3.0)
    g.add_node("t", 5.0)
    g.add_edge("c", "t", 1.0)
    return g


class TestDensestExact:
    def test_triangle_beats_tail(self):
        ratio, nodes = solve_densest_exact(triangle_plus_tail())
        assert nodes == frozenset({"a", "b", "c"})
        assert ratio == pytest.approx(3.0, rel=1e-4)

    def test_empty_graph(self):
        assert solve_densest_exact(WeightedGraph()) == (0.0, frozenset())

    def test_zero_cost_positive_weight_infinite(self):
        g = WeightedGraph()
        g.add_node("a", 0.0)
        g.add_node("b", 0.0)
        g.add_edge("a", "b", 2.0)
        ratio, nodes = solve_densest_exact(g)
        assert ratio == math.inf
        assert nodes == frozenset({"a", "b"})

    def test_single_edge_ratio(self):
        g = WeightedGraph()
        g.add_node("a", 2.0)
        g.add_node("b", 2.0)
        g.add_edge("a", "b", 6.0)
        ratio, nodes = solve_densest_exact(g)
        assert ratio == pytest.approx(1.5, rel=1e-4)

    @given(seed=st.integers(0, 500))
    @settings(max_examples=25, deadline=None)
    def test_exact_at_least_peeling(self, seed):
        import random

        rng = random.Random(seed)
        g = WeightedGraph()
        h = Hypergraph()
        for i in range(8):
            cost = float(rng.randint(1, 5))
            g.add_node(i, cost)
            h.add_node(i, cost)
        for i in range(8):
            for j in range(i + 1, 8):
                if rng.random() < 0.4:
                    w = float(rng.randint(1, 9))
                    g.add_edge(i, j, w)
                    h.add_edge([i, j], w)
        if g.num_edges() == 0:
            return
        exact_ratio, _ = solve_densest_exact(g)
        peel_ratio, _ = solve_densest_peeling(h)
        assert exact_ratio >= peel_ratio - 1e-6
        # Peeling is a 2-approximation on graphs.
        assert peel_ratio >= exact_ratio / 2.0 - 1e-6


class TestDensestPeeling:
    def test_hyperedge_requires_all_nodes(self):
        h = Hypergraph()
        for n in ("a", "b", "c"):
            h.add_node(n, 1.0)
        h.add_edge(["a", "b", "c"], 9.0)
        ratio, nodes = solve_densest_peeling(h)
        assert nodes == frozenset({"a", "b", "c"})
        assert ratio == pytest.approx(3.0)

    def test_empty(self):
        assert solve_densest_peeling(Hypergraph())[0] == 0.0

    def test_zero_cost_infinite(self):
        h = Hypergraph()
        h.add_node("a", 0.0)
        h.add_edge(["a"], 5.0)
        ratio, nodes = solve_densest_peeling(h)
        assert ratio == math.inf


class TestEcc:
    def test_picks_best_single_query_ratio(self):
        queries = [fs("x"), fs("y")]
        utilities = {fs("x"): 10.0, fs("y"): 1.0}
        costs = {fs("x"): 2.0, fs("y"): 5.0}
        instance = ECCInstance(queries, utilities, costs)
        solution = solve_ecc(instance)
        assert solution.ratio == pytest.approx(5.0)
        assert solution.covered == frozenset({fs("x")})

    def test_shared_singletons_beat_pair_classifier(self):
        # Queries xy, xz share X; singletons give utility 12 for cost 3.
        queries = [fs("xy"), fs("xz")]
        utilities = {fs("xy"): 6.0, fs("xz"): 6.0}
        costs = {
            fs("x"): 1.0,
            fs("y"): 1.0,
            fs("z"): 1.0,
            fs("xy"): 3.0,
            fs("xz"): 3.0,
        }
        instance = ECCInstance(queries, utilities, costs)
        solution = solve_ecc(instance)
        assert solution.ratio == pytest.approx(4.0)

    def test_single_pair_classifier_wins_when_cheap(self):
        queries = [fs("xy")]
        utilities = {fs("xy"): 10.0}
        costs = {fs("x"): 8.0, fs("y"): 8.0, fs("xy"): 2.0}
        instance = ECCInstance(queries, utilities, costs)
        solution = solve_ecc(instance)
        assert solution.ratio == pytest.approx(5.0)
        assert solution.classifiers == frozenset({fs("xy")})

    def test_length_three_queries(self):
        queries = [fs("xyz"), fs("xy")]
        utilities = {fs("xyz"): 9.0, fs("xy"): 5.0}
        costs = {
            fs("x"): 1.0,
            fs("y"): 1.0,
            fs("z"): 1.0,
            fs("xy"): 2.0,
            fs("yz"): 2.0,
            fs("xz"): 2.0,
            fs("xyz"): 4.0,
        }
        instance = ECCInstance(queries, utilities, costs)
        solution = solve_ecc(instance)
        # Singletons X,Y,Z: utility 14 at cost 3 -> ratio ~4.67 optimal.
        assert solution.ratio >= 14.0 / 3.0 - 1e-6

    def test_zero_cost_classifier_infinite_ratio(self):
        instance = ECCInstance([fs("x")], costs={fs("x"): 0.0})
        solution = solve_ecc(instance)
        assert solution.ratio == math.inf

    def test_impractical_classifiers_skipped(self):
        costs = {fs("x"): math.inf, fs("y"): 1.0, fs("xy"): math.inf}
        instance = ECCInstance([fs("xy")], costs=costs)
        solution = solve_ecc(instance)
        # Nothing can cover xy: utility 0.
        assert solution.utility == 0.0


class TestGmc3:
    def small(self, target):
        queries = [fs("x"), fs("y"), fs("xy"), fs("yz")]
        utilities = {fs("x"): 5.0, fs("y"): 2.0, fs("xy"): 4.0, fs("yz"): 3.0}
        costs = {
            fs("x"): 2.0,
            fs("y"): 1.0,
            fs("z"): 2.0,
            fs("xy"): 4.0,
            fs("yz"): 3.0,
        }
        return GMC3Instance(queries, utilities, costs, target=target)

    def test_reaches_target(self):
        solution = solve_gmc3(self.small(7.0))
        assert solution.utility >= 7.0
        assert solution.meta["reached_target"]

    def test_full_target_costs_full_cover(self):
        instance = self.small(14.0)
        solution = solve_gmc3(instance)
        assert solution.utility == pytest.approx(14.0)
        # Full cover: X, Y, Z (5) — XY/YZ classifiers cost more.
        assert solution.cost <= 5.0 + 1e-9

    def test_cheaper_than_ig1_baseline(self):
        from repro.baselines import ig1_gmc3

        instance = self.small(11.0)
        ours = solve_gmc3(instance)
        baseline = ig1_gmc3(instance)
        assert ours.utility >= 11.0
        assert ours.cost <= baseline.cost + 1e-9

    def test_infeasible_target_raises(self):
        with pytest.raises(InfeasibleTargetError):
            solve_gmc3(self.small(1000.0))

    def test_target_zero(self):
        solution = solve_gmc3(self.small(0.0))
        assert solution.cost == 0.0

    def test_meta_budget_bound(self):
        solution = solve_gmc3(self.small(5.0))
        assert solution.meta["budget_upper_bound"] >= solution.cost - 1e-9
