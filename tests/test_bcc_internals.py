"""White-box tests for A^BCC internals (bonus augmentation, cover arm,
MC3 improvement, swap polish)."""

import math

import pytest

from repro.algorithms.bcc import (
    _SINGLETON_BONUS,
    AbccConfig,
    _augment_with_singleton_bonus,
    _cover_greedy_pick,
    _mc3_improve,
    _swap_polish,
    solve_bcc,
)
from repro.algorithms.residual import ResidualProblem
from repro.core import BCCInstance, from_letters as fs


class TestBonusAugmentation:
    def test_adds_virtual_node_and_exact_credits(self):
        instance = BCCInstance(
            [fs("xy"), fs("x")],
            {fs("xy"): 4.0, fs("x"): 2.0},
            {fs("x"): 1.0, fs("y"): 1.0, fs("xy"): 1.5},
            budget=5.0,
        )
        residual = ResidualProblem(instance)
        graph = residual.qk_graph(instance.budget)
        augmented = _augment_with_singleton_bonus(residual, graph, instance.budget)
        assert _SINGLETON_BONUS in augmented
        # Query x credits classifier X; query xy credits classifier XY.
        assert augmented.weight(_SINGLETON_BONUS, fs("x")) == 2.0
        assert augmented.weight(_SINGLETON_BONUS, fs("xy")) == 4.0

    def test_intermediate_supersets_not_credited(self):
        # xyz with YZ selected: missing {x}; XZ must NOT receive credit
        # (only X == missing and XYZ == query do).
        instance = BCCInstance(
            [fs("xyz")],
            {fs("xyz"): 8.0},
            {
                fs("x"): 1.0,
                fs("y"): 1.0,
                fs("z"): 1.0,
                fs("xy"): 1.0,
                fs("xz"): 1.0,
                fs("yz"): 0.0,
                fs("xyz"): 1.0,
            },
            budget=5.0,
        )
        residual = ResidualProblem(instance)
        residual.select([fs("yz")])
        graph = residual.qk_graph(instance.budget)
        augmented = _augment_with_singleton_bonus(residual, graph, instance.budget)
        bonus_neighbors = set(augmented.neighbors(_SINGLETON_BONUS))
        assert fs("x") in bonus_neighbors
        assert fs("xyz") in bonus_neighbors
        assert fs("xz") not in bonus_neighbors

    def test_no_bonus_no_augmentation(self):
        instance = BCCInstance(
            [fs("xy")], costs={fs("xy"): math.inf}, budget=5.0
        )
        residual = ResidualProblem(instance)
        graph = residual.qk_graph(instance.budget)
        augmented = _augment_with_singleton_bonus(residual, graph, 0.0)
        assert _SINGLETON_BONUS not in augmented


class TestCoverGreedyPick:
    def test_buys_whole_three_cover(self):
        instance = BCCInstance(
            [fs("xyz")],
            {fs("xyz"): 9.0},
            {
                fs("x"): 1.0,
                fs("y"): 1.0,
                fs("z"): 1.0,
                fs("xy"): math.inf,
                fs("xz"): math.inf,
                fs("yz"): math.inf,
                fs("xyz"): math.inf,
            },
            budget=3.0,
        )
        residual = ResidualProblem(instance)
        pick = _cover_greedy_pick(residual, 3.0)
        assert pick == frozenset({fs("x"), fs("y"), fs("z")})

    def test_respects_budget(self):
        instance = BCCInstance(
            [fs("xyz")],
            {fs("xyz"): 9.0},
            None,
            budget=2.0,
            default_cost=1.0,
        )
        residual = ResidualProblem(instance)
        pick = _cover_greedy_pick(residual, 2.0)
        cost = sum(instance.cost(c) for c in pick)
        assert cost <= 2.0 + 1e-9

    def test_prefers_high_ratio_query(self):
        instance = BCCInstance(
            [fs("ab"), fs("cd")],
            {fs("ab"): 10.0, fs("cd"): 1.0},
            {
                fs("ab"): 2.0,
                fs("cd"): 2.0,
                fs("a"): 5.0,
                fs("b"): 5.0,
                fs("c"): 5.0,
                fs("d"): 5.0,
            },
            budget=2.0,
        )
        residual = ResidualProblem(instance)
        pick = _cover_greedy_pick(residual, 2.0)
        assert pick == frozenset({fs("ab")})

    def test_reuses_selected_for_free(self):
        instance = BCCInstance(
            [fs("xy"), fs("xz")],
            {fs("xy"): 5.0, fs("xz"): 5.0},
            {
                fs("x"): 3.0,
                fs("y"): 1.0,
                fs("z"): 1.0,
                fs("xy"): 10.0,
                fs("xz"): 10.0,
            },
            budget=5.0,
        )
        residual = ResidualProblem(instance)
        pick = _cover_greedy_pick(residual, 5.0)
        # X shared: total cost 5 covers both queries.
        assert pick == frozenset({fs("x"), fs("y"), fs("z")})


class TestMc3Improve:
    def test_swaps_to_cheaper_cover(self, fig1_b11):
        residual = ResidualProblem(fig1_b11)
        # Cover xyz the expensive way: XYZ (3) plus X (5) covers xyz only.
        residual.select([fs("xyz"), fs("x")])
        before_cost = residual.spent()
        _mc3_improve(residual, fig1_b11)
        after_cost = residual.spent()
        assert after_cost <= before_cost
        # Coverage preserved.
        assert fs("xyz") in residual.tracker.covered

    def test_noop_when_already_cheapest(self, fig1_b3):
        residual = ResidualProblem(fig1_b3)
        residual.select([fs("xyz")])
        _mc3_improve(residual, fig1_b3)
        assert fs("xyz") in residual.selected


class TestSwapPolish:
    def test_improving_swap_found(self):
        instance = BCCInstance(
            [fs("a"), fs("b")],
            {fs("a"): 1.0, fs("b"): 10.0},
            {fs("a"): 1.0, fs("b"): 1.0},
            budget=1.0,
        )
        allowed = frozenset({fs("a"), fs("b")})
        polished = _swap_polish(instance, {fs("a")}, allowed, eval_cap=100)
        assert polished == {fs("b")}

    def test_no_negative_swaps(self, fig1_b4):
        allowed = frozenset(
            c for c in fig1_b4.relevant_classifiers()
            if not math.isinf(fig1_b4.cost(c))
        )
        start = {fs("yz"), fs("xz")}
        polished = _swap_polish(fig1_b4, start, allowed, eval_cap=100)
        from repro.core import evaluate

        assert evaluate(fig1_b4, polished).utility >= evaluate(fig1_b4, start).utility

    def test_eval_cap_zero_is_noop(self, fig1_b4):
        start = {fs("xyz")}
        polished = _swap_polish(fig1_b4, start, frozenset(), eval_cap=0)
        assert polished == start
