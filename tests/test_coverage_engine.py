"""Tests for the incremental coverage engine.

Covers the checkpoint/rollback undo log (round trips must restore
selected / covered / utility / spent / missing sets bit-identically),
incremental ``remove`` / ``reset`` / ``spent``, the engine telemetry
counters (``evaluate_gain`` must not construct trackers), and the
cover-greedy parking fix (unaffordable covers are re-queued with
recomputed costs instead of being dropped).
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.bcc import _cover_greedy_pick
from repro.algorithms.residual import ResidualProblem
from repro.core import BCCInstance, CoverageTracker, from_letters as fs
from tests.strategies import solvable_instances, wide_bcc_instances


def _snapshot(tracker):
    """Full observable state of a tracker, missing sets included."""
    workload = tracker._workload
    return (
        tracker.selected,
        tracker.covered,
        tracker.utility,
        tracker.spent,
        {q: tracker.missing_properties(q) for q in workload.queries},
    )


class TestCheckpointRollback:
    @given(instance=solvable_instances(max_queries=8))
    @settings(max_examples=60, deadline=None)
    def test_round_trip_bit_identical(self, instance):
        classifiers = sorted(instance.relevant_classifiers(), key=sorted)
        split = len(classifiers) // 2
        tracker = CoverageTracker(instance)
        tracker.add_all(classifiers[:split])
        before = _snapshot(tracker)
        tracker.checkpoint()
        tracker.add_all(classifiers[split:])
        tracker.rollback()
        assert _snapshot(tracker) == before

    @given(instance=wide_bcc_instances(max_queries=80))
    @settings(max_examples=10, deadline=None)
    def test_round_trip_bit_identical_wide_universe(self, instance):
        """The same round trip on the multi-word wide-property regime."""
        classifiers = sorted(instance.relevant_classifiers(), key=sorted)
        tracker = CoverageTracker(instance)
        tracker.add_all(classifiers[::3])
        before = _snapshot(tracker)
        tracker.checkpoint()
        tracker.add_all(classifiers[1::3])
        tracker.rollback()
        assert _snapshot(tracker) == before

    def test_nested_checkpoints(self, fig1_b11):
        tracker = CoverageTracker(fig1_b11)
        tracker.add(fs("yz"))
        base = _snapshot(tracker)
        tracker.checkpoint()
        tracker.add(fs("x"))
        middle = _snapshot(tracker)
        tracker.checkpoint()
        tracker.add_all([fs("y"), fs("z")])
        tracker.rollback()
        assert _snapshot(tracker) == middle
        tracker.rollback()
        assert _snapshot(tracker) == base

    def test_rollback_without_checkpoint_raises(self, fig1_b4):
        tracker = CoverageTracker(fig1_b4)
        with pytest.raises(RuntimeError):
            tracker.rollback()

    def test_rollback_counter_increments(self, fig1_b4):
        tracker = CoverageTracker(fig1_b4)
        assert tracker.rollbacks == 0
        tracker.checkpoint()
        tracker.add(fs("yz"))
        tracker.rollback()
        assert tracker.rollbacks == 1

    def test_re_adding_selected_survives_rollback(self, fig1_b4):
        # Re-adding an already-selected classifier inside a checkpoint is a
        # no-op, so the rollback must not deselect it.
        tracker = CoverageTracker(fig1_b4)
        tracker.add(fs("yz"))
        tracker.checkpoint()
        tracker.add(fs("yz"))
        tracker.add(fs("xz"))
        tracker.rollback()
        assert tracker.selected == frozenset({fs("yz")})


class TestRemoveAndReset:
    @given(instance=solvable_instances(max_queries=8), pick=st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_remove_matches_rebuild(self, instance, pick):
        classifiers = sorted(instance.relevant_classifiers(), key=sorted)[:8]
        tracker = CoverageTracker(instance)
        tracker.add_all(classifiers)
        removed = classifiers[pick % len(classifiers)]
        tracker.remove(removed)
        rebuilt = CoverageTracker(instance)
        rebuilt.add_all(c for c in classifiers if c != removed)
        assert _snapshot(tracker) == _snapshot(rebuilt)

    def test_remove_inside_checkpoint_raises(self, fig1_b4):
        tracker = CoverageTracker(fig1_b4)
        tracker.add(fs("yz"))
        tracker.checkpoint()
        with pytest.raises(RuntimeError):
            tracker.remove(fs("yz"))

    def test_remove_unselected_is_noop(self, fig1_b4):
        tracker = CoverageTracker(fig1_b4)
        tracker.add(fs("yz"))
        before = _snapshot(tracker)
        assert tracker.remove(fs("xz")) == []
        assert _snapshot(tracker) == before

    def test_remove_reports_uncovered(self, fig1_b4):
        tracker = CoverageTracker(fig1_b4)
        tracker.add_all([fs("yz"), fs("xz")])
        uncovered = tracker.remove(fs("xz"))
        assert set(uncovered) == {fs("xyz"), fs("xz")}
        assert tracker.missing_properties(fs("xyz")) == frozenset("x")

    def test_remove_infinite_cost_recomputes_spent(self):
        instance = BCCInstance(
            [fs("xy")],
            costs={fs("x"): 2.0, fs("y"): 3.0, fs("xy"): math.inf},
            budget=5.0,
        )
        tracker = CoverageTracker(instance)
        tracker.add_all([fs("x"), fs("y"), fs("xy")])
        assert math.isinf(tracker.spent)
        tracker.remove(fs("xy"))
        assert tracker.spent == 5.0

    def test_reset_restores_pristine(self, fig1_b11):
        tracker = CoverageTracker(fig1_b11)
        pristine = _snapshot(tracker)
        constructed = CoverageTracker.constructed
        tracker.add_all([fs("yz"), fs("x"), fs("y")])
        tracker.reset()
        assert _snapshot(tracker) == pristine
        assert CoverageTracker.constructed == constructed

    def test_spent_tracks_incrementally(self, fig1_b11):
        tracker = CoverageTracker(fig1_b11)
        assert tracker.spent == 0.0
        tracker.add(fs("yz"))
        assert tracker.spent == 0.0
        tracker.add(fs("x"))
        assert tracker.spent == 5.0
        tracker.add(fs("x"))  # re-add: no double charge
        assert tracker.spent == 5.0

    def test_contributors(self, fig1_b11):
        tracker = CoverageTracker(fig1_b11)
        tracker.add_all([fs("yz"), fs("x"), fs("xz")])
        assert tracker.contributors(fs("xyz")) == frozenset(
            {fs("yz"), fs("x"), fs("xz")}
        )
        assert tracker.contributors(fs("xy")) == frozenset({fs("x")})


class TestEngineCounters:
    def test_evaluate_gain_constructs_no_tracker(self, fig1_b11):
        residual = ResidualProblem(fig1_b11)
        residual.select([fs("yz")])
        constructed = CoverageTracker.constructed
        gain, cost = residual.evaluate_gain([fs("x")])
        assert CoverageTracker.constructed == constructed
        assert residual.stats["rebuilds_avoided"] == 1
        assert residual.tracker.rollbacks == 1
        # X completes xyz (utility 8) via YZ ∪ X; xz and xy stay uncovered.
        assert (gain, cost) == (8.0, 5.0)

    def test_evaluate_gain_matches_rebuild(self, fig1_b11):
        residual = ResidualProblem(fig1_b11)
        residual.select([fs("yz")])
        for trial in ([fs("x")], [fs("xz")], [fs("x"), fs("y")], []):
            assert residual.evaluate_gain(trial) == residual._rebuild_evaluate_gain(
                trial
            )

    def test_evaluate_gain_leaves_state_untouched(self, fig1_b11):
        residual = ResidualProblem(fig1_b11)
        residual.select([fs("yz")])
        before = _snapshot(residual.tracker)
        residual.evaluate_gain([fs("x"), fs("y"), fs("z")])
        assert _snapshot(residual.tracker) == before

    def test_solution_meta_reports_engine(self, fig1_b11):
        from repro.algorithms.bcc import solve_bcc

        meta = solve_bcc(fig1_b11).meta["engine"]
        assert meta["rebuilds_avoided"] > 0
        assert meta["rollbacks"] >= meta["rebuilds_avoided"]
        assert len(meta["qk_nodes"]) == len(meta["qk_edges"])
        assert len(meta["round_times_sec"]) >= 1


class TestCoverGreedyParking:
    def test_parked_cover_bought_after_member_freed(self, monkeypatch):
        """A cover popped while unaffordable must be re-queued, not dropped.

        With an exact cover oracle an unaffordable cover can never become
        affordable within one call (each purchase lowers a parked cover's
        cost by at most the amount it spends), so the scenario is staged
        with an oracle whose first estimates for the long query are
        inflated — the structural situation an approximate or stale cover
        search produces.  The old implementation dropped the entry on the
        unaffordable pop and never bought the cover; the parked entry must
        be re-validated after the next purchase, when the earlier pick has
        made member ``a`` free and the 3-classifier cover affordable.
        """
        import repro.mc3.greedy as greedy_module

        q_short = fs("ab")
        q_long = fs("acd")
        instance = BCCInstance(
            [q_short, q_long],
            {q_short: 10.0, q_long: 1000.0},
            costs={
                fs("a"): 2.0,
                fs("b"): 2.0,
                fs("c"): 2.0,
                fs("d"): 2.0,
                fs("ab"): math.inf,
                fs("ac"): math.inf,
                fs("ad"): math.inf,
                fs("cd"): math.inf,
                fs("acd"): math.inf,
            },
            budget=8.0,
        )
        real_oracle = greedy_module.cheapest_residual_cover
        long_query_calls = {"count": 0}

        def staged_oracle(query, candidates, covered_props, compiled=None):
            if query == q_long:
                long_query_calls["count"] += 1
                if long_query_calls["count"] <= 2:
                    # Heap build + first pop: overestimate, so the entry is
                    # popped as unaffordable (100 > budget) and parked.
                    return 100.0, frozenset({fs("a"), fs("c"), fs("d")})
            return real_oracle(query, candidates, covered_props, compiled)

        monkeypatch.setattr(
            greedy_module, "cheapest_residual_cover", staged_oracle
        )
        residual = ResidualProblem(instance)
        picked = _cover_greedy_pick(residual, instance.budget)
        # {a, b} bought for q_short first (4.0), freeing member a; the
        # parked q_long entry re-validates to the residual cover {c, d}
        # (4.0 <= remaining 4.0) and is bought.
        assert picked == frozenset({fs("a"), fs("b"), fs("c"), fs("d")})

    def test_unaffordable_cover_never_bought_when_nothing_frees_it(self):
        instance = BCCInstance(
            [fs("ab"), fs("cd")],
            {fs("ab"): 10.0, fs("cd"): 1.0},
            costs={
                fs("a"): 2.0,
                fs("b"): 2.0,
                fs("c"): 4.0,
                fs("d"): 4.0,
                fs("ab"): math.inf,
                fs("cd"): math.inf,
                fs("ac"): math.inf,
                fs("ad"): math.inf,
                fs("bc"): math.inf,
                fs("bd"): math.inf,
            },
            budget=6.0,
        )
        residual = ResidualProblem(instance)
        picked = _cover_greedy_pick(residual, instance.budget)
        # cd's cover costs 8 and shares nothing with ab's; parking must not
        # buy it or loop forever.
        assert picked == frozenset({fs("a"), fs("b")})
