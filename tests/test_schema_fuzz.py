"""Property-based fuzzing of the dataset serialization round-trip.

Instance generation lives in the shared :mod:`tests.strategies` module.
"""

from hypothesis import given, settings

from repro.datasets import instance_from_json, instance_to_json
from tests.strategies import bcc_instances


@given(instance=bcc_instances())
@settings(max_examples=60, deadline=None)
def test_round_trip_exact(instance):
    rebuilt = instance_from_json(instance_to_json(instance))
    assert rebuilt.queries == instance.queries
    assert rebuilt.budget == instance.budget
    assert rebuilt.default_cost == instance.default_cost
    for q in instance.queries:
        assert rebuilt.utility(q) == instance.utility(q)
    for c in instance.relevant_classifiers():
        assert rebuilt.cost(c) == instance.cost(c)


@given(instance=bcc_instances())
@settings(max_examples=30, deadline=None)
def test_json_payload_is_pure(instance):
    """The payload must survive a JSON encode/decode cycle unchanged."""
    import json

    payload = instance_to_json(instance)
    recycled = json.loads(json.dumps(payload))
    rebuilt = instance_from_json(recycled)
    assert rebuilt.queries == instance.queries
