"""Property-based fuzzing of the dataset serialization round-trip."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BCCInstance, powerset_classifiers
from repro.datasets import instance_from_json, instance_to_json

_props = st.text(alphabet="abcdefgh", min_size=1, max_size=3)
_query = st.frozensets(_props, min_size=1, max_size=3)


@st.composite
def instances(draw):
    queries = sorted(draw(st.sets(_query, min_size=1, max_size=6)), key=sorted)
    utilities = {
        q: draw(st.floats(0.1, 100.0, allow_nan=False)) for q in queries
    }
    costs = {}
    for q in queries:
        for c in powerset_classifiers(q):
            if draw(st.booleans()):
                costs[c] = (
                    math.inf
                    if draw(st.integers(0, 9)) == 0
                    else draw(st.floats(0.0, 50.0, allow_nan=False))
                )
    budget = draw(st.floats(0.0, 1000.0, allow_nan=False))
    return BCCInstance(queries, utilities, costs, budget=budget)


@given(instance=instances())
@settings(max_examples=60, deadline=None)
def test_round_trip_exact(instance):
    rebuilt = instance_from_json(instance_to_json(instance))
    assert rebuilt.queries == instance.queries
    assert rebuilt.budget == instance.budget
    assert rebuilt.default_cost == instance.default_cost
    for q in instance.queries:
        assert rebuilt.utility(q) == instance.utility(q)
    for c in instance.relevant_classifiers():
        assert rebuilt.cost(c) == instance.cost(c)


@given(instance=instances())
@settings(max_examples=30, deadline=None)
def test_json_payload_is_pure(instance):
    """The payload must survive a JSON encode/decode cycle unchanged."""
    import json

    payload = instance_to_json(instance)
    recycled = json.loads(json.dumps(payload))
    rebuilt = instance_from_json(recycled)
    assert rebuilt.queries == instance.queries
