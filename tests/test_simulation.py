"""Tests for the end-to-end simulation substrate (repro.simulation)."""

import random

import pytest

from repro.simulation import (
    Catalog,
    CatalogConfig,
    LearningCurve,
    SearchEngine,
    TrainedClassifier,
    TrainingLab,
    generate_catalog,
    run_end_to_end,
)
from repro.simulation.catalog import workload_from_catalog


class TestCatalog:
    @pytest.fixture(scope="class")
    def catalog(self):
        return generate_catalog(CatalogConfig(n_items=400, n_properties=30), seed=3)

    def test_size(self, catalog):
        assert len(catalog) == 400

    def test_listed_is_subset_of_latent(self, catalog):
        for item in catalog.items:
            assert item.listed <= item.latent

    def test_metadata_gap_exists(self, catalog):
        gaps = sum(
            1 for item in catalog.items if item.listed != item.latent
        )
        assert gaps > len(catalog) * 0.3

    def test_listed_results_subset_of_true(self, catalog):
        query = frozenset({"attr0"})
        listed = {i.item_id for i in catalog.listed_result_set(query)}
        truth = {i.item_id for i in catalog.true_result_set(query)}
        assert listed <= truth

    def test_prevalence_is_zipf_like(self, catalog):
        counts = catalog.property_prevalence()
        assert counts["attr0"] > counts["attr20"]

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            generate_catalog(CatalogConfig(n_items=0))
        with pytest.raises(ValueError):
            generate_catalog(CatalogConfig(disclosure=1.5))
        with pytest.raises(ValueError):
            generate_catalog(CatalogConfig(properties_per_item=(5, 2)))

    def test_workload_queries_nonempty_results(self, catalog):
        queries, utilities = workload_from_catalog(catalog, 20, seed=1)
        assert len(queries) == 20
        for q in queries:
            assert utilities[q] >= 1.0


class TestLearningCurve:
    def test_accuracy_monotone_in_labels(self):
        curve = LearningCurve()
        values = [curve.accuracy(n) for n in (1, 10, 100, 1000)]
        assert values == sorted(values)

    def test_labels_for_inverse(self):
        curve = LearningCurve()
        labels = curve.labels_for(0.9)
        assert curve.accuracy(labels) == pytest.approx(0.9, abs=1e-6)

    def test_ceiling_unreachable(self):
        with pytest.raises(ValueError):
            LearningCurve(ceiling=0.95).labels_for(0.95)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            LearningCurve(ceiling=1.2)
        with pytest.raises(ValueError):
            LearningCurve(amplitude=-1.0)


class TestTrainingLab:
    def test_specific_concepts_cheaper(self):
        lab = TrainingLab(seed=5)
        broad = frozenset({"wooden"})
        narrow = frozenset({"wooden", "table", "round"})
        # On average the 3-property concept needs fewer labels; check the
        # specificity discount via the curve amplitudes.
        assert lab.curve_for(narrow).amplitude < 1.0

    def test_estimates_deterministic(self):
        a = TrainingLab(seed=1).estimated_labels(frozenset({"x", "y"}))
        b = TrainingLab(seed=1).estimated_labels(frozenset({"x", "y"}))
        assert a == b

    def test_actual_biased_above_estimate_on_average(self):
        lab = TrainingLab(seed=2, estimation_bias=0.06, estimation_noise=0.05)
        concepts = [frozenset({f"p{i}"}) for i in range(40)]
        ratios = [
            lab.actual_labels(c) / lab.estimated_labels(c) for c in concepts
        ]
        mean = sum(ratios) / len(ratios)
        assert 1.0 < mean < 1.15  # ~ +6% as the paper reports

    def test_training_reaches_target(self):
        lab = TrainingLab(seed=3, target_accuracy=0.95)
        concept = frozenset({"a", "b"})
        model = lab.train(concept)
        assert model.accuracy >= 0.90  # paper: estimates almost always >90%

    def test_invalid_lab_configs(self):
        with pytest.raises(ValueError):
            TrainingLab(target_accuracy=1.5)
        with pytest.raises(ValueError):
            TrainingLab(estimation_bias=-0.1)


class TestTrainedClassifier:
    def test_asymmetric_rates(self):
        model = TrainedClassifier(frozenset({"a"}), accuracy=0.9, labels_used=10)
        assert model.recall_rate == 0.9
        assert model.false_positive_rate == pytest.approx(0.02)

    def test_prediction_statistics(self):
        model = TrainedClassifier(frozenset({"a"}), accuracy=0.9, labels_used=10)
        rng = random.Random(0)
        positives = sum(model.predict(True, rng) for _ in range(2000)) / 2000
        negatives = sum(model.predict(False, rng) for _ in range(2000)) / 2000
        assert positives == pytest.approx(0.9, abs=0.03)
        assert negatives == pytest.approx(0.02, abs=0.01)


class TestSearchEngine:
    @pytest.fixture(scope="class")
    def setup(self):
        catalog = generate_catalog(
            CatalogConfig(n_items=300, n_properties=20, disclosure=0.5), seed=7
        )
        lab = TrainingLab(seed=7)
        return catalog, lab

    def test_perfect_classifier_recovers_truth(self, setup):
        catalog, _ = setup
        engine = SearchEngine(catalog, seed=1)
        query = frozenset({"attr0"})
        engine.deploy(
            [TrainedClassifier(query, accuracy=1.0, labels_used=1.0)]
        )
        current = {i.item_id for i in engine.result_set(query)}
        truth = {i.item_id for i in catalog.true_result_set(query)}
        assert current == truth

    def test_deploy_grows_result_sets(self, setup):
        catalog, lab = setup
        engine = SearchEngine(catalog, seed=1)
        query = frozenset({"attr0", "attr1"})
        baseline = len(catalog.listed_result_set(query))
        engine.deploy([lab.train(frozenset({"attr0"})), lab.train(frozenset({"attr1"}))])
        assert len(engine.result_set(query)) >= baseline

    def test_covers_uses_bcc_semantics(self, setup):
        catalog, lab = setup
        engine = SearchEngine(catalog, seed=1)
        engine.deploy([lab.train(frozenset({"attr0"})), lab.train(frozenset({"attr1"}))])
        assert engine.covers(frozenset({"attr0", "attr1"}))
        assert not engine.covers(frozenset({"attr0", "attr2"}))

    def test_evaluate_query_fields(self, setup):
        catalog, lab = setup
        engine = SearchEngine(catalog, seed=1)
        engine.deploy([lab.train(frozenset({"attr0"}))])
        metrics = engine.evaluate_query(frozenset({"attr0"}))
        assert set(metrics) >= {
            "baseline_size",
            "current_size",
            "growth",
            "precision",
            "recall",
        }
        assert 0.0 <= metrics["precision"] <= 1.0
        assert 0.0 <= metrics["recall"] <= 1.0


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def report(self):
        return run_end_to_end(
            CatalogConfig(n_items=600, n_properties=40),
            n_queries=30,
            budget_fraction=0.25,
            seed=4,
        )

    def test_budget_respected(self, report):
        assert report.planned_cost_estimated <= report.budget + 1e-6

    def test_costs_underestimated_as_paper_reports(self, report):
        assert 0.0 < report.mean_estimation_error < 0.20

    def test_accuracy_above_90(self, report):
        # Paper: original estimates almost always sufficient to exceed 90%.
        assert report.min_accuracy >= 0.90

    def test_result_sets_grow_substantially(self, report):
        # Paper: result sets grew by more than 200% on sampled queries.
        assert report.mean_result_growth >= 1.0

    def test_precision_reasonable(self, report):
        assert report.mean_precision >= 0.6

    def test_summary_renders(self, report):
        text = report.summary()
        assert "estimation error" in text
        assert "result-set growth" in text
