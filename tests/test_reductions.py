"""Objective-equality tests for the executable hardness reductions."""

import itertools
import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import solve_bcc_exact
from repro.core import covered_queries, evaluate
from repro.graphs import Hypergraph, WeightedGraph
from repro.knapsack import KnapsackItem, solve_knapsack_dp
from repro.qk import solve_qk_exact
from repro.reductions import (
    bcc2_to_qk,
    bcc_l1_to_knapsack,
    bcc_solution_from_nodes,
    dks_to_bcc,
    dksh_to_bcc,
    knapsack_to_bcc_l1,
    nodes_from_bcc_solution,
    qk_to_bcc2,
    spes_to_gmc3,
)


def random_graph(seed, n=7, p=0.5):
    rng = random.Random(seed)
    g = WeightedGraph()
    for i in range(n):
        g.add_node(i, 1.0)
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < p:
                g.add_edge(i, j, 1.0)
    return g


class TestDksBcc:
    """Theorem 3.3: I_2 and DkS are the same problem."""

    @given(seed=st.integers(0, 500), k=st.integers(1, 5))
    @settings(max_examples=30, deadline=None)
    def test_objective_equality(self, seed, k):
        g = random_graph(seed)
        if g.num_edges() == 0:
            return
        instance = dks_to_bcc(g, k)
        # Any node selection: utility == induced edge count.
        rng = random.Random(seed + 1)
        nodes = {v for v in g.nodes if rng.random() < 0.5}
        classifiers = bcc_solution_from_nodes(nodes)
        solution = evaluate(instance, classifiers)
        assert solution.utility == pytest.approx(g.induced_weight(nodes))
        assert solution.cost == pytest.approx(len(nodes))

    @given(seed=st.integers(0, 300), k=st.integers(2, 4))
    @settings(max_examples=15, deadline=None)
    def test_optima_match(self, seed, k):
        g = random_graph(seed, n=6)
        if g.num_edges() == 0:
            return
        instance = dks_to_bcc(g, k)
        bcc_opt = solve_bcc_exact(instance)
        # Exact DkS by enumeration.
        best = 0.0
        for combo in itertools.combinations(list(g.nodes), min(k, len(g))):
            best = max(best, g.induced_weight(combo))
        assert bcc_opt.utility == pytest.approx(best)

    def test_round_trip_nodes(self):
        g = random_graph(1)
        classifiers = bcc_solution_from_nodes([0, 3])
        assert nodes_from_bcc_solution(classifiers) == {"0", "3"}

    def test_non_singleton_rejected_on_back_map(self):
        with pytest.raises(ValueError):
            nodes_from_bcc_solution([frozenset({"a", "b"})])

    def test_edgeless_rejected(self):
        g = WeightedGraph()
        g.add_node(0, 1.0)
        with pytest.raises(ValueError):
            dks_to_bcc(g, 1)


class TestDkshBcc:
    @given(seed=st.integers(0, 300), k=st.integers(2, 5))
    @settings(max_examples=20, deadline=None)
    def test_objective_equality(self, seed, k):
        rng = random.Random(seed)
        h = Hypergraph()
        for i in range(6):
            h.add_node(i, 1.0)
        for _ in range(5):
            edge = rng.sample(range(6), 3)
            h.add_edge(edge, 1.0)
        instance = dksh_to_bcc(h, k)
        nodes = {v for v in h.nodes if rng.random() < 0.5}
        classifiers = bcc_solution_from_nodes(nodes)
        solution = evaluate(instance, classifiers)
        assert solution.utility == pytest.approx(h.induced_weight(nodes))


class TestKnapsackBcc:
    @given(seed=st.integers(0, 500), cap=st.integers(0, 20))
    @settings(max_examples=30, deadline=None)
    def test_optima_match(self, seed, cap):
        rng = random.Random(seed)
        items = [
            KnapsackItem(key=i, weight=rng.randint(1, 8), value=rng.randint(1, 9))
            for i in range(7)
        ]
        instance = knapsack_to_bcc_l1(items, cap)
        bcc_opt = solve_bcc_exact(instance)
        knap_value, _ = solve_knapsack_dp(items, cap)
        assert bcc_opt.utility == pytest.approx(knap_value)

    def test_round_trip(self):
        items = [KnapsackItem("a", 2.0, 3.0), KnapsackItem("b", 1.0, 1.0)]
        instance = knapsack_to_bcc_l1(items, 2.0)
        back, capacity = bcc_l1_to_knapsack(instance)
        assert capacity == 2.0
        assert sorted((i.weight, i.value) for i in back) == [(1.0, 1.0), (2.0, 3.0)]

    def test_zero_value_rejected(self):
        with pytest.raises(ValueError):
            knapsack_to_bcc_l1([KnapsackItem("a", 1.0, 0.0)], 1.0)

    def test_long_instance_rejected_backwards(self, fig1_b3):
        with pytest.raises(ValueError):
            bcc_l1_to_knapsack(fig1_b3)


class TestQkBcc:
    @given(seed=st.integers(0, 300), budget=st.integers(1, 10))
    @settings(max_examples=20, deadline=None)
    def test_qk_to_bcc_objective(self, seed, budget):
        rng = random.Random(seed)
        g = WeightedGraph()
        for i in range(6):
            g.add_node(i, float(rng.randint(1, 4)))
        for i in range(6):
            for j in range(i + 1, 6):
                if rng.random() < 0.5:
                    g.add_edge(i, j, float(rng.randint(1, 9)))
        if g.num_edges() == 0:
            return
        instance = qk_to_bcc2(g, budget)
        bcc_opt = solve_bcc_exact(instance)
        qk_opt_nodes = solve_qk_exact(g, budget)
        assert bcc_opt.utility == pytest.approx(g.induced_weight(qk_opt_nodes))

    def test_bcc2_to_qk_structure(self, fig1_b4):
        # fig1 has length 3 -> rejected.
        with pytest.raises(ValueError):
            bcc2_to_qk(fig1_b4)

    def test_bcc2_to_qk_small(self):
        from repro.core import BCCInstance, from_letters as fs

        instance = BCCInstance(
            [fs("xy"), fs("y")],
            {fs("xy"): 4.0, fs("y"): 2.0},
            {fs("x"): 1.0, fs("y"): 2.0, fs("xy"): 3.0},
            budget=5.0,
        )
        graph, budget = bcc2_to_qk(instance)
        assert budget == 5.0
        assert graph.weight(fs("x"), fs("y")) == 4.0
        assert graph.cost(fs("y")) == 2.0


class TestSpesGmc3:
    def test_structure(self):
        g = random_graph(3)
        instance = spes_to_gmc3(g, p=4)
        assert instance.target == 4.0
        assert instance.length == 2
        # Unit utilities and singleton costs.
        assert all(instance.utility(q) == 1.0 for q in instance.queries)

    def test_covering_p_edges_reaches_target(self):
        g = random_graph(5)
        if g.num_edges() < 3:
            return
        instance = spes_to_gmc3(g, p=3)
        # Selecting all nodes covers all edges >= p.
        classifiers = bcc_solution_from_nodes(g.nodes)
        covered = covered_queries(instance, classifiers)
        assert len(covered) >= 3
